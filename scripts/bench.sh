#!/usr/bin/env bash
# Reproducible hot-path benchmark run.
#
# Builds the workspace in release mode, runs the criterion microbenchmarks
# (human-readable), then the sim_core differential benchmark, which writes
# BENCH_sim_core.json at the repository root: events/sec, multicasts/sec,
# and queue ops/sec for the optimized timing-wheel event loop vs the
# pre-refactor reference implementation, plus a peak-RSS proxy. The
# parallel_regions workload sweeps the sharded engine over shard counts
# 1/2/4/8 on a 32-region / 2048-member topology (events/sec per count on
# stderr; the JSON records 4 shards vs the sequential shards=1 oracle,
# guarded warn-only like every workload).
#
# If a committed BENCH_sim_core.json baseline exists, the run finishes
# with the bench_guard regression check: any workload whose speedup fell
# below 0.9x of the recorded value is flagged. The guard warns by default
# (wall-clock benches are noisy on shared machines); set
# BENCH_GUARD_STRICT=1 to make any regression fail this script, set
# BENCH_GUARD_ENFORCE=a,b,c to hard-fail only those workloads (CI gates
# queue_ops,multicast_fanout,delivered_query this way), or
# BENCH_GUARD_SKIP=1 to skip it (CI runs the guard as its own step).
#
# BENCH_MEMBERS=N shrinks the million-member scaling workload (members_1m)
# to N members — the run is then recorded under the workload name
# members_scale so a reduced smoke run can never silently overwrite the
# flagship members_1m numbers. BENCH_MEMBERS_ONLY=1 runs only the scaling
# workload (the CI members_scale smoke job uses both).
#
# The run finishes with the runtime_udp benchmark: real loopback sockets,
# one process hosting BENCH_RUNTIME_MEMBERS group members (default 2000)
# on 1/2/4 event-loop threads, writing BENCH_runtime_udp.json (end-to-end
# deliveries/sec, pooled-vs-unpooled receive, pool statistics). Its
# committed baseline gets the same bench_guard treatment. Set
# BENCH_RUNTIME_SKIP=1 to skip this section (e.g. sandboxes without
# loopback sockets).
#
# Usage: scripts/bench.sh [output.json] [runtime-output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_sim_core.json}"
RUNTIME_OUT="${2:-BENCH_runtime_udp.json}"

SIM_FLAGS=()
if [[ -n "${BENCH_MEMBERS:-}" ]]; then
  SIM_FLAGS+=("--members=${BENCH_MEMBERS}")
fi
if [[ "${BENCH_MEMBERS_ONLY:-0}" == "1" ]]; then
  SIM_FLAGS+=("--members-only")
fi

# Snapshot the committed baselines before (possibly) overwriting them.
BASELINE_SNAPSHOT=""
RUNTIME_BASELINE_SNAPSHOT=""
trap 'rm -f "$BASELINE_SNAPSHOT" "$RUNTIME_BASELINE_SNAPSHOT"' EXIT
if [[ -f BENCH_sim_core.json ]]; then
  BASELINE_SNAPSHOT="$(mktemp)"
  cp BENCH_sim_core.json "$BASELINE_SNAPSHOT"
fi
if [[ -f BENCH_runtime_udp.json ]]; then
  RUNTIME_BASELINE_SNAPSHOT="$(mktemp)"
  cp BENCH_runtime_udp.json "$RUNTIME_BASELINE_SNAPSHOT"
fi

echo "== criterion microbenchmarks (micro_core) =="
cargo bench -p rrmp-bench --bench micro_core

echo
echo "== sim_core differential benchmark =="
cargo run --release -p rrmp-bench --bin sim_core_bench "$OUT" ${SIM_FLAGS[@]+"${SIM_FLAGS[@]}"}

echo "wrote $OUT"

GUARD_FLAGS="--warn-only"
if [[ "${BENCH_GUARD_STRICT:-0}" == "1" ]]; then
  GUARD_FLAGS=""
fi
if [[ -n "${BENCH_GUARD_ENFORCE:-}" ]]; then
  GUARD_FLAGS="$GUARD_FLAGS --enforce=${BENCH_GUARD_ENFORCE}"
fi

if [[ -n "$BASELINE_SNAPSHOT" && "${BENCH_GUARD_SKIP:-0}" != "1" ]]; then
  echo
  echo "== bench_guard: fresh speedups vs committed baseline =="
  # shellcheck disable=SC2086
  cargo run --release -p rrmp-bench --bin bench_guard "$OUT" "$BASELINE_SNAPSHOT" $GUARD_FLAGS
fi

if [[ "${BENCH_RUNTIME_SKIP:-0}" != "1" ]]; then
  echo
  echo "== runtime_udp multiplexed-runtime benchmark =="
  RUNTIME_FLAGS=()
  if [[ -n "${BENCH_RUNTIME_MEMBERS:-}" ]]; then
    RUNTIME_FLAGS+=("--members=${BENCH_RUNTIME_MEMBERS}")
  fi
  cargo run --release -p rrmp-bench --bin runtime_udp_bench -- \
    "--out=${RUNTIME_OUT}" ${RUNTIME_FLAGS[@]+"${RUNTIME_FLAGS[@]}"}
  echo "wrote $RUNTIME_OUT"

  if [[ -n "$RUNTIME_BASELINE_SNAPSHOT" && "${BENCH_GUARD_SKIP:-0}" != "1" ]]; then
    echo
    echo "== bench_guard: runtime_udp speedups vs committed baseline =="
    # The runtime workloads are wall-clock socket benchmarks — noisier
    # than the simulator's, so BENCH_GUARD_ENFORCE applies to them only
    # if explicitly named there.
    # shellcheck disable=SC2086
    cargo run --release -p rrmp-bench --bin bench_guard \
      "$RUNTIME_OUT" "$RUNTIME_BASELINE_SNAPSHOT" $GUARD_FLAGS
  fi
fi
