#!/usr/bin/env bash
# Reproducible hot-path benchmark run.
#
# Builds the workspace in release mode, runs the criterion microbenchmarks
# (human-readable), then the sim_core differential benchmark, which writes
# BENCH_sim_core.json at the repository root: events/sec and
# multicasts/sec for the optimized event loop vs the pre-refactor
# reference implementation, plus a peak-RSS proxy.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_sim_core.json}"

echo "== criterion microbenchmarks (micro_core) =="
cargo bench -p rrmp-bench --bench micro_core

echo
echo "== sim_core differential benchmark =="
cargo run --release -p rrmp-bench --bin sim_core_bench "$OUT"

echo "wrote $OUT"
