//! Combinatorial primitives: log-gamma, binomial and Poisson pmfs.
//!
//! Implemented from scratch (no external math crates) with the Lanczos
//! approximation for `ln Γ`, accurate to ~1e-13 over the ranges used by
//! the paper's models (n ≤ a few thousand).

/// Lanczos coefficients (g = 7, n = 9) — the classic Godfrey parameters.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// # Panics
///
/// Panics in debug builds if `x <= 0`.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln n!` via `ln Γ(n+1)`.
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// `ln C(n, k)`; `-inf` if `k > n`.
#[must_use]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Binomial pmf `P[X = k]` for `X ~ Binomial(n, p)`.
///
/// Returns 0 for impossible outcomes; handles the `p ∈ {0, 1}` edge cases
/// exactly.
#[must_use]
pub fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    if k > n || !(0.0..=1.0).contains(&p) {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_p = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln_p.exp()
}

/// Poisson pmf `P[X = k]` for `X ~ Poisson(lambda)` — the paper's Figure 3
/// distribution of the number of long-term bufferers.
#[must_use]
pub fn poisson_pmf(lambda: f64, k: u64) -> f64 {
    if lambda < 0.0 {
        return 0.0;
    }
    if lambda == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    (k as f64 * lambda.ln() - lambda - ln_factorial(k)).exp()
}

/// Poisson CDF `P[X <= k]`.
#[must_use]
pub fn poisson_cdf(lambda: f64, k: u64) -> f64 {
    (0..=k).map(|i| poisson_pmf(lambda, i)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi).
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(5.0), 24f64.ln(), 1e-12));
        assert!(close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12));
        // Γ(101) = 100!.
        let ln_100_fact: f64 = (1..=100u64).map(|i| (i as f64).ln()).sum();
        assert!(close(ln_gamma(101.0), ln_100_fact, 1e-12));
    }

    #[test]
    fn ln_factorial_small_values() {
        assert!(close(ln_factorial(0), 0.0, 1e-12));
        assert!(close(ln_factorial(1), 0.0, 1e-12));
        assert!(close(ln_factorial(5), 120f64.ln(), 1e-12));
    }

    #[test]
    fn ln_choose_values() {
        assert!(close(ln_choose(5, 2), 10f64.ln(), 1e-12));
        assert!(close(ln_choose(10, 0), 0.0, 1e-12));
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_pmf_exact_cases() {
        // Binomial(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
        let expect = [1.0, 4.0, 6.0, 4.0, 1.0].map(|x| x / 16.0);
        for (k, &e) in expect.iter().enumerate() {
            assert!(close(binomial_pmf(4, 0.5, k as u64), e, 1e-12));
        }
        assert_eq!(binomial_pmf(4, 0.5, 5), 0.0);
        assert_eq!(binomial_pmf(4, 0.0, 0), 1.0);
        assert_eq!(binomial_pmf(4, 1.0, 4), 1.0);
        assert_eq!(binomial_pmf(4, 2.0, 1), 0.0);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let total: f64 = (0..=100).map(|k| binomial_pmf(100, 0.06, k)).sum();
        assert!(close(total, 1.0, 1e-10));
    }

    #[test]
    fn poisson_pmf_known_values() {
        // P[X=0] = e^-λ.
        assert!(close(poisson_pmf(6.0, 0), (-6.0f64).exp(), 1e-12));
        // Mode of Poisson(6) is at 5 and 6 with equal mass.
        assert!(close(poisson_pmf(6.0, 5), poisson_pmf(6.0, 6), 1e-12));
        assert_eq!(poisson_pmf(0.0, 0), 1.0);
        assert_eq!(poisson_pmf(0.0, 3), 0.0);
        assert_eq!(poisson_pmf(-1.0, 0), 0.0);
    }

    #[test]
    fn poisson_cdf_monotone_and_bounded() {
        let mut prev = 0.0;
        for k in 0..40 {
            let c = poisson_cdf(6.0, k);
            assert!(c >= prev);
            assert!(c <= 1.0 + 1e-12);
            prev = c;
        }
        assert!(close(poisson_cdf(6.0, 39), 1.0, 1e-9));
    }

    #[test]
    fn binomial_converges_to_poisson() {
        // The §3.2 argument: Binomial(n, C/n) → Poisson(C) as n → ∞.
        let c = 6.0;
        for k in 0..15u64 {
            let b = binomial_pmf(10_000, c / 10_000.0, k);
            let p = poisson_pmf(c, k);
            assert!((b - p).abs() < 2e-3, "k={k}: binomial {b} vs poisson {p}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Binomial pmf is a probability distribution for any (n, p).
        #[test]
        fn binomial_is_distribution(n in 1u64..200, p in 0.0f64..1.0) {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, p, k)).sum();
            prop_assert!((total - 1.0).abs() < 1e-8, "sum = {total}");
            for k in 0..=n {
                let v = binomial_pmf(n, p, k);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
            }
        }

        /// Poisson pmf sums to ~1 over a generous support.
        #[test]
        fn poisson_is_distribution(lambda in 0.01f64..30.0) {
            let k_max = (lambda * 10.0) as u64 + 60;
            let total: f64 = (0..=k_max).map(|k| poisson_pmf(lambda, k)).sum();
            prop_assert!((total - 1.0).abs() < 1e-8, "sum = {total}");
        }
    }
}
