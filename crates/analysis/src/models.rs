//! The paper's closed-form models.
//!
//! * §3.1 — feedback confidence: the probability that a member holding a
//!   message receives **no** request while fraction `p` of an `n`-member
//!   region misses it is `(1 − 1/(n−1))^{np} ≈ e^{−p}`.
//! * §3.2 — long-term bufferers: `Binomial(n, C/n) → Poisson(C)`; the
//!   probability that *nobody* buffers an idle message is `≈ e^{−C}`
//!   (Figure 4); the pmf for `k` bufferers is Figure 3.
//! * §3.3 — search time: a random-probe model for the expected time until
//!   a search with `j` bufferers among `n` members reaches one (Figures
//!   8/9 measure this in simulation; the model predicts the shape).

use crate::combinatorics::{binomial_pmf, poisson_pmf};

/// §3.1: probability that a member receives no request for a message when
/// fraction `p` (`0..=1`) of the `n` members in its region miss it, under
/// one round of uniform random requests: `(1 − 1/(n−1))^{np}`.
///
/// Returns 1.0 when nothing is missing and 0 ≤ result ≤ 1 always.
#[must_use]
pub fn no_request_probability(n: usize, p: f64) -> f64 {
    if n < 2 {
        return 1.0;
    }
    let p = p.clamp(0.0, 1.0);
    (1.0 - 1.0 / (n as f64 - 1.0)).powf(n as f64 * p)
}

/// §3.1: the paper's large-`n` approximation `e^{−p}` of
/// [`no_request_probability`].
#[must_use]
pub fn no_request_probability_approx(p: f64) -> f64 {
    (-p.clamp(0.0, 1.0)).exp()
}

/// §3.2 / Figure 3: probability that exactly `k` members of an `n`-member
/// region buffer an idle message when each keeps it with probability
/// `C/n` (exact binomial form).
#[must_use]
pub fn bufferer_count_pmf_exact(n: usize, c: f64, k: u64) -> f64 {
    let p = (c / n as f64).min(1.0);
    binomial_pmf(n as u64, p, k)
}

/// §3.2 / Figure 3: the Poisson(C) limit of [`bufferer_count_pmf_exact`].
#[must_use]
pub fn bufferer_count_pmf(c: f64, k: u64) -> f64 {
    poisson_pmf(c, k)
}

/// §3.2 / Figure 4: probability that **no** member buffers an idle message,
/// `≈ e^{−C}` (e.g. 0.25% at C = 6, as the paper notes).
#[must_use]
pub fn no_bufferer_probability(c: f64) -> f64 {
    (-c.max(0.0)).exp()
}

/// Exact no-bufferer probability `(1 − C/n)^n` for a finite region.
#[must_use]
pub fn no_bufferer_probability_exact(n: usize, c: f64) -> f64 {
    let p = (c / n as f64).min(1.0);
    (1.0 - p).powi(n as i32)
}

/// Parameters of the §3.3 search-time model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchModel {
    /// Region size (members that may be probed).
    pub n: usize,
    /// Number of long-term bufferers among them.
    pub j: usize,
    /// One-way latency between any two region members, in milliseconds.
    pub one_way_ms: f64,
    /// Search retry timeout (the estimated RTT), in milliseconds.
    pub timeout_ms: f64,
}

impl SearchModel {
    /// The paper's §4 setting: 5 ms one-way latency, 10 ms retry timer.
    #[must_use]
    pub fn paper(n: usize, j: usize) -> Self {
        SearchModel { n, j, one_way_ms: 5.0, timeout_ms: 10.0 }
    }

    /// Expected search time in milliseconds.
    ///
    /// Model: the initial remote request lands on a uniformly random member
    /// (probability `j/n` of landing on a bufferer ⇒ search time 0).
    /// Otherwise a random walk starts in half-RTT steps; every probed
    /// non-bufferer joins the search on its own timer, so the number of
    /// outstanding probes grows geometrically. We track the expected number
    /// of active searchers `s_t` per half-RTT slot; each probe
    /// independently hits a bufferer with probability `j/(n−1)`, so the
    /// per-slot hit probability is `1 − (1 − j/(n−1))^{s_t}`. The search
    /// ends one one-way latency after the successful probe is sent.
    #[must_use]
    pub fn expected_search_time_ms(&self) -> f64 {
        if self.n == 0 || self.j == 0 {
            return f64::INFINITY;
        }
        if self.j >= self.n {
            return 0.0;
        }
        let p_hit_first = self.j as f64 / self.n as f64;
        let q = self.j as f64 / (self.n as f64 - 1.0);
        // Probes sent at slot t (multiples of one-way latency) arrive at
        // t + 1. New joiners start probing the slot after they are probed;
        // timed-out searchers re-probe every timeout.
        let slots_per_timeout = (self.timeout_ms / self.one_way_ms).round().max(1.0) as usize;
        let mut expected = 0.0;
        let mut alive = 1.0 - p_hit_first; // P(search still running)
        let mut searchers = 1.0f64;
        let mut slot = 0usize;
        // Cap the walk generously; the tail beyond this is negligible for
        // the parameter ranges of Figures 8/9.
        while alive > 1e-9 && slot < 10_000 {
            // Probes in flight this slot: every active searcher sends one
            // either on join or on its timeout boundary.
            let probes = if slot.is_multiple_of(slots_per_timeout) {
                searchers
            } else {
                // Between timeouts only freshly joined searchers probe;
                // approximate their count as the previous slot's growth.
                searchers * q.mul_add(-1.0, 1.0).clamp(0.0, 1.0) * 0.5 + 1.0
            };
            let p_hit = 1.0 - (1.0 - q).powf(probes.max(1.0));
            let t_done = (slot as f64 + 1.0) * self.one_way_ms;
            expected += alive * p_hit * t_done;
            alive *= 1.0 - p_hit;
            // Each miss recruits a new searcher (the probed member joins).
            searchers = (searchers + probes).min(self.n as f64);
            slot += 1;
        }
        expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_request_probability_matches_paper_approximation() {
        // As n → ∞ the exact form approaches e^{-p}.
        for &p in &[0.1, 0.3, 0.5, 0.9] {
            let exact = no_request_probability(10_000, p);
            let approx = no_request_probability_approx(p);
            assert!((exact - approx).abs() < 1e-3, "p={p}: exact {exact} vs approx {approx}");
        }
    }

    #[test]
    fn no_request_probability_edges() {
        assert_eq!(no_request_probability(1, 0.5), 1.0);
        assert_eq!(no_request_probability(100, 0.0), 1.0);
        let v = no_request_probability(100, 1.0);
        assert!(v > 0.0 && v < 1.0);
        // Decreases with p: more missing members, more requests.
        assert!(no_request_probability(100, 0.2) > no_request_probability(100, 0.8));
    }

    #[test]
    fn figure4_values() {
        // Paper: "When C = 6 … the probability is only 0.25%."
        let p = no_bufferer_probability(6.0);
        assert!((p - 0.0025).abs() < 2e-4, "e^-6 = {p}");
        // Monotone decreasing in C.
        for c in 1..6 {
            assert!(no_bufferer_probability(c as f64) > no_bufferer_probability(c as f64 + 1.0));
        }
        // Exact finite-n form approaches it.
        let exact = no_bufferer_probability_exact(100, 6.0);
        assert!((exact - p).abs() < 1e-3, "exact {exact} vs poisson {p}");
    }

    #[test]
    fn figure3_pmf_shapes() {
        // Poisson(C) peaks near C and sums to 1.
        for &c in &[5.0, 6.0, 7.0, 8.0] {
            let pmf: Vec<f64> = (0..30).map(|k| bufferer_count_pmf(c, k)).collect();
            let total: f64 = pmf.iter().sum();
            assert!((total - 1.0).abs() < 1e-6);
            let mode =
                pmf.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
            assert!((mode as f64 - c).abs() <= 1.0, "mode {mode} should be near C={c}");
        }
        // Exact binomial close to Poisson at n=100.
        for k in 0..15u64 {
            let b = bufferer_count_pmf_exact(100, 6.0, k);
            let p = bufferer_count_pmf(6.0, k);
            assert!((b - p).abs() < 6e-3, "k={k}: {b} vs {p}");
        }
    }

    #[test]
    fn search_model_degenerate_cases() {
        assert_eq!(SearchModel::paper(100, 100).expected_search_time_ms(), 0.0);
        assert!(SearchModel::paper(100, 0).expected_search_time_ms().is_infinite());
    }

    #[test]
    fn search_model_decreases_with_bufferers() {
        // Figure 8's qualitative shape: more bufferers, shorter search.
        let times: Vec<f64> =
            (1..=10).map(|j| SearchModel::paper(100, j).expected_search_time_ms()).collect();
        for w in times.windows(2) {
            assert!(w[0] >= w[1], "search time should not increase: {times:?}");
        }
        // Rough magnitudes: tens of ms at j=1, ~an RTT or two at j=10.
        assert!(times[0] > 10.0 && times[0] < 100.0, "j=1: {}", times[0]);
        assert!(times[9] > 2.0 && times[9] < 30.0, "j=10: {}", times[9]);
    }

    #[test]
    fn search_model_grows_slowly_with_region_size() {
        // Figure 9's qualitative shape: 10× the region, ~2–3× the time.
        let t100 = SearchModel::paper(100, 10).expected_search_time_ms();
        let t1000 = SearchModel::paper(1000, 10).expected_search_time_ms();
        assert!(t1000 > t100);
        let ratio = t1000 / t100;
        assert!((1.5..4.0).contains(&ratio), "ratio {ratio} out of the paper's qualitative band");
    }
}
