//! # rrmp-analysis
//!
//! Closed-form analytic models from *"Optimizing Buffer Management for
//! Reliable Multicast"* (DSN 2002): the feedback-confidence bound of §3.1,
//! the Poisson model of long-term bufferer counts of §3.2 (Figures 3 and
//! 4), and a random-probe model of the §3.3 bufferer search (the
//! qualitative shape of Figures 8 and 9).
//!
//! ```
//! use rrmp_analysis::models::no_bufferer_probability;
//!
//! // Paper §3.2: "When C = 6, for example, the probability is only 0.25%."
//! let p = no_bufferer_probability(6.0);
//! assert!((p - 0.0025).abs() < 2e-4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod combinatorics;
pub mod models;

pub use combinatorics::{
    binomial_pmf, ln_choose, ln_factorial, ln_gamma, poisson_cdf, poisson_pmf,
};
pub use models::{
    bufferer_count_pmf, bufferer_count_pmf_exact, no_bufferer_probability,
    no_bufferer_probability_exact, no_request_probability, no_request_probability_approx,
    SearchModel,
};
