//! Small statistics toolkit used by the experiment harness: summary
//! statistics, online (Welford) accumulation, histograms, and time series.

use crate::time::SimTime;

/// Online mean/variance accumulator (Welford's algorithm).
///
/// ```
/// use rrmp_netsim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (n−1 denominator), or 0.0 with fewer than two points.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Smallest observation, or `NaN` when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation, or `NaN` when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Percentile of a sample using linear interpolation (inclusive method).
///
/// Returns `NaN` for an empty slice. `q` is clamped to `[0, 1]`.
#[must_use]
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Summary of a finished sample: count, mean, std, min/median/p99/max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Median (p50).
    pub median: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `values` (need not be sorted).
    ///
    /// Returns a zeroed summary with `count == 0` for an empty input.
    #[must_use]
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                median: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        let mut acc = OnlineStats::new();
        for &v in values {
            acc.push(v);
        }
        Summary {
            count: values.len(),
            mean: acc.mean(),
            std_dev: acc.sample_variance().sqrt(),
            min: sorted[0],
            median: percentile(&sorted, 0.5),
            p99: percentile(&sorted, 0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram { lo, hi, buckets: vec![0; buckets], underflow: 0, overflow: 0, count: 0 }
    }

    /// Adds an observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The `[start, end)` range of bucket `i`.
    #[must_use]
    pub fn bucket_range(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Total observations including under/overflow.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Fraction of all observations falling in bucket `i`.
    #[must_use]
    pub fn fraction(&self, i: usize) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.buckets[i] as f64 / self.count as f64
        }
    }
}

/// A `(time, value)` series sampled during a simulation, e.g. "number of
/// members buffering message m" for the paper's Figure 7.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a sample. Times should be non-decreasing.
    pub fn push(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(t, _)| t <= at),
            "time series must be sampled in order"
        );
        self.points.push((at, value));
    }

    /// The recorded samples in order.
    #[must_use]
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The value in effect at `at` (last sample at or before `at`), or
    /// `None` before the first sample.
    #[must_use]
    pub fn value_at(&self, at: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|&(t, _)| t.cmp(&at)) {
            Ok(i) => {
                // Multiple samples may share a timestamp; take the last.
                let mut i = i;
                while i + 1 < self.points.len() && self.points[i + 1].0 == at {
                    i += 1;
                }
                Some(self.points[i].1)
            }
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Resamples the series onto a regular grid from the first sample time
    /// to `end` with step `step_micros`, carrying the last value forward.
    #[must_use]
    pub fn resample(&self, end: SimTime, step_micros: u64) -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        let Some(&(start, _)) = self.points.first() else { return out };
        let mut t = start;
        while t <= end {
            if let Some(v) = self.value_at(t) {
                out.push((t, v));
            }
            t += crate::time::SimDuration::from_micros(step_micros);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        s.push(1.0);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert!((s.population_variance() - 1.0).abs() < 1e-12);
        assert!((s.sample_variance() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn online_stats_merge_matches_bulk() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, -1.0, 10.0, 55.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bucket(0), 2); // 0.0, 1.9
        assert_eq!(h.bucket(1), 1); // 2.0
        assert_eq!(h.bucket(4), 1); // 9.99
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bucket_range(1), (2.0, 4.0));
        assert!((h.fraction(0) - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn time_series_value_at() {
        let mut ts = TimeSeries::new();
        assert!(ts.is_empty());
        ts.push(SimTime::from_millis(10), 1.0);
        ts.push(SimTime::from_millis(20), 2.0);
        ts.push(SimTime::from_millis(20), 3.0); // same-timestamp update wins
        assert_eq!(ts.value_at(SimTime::from_millis(5)), None);
        assert_eq!(ts.value_at(SimTime::from_millis(10)), Some(1.0));
        assert_eq!(ts.value_at(SimTime::from_millis(15)), Some(1.0));
        assert_eq!(ts.value_at(SimTime::from_millis(20)), Some(3.0));
        assert_eq!(ts.value_at(SimTime::from_millis(99)), Some(3.0));
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn time_series_resample() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_millis(0), 0.0);
        ts.push(SimTime::from_millis(3), 3.0);
        let grid = ts.resample(SimTime::from_millis(4), 1_000);
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[2].1, 0.0);
        assert_eq!(grid[3].1, 3.0);
        assert_eq!(grid[4].1, 3.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Welford accumulation matches the naive two-pass computation.
        #[test]
        fn online_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s = OnlineStats::new();
            for &x in &xs {
                s.push(x);
            }
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
            prop_assert!((s.population_variance() - var).abs() < 1e-4 * var.abs().max(1.0));
        }

        /// Merging any split of a sample equals accumulating the whole.
        #[test]
        fn merge_is_split_invariant(
            xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
            split_frac in 0.0f64..1.0,
        ) {
            let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
            let mut whole = OnlineStats::new();
            for &x in &xs { whole.push(x); }
            let mut a = OnlineStats::new();
            let mut b = OnlineStats::new();
            for &x in &xs[..split] { a.push(x); }
            for &x in &xs[split..] { b.push(x); }
            a.merge(&b);
            prop_assert_eq!(a.count(), whole.count());
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-7);
        }

        /// Histogram conserves observations across buckets and flows.
        #[test]
        fn histogram_conserves_count(xs in proptest::collection::vec(-10.0f64..20.0, 0..300)) {
            let mut h = Histogram::new(0.0, 10.0, 7);
            for &x in &xs { h.record(x); }
            let in_buckets: u64 = (0..h.bucket_count()).map(|i| h.bucket(i)).sum();
            prop_assert_eq!(in_buckets + h.underflow() + h.overflow(), xs.len() as u64);
        }
    }
}
