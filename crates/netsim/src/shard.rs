//! Parallel per-region simulation under a conservative time-window barrier.
//!
//! Regions only interact through inter-region latencies, so a shard that
//! owns a subset of regions can advance independently up to
//! `global_lower_bound + lookahead`, where the lookahead is the minimum
//! one-way latency between any two distinct regions
//! ([`Topology::lookahead`]): no cross-region packet sent inside the
//! current window can arrive before the window ends. This is classic
//! conservative (Chandy–Misra-style) parallel discrete-event simulation,
//! specialized to the region hierarchy of the RRMP system model.
//!
//! ## Execution model
//!
//! A [`ShardedSim`] partitions the topology's regions over `shards` shards
//! (load-aware LPT bin packing over region member counts by default — see
//! [`ShardPlacement`]; a region never splits). Each shard owns
//! its own timing wheel, payload slab, timer slab, scratch buffers, and
//! the RNG streams of its nodes — there is **no shared mutable state**
//! between shards during a window. The run loop is a sequence of windows:
//!
//! 1. the coordinator computes the global lower bound `lb` (earliest
//!    pending event across all shards and undelivered mailboxes);
//! 2. every shard processes its local events in `[lb, lb + lookahead)`
//!    (one scoped worker thread per shard when `shards > 1`, inline
//!    otherwise);
//! 3. cross-region sends produced during the window were buffered into
//!    per-shard-pair **mailboxes** (each written by exactly one shard and
//!    read by exactly one shard); at the barrier they are merged into the
//!    destination shard's wheel in `(arrive, source region, emission
//!    seq)` order.
//!
//! ## Determinism
//!
//! A parallel run's trace is **byte-identical to the sequential
//! (`shards = 1`) run at any shard count**, by construction:
//!
//! * a region is always wholly inside one shard, so intra-region events
//!   are scheduled and popped in an order determined only by that
//!   region's own deterministic history — interleaving with other
//!   regions hosted on the same shard cannot reorder two events of the
//!   same region (the wheel's `(time, seq)` order restricted to one
//!   region's events is the region's own insertion order);
//! * every RNG stream is per-node (including the unicast-loss stream,
//!   which the single-`Sim` engine draws from one global generator), so
//!   no draw depends on cross-region event interleaving;
//! * cross-region messages are tagged with their source region and a
//!   per-source-region emission counter and merged at barriers in that
//!   canonical order, which does not depend on how regions are grouped
//!   into shards, or on thread scheduling;
//! * window boundaries themselves are a function of the global event-time
//!   structure only, so the barrier at which a message merges is also
//!   layout-independent.
//!
//! The price of the windowed semantics is that they are *not* the
//! single-queue semantics of [`Sim`](crate::sim::Sim): two same-instant
//! events in different regions may dispatch in a different relative order
//! (which no per-node observable can see), and cross-region ties at one
//! instant resolve in canonical merge order rather than global send
//! order. `ShardedSim` is therefore its own engine with `shards = 1` as
//! its sequential oracle; the trace-equality suite asserts byte-identical
//! traces across shard counts 1/2/4.

use std::sync::mpsc;
use std::sync::Arc;

use rand::rngs::StdRng;
use rrmp_trace::{streams, EventKind, TraceSink};

use crate::event::EventQueue;
use crate::fault::FaultPlan;
use crate::loss::{DeliveryPlan, LossModel};
use crate::rng::SeedSequence;
use crate::sim::{Ctx, NetCounters, Op, SimEvent, SimNode, TimerSlab};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, RegionId, Topology};

/// The per-node unicast-loss RNG stream id: disjoint from the per-node
/// protocol streams (`0..n`) and from the single-`Sim` global loss stream
/// (`u64::MAX / 2`).
fn loss_stream(node: NodeId) -> u64 {
    (1u64 << 63) | u64::from(node.0)
}

/// A cross-region send buffered in a mailbox until the next barrier.
///
/// `(arrive, src_region, emit_seq)` is the canonical merge key: it is
/// assigned by the *sending region's* deterministic execution, so the
/// merged order cannot depend on the shard layout or thread scheduling.
struct CrossEvent<M> {
    arrive: SimTime,
    src_region: u16,
    emit_seq: u64,
    from: NodeId,
    to: NodeId,
    msg: M,
}

/// A deterministic per-packet drop predicate (return `true` to drop).
/// Shards consult it concurrently, hence `Fn + Send + Sync`.
pub type DropFilter<M> = dyn Fn(NodeId, NodeId, &M) -> bool + Send + Sync;

/// Read-only environment shared by every shard during a window.
struct ShardEnv<'a, M> {
    topo: &'a Topology,
    region_shard: &'a [u32],
    unicast_loss: &'a LossModel,
    drop_filter: Option<&'a DropFilter<M>>,
    /// Armed fault timeline. Verdicts are pure functions of
    /// `(plan, send time, endpoints)` — no RNG state — so shards can
    /// consult it concurrently and the outcome is layout-invariant.
    fault: Option<&'a FaultPlan>,
}

/// One shard: a subset of regions with private queue, timers, RNGs,
/// scratch buffers, and outgoing mailboxes.
struct ShardState<N: SimNode> {
    /// Global ids of the nodes this shard owns, ascending.
    node_ids: Vec<NodeId>,
    nodes: Vec<N>,
    rngs: Vec<StdRng>,
    /// Per-node unicast-loss streams (the single-`Sim` engine uses one
    /// global stream, which would make draws depend on cross-shard event
    /// interleaving).
    loss_rngs: Vec<StdRng>,
    /// Global node index → local index (`u32::MAX` when not owned).
    local_of: Vec<u32>,
    queue: EventQueue<SimEvent<N::Msg>>,
    timers: TimerSlab,
    counters: NetCounters,
    now: SimTime,
    scratch_ops: Vec<Op<N::Msg>>,
    scratch_targets: Vec<NodeId>,
    target_pool: Vec<Vec<NodeId>>,
    scratch_groups: Vec<(SimTime, Vec<NodeId>)>,
    /// Cross-region sends awaiting the next barrier, one mailbox per
    /// destination shard. Each mailbox has a single producer (this shard)
    /// and a single consumer (the destination, via the coordinator).
    outboxes: Vec<Vec<CrossEvent<N::Msg>>>,
    /// Per-source-region emission counters (indexed by global region id;
    /// only this shard's regions ever advance).
    emit_seqs: Vec<u64>,
    /// Armed observer sink for this shard's nodes. Per-node rings plus
    /// per-node emission counters make the collected events independent
    /// of the shard layout; `None` costs one branch on the hot path.
    trace: Option<Box<TraceSink>>,
}

impl<N: SimNode> ShardState<N> {
    /// Processes every local event at or before `limit`.
    fn run_window(&mut self, env: &ShardEnv<'_, N::Msg>, limit: SimTime) {
        while let Some((at, event)) = self.queue.pop_at_or_before(limit) {
            self.dispatch_event(env, at, event);
        }
    }

    /// Schedules a sorted inbox batch into the local wheel — the barrier
    /// half of the mailbox protocol.
    fn accept_inbox(&mut self, inbox: Vec<CrossEvent<N::Msg>>) {
        for e in inbox {
            self.queue.schedule(e.arrive, SimEvent::Deliver { to: e.to, from: e.from, msg: e.msg });
        }
    }

    fn dispatch_event(&mut self, env: &ShardEnv<'_, N::Msg>, at: SimTime, event: SimEvent<N::Msg>) {
        debug_assert!(at >= self.now, "time went backwards inside a shard");
        match event {
            SimEvent::Deliver { to, from, msg } => {
                self.now = at;
                self.counters.delivered += 1;
                self.counters.events_processed += 1;
                if let Some(t) = self.trace.as_deref_mut() {
                    t.record(at.as_micros(), to.0, streams::ENGINE_DELIVERY, EventKind::Delivered);
                }
                let local = self.local_of[to.index()] as usize;
                self.dispatch_with(env, local, |node, ctx| node.on_packet(ctx, from, msg));
            }
            SimEvent::DeliverBatch { from, mut targets, msg } => {
                self.now = at;
                crate::sim::expand_batch(&targets, msg, |to, copy| {
                    self.counters.delivered += 1;
                    self.counters.events_processed += 1;
                    self.counters.batched_deliveries += 1;
                    if let Some(t) = self.trace.as_deref_mut() {
                        t.record(
                            at.as_micros(),
                            to.0,
                            streams::ENGINE_DELIVERY,
                            EventKind::Delivered,
                        );
                    }
                    let local = self.local_of[to.index()] as usize;
                    self.dispatch_with(env, local, |node, ctx| node.on_packet(ctx, from, copy));
                });
                targets.clear();
                self.target_pool.push(targets);
            }
            SimEvent::Timer { node, token, id } => {
                if !self.timers.retire(id) {
                    return; // cancelled; consume silently
                }
                self.now = at;
                self.counters.timers_fired += 1;
                self.counters.events_processed += 1;
                let local = self.local_of[node.index()] as usize;
                self.dispatch_with(env, local, |n, ctx| n.on_timer(ctx, token));
            }
        }
    }

    fn dispatch_with<F>(&mut self, env: &ShardEnv<'_, N::Msg>, local: usize, f: F)
    where
        F: FnOnce(&mut N, &mut Ctx<'_, N::Msg>),
    {
        debug_assert!(self.scratch_ops.is_empty() && self.scratch_targets.is_empty());
        let mut ops = std::mem::take(&mut self.scratch_ops);
        let mut targets = std::mem::take(&mut self.scratch_targets);
        let from = self.node_ids[local];
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: from,
                topo: env.topo,
                rng: &mut self.rngs[local],
                ops: &mut ops,
                targets: &mut targets,
                timers: &mut self.timers,
                fanout_ops: true,
            };
            f(&mut self.nodes[local], &mut ctx);
        }
        for op in ops.drain(..) {
            match op {
                Op::Send { to, msg } => self.transmit(env, local, from, to, msg),
                Op::SendMany { start, len, msg } => {
                    self.counters.fanouts += 1;
                    let range = start as usize..(start + len) as usize;
                    self.transmit_fanout(env, local, from, targets[range].iter().copied(), msg);
                }
                Op::SendGroup { msg } => {
                    self.counters.fanouts += 1;
                    let n = env.topo.node_count() as u32;
                    self.transmit_fanout(
                        env,
                        local,
                        from,
                        (0..n).map(NodeId).filter(|&to| to != from),
                        msg,
                    );
                }
                Op::SetTimer { id, token, at } => {
                    self.counters.timers_set += 1;
                    self.queue.schedule(at, SimEvent::Timer { node: from, token, id });
                }
                Op::Cancel { .. } => {
                    unreachable!("sharded shards always run the generation-slab cancel path")
                }
            }
        }
        targets.clear();
        self.scratch_ops = ops;
        self.scratch_targets = targets;
    }

    /// Routes one surviving send: same-region destinations go straight
    /// into the local wheel, cross-region destinations into the mailbox
    /// for the destination's shard (even when that is this shard — the
    /// canonical barrier order must not depend on the layout).
    fn route(
        &mut self,
        env: &ShardEnv<'_, N::Msg>,
        src_region: RegionId,
        arrive: SimTime,
        from: NodeId,
        to: NodeId,
        msg: N::Msg,
    ) {
        if env.topo.region_of(to) == src_region {
            self.queue.schedule(arrive, SimEvent::Deliver { to, from, msg });
        } else {
            let emit = &mut self.emit_seqs[src_region.index()];
            let emit_seq = *emit;
            *emit += 1;
            let dest = env.region_shard[env.topo.region_of(to).index()] as usize;
            self.outboxes[dest].push(CrossEvent {
                arrive,
                src_region: src_region.0,
                emit_seq,
                from,
                to,
                msg,
            });
        }
    }

    fn transmit(
        &mut self,
        env: &ShardEnv<'_, N::Msg>,
        local_from: usize,
        from: NodeId,
        to: NodeId,
        msg: N::Msg,
    ) {
        self.counters.unicasts_sent += 1;
        let filtered = env.drop_filter.is_some_and(|f| f(from, to, &msg));
        let lost = filtered || self.edge_loses(env, local_from, from, to);
        if lost {
            self.counters.unicasts_dropped += 1;
            if let Some(t) = self.trace.as_deref_mut() {
                t.record(
                    self.now.as_micros(),
                    from.0,
                    streams::ENGINE_WIRE,
                    EventKind::PacketDropped { to: to.0 },
                );
            }
            return;
        }
        let arrive = self.now + env.topo.one_way_latency(from, to);
        let src_region = env.topo.region_of(from);
        if let Some(extra) = env.fault.and_then(|p| p.duplicate_delay(self.now, from, to)) {
            // The duplicate is routed after the primary so its mailbox
            // emission sequence is the later one — a deterministic order
            // at every shard layout. Its strictly-not-earlier arrival
            // keeps the conservative window rule intact.
            self.counters.faults_duplicated += 1;
            if let Some(t) = self.trace.as_deref_mut() {
                t.record(
                    self.now.as_micros(),
                    from.0,
                    streams::ENGINE_WIRE,
                    EventKind::FaultDuplicated { to: to.0 },
                );
            }
            self.route(env, src_region, arrive, from, to, msg.clone());
            self.route(env, src_region, arrive + extra, from, to, msg);
            return;
        }
        self.route(env, src_region, arrive, from, to, msg);
    }

    /// The edge loss decision for one surviving-the-filter copy: an
    /// armed fault plan gets the first say (an active loss burst
    /// overrides the base model — no per-sender stream draw); otherwise
    /// the base loss model draws from the sender's stream.
    fn edge_loses(
        &mut self,
        env: &ShardEnv<'_, N::Msg>,
        local_from: usize,
        from: NodeId,
        to: NodeId,
    ) -> bool {
        match env.fault.and_then(|p| p.drops(self.now, from, to, env.topo)) {
            Some(true) => {
                self.counters.faults_dropped += 1;
                // Matches the single-`Sim` engine: the verdict event here,
                // the PacketDropped event at the drop branch of the caller
                // (both counters increment on a fault drop, so both events
                // record).
                if let Some(t) = self.trace.as_deref_mut() {
                    t.record(
                        self.now.as_micros(),
                        from.0,
                        streams::ENGINE_WIRE,
                        EventKind::FaultDropped { to: to.0 },
                    );
                }
                true
            }
            Some(false) => false,
            None => env.unicast_loss.drops_unicast(&mut self.loss_rngs[local_from]),
        }
    }

    /// Fan-out with per-destination loss draws in destination order from
    /// the **sender's** loss stream; same-region survivors batch per
    /// arrival time exactly like `Sim`, cross-region survivors go to the
    /// mailboxes one event each.
    fn transmit_fanout<I>(
        &mut self,
        env: &ShardEnv<'_, N::Msg>,
        local_from: usize,
        from: NodeId,
        targets: I,
        msg: N::Msg,
    ) where
        I: Iterator<Item = NodeId>,
    {
        debug_assert!(self.scratch_groups.is_empty());
        let mut groups = std::mem::take(&mut self.scratch_groups);
        let src_region = env.topo.region_of(from);
        for to in targets {
            self.counters.unicasts_sent += 1;
            let filtered = env.drop_filter.is_some_and(|f| f(from, to, &msg));
            let lost = filtered || self.edge_loses(env, local_from, from, to);
            if lost {
                self.counters.unicasts_dropped += 1;
                if let Some(t) = self.trace.as_deref_mut() {
                    t.record(
                        self.now.as_micros(),
                        from.0,
                        streams::ENGINE_WIRE,
                        EventKind::PacketDropped { to: to.0 },
                    );
                }
                continue;
            }
            let arrive = self.now + env.topo.one_way_latency(from, to);
            let dup = env.fault.and_then(|p| p.duplicate_delay(self.now, from, to));
            if dup.is_some() {
                self.counters.faults_duplicated += 1;
                if let Some(t) = self.trace.as_deref_mut() {
                    t.record(
                        self.now.as_micros(),
                        from.0,
                        streams::ENGINE_WIRE,
                        EventKind::FaultDuplicated { to: to.0 },
                    );
                }
            }
            if env.topo.region_of(to) == src_region {
                crate::sim::group_fanout_target(&mut self.target_pool, &mut groups, arrive, to);
                if let Some(extra) = dup {
                    crate::sim::group_fanout_target(
                        &mut self.target_pool,
                        &mut groups,
                        arrive + extra,
                        to,
                    );
                }
            } else {
                self.route(env, src_region, arrive, from, to, msg.clone());
                if let Some(extra) = dup {
                    self.route(env, src_region, arrive + extra, from, to, msg.clone());
                }
            }
        }
        // Flush the same-region arrival groups — the exact grouping and
        // clone discipline `Sim` uses, via the shared helpers.
        crate::sim::flush_fanout_groups(from, msg, &mut groups, &mut self.target_pool, |at, ev| {
            self.queue.schedule(at, ev);
        });
        self.scratch_groups = groups;
    }
}

/// The inclusive end of a window opening at the global lower bound `lb`,
/// capped at `limit` — shared by the inline and threaded drivers so the
/// conservative bound can never diverge between the sequential oracle and
/// a parallel run.
fn window_end(lookahead: Option<SimDuration>, lb: SimTime, limit: SimTime) -> SimTime {
    match lookahead {
        // `lb + L - 1` inclusive: a message sent at `s <= lb + L - 1`
        // arrives at `s + d >= lb + L`, strictly after the window.
        Some(l) if !l.is_zero() => lb.saturating_add(l - SimDuration::from_micros(1)).min(limit),
        // Zero lookahead: degrade to one instant per window (correct,
        // sequentially slow — conservative parallelism has nothing to
        // exploit). `None` means a single region: no cross-region traffic
        // can exist, so the window may span the whole run.
        Some(_) => lb,
        None => limit,
    }
}

/// One window command sent to a shard worker: schedule the (pre-sorted)
/// inbox batch, then process everything at or before `limit`.
struct WindowCmd<M> {
    limit: SimTime,
    inbox: Vec<CrossEvent<M>>,
}

/// A worker's barrier report: its drained mailboxes and the time of its
/// next local event.
struct WindowReport<M> {
    shard: usize,
    outboxes: Vec<Vec<CrossEvent<M>>>,
    next_time: Option<SimTime>,
}

/// The conservatively parallel, region-sharded discrete-event simulator.
///
/// Hosts the same [`SimNode`] implementations as [`Sim`](crate::sim::Sim)
/// with the same [`Ctx`] API. `shards = 1` is the sequential special
/// case: no worker threads are spawned and the (single) mailbox is
/// drained inline — it defines the canonical trace that every parallel
/// run reproduces byte for byte. See the [module docs](self) for the
/// windowed execution model and the determinism argument.
pub struct ShardedSim<N: SimNode> {
    topo: Topology,
    states: Vec<ShardState<N>>,
    /// Region index → owning shard.
    region_shard: Vec<u32>,
    /// Node index → owning shard.
    node_shard: Vec<u32>,
    lookahead: Option<SimDuration>,
    unicast_loss: LossModel,
    drop_filter: Option<Arc<DropFilter<N::Msg>>>,
    fault: Option<Arc<FaultPlan>>,
    now: SimTime,
    started: bool,
    /// Reused cross-event staging buffer for inline barrier merges.
    merge_scratch: Vec<CrossEvent<N::Msg>>,
}

impl<N: SimNode> std::fmt::Debug for ShardedSim<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSim")
            .field("now", &self.now)
            .field("shards", &self.states.len())
            .field("lookahead", &self.lookahead)
            .field(
                "pending_events",
                &self
                    .states
                    .iter()
                    .map(|s| s.queue.len() + s.outboxes.iter().map(Vec::len).sum::<usize>())
                    .sum::<usize>(),
            )
            .finish_non_exhaustive()
    }
}

/// How regions are assigned to shards.
///
/// Placement is purely a load-balancing decision: any deterministic
/// assignment yields byte-identical traces (that is the point of the
/// canonical mailbox order), so the only thing placement changes is how
/// evenly work spreads across shard workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ShardPlacement {
    /// Greedy LPT (longest-processing-time) bin packing over region
    /// member counts: regions are placed heaviest-first onto the
    /// currently lightest shard. Within a factor 4/3 of the optimal
    /// makespan, and exact when regions are equal-sized — strictly
    /// better than round-robin once regions are heterogeneous, which is
    /// the regime million-member topologies live in (cf. the
    /// hierarchical-makespan result: cost is dominated by the largest
    /// region).
    #[default]
    LoadAware,
    /// Round-robin by region index — balances equally sized regions
    /// exactly; kept for placement-invariance tests and comparison runs.
    RoundRobin,
}

/// Assigns regions to shards under `placement`. Shard ids in the result
/// are dense (`ShardedSim::new` sizes its state table from the max id),
/// which LPT guarantees because the first `shards` placements each pick
/// a distinct empty bin.
fn partition_regions(topo: &Topology, shards: usize, placement: ShardPlacement) -> Vec<u32> {
    let shards = shards.clamp(1, topo.region_count().max(1));
    match placement {
        ShardPlacement::RoundRobin => {
            (0..topo.region_count()).map(|r| (r % shards) as u32).collect()
        }
        ShardPlacement::LoadAware => {
            let weight = |r: usize| topo.members_of(RegionId(r as u16)).len();
            // Heaviest first; equal weights keep ascending region order
            // so the assignment is deterministic.
            let mut order: Vec<usize> = (0..topo.region_count()).collect();
            order.sort_by_key(|&r| (std::cmp::Reverse(weight(r)), r));
            let mut load = vec![0usize; shards];
            let mut assign = vec![0u32; topo.region_count()];
            for r in order {
                let lightest = (0..shards).min_by_key(|&s| (load[s], s)).unwrap_or(0);
                load[lightest] += weight(r);
                assign[r] = lightest as u32;
            }
            assign
        }
    }
}

/// Builds the per-shard states, streaming `nodes` (one per topology
/// node, in `NodeId` order) into exactly-sized per-shard vectors.
///
/// # Panics
///
/// Panics if `nodes` does not yield exactly one node per topology node.
fn build_states<N: SimNode>(
    topo: &Topology,
    node_shard: &[u32],
    nodes: impl IntoIterator<Item = N>,
    seed: u64,
    shard_count: usize,
) -> Vec<ShardState<N>> {
    let seq = SeedSequence::new(seed);
    let node_count = topo.node_count();
    let region_count = topo.region_count();
    let mut counts = vec![0usize; shard_count];
    for &s in node_shard {
        counts[s as usize] += 1;
    }
    let mut states: Vec<ShardState<N>> = (0..shard_count)
        .map(|s| ShardState {
            node_ids: Vec::with_capacity(counts[s]),
            nodes: Vec::with_capacity(counts[s]),
            rngs: Vec::with_capacity(counts[s]),
            loss_rngs: Vec::with_capacity(counts[s]),
            local_of: vec![u32::MAX; node_count],
            queue: EventQueue::new(),
            timers: TimerSlab::default(),
            counters: NetCounters::default(),
            now: SimTime::ZERO,
            scratch_ops: Vec::new(),
            scratch_targets: Vec::new(),
            target_pool: Vec::new(),
            scratch_groups: Vec::new(),
            outboxes: (0..shard_count).map(|_| Vec::new()).collect(),
            emit_seqs: vec![0; region_count],
            trace: None,
        })
        .collect();
    let mut total = 0usize;
    for (i, node) in nodes.into_iter().enumerate() {
        let id = NodeId(i as u32);
        let st = &mut states[node_shard[i] as usize];
        st.local_of[i] = st.nodes.len() as u32;
        st.node_ids.push(id);
        st.nodes.push(node);
        st.rngs.push(seq.rng_for(i as u64));
        st.loss_rngs.push(seq.rng_for(loss_stream(id)));
        total += 1;
    }
    assert_eq!(total, node_count, "need exactly one node implementation per topology node");
    states
}

impl<N> ShardedSim<N>
where
    N: SimNode + Send,
    N::Msg: Send,
{
    /// Creates a sharded simulator over `topo` hosting `nodes` (one per
    /// [`NodeId`], in order), partitioned into at most `shards` shards
    /// (clamped to the region count; a region never splits) under the
    /// default load-aware placement. All randomness derives from `seed`;
    /// traces are identical for every value of `shards` **and** every
    /// placement.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` does not match the topology's node count.
    #[must_use]
    pub fn new(topo: Topology, nodes: Vec<N>, seed: u64, shards: usize) -> Self {
        Self::with_placement(topo, nodes, seed, shards, ShardPlacement::default())
    }

    /// [`ShardedSim::new`] with an explicit region→shard [`ShardPlacement`].
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` does not match the topology's node count.
    #[must_use]
    pub fn with_placement(
        topo: Topology,
        nodes: Vec<N>,
        seed: u64,
        shards: usize,
        placement: ShardPlacement,
    ) -> Self {
        assert_eq!(
            nodes.len(),
            topo.node_count(),
            "need exactly one node implementation per topology node"
        );
        let region_shard = partition_regions(&topo, shards, placement);
        let shard_count = region_shard.iter().map(|&s| s as usize + 1).max().unwrap_or(1);
        let node_shard: Vec<u32> =
            topo.nodes().map(|n| region_shard[topo.region_of(n).index()]).collect();
        let states = build_states(&topo, &node_shard, nodes, seed, shard_count);
        let lookahead = topo.lookahead();
        ShardedSim {
            states,
            region_shard,
            node_shard,
            lookahead,
            unicast_loss: LossModel::None,
            drop_filter: None,
            fault: None,
            now: SimTime::ZERO,
            started: false,
            merge_scratch: Vec::new(),
            topo,
        }
    }

    /// Like [`ShardedSim::with_placement`], taking the nodes as an
    /// iterator that is streamed straight into the per-shard vectors —
    /// the million-member construction path. A pre-built `Vec<N>` plus
    /// the per-shard copies would briefly double the node set's
    /// footprint; here at most one node is in flight at a time. The
    /// iterator may borrow the caller's topology (this constructor
    /// stores its own clone).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` does not yield exactly one node per topology
    /// node (in `NodeId` order), or if `shards` is zero.
    #[must_use]
    pub fn with_placement_from<I: IntoIterator<Item = N>>(
        topo: &Topology,
        nodes: I,
        seed: u64,
        shards: usize,
        placement: ShardPlacement,
    ) -> Self {
        let region_shard = partition_regions(topo, shards, placement);
        let shard_count = region_shard.iter().map(|&s| s as usize + 1).max().unwrap_or(1);
        let node_shard: Vec<u32> =
            topo.nodes().map(|n| region_shard[topo.region_of(n).index()]).collect();
        let states = build_states(topo, &node_shard, nodes, seed, shard_count);
        ShardedSim {
            states,
            region_shard,
            node_shard,
            lookahead: topo.lookahead(),
            unicast_loss: LossModel::None,
            drop_filter: None,
            fault: None,
            now: SimTime::ZERO,
            started: false,
            merge_scratch: Vec::new(),
            topo: topo.clone(),
        }
    }

    /// Resets for a fresh run over the same topology and shard layout:
    /// replaces the nodes, re-derives every RNG stream from `seed`, and
    /// clears queues, timers, mailboxes, and counters while keeping their
    /// allocations warm (per-shard [`EventQueue::clear`] semantics). The
    /// loss model, drop filter, and armed fault plan are retained.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` does not match the topology's node count.
    pub fn reset(&mut self, nodes: Vec<N>, seed: u64) {
        assert_eq!(
            nodes.len(),
            self.topo.node_count(),
            "need exactly one node implementation per topology node"
        );
        let seq = SeedSequence::new(seed);
        for st in &mut self.states {
            st.nodes.clear();
            st.rngs.clear();
            st.loss_rngs.clear();
            st.queue.clear();
            st.timers.reset();
            st.counters = NetCounters::default();
            st.now = SimTime::ZERO;
            for ob in &mut st.outboxes {
                ob.clear();
            }
            for e in &mut st.emit_seqs {
                *e = 0;
            }
            // Armed observers stay armed across resets (matching the
            // fault plan); the previous run's events are discarded.
            if let Some(t) = st.trace.as_deref_mut() {
                t.clear();
            }
        }
        for (i, node) in nodes.into_iter().enumerate() {
            let id = NodeId(i as u32);
            let st = &mut self.states[self.node_shard[i] as usize];
            debug_assert_eq!(st.local_of[i] as usize, st.nodes.len());
            st.nodes.push(node);
            st.rngs.push(seq.rng_for(i as u64));
            st.loss_rngs.push(seq.rng_for(loss_stream(id)));
        }
        self.now = SimTime::ZERO;
        self.started = false;
    }

    /// Number of shards actually in use.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.states.len()
    }

    /// The window length: `Some(min inter-region one-way latency)`, or
    /// `None` for a single-region topology (one unbounded window).
    #[must_use]
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }

    /// Sets the loss model applied to every unicast send. Unlike the
    /// single-queue engine, draws come from **per-sender-node** streams
    /// (a global stream would make draws depend on the shard layout).
    pub fn set_unicast_loss(&mut self, model: LossModel) {
        self.unicast_loss = model;
    }

    /// Installs a deterministic drop filter consulted for every packet
    /// (return `true` to drop). Shards consult it concurrently, so it
    /// must be `Fn + Send + Sync` — pure decision logic only.
    pub fn set_drop_filter<F>(&mut self, f: F)
    where
        F: Fn(NodeId, NodeId, &N::Msg) -> bool + Send + Sync + 'static,
    {
        self.drop_filter = Some(Arc::new(f));
    }

    /// Arms (or with `None` disarms) a [`FaultPlan`], consulted for
    /// every unicast copy at transmit time. Verdicts are pure functions
    /// of `(plan, send time, endpoints)` — stateless by construction —
    /// so traces stay byte-identical at every shard count.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.fault = plan;
    }

    /// Arms (with `Some(ring_capacity)`) or disarms (with `None`) the
    /// engine observer: one [`TraceSink`] per shard, recording deliveries
    /// against the receiving node and wire verdicts against the sender.
    /// Per-node rings and emission counters make the combined, canonically
    /// sorted event set byte-identical at every shard count.
    pub fn set_trace(&mut self, ring_capacity: Option<usize>) {
        for st in &mut self.states {
            st.trace = ring_capacity.map(|cap| Box::new(TraceSink::new(cap)));
        }
    }

    /// Whether the engine observer is armed.
    #[must_use]
    pub fn trace_armed(&self) -> bool {
        self.states.iter().any(|st| st.trace.is_some())
    }

    /// Trace events evicted by ring bounds across all shard sinks.
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.states.iter().filter_map(|st| st.trace.as_deref()).map(TraceSink::dropped).sum()
    }

    /// Appends every engine-recorded event across all shards to `out`
    /// (unsorted; callers combine sinks and sort canonically).
    pub fn collect_trace(&self, out: &mut Vec<rrmp_trace::TraceEvent>) {
        for st in &self.states {
            if let Some(t) = st.trace.as_deref() {
                t.collect_into(out);
            }
        }
    }

    /// Current simulated time (the conservative global clock).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology being simulated.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Aggregated network counters across all shards.
    #[must_use]
    pub fn counters(&self) -> NetCounters {
        let mut total = NetCounters::default();
        for st in &self.states {
            // Exhaustive destructuring: adding a field to `NetCounters`
            // without aggregating it here is a compile error, not a
            // silent zero.
            let NetCounters {
                unicasts_sent,
                unicasts_dropped,
                delivered,
                timers_set,
                timers_fired,
                events_processed,
                fanouts,
                batched_deliveries,
                faults_dropped,
                faults_duplicated,
            } = st.counters;
            total.unicasts_sent += unicasts_sent;
            total.unicasts_dropped += unicasts_dropped;
            total.delivered += delivered;
            total.timers_set += timers_set;
            total.timers_fired += timers_fired;
            total.events_processed += events_processed;
            total.fanouts += fanouts;
            total.batched_deliveries += batched_deliveries;
            total.faults_dropped += faults_dropped;
            total.faults_duplicated += faults_duplicated;
        }
        total
    }

    /// Number of pending events (wheels plus undelivered mailboxes).
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.states
            .iter()
            .map(|s| s.queue.len() + s.outboxes.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &N {
        let st = &self.states[self.node_shard[id.index()] as usize];
        &st.nodes[st.local_of[id.index()] as usize]
    }

    /// Mutable access to a node (between runs).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        let st = &mut self.states[self.node_shard[id.index()] as usize];
        let local = st.local_of[id.index()] as usize;
        &mut st.nodes[local]
    }

    /// Iterates over all nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.topo.nodes().map(move |id| (id, self.node(id)))
    }

    /// Injects a packet from `from` arriving at `to` at absolute time
    /// `at`, bypassing latency, loss, and the mailboxes (injection order
    /// is the experiment script's call order, which is layout-invariant).
    pub fn inject(&mut self, to: NodeId, from: NodeId, msg: N::Msg, at: SimTime) {
        let st = &mut self.states[self.node_shard[to.index()] as usize];
        st.queue.schedule(at, SimEvent::Deliver { to, from, msg });
    }

    /// Injects one multicast transmission according to a
    /// [`DeliveryPlan`]: every plan holder other than `from` receives
    /// `msg` at `at + one_way_latency(from, holder)`.
    pub fn inject_multicast_plan(
        &mut self,
        from: NodeId,
        msg: &N::Msg,
        plan: &DeliveryPlan,
        at: SimTime,
    ) {
        for to in plan.holders() {
            if to == from {
                continue;
            }
            let arrive = at + self.topo.one_way_latency(from, to);
            self.inject(to, from, msg.clone(), arrive);
        }
    }

    /// Injects a multicast where every holder receives `msg` at exactly
    /// `at` (zero latency).
    pub fn inject_simultaneous(
        &mut self,
        from: NodeId,
        msg: &N::Msg,
        plan: &DeliveryPlan,
        at: SimTime,
    ) {
        for to in plan.holders() {
            if to == from {
                continue;
            }
            self.inject(to, from, msg.clone(), at);
        }
    }

    /// Schedules an external timer on `node` at absolute time `at`.
    pub fn schedule_external_timer(&mut self, node: NodeId, token: u64, at: SimTime) {
        let st = &mut self.states[self.node_shard[node.index()] as usize];
        let id = st.timers.arm();
        st.counters.timers_set += 1;
        st.queue.schedule(at, SimEvent::Timer { node, token, id });
    }

    /// Runs each node's [`SimNode::on_start`] callback (at most once),
    /// then delivers any cross-region sends they produced.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let Self {
            ref topo, ref region_shard, ref unicast_loss, ref drop_filter, ref fault, ..
        } = *self;
        let env = ShardEnv {
            topo,
            region_shard,
            unicast_loss,
            drop_filter: drop_filter.as_deref(),
            fault: fault.as_deref(),
        };
        for st in &mut self.states {
            for local in 0..st.nodes.len() {
                st.dispatch_with(&env, local, |node, ctx| node.on_start(ctx));
            }
        }
    }

    /// Earliest pending wheel event across shards (mailboxes must have
    /// been routed first).
    fn min_peek(&self) -> Option<SimTime> {
        self.states.iter().filter_map(|s| s.queue.peek_time()).min()
    }

    /// Drains every mailbox into its destination wheel in canonical
    /// `(arrive, src_region, emit_seq)` order — the inline barrier.
    fn route_mailboxes(&mut self) {
        for j in 0..self.states.len() {
            let mut batch = std::mem::take(&mut self.merge_scratch);
            debug_assert!(batch.is_empty());
            for i in 0..self.states.len() {
                batch.append(&mut self.states[i].outboxes[j]);
            }
            batch.sort_unstable_by_key(|e| (e.arrive, e.src_region, e.emit_seq));
            let dest = &mut self.states[j];
            for e in batch.drain(..) {
                dest.queue
                    .schedule(e.arrive, SimEvent::Deliver { to: e.to, from: e.from, msg: e.msg });
            }
            self.merge_scratch = batch;
        }
    }

    /// Processes every event at or before `t`, then advances the clock to
    /// exactly `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.advance(t);
        if self.now < t {
            self.now = t;
        }
    }

    /// Runs until no events remain or the clock would pass `limit`.
    /// Returns the time of the last processed event (or the current time
    /// if nothing ran).
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> SimTime {
        self.advance(limit);
        self.now
    }

    /// The window loop: picks the sequential or threaded driver.
    fn advance(&mut self, limit: SimTime) {
        self.start();
        if self.states.len() == 1 {
            self.advance_inline(limit);
        } else {
            self.advance_parallel(limit);
        }
        // Monotone global clock: `processed` only reflects events at or
        // before past limits, and a run with an earlier horizon than a
        // previous one must not rewind `now` (matching `Sim`).
        let processed = self.states.iter().map(|s| s.now).max().unwrap_or(SimTime::ZERO);
        self.now = self.now.max(processed);
    }

    /// Sequential window loop: the `shards = 1` special case (also used
    /// as the oracle in tests). No threads, no channel traffic; the
    /// mailbox merge is an inline sort of this shard's own cross-region
    /// sends.
    fn advance_inline(&mut self, limit: SimTime) {
        loop {
            self.route_mailboxes();
            let Some(lb) = self.min_peek() else { break };
            if lb > limit {
                break;
            }
            let end = window_end(self.lookahead, lb, limit);
            let Self {
                ref topo,
                ref region_shard,
                ref unicast_loss,
                ref drop_filter,
                ref fault,
                ..
            } = *self;
            let env = ShardEnv {
                topo,
                region_shard,
                unicast_loss,
                drop_filter: drop_filter.as_deref(),
                fault: fault.as_deref(),
            };
            for st in &mut self.states {
                st.run_window(&env, end);
            }
        }
    }

    /// Threaded window loop: one scoped worker per shard, coordinated by
    /// this thread through per-shard command channels and one report
    /// channel. Shard states move into the workers for the duration of
    /// the call and return through the scope's join handles.
    fn advance_parallel(&mut self, limit: SimTime) {
        self.route_mailboxes();
        match self.min_peek() {
            // Nothing to run before the horizon: don't pay shards x
            // (thread spawn + channel setup + join) for zero windows —
            // the cost profile scripts that step a sim in small
            // increments would otherwise hit on every no-op call.
            None => return,
            Some(lb) if lb > limit => return,
            Some(_) => {}
        }
        let n = self.states.len();
        let mut next_times: Vec<Option<SimTime>> =
            self.states.iter().map(|s| s.queue.peek_time()).collect();
        let mut pending: Vec<Vec<CrossEvent<N::Msg>>> = (0..n).map(|_| Vec::new()).collect();
        let states = std::mem::take(&mut self.states);
        let Self {
            ref topo, ref region_shard, ref unicast_loss, ref drop_filter, ref fault, ..
        } = *self;
        let loss = unicast_loss.clone();
        let filter = drop_filter.clone();
        let fault = fault.clone();
        let lookahead = self.lookahead;

        let recovered = std::thread::scope(|scope| {
            let (report_tx, report_rx) = mpsc::channel::<WindowReport<N::Msg>>();
            let mut cmd_txs = Vec::with_capacity(n);
            let mut handles = Vec::with_capacity(n);
            for (i, mut st) in states.into_iter().enumerate() {
                let (cmd_tx, cmd_rx) = mpsc::channel::<WindowCmd<N::Msg>>();
                let report = report_tx.clone();
                let loss = &loss;
                let filter = filter.as_deref();
                let fault = fault.as_deref();
                handles.push(scope.spawn(move || {
                    let env = ShardEnv {
                        topo,
                        region_shard,
                        unicast_loss: loss,
                        drop_filter: filter,
                        fault,
                    };
                    while let Ok(cmd) = cmd_rx.recv() {
                        st.accept_inbox(cmd.inbox);
                        st.run_window(&env, cmd.limit);
                        let outboxes = st.outboxes.iter_mut().map(std::mem::take).collect();
                        let sent = report.send(WindowReport {
                            shard: i,
                            outboxes,
                            next_time: st.queue.peek_time(),
                        });
                        if sent.is_err() {
                            break;
                        }
                    }
                    st
                }));
                cmd_txs.push(cmd_tx);
            }
            drop(report_tx);

            'windows: loop {
                let mut lb = next_times.iter().flatten().min().copied();
                for batch in &pending {
                    // Batches are sorted: the head holds the minimum arrival.
                    if let Some(e) = batch.first() {
                        lb = Some(lb.map_or(e.arrive, |t| t.min(e.arrive)));
                    }
                }
                let Some(lb) = lb else { break };
                if lb > limit {
                    break;
                }
                let end = window_end(lookahead, lb, limit);
                for (j, tx) in cmd_txs.iter().enumerate() {
                    let cmd = WindowCmd { limit: end, inbox: std::mem::take(&mut pending[j]) };
                    if tx.send(cmd).is_err() {
                        // The worker's receiver is gone: it panicked. Bail
                        // out to the joins below, which rethrow its panic.
                        break 'windows;
                    }
                }
                let mut reported = 0;
                while reported < n {
                    match report_rx.recv_timeout(std::time::Duration::from_millis(50)) {
                        Ok(rep) => {
                            next_times[rep.shard] = rep.next_time;
                            for (j, mut out) in rep.outboxes.into_iter().enumerate() {
                                pending[j].append(&mut out);
                            }
                            reported += 1;
                        }
                        // A worker that finished before its command channel
                        // closed has panicked; waiting for its report would
                        // hang forever. Fall through to the joins, which
                        // rethrow the panic.
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            if handles.iter().any(|h| h.is_finished()) {
                                break 'windows;
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => break 'windows,
                    }
                }
                for batch in &mut pending {
                    batch.sort_unstable_by_key(|e| (e.arrive, e.src_region, e.emit_seq));
                }
            }

            drop(cmd_txs); // closes the command channels; workers return
            let mut states = Vec::with_capacity(n);
            for h in handles {
                match h.join() {
                    Ok(st) => states.push(st),
                    // Propagate a node-callback panic with its original
                    // payload instead of deadlocking the barrier.
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            (states, pending)
        });
        let (mut states, pending) = recovered;
        // Leftover cross-region events past `limit`: schedule them now so
        // the wheel insertion order matches the inline driver's final
        // barrier (batches are already canonically sorted).
        for (j, batch) in pending.into_iter().enumerate() {
            states[j].accept_inbox(batch);
        }
        self.states = states;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;
    use crate::topology::{presets, TopologyBuilder};
    use rand::Rng;

    /// Node that records everything it observes.
    #[derive(Default)]
    struct Probe {
        packets: Vec<(SimTime, NodeId, u32)>,
        timers: Vec<(SimTime, u64)>,
    }

    impl SimNode for Probe {
        type Msg = u32;
        fn on_packet(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            self.packets.push((ctx.now(), from, msg));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, token: u64) {
            self.timers.push((ctx.now(), token));
        }
    }

    fn probes(n: usize) -> Vec<Probe> {
        (0..n).map(|_| Probe::default()).collect()
    }

    fn two_region_topo() -> Topology {
        TopologyBuilder::new()
            .intra_region_one_way(SimDuration::from_millis(5))
            .inter_region_one_way(SimDuration::from_millis(20))
            .region(2, None)
            .region(2, Some(0))
            .build()
            .unwrap()
    }

    #[test]
    fn latencies_respected_across_regions() {
        for shards in [1usize, 2] {
            let mut sim = ShardedSim::new(two_region_topo(), probes(4), 1, shards);
            assert_eq!(sim.shards(), shards);
            assert_eq!(sim.lookahead(), Some(SimDuration::from_millis(20)));
            sim.inject(NodeId(1), NodeId(0), 7, SimTime::ZERO);
            sim.run_until_quiescent(SimTime::from_secs(1));
            assert_eq!(sim.node(NodeId(1)).packets, vec![(SimTime::ZERO, NodeId(0), 7)]);
        }
    }

    /// Forwards a hop counter to a pseudo-random node (often crossing
    /// regions), exercising cross-region routing, per-node RNG streams,
    /// and mailbox merges.
    struct Gossiper {
        log: Vec<(SimTime, NodeId, u32)>,
    }

    impl SimNode for Gossiper {
        type Msg = u32;
        fn on_packet(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            self.log.push((ctx.now(), from, msg));
            if msg > 0 {
                let n = ctx.topology().node_count() as u32;
                let mut to = NodeId(ctx.rng().gen_range(0..n));
                if to == ctx.self_id() {
                    to = NodeId((to.0 + 1) % n);
                }
                ctx.send(to, msg - 1);
            }
        }
        fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: u64) {}
    }

    type Trace = Vec<Vec<(SimTime, NodeId, u32)>>;

    fn gossip_trace(shards: usize, seed: u64, loss: bool) -> (Trace, NetCounters) {
        let topo = presets::region_tree(4, 2, 2, SimDuration::from_millis(25));
        let n = topo.node_count();
        let nodes = (0..n).map(|_| Gossiper { log: Vec::new() }).collect();
        let mut sim = ShardedSim::new(topo, nodes, seed, shards);
        if loss {
            sim.set_unicast_loss(LossModel::Bernoulli { p: 0.2 });
        }
        sim.inject(NodeId(0), NodeId(3), 200, SimTime::ZERO);
        sim.inject(NodeId(9), NodeId(0), 150, SimTime::from_millis(3));
        sim.run_until_quiescent(SimTime::from_secs(60));
        let traces = (0..n as u32).map(|i| sim.node(NodeId(i)).log.clone()).collect();
        (traces, sim.counters())
    }

    #[test]
    fn gossip_traces_identical_across_shard_counts() {
        for seed in [1u64, 42, 99] {
            let one = gossip_trace(1, seed, true);
            for shards in [2usize, 3, 4, 7] {
                assert_eq!(one, gossip_trace(shards, seed, true), "shards={shards} seed={seed}");
            }
        }
    }

    /// Heavily skewed region sizes: one dominant region, a mid-sized one,
    /// and a tail of small ones — the regime where LPT and round-robin
    /// disagree maximally.
    fn skewed_topo() -> Topology {
        let mut b = TopologyBuilder::new()
            .intra_region_one_way(SimDuration::from_millis(5))
            .inter_region_one_way(SimDuration::from_millis(25))
            .region(13, None)
            .region(6, Some(0));
        for _ in 0..4 {
            b = b.region(2, Some(0));
        }
        b.build().unwrap()
    }

    fn skewed_gossip_trace(shards: usize, placement: ShardPlacement) -> (Trace, NetCounters) {
        let topo = skewed_topo();
        let n = topo.node_count();
        let nodes = (0..n).map(|_| Gossiper { log: Vec::new() }).collect();
        let mut sim = ShardedSim::with_placement(topo, nodes, 23, shards, placement);
        sim.set_unicast_loss(LossModel::Bernoulli { p: 0.15 });
        sim.inject(NodeId(0), NodeId(20), 250, SimTime::ZERO);
        sim.inject(NodeId(14), NodeId(2), 120, SimTime::from_millis(7));
        sim.run_until_quiescent(SimTime::from_secs(60));
        let traces = (0..n as u32).map(|i| sim.node(NodeId(i)).log.clone()).collect();
        (traces, sim.counters())
    }

    #[test]
    fn placement_is_trace_invariant_on_skewed_regions() {
        // LPT, round-robin, and the single-shard oracle must produce
        // byte-identical traces at every shard count: placement is a
        // load-balancing decision only.
        let oracle = skewed_gossip_trace(1, ShardPlacement::RoundRobin);
        for shards in [1usize, 2, 4] {
            for placement in [ShardPlacement::LoadAware, ShardPlacement::RoundRobin] {
                assert_eq!(
                    oracle,
                    skewed_gossip_trace(shards, placement),
                    "shards={shards} placement={placement:?}"
                );
            }
        }
    }

    #[test]
    fn lpt_placement_balances_skewed_regions() {
        let topo = skewed_topo(); // weights [13, 6, 2, 2, 2, 2]
        let lpt = partition_regions(&topo, 2, ShardPlacement::LoadAware);
        let rr = partition_regions(&topo, 2, ShardPlacement::RoundRobin);
        let load = |assign: &[u32]| {
            let mut load = vec![0usize; 2];
            for (r, &s) in assign.iter().enumerate() {
                load[s as usize] += topo.members_of(RegionId(r as u16)).len();
            }
            load
        };
        // LPT: 13 alone vs 6+2+2+2+2 = 14. Round-robin: 13+2+2 = 17 vs 10.
        assert_eq!(load(&lpt).iter().max(), Some(&14));
        assert_eq!(load(&rr).iter().max(), Some(&17));
        // Shard ids stay dense (ShardedSim sizes its state table from the
        // max id), and every region is assigned.
        for shards in 1..=6 {
            let assign = partition_regions(&topo, shards, ShardPlacement::LoadAware);
            assert_eq!(assign.len(), topo.region_count());
            let used: std::collections::BTreeSet<u32> = assign.iter().copied().collect();
            let expect: std::collections::BTreeSet<u32> = (0..shards as u32).collect();
            assert_eq!(used, expect, "shards={shards}");
        }
    }

    /// Fans out to the whole group on start; exercises cross-region
    /// fan-out splitting (local batch + mailbox per remote destination).
    struct GroupCaster {
        got: Vec<(SimTime, NodeId, u32)>,
    }

    impl SimNode for GroupCaster {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.self_id() == NodeId(0) {
                ctx.send_group(9);
            }
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            self.got.push((ctx.now(), from, msg));
        }
        fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: u64) {}
    }

    #[test]
    fn group_fanout_crosses_shards() {
        for shards in [1usize, 2, 4] {
            let topo = TopologyBuilder::new()
                .inter_region_one_way(SimDuration::from_millis(25))
                .region(3, None)
                .region(3, Some(0))
                .region(3, Some(0))
                .region(3, Some(1))
                .build()
                .unwrap();
            let nodes = (0..12).map(|_| GroupCaster { got: Vec::new() }).collect();
            let mut sim = ShardedSim::new(topo, nodes, 5, shards);
            sim.run_until_quiescent(SimTime::from_secs(1));
            let c = sim.counters();
            assert_eq!(c.unicasts_sent, 11, "shards={shards}");
            assert_eq!(c.delivered, 11, "shards={shards}");
            // Same-region destinations arrive at 5ms, the rest at 25ms.
            assert_eq!(sim.node(NodeId(1)).got, vec![(SimTime::from_millis(5), NodeId(0), 9)]);
            assert_eq!(sim.node(NodeId(11)).got, vec![(SimTime::from_millis(25), NodeId(0), 9)]);
        }
    }

    #[test]
    fn single_region_matches_plain_sim() {
        // No cross-region traffic and no loss draws: the sharded engine
        // and the single-queue engine see identical schedules.
        let run_sharded = || {
            let mut sim = ShardedSim::new(presets::paper_region(6), probes(6), 3, 4);
            assert_eq!(sim.shards(), 1, "single region clamps to one shard");
            sim.inject(NodeId(2), NodeId(0), 4, SimTime::from_millis(1));
            sim.schedule_external_timer(NodeId(5), 77, SimTime::from_millis(2));
            sim.run_until_quiescent(SimTime::from_secs(1));
            (sim.node(NodeId(2)).packets.clone(), sim.node(NodeId(5)).timers.clone())
        };
        let run_plain = || {
            let mut sim = Sim::new(presets::paper_region(6), probes(6), 3);
            sim.inject(NodeId(2), NodeId(0), 4, SimTime::from_millis(1));
            sim.schedule_external_timer(NodeId(5), 77, SimTime::from_millis(2));
            sim.run_until_quiescent(SimTime::from_secs(1));
            (sim.node(NodeId(2)).packets.clone(), sim.node(NodeId(5)).timers.clone())
        };
        assert_eq!(run_sharded(), run_plain());
    }

    #[test]
    fn run_until_advances_clock_exactly() {
        let mut sim = ShardedSim::new(two_region_topo(), probes(4), 8, 2);
        sim.inject(NodeId(1), NodeId(0), 1, SimTime::from_millis(10));
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(sim.now(), SimTime::from_millis(5));
        assert!(sim.node(NodeId(1)).packets.is_empty());
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.node(NodeId(1)).packets.len(), 1);
        assert_eq!(sim.now(), SimTime::from_millis(10));
    }

    #[test]
    fn clock_is_monotone_across_run_calls() {
        for shards in [1usize, 2] {
            let mut sim = ShardedSim::new(two_region_topo(), probes(4), 8, shards);
            sim.run_until(SimTime::from_millis(10));
            assert_eq!(sim.now(), SimTime::from_millis(10));
            // A run with an earlier horizon must not rewind the clock
            // (matching `Sim::run_until`).
            sim.run_until(SimTime::from_millis(5));
            assert_eq!(sim.now(), SimTime::from_millis(10), "shards={shards}");
            let end = sim.run_until_quiescent(SimTime::from_millis(3));
            assert_eq!(end, SimTime::from_millis(10), "shards={shards}");
        }
    }

    /// Panics on its first packet — the worker-failure path.
    struct Bomb;
    impl SimNode for Bomb {
        type Msg = u32;
        fn on_packet(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u32) {
            panic!("boom: node callback failed");
        }
        fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: u64) {}
    }

    #[test]
    #[should_panic(expected = "boom: node callback failed")]
    fn worker_panic_propagates_instead_of_deadlocking() {
        let nodes = (0..4).map(|_| Bomb).collect();
        let mut sim = ShardedSim::new(two_region_topo(), nodes, 1, 2);
        // Deliver into the second shard so a worker thread panics
        // mid-window; the coordinator must rethrow, not hang at the
        // barrier.
        sim.inject(NodeId(2), NodeId(0), 1, SimTime::from_millis(1));
        sim.run_until_quiescent(SimTime::from_secs(1));
    }

    #[test]
    fn reset_replays_identically() {
        let topo = presets::region_tree(3, 2, 1, SimDuration::from_millis(25));
        let n = topo.node_count();
        let mk = || (0..n).map(|_| Gossiper { log: Vec::new() }).collect::<Vec<_>>();
        let mut sim = ShardedSim::new(topo, mk(), 11, 3);
        sim.inject(NodeId(0), NodeId(1), 60, SimTime::ZERO);
        sim.run_until_quiescent(SimTime::from_secs(30));
        let first: Vec<_> = (0..n as u32).map(|i| sim.node(NodeId(i)).log.clone()).collect();
        let counters = sim.counters();
        sim.reset(mk(), 11);
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.counters(), NetCounters::default());
        sim.inject(NodeId(0), NodeId(1), 60, SimTime::ZERO);
        sim.run_until_quiescent(SimTime::from_secs(30));
        let second: Vec<_> = (0..n as u32).map(|i| sim.node(NodeId(i)).log.clone()).collect();
        assert_eq!(first, second);
        assert_eq!(counters, sim.counters());
    }

    #[test]
    fn drop_filter_applies_in_every_layout() {
        for shards in [1usize, 2] {
            let nodes = (0..4).map(|_| GroupCaster { got: Vec::new() }).collect();
            let mut sim = ShardedSim::new(two_region_topo(), nodes, 9, shards);
            sim.set_drop_filter(|_, to, _| to == NodeId(3));
            sim.run_until_quiescent(SimTime::from_secs(1));
            let c = sim.counters();
            assert_eq!(c.unicasts_sent, 3, "shards={shards}");
            assert_eq!(c.unicasts_dropped, 1, "shards={shards}");
            assert!(sim.node(NodeId(3)).got.is_empty());
            assert_eq!(sim.node(NodeId(2)).got.len(), 1);
        }
    }

    #[test]
    fn fault_blackout_applies_in_every_layout() {
        // Node 0 fans out to the group at t=0; the armed blackout cuts
        // the 0-3 link, so only node 3 misses out — identically at every
        // shard layout, and with the fault accounted separately from
        // base-model loss.
        let plan = Arc::new(FaultPlan::new(1).blackout(
            NodeId(0),
            NodeId(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ));
        for shards in [1usize, 2] {
            let nodes = (0..4).map(|_| GroupCaster { got: Vec::new() }).collect();
            let mut sim = ShardedSim::new(two_region_topo(), nodes, 9, shards);
            sim.set_fault_plan(Some(plan.clone()));
            sim.run_until_quiescent(SimTime::from_secs(1));
            let c = sim.counters();
            assert_eq!(c.unicasts_sent, 3, "shards={shards}");
            assert_eq!(c.unicasts_dropped, 1, "shards={shards}");
            assert_eq!(c.faults_dropped, 1, "shards={shards}");
            assert!(sim.node(NodeId(3)).got.is_empty());
            assert_eq!(sim.node(NodeId(2)).got.len(), 1);
        }
    }

    #[test]
    fn fault_duplication_arrives_twice_in_every_layout() {
        // A p=1 duplication episode with a 2ms extra delay: every
        // destination sees the packet twice, the copies 2ms apart, and
        // cross-region copies still respect the lookahead rule.
        let plan = Arc::new(FaultPlan::new(1).duplicate(
            1.0,
            SimDuration::from_millis(2),
            SimTime::ZERO,
            SimTime::from_secs(1),
        ));
        for shards in [1usize, 2] {
            let nodes = (0..4).map(|_| GroupCaster { got: Vec::new() }).collect();
            let mut sim = ShardedSim::new(two_region_topo(), nodes, 9, shards);
            sim.set_fault_plan(Some(plan.clone()));
            sim.run_until_quiescent(SimTime::from_secs(1));
            let c = sim.counters();
            assert_eq!(c.unicasts_sent, 3, "shards={shards}");
            assert_eq!(c.faults_duplicated, 3, "shards={shards}");
            assert_eq!(c.delivered, 6, "shards={shards}");
            // Same-region copy at 5ms + dup at 7ms; cross-region at 20ms + 22ms.
            assert_eq!(
                sim.node(NodeId(1)).got,
                vec![
                    (SimTime::from_millis(5), NodeId(0), 9),
                    (SimTime::from_millis(7), NodeId(0), 9)
                ],
                "shards={shards}"
            );
            assert_eq!(
                sim.node(NodeId(3)).got,
                vec![
                    (SimTime::from_millis(20), NodeId(0), 9),
                    (SimTime::from_millis(22), NodeId(0), 9)
                ],
                "shards={shards}"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use proptest::prelude::*;

    /// One scripted action: after `delay_us`, send `payload` to the
    /// `target`-th other node (unicast) or fan out to `fanout` successive
    /// nodes — targets freely cross region and shard boundaries.
    #[derive(Debug, Clone)]
    struct Step {
        delay_us: u64,
        target: u32,
        fanout: u8,
        payload: u32,
    }

    /// Replays its script one step per timer fire and logs every packet
    /// it receives — the observable `(time, seq)` pop order.
    struct ScriptNode {
        script: Vec<Step>,
        step: usize,
        log: Vec<(SimTime, NodeId, u32)>,
    }

    impl SimNode for ScriptNode {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if !self.script.is_empty() {
                ctx.set_timer(SimDuration::from_micros(self.script[0].delay_us), 0);
            }
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            self.log.push((ctx.now(), from, msg));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, _: u64) {
            let Some(step) = self.script.get(self.step).cloned() else { return };
            self.step += 1;
            let n = ctx.topology().node_count() as u32;
            let me = ctx.self_id();
            if step.fanout == 0 {
                let mut to = NodeId(step.target % n);
                if to == me {
                    to = NodeId((to.0 + 1) % n);
                }
                ctx.send(to, step.payload);
            } else {
                let targets: Vec<NodeId> = (0..u32::from(step.fanout) + 1)
                    .map(|k| NodeId((step.target + k) % n))
                    .filter(|&t| t != me)
                    .collect();
                ctx.send_many(targets, step.payload);
            }
            if let Some(next) = self.script.get(self.step) {
                ctx.set_timer(SimDuration::from_micros(next.delay_us), 0);
            }
        }
    }

    fn arb_step() -> impl Strategy<Value = Step> {
        (0u64..120_000, 0u32..64, 0u8..4, 0u32..1000).prop_map(
            |(delay_us, target, fanout, payload)| Step { delay_us, target, fanout, payload },
        )
    }

    fn arb_scripts() -> impl Strategy<Value = Vec<Vec<Step>>> {
        // 12 nodes over 4 regions (3 each); up to 6 steps per node.
        proptest::collection::vec(proptest::collection::vec(arb_step(), 0..6), 12..13)
    }

    type Trace = Vec<Vec<(SimTime, NodeId, u32)>>;

    fn run_scripts(scripts: &[Vec<Step>], shards: usize, lossy: bool) -> (Trace, NetCounters) {
        let topo = TopologyBuilder::new()
            .intra_region_one_way(SimDuration::from_millis(1))
            .inter_region_one_way(SimDuration::from_millis(10))
            .region(3, None)
            .region(3, Some(0))
            .region(3, Some(0))
            .region(3, Some(2))
            .build()
            .unwrap();
        let nodes = scripts
            .iter()
            .map(|s| ScriptNode { script: s.clone(), step: 0, log: Vec::new() })
            .collect();
        let mut sim = ShardedSim::new(topo, nodes, 4242, shards);
        if lossy {
            sim.set_unicast_loss(LossModel::Bernoulli { p: 0.25 });
        }
        sim.run_until_quiescent(SimTime::from_secs(5));
        let traces = (0..12u32).map(|i| sim.node(NodeId(i)).log.clone()).collect();
        (traces, sim.counters())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The satellite contract: random cross-region send scripts pop
        /// in identical `(time, seq)` order — observed as byte-identical
        /// per-node `(time, from, payload)` traces — under 1, 2, and 4
        /// shards, with and without unicast loss.
        #[test]
        fn mailbox_merge_is_layout_invariant(scripts in arb_scripts(), lossy in any::<bool>()) {
            let sequential = run_scripts(&scripts, 1, lossy);
            let two = run_scripts(&scripts, 2, lossy);
            prop_assert_eq!(&sequential, &two, "2 shards diverged");
            let four = run_scripts(&scripts, 4, lossy);
            prop_assert_eq!(&sequential, &four, "4 shards diverged");
        }
    }

    /// One randomized fault episode over the 4-region/12-node proptest
    /// topology. Ids and windows are normalized in `build_plan` so every
    /// generated value is a valid episode.
    #[derive(Debug, Clone)]
    enum FaultScript {
        Partition { a: u16, b_off: u16, start_ms: u64, len_ms: u64 },
        Blackout { a: u32, b_off: u32, start_ms: u64, len_ms: u64 },
        Stall { node: u32, start_ms: u64, len_ms: u64 },
        Crash { node: u32, at_ms: u64 },
        Burst { percent: u8, region: Option<u16>, start_ms: u64, len_ms: u64 },
        Dup { percent: u8, extra_ms: u64, start_ms: u64, len_ms: u64 },
    }

    fn arb_fault() -> impl Strategy<Value = FaultScript> {
        let win = || (0u64..3000, 1u64..1500);
        prop_oneof![
            (0u16..4, 0u16..3, win()).prop_map(|(a, b_off, (start_ms, len_ms))| {
                FaultScript::Partition { a, b_off, start_ms, len_ms }
            }),
            (0u32..12, 0u32..11, win()).prop_map(|(a, b_off, (start_ms, len_ms))| {
                FaultScript::Blackout { a, b_off, start_ms, len_ms }
            }),
            (0u32..12, win()).prop_map(|(node, (start_ms, len_ms))| FaultScript::Stall {
                node,
                start_ms,
                len_ms
            }),
            (0u32..12, 0u64..3000).prop_map(|(node, at_ms)| FaultScript::Crash { node, at_ms }),
            (0u8..=100, any::<bool>(), 0u16..4, win()).prop_map(
                |(percent, scoped, r, (start_ms, len_ms))| FaultScript::Burst {
                    percent,
                    region: scoped.then_some(r),
                    start_ms,
                    len_ms
                }
            ),
            (0u8..=100, 0u64..40, win()).prop_map(|(percent, extra_ms, (start_ms, len_ms))| {
                FaultScript::Dup { percent, extra_ms, start_ms, len_ms }
            }),
        ]
    }

    fn build_plan(seed: u64, events: &[FaultScript]) -> FaultPlan {
        use crate::fault::FaultPlan;
        let ms = SimTime::from_millis;
        let mut plan = FaultPlan::new(seed);
        for ev in events {
            plan = match *ev {
                FaultScript::Partition { a, b_off, start_ms, len_ms } => {
                    let b = (a + 1 + b_off) % 4;
                    plan.partition(RegionId(a), RegionId(b), ms(start_ms), ms(start_ms + len_ms))
                }
                FaultScript::Blackout { a, b_off, start_ms, len_ms } => {
                    let b = (a + 1 + b_off) % 12;
                    plan.blackout(NodeId(a), NodeId(b), ms(start_ms), ms(start_ms + len_ms))
                }
                FaultScript::Stall { node, start_ms, len_ms } => {
                    plan.stall(NodeId(node), ms(start_ms), ms(start_ms + len_ms))
                }
                FaultScript::Crash { node, at_ms } => plan.crash(NodeId(node), ms(at_ms)),
                FaultScript::Burst { percent, region, start_ms, len_ms } => plan.loss_burst(
                    f64::from(percent) / 100.0,
                    region.map(RegionId),
                    ms(start_ms),
                    ms(start_ms + len_ms),
                ),
                FaultScript::Dup { percent, extra_ms, start_ms, len_ms } => plan.duplicate(
                    f64::from(percent) / 100.0,
                    SimDuration::from_millis(extra_ms),
                    ms(start_ms),
                    ms(start_ms + len_ms),
                ),
            };
        }
        plan
    }

    fn run_scripts_faulted(
        scripts: &[Vec<Step>],
        plan: &FaultPlan,
        shards: usize,
        lossy: bool,
    ) -> (Trace, NetCounters) {
        let topo = TopologyBuilder::new()
            .intra_region_one_way(SimDuration::from_millis(1))
            .inter_region_one_way(SimDuration::from_millis(10))
            .region(3, None)
            .region(3, Some(0))
            .region(3, Some(0))
            .region(3, Some(2))
            .build()
            .unwrap();
        let nodes = scripts
            .iter()
            .map(|s| ScriptNode { script: s.clone(), step: 0, log: Vec::new() })
            .collect();
        let mut sim = ShardedSim::new(topo, nodes, 4242, shards);
        sim.set_fault_plan(Some(Arc::new(plan.clone())));
        if lossy {
            sim.set_unicast_loss(LossModel::Bernoulli { p: 0.25 });
        }
        sim.run_until_quiescent(SimTime::from_secs(5));
        let traces = (0..12u32).map(|i| sim.node(NodeId(i)).log.clone()).collect();
        (traces, sim.counters())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The fault-determinism contract: an armed random fault plan
        /// (partition/heal, blackout, stall, crash, burst, duplication
        /// scripts) leaves traces byte-identical under 1, 2, and 4
        /// shards — fault verdicts are pure functions of
        /// `(plan, send time, endpoints)`, so no layout can reorder them.
        #[test]
        fn fault_plans_are_layout_invariant(
            scripts in arb_scripts(),
            events in proptest::collection::vec(arb_fault(), 1..6),
            plan_seed in any::<u64>(),
            lossy in any::<bool>(),
        ) {
            let plan = build_plan(plan_seed, &events);
            let sequential = run_scripts_faulted(&scripts, &plan, 1, lossy);
            let two = run_scripts_faulted(&scripts, &plan, 2, lossy);
            prop_assert_eq!(&sequential, &two, "2 shards diverged under faults");
            let four = run_scripts_faulted(&scripts, &plan, 4, lossy);
            prop_assert_eq!(&sequential, &four, "4 shards diverged under faults");
        }
    }
}
