//! Packet-loss models.
//!
//! The paper's §4 experiments lose packets only on the **initial IP
//! multicast** — retransmission requests and repairs are assumed reliable.
//! [`LossModel`] covers that setup (via [`LossModel::None`] for control
//! traffic) plus richer models used by the ablation experiments:
//! independent per-packet loss, region-correlated loss (a whole region
//! missing a message, the paper's "regional loss"), and a two-state
//! Gilbert–Elliott bursty channel.

use rand::Rng;

use crate::topology::{NodeId, RegionId, Topology};

/// A stochastic packet-loss model.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Default)]
pub enum LossModel {
    /// No loss at all.
    #[default]
    None,
    /// Each packet is dropped independently with probability `p`.
    Bernoulli {
        /// Per-packet drop probability in `[0, 1]`.
        p: f64,
    },
    /// Loss correlated by region, modeling an upstream-link drop: with
    /// probability `p_region` the whole destination region misses the packet;
    /// otherwise each member independently misses it with `p_member`.
    RegionCorrelated {
        /// Probability an entire region misses a multicast.
        p_region: f64,
        /// Per-member drop probability when the region is reached.
        p_member: f64,
    },
    /// Two-state Gilbert–Elliott burst-loss channel (per receiver).
    GilbertElliott {
        /// Probability of transitioning Good→Bad per packet.
        p_good_to_bad: f64,
        /// Probability of transitioning Bad→Good per packet.
        p_bad_to_good: f64,
        /// Drop probability while in the Good state.
        loss_good: f64,
        /// Drop probability while in the Bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Whether a single unicast packet is dropped.
    ///
    /// For [`LossModel::RegionCorrelated`] this treats the packet as a
    /// single-destination transmission: it is dropped if either stage drops
    /// it. For Gilbert–Elliott callers should prefer a stateful
    /// [`GilbertElliottChannel`]; this stateless form uses the stationary
    /// distribution.
    pub fn drops_unicast<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        match *self {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.gen_bool(p.clamp(0.0, 1.0)),
            LossModel::RegionCorrelated { p_region, p_member } => {
                rng.gen_bool(p_region.clamp(0.0, 1.0)) || rng.gen_bool(p_member.clamp(0.0, 1.0))
            }
            LossModel::GilbertElliott { p_good_to_bad, p_bad_to_good, loss_good, loss_bad } => {
                // Stationary probability of being in the Bad state.
                let denom = p_good_to_bad + p_bad_to_good;
                let pi_bad = if denom == 0.0 { 0.0 } else { p_good_to_bad / denom };
                let p = pi_bad * loss_bad + (1.0 - pi_bad) * loss_good;
                rng.gen_bool(p.clamp(0.0, 1.0))
            }
        }
    }

    /// Computes the set of receivers that miss one multicast transmission.
    ///
    /// Returns a boolean per node (indexed by [`NodeId`]): `true` means the
    /// node **missed** the packet. The sender index (if among `receivers`)
    /// is never marked missed.
    pub fn multicast_outcome<R: Rng + ?Sized>(
        &self,
        topo: &Topology,
        sender: NodeId,
        rng: &mut R,
    ) -> Vec<bool> {
        let mut missed = vec![false; topo.node_count()];
        match *self {
            LossModel::None => {}
            LossModel::Bernoulli { p } => {
                let p = p.clamp(0.0, 1.0);
                for node in topo.nodes() {
                    if node != sender {
                        missed[node.index()] = rng.gen_bool(p);
                    }
                }
            }
            LossModel::RegionCorrelated { p_region, p_member } => {
                let p_region = p_region.clamp(0.0, 1.0);
                let p_member = p_member.clamp(0.0, 1.0);
                let sender_region = topo.region_of(sender);
                for region in topo.regions() {
                    // The sender's own region always receives the packet at
                    // the sender itself, so a whole-region drop there would
                    // be contradictory; skip region-level loss for it.
                    let region_lost = region.id != sender_region && rng.gen_bool(p_region);
                    for &m in &region.members {
                        if m == sender {
                            continue;
                        }
                        missed[m.index()] = region_lost || rng.gen_bool(p_member);
                    }
                }
            }
            LossModel::GilbertElliott { .. } => {
                for node in topo.nodes() {
                    if node != sender {
                        missed[node.index()] = self.drops_unicast(rng);
                    }
                }
            }
        }
        missed
    }
}

/// A stateful per-receiver Gilbert–Elliott channel.
///
/// Tracks the Good/Bad state across packets so losses are bursty, unlike the
/// stateless stationary approximation in [`LossModel::drops_unicast`].
#[derive(Debug, Clone)]
pub struct GilbertElliottChannel {
    p_good_to_bad: f64,
    p_bad_to_good: f64,
    loss_good: f64,
    loss_bad: f64,
    in_bad: bool,
}

impl GilbertElliottChannel {
    /// Creates a channel starting in the Good state.
    #[must_use]
    pub fn new(p_good_to_bad: f64, p_bad_to_good: f64, loss_good: f64, loss_bad: f64) -> Self {
        GilbertElliottChannel {
            p_good_to_bad: p_good_to_bad.clamp(0.0, 1.0),
            p_bad_to_good: p_bad_to_good.clamp(0.0, 1.0),
            loss_good: loss_good.clamp(0.0, 1.0),
            loss_bad: loss_bad.clamp(0.0, 1.0),
            in_bad: false,
        }
    }

    /// Advances the channel one packet and reports whether it was dropped.
    pub fn drops_next<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        if self.in_bad {
            if rng.gen_bool(self.p_bad_to_good) {
                self.in_bad = false;
            }
        } else if rng.gen_bool(self.p_good_to_bad) {
            self.in_bad = true;
        }
        let p = if self.in_bad { self.loss_bad } else { self.loss_good };
        rng.gen_bool(p)
    }

    /// Whether the channel is currently in the Bad state.
    #[must_use]
    pub fn is_bad(&self) -> bool {
        self.in_bad
    }
}

/// An explicit, non-random delivery plan for one multicast.
///
/// The paper's controlled experiments (Figs 6–9) fix the initial outcome
/// exactly — e.g. "exactly `k` members hold the message at time zero". A
/// `DeliveryPlan` expresses that: it lists which nodes receive the initial
/// multicast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryPlan {
    received: Vec<bool>,
}

impl DeliveryPlan {
    /// A plan in which every node in `topo` receives the packet.
    #[must_use]
    pub fn all(topo: &Topology) -> Self {
        DeliveryPlan { received: vec![true; topo.node_count()] }
    }

    /// A plan in which only `holders` receive the packet.
    #[must_use]
    pub fn only<I: IntoIterator<Item = NodeId>>(topo: &Topology, holders: I) -> Self {
        let mut received = vec![false; topo.node_count()];
        for n in holders {
            received[n.index()] = true;
        }
        DeliveryPlan { received }
    }

    /// A plan in which everyone **except** `missers` receives the packet.
    #[must_use]
    pub fn all_but<I: IntoIterator<Item = NodeId>>(topo: &Topology, missers: I) -> Self {
        let mut received = vec![true; topo.node_count()];
        for n in missers {
            received[n.index()] = false;
        }
        DeliveryPlan { received }
    }

    /// A plan in which every member of `region` misses the packet (the
    /// paper's "regional loss") and everyone else receives it.
    #[must_use]
    pub fn region_loss(topo: &Topology, region: RegionId) -> Self {
        let mut received = vec![true; topo.node_count()];
        for &m in topo.members_of(region) {
            received[m.index()] = false;
        }
        DeliveryPlan { received }
    }

    /// Draws a random plan from a [`LossModel`].
    pub fn from_model<R: Rng + ?Sized>(
        topo: &Topology,
        sender: NodeId,
        model: &LossModel,
        rng: &mut R,
    ) -> Self {
        let missed = model.multicast_outcome(topo, sender, rng);
        DeliveryPlan { received: missed.into_iter().map(|m| !m).collect() }
    }

    /// Whether `node` receives the packet under this plan.
    #[must_use]
    pub fn receives(&self, node: NodeId) -> bool {
        self.received.get(node.index()).copied().unwrap_or(false)
    }

    /// Marks `node` as receiving the packet.
    pub fn set_receives(&mut self, node: NodeId, receives: bool) {
        self.received[node.index()] = receives;
    }

    /// Number of nodes that receive the packet.
    #[must_use]
    pub fn holder_count(&self) -> usize {
        self.received.iter().filter(|&&r| r).count()
    }

    /// Iterator over the nodes that receive the packet.
    pub fn holders(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.received.iter().enumerate().filter(|(_, &r)| r).map(|(i, _)| NodeId(i as u32))
    }

    /// Iterator over the nodes that miss the packet.
    pub fn missers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.received.iter().enumerate().filter(|(_, &r)| !r).map(|(i, _)| NodeId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedSequence;
    use crate::time::SimDuration;
    use crate::topology::presets::paper_region;
    use crate::topology::TopologyBuilder;

    #[test]
    fn none_never_drops() {
        let mut rng = SeedSequence::new(1).rng_for(0);
        assert!(!LossModel::None.drops_unicast(&mut rng));
        let topo = paper_region(10);
        let missed = LossModel::None.multicast_outcome(&topo, NodeId(0), &mut rng);
        assert!(missed.iter().all(|&m| !m));
    }

    #[test]
    fn bernoulli_rate_is_plausible() {
        let mut rng = SeedSequence::new(2).rng_for(0);
        let model = LossModel::Bernoulli { p: 0.3 };
        let drops = (0..10_000).filter(|_| model.drops_unicast(&mut rng)).count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate} too far from 0.3");
    }

    #[test]
    fn multicast_never_drops_sender() {
        let topo = paper_region(50);
        let mut rng = SeedSequence::new(3).rng_for(0);
        let model = LossModel::Bernoulli { p: 0.99 };
        for _ in 0..20 {
            let missed = model.multicast_outcome(&topo, NodeId(7), &mut rng);
            assert!(!missed[7]);
        }
    }

    #[test]
    fn region_correlated_drops_whole_regions() {
        let topo = TopologyBuilder::new()
            .inter_region_one_way(SimDuration::from_millis(25))
            .region(5, None)
            .region(5, Some(0))
            .build()
            .unwrap();
        let model = LossModel::RegionCorrelated { p_region: 1.0, p_member: 0.0 };
        let mut rng = SeedSequence::new(4).rng_for(0);
        let missed = model.multicast_outcome(&topo, NodeId(0), &mut rng);
        // Sender's region (nodes 0..5) receives; region 1 (nodes 5..10) all miss.
        assert!(missed[..5].iter().all(|&m| !m));
        assert!(missed[5..].iter().all(|&m| m));
    }

    #[test]
    fn gilbert_elliott_bursts() {
        let mut rng = SeedSequence::new(5).rng_for(0);
        // Bad state drops everything and is sticky; we should observe runs.
        let mut ch = GilbertElliottChannel::new(0.05, 0.2, 0.0, 1.0);
        let outcomes: Vec<bool> = (0..5_000).map(|_| ch.drops_next(&mut rng)).collect();
        let drops = outcomes.iter().filter(|&&d| d).count();
        assert!(drops > 0, "bursty channel should drop something");
        // Expected stationary loss = pi_bad = 0.05/0.25 = 0.2.
        let rate = drops as f64 / 5_000.0;
        assert!((rate - 0.2).abs() < 0.06, "rate {rate} too far from 0.2");
        // Bursts: P(drop | previous drop) should exceed the marginal rate.
        let mut pairs = 0usize;
        let mut both = 0usize;
        for w in outcomes.windows(2) {
            if w[0] {
                pairs += 1;
                if w[1] {
                    both += 1;
                }
            }
        }
        let cond = both as f64 / pairs as f64;
        assert!(cond > rate, "losses should be bursty: P(d|d)={cond} rate={rate}");
    }

    #[test]
    fn delivery_plan_constructors() {
        let topo = paper_region(6);
        let all = DeliveryPlan::all(&topo);
        assert_eq!(all.holder_count(), 6);

        let only = DeliveryPlan::only(&topo, [NodeId(1), NodeId(3)]);
        assert_eq!(only.holder_count(), 2);
        assert!(only.receives(NodeId(1)));
        assert!(!only.receives(NodeId(0)));
        assert_eq!(only.missers().count(), 4);

        let all_but = DeliveryPlan::all_but(&topo, [NodeId(2)]);
        assert_eq!(all_but.holder_count(), 5);
        assert!(!all_but.receives(NodeId(2)));
    }

    #[test]
    fn delivery_plan_region_loss() {
        let topo = TopologyBuilder::new().region(3, None).region(4, Some(0)).build().unwrap();
        let plan = DeliveryPlan::region_loss(&topo, RegionId(1));
        assert_eq!(plan.holder_count(), 3);
        assert!(plan.missers().all(|n| topo.region_of(n) == RegionId(1)));
    }

    #[test]
    fn delivery_plan_from_model_respects_sender() {
        let topo = paper_region(20);
        let mut rng = SeedSequence::new(6).rng_for(0);
        let plan =
            DeliveryPlan::from_model(&topo, NodeId(4), &LossModel::Bernoulli { p: 1.0 }, &mut rng);
        assert_eq!(plan.holder_count(), 1);
        assert!(plan.receives(NodeId(4)));
    }
}
