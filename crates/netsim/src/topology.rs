//! Network topology: nodes, regions, the error-recovery hierarchy, and
//! latency models.
//!
//! RRMP's system model (paper §2.1) groups receivers into *local regions*
//! organized into a hierarchy by distance from the sender: every region has
//! at most one *parent region* (its least upstream region), and the sender's
//! region is the root. [`Topology`] captures that structure plus a latency
//! model; it is shared by the simulator driver, the membership substrate,
//! and the experiment harness.

use crate::time::SimDuration;

/// Identifies a node (a group member). Dense indices starting at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

/// Identifies a region. Dense indices starting at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RegionId(pub u16);

impl NodeId {
    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RegionId {
    /// The dense index of this region.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A region in the error-recovery hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RegionSpec {
    /// This region's id.
    pub id: RegionId,
    /// The parent (least upstream) region, or `None` for the root region.
    pub parent: Option<RegionId>,
    /// Members of the region, in ascending [`NodeId`] order.
    pub members: Vec<NodeId>,
}

/// Pairwise one-way latency model.
///
/// The paper's simulations use a constant 10 ms round-trip within a region
/// ([`LatencyModel::RegionBased`] with `intra_one_way` = 5 ms) and
/// substantially larger inter-region latencies.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LatencyModel {
    /// The same one-way latency between every pair of distinct nodes.
    Uniform {
        /// One-way latency between any two distinct nodes.
        one_way: SimDuration,
    },
    /// One latency within a region, another between regions.
    RegionBased {
        /// One-way latency between two nodes in the same region.
        intra_one_way: SimDuration,
        /// One-way latency between nodes in different regions.
        inter_one_way: SimDuration,
    },
    /// Per-region-pair one-way latencies; entry `[i][j]` is the one-way
    /// latency from region `i` to region `j`. The diagonal holds the
    /// intra-region latency.
    Matrix {
        /// Row-major square matrix indexed by region.
        regions: Vec<Vec<SimDuration>>,
    },
}

impl LatencyModel {
    /// One-way latency from `from` to `to` given their regions.
    ///
    /// # Panics
    ///
    /// Panics if a [`LatencyModel::Matrix`] is missing an entry for the
    /// requested region pair.
    #[must_use]
    pub fn one_way(&self, from_region: RegionId, to_region: RegionId) -> SimDuration {
        match self {
            LatencyModel::Uniform { one_way } => *one_way,
            LatencyModel::RegionBased { intra_one_way, inter_one_way } => {
                if from_region == to_region {
                    *intra_one_way
                } else {
                    *inter_one_way
                }
            }
            LatencyModel::Matrix { regions } => regions[from_region.index()][to_region.index()],
        }
    }
}

/// Errors produced while building or validating a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A region was declared with zero members.
    EmptyRegion(RegionId),
    /// A parent reference points at an undeclared region.
    UnknownParent {
        /// The region with the dangling reference.
        region: RegionId,
        /// The referenced, undeclared parent.
        parent: RegionId,
    },
    /// The parent graph contains a cycle, so it is not a hierarchy.
    CyclicHierarchy(RegionId),
    /// The latency matrix does not cover every region pair.
    BadLatencyMatrix,
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::EmptyRegion(r) => write!(f, "region {r} has no members"),
            TopologyError::UnknownParent { region, parent } => {
                write!(f, "region {region} references unknown parent {parent}")
            }
            TopologyError::CyclicHierarchy(r) => {
                write!(f, "parent chain starting at region {r} contains a cycle")
            }
            TopologyError::BadLatencyMatrix => {
                write!(f, "latency matrix does not cover every region pair")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A validated topology: regions, hierarchy, node→region mapping, latency.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Topology {
    regions: Vec<RegionSpec>,
    node_region: Vec<RegionId>,
    latency: LatencyModel,
}

impl Topology {
    /// Builds a topology from regions and a latency model.
    ///
    /// Nodes are implicitly numbered: the builder assigns dense
    /// [`NodeId`]s region by region.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if a region is empty, a parent reference
    /// dangles, the hierarchy is cyclic, or the latency matrix is malformed.
    pub fn new(regions: Vec<RegionSpec>, latency: LatencyModel) -> Result<Self, TopologyError> {
        let n_regions = regions.len();
        let mut node_region: Vec<(NodeId, RegionId)> = Vec::new();
        for spec in &regions {
            if spec.members.is_empty() {
                return Err(TopologyError::EmptyRegion(spec.id));
            }
            if let Some(parent) = spec.parent {
                if parent.index() >= n_regions {
                    return Err(TopologyError::UnknownParent { region: spec.id, parent });
                }
            }
            for &m in &spec.members {
                node_region.push((m, spec.id));
            }
        }
        // Detect cycles by walking each parent chain with a step budget.
        for spec in &regions {
            let mut hops = 0usize;
            let mut cur = spec.parent;
            while let Some(p) = cur {
                hops += 1;
                if hops > n_regions {
                    return Err(TopologyError::CyclicHierarchy(spec.id));
                }
                cur = regions[p.index()].parent;
            }
        }
        if let LatencyModel::Matrix { regions: m } = &latency {
            if m.len() != n_regions || m.iter().any(|row| row.len() != n_regions) {
                return Err(TopologyError::BadLatencyMatrix);
            }
        }
        node_region.sort_by_key(|(n, _)| *n);
        debug_assert!(
            node_region.windows(2).all(|w| w[0].0 .0 + 1 == w[1].0 .0),
            "node ids must be dense"
        );
        let node_region = node_region.into_iter().map(|(_, r)| r).collect();
        Ok(Topology { regions, node_region, latency })
    }

    /// Number of nodes in the whole group.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_region.len()
    }

    /// Number of regions.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// All regions, in id order.
    pub fn regions(&self) -> impl Iterator<Item = &RegionSpec> + '_ {
        self.regions.iter()
    }

    /// The region `node` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn region_of(&self, node: NodeId) -> RegionId {
        self.node_region[node.index()]
    }

    /// The members of `region`, in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    #[must_use]
    pub fn members_of(&self, region: RegionId) -> &[NodeId] {
        &self.regions[region.index()].members
    }

    /// The parent region of `region` in the error-recovery hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    #[must_use]
    pub fn parent_of(&self, region: RegionId) -> Option<RegionId> {
        self.regions[region.index()].parent
    }

    /// One-way latency from node `from` to node `to`.
    #[must_use]
    pub fn one_way_latency(&self, from: NodeId, to: NodeId) -> SimDuration {
        self.latency.one_way(self.region_of(from), self.region_of(to))
    }

    /// Round-trip latency between `a` and `b`.
    #[must_use]
    pub fn rtt(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.one_way_latency(a, b) + self.one_way_latency(b, a)
    }

    /// The latency model.
    #[must_use]
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// The conservative-parallelism **lookahead**: the minimum one-way
    /// latency between any two *distinct* regions, or `None` for a
    /// single-region topology (which has no inter-region traffic at all).
    ///
    /// This is the window length of the sharded simulator
    /// ([`crate::shard::ShardedSim`]): a shard that has processed every
    /// event before `t + lookahead` cannot receive a cross-region packet
    /// earlier than that, so shards may advance through `[t, t+lookahead)`
    /// without synchronizing.
    #[must_use]
    pub fn lookahead(&self) -> Option<SimDuration> {
        if self.region_count() <= 1 {
            return None;
        }
        match &self.latency {
            LatencyModel::Uniform { one_way } => Some(*one_way),
            LatencyModel::RegionBased { inter_one_way, .. } => Some(*inter_one_way),
            LatencyModel::Matrix { regions } => regions
                .iter()
                .enumerate()
                .flat_map(|(i, row)| {
                    row.iter().enumerate().filter(move |(j, _)| *j != i).map(|(_, d)| *d)
                })
                .min(),
        }
    }
}

/// Incremental builder for [`Topology`].
///
/// ```
/// use rrmp_netsim::topology::TopologyBuilder;
/// use rrmp_netsim::time::SimDuration;
///
/// // Three regions as in Figure 1 of the paper: region 0 (the sender's)
/// // is the parent of regions 1 and 2.
/// let topo = TopologyBuilder::new()
///     .intra_region_one_way(SimDuration::from_millis(5))
///     .inter_region_one_way(SimDuration::from_millis(25))
///     .region(4, None)
///     .region(4, Some(0))
///     .region(4, Some(0))
///     .build()?;
/// assert_eq!(topo.node_count(), 12);
/// # Ok::<(), rrmp_netsim::topology::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    sizes: Vec<(usize, Option<usize>)>,
    intra: SimDuration,
    inter: SimDuration,
    matrix: Option<Vec<Vec<SimDuration>>>,
}

impl TopologyBuilder {
    /// Starts a builder with the paper's default latencies: 5 ms one-way
    /// within a region (10 ms RTT) and 25 ms one-way between regions.
    #[must_use]
    pub fn new() -> Self {
        TopologyBuilder {
            sizes: Vec::new(),
            intra: SimDuration::from_millis(5),
            inter: SimDuration::from_millis(25),
            matrix: None,
        }
    }

    /// Sets the one-way intra-region latency.
    #[must_use]
    pub fn intra_region_one_way(mut self, d: SimDuration) -> Self {
        self.intra = d;
        self
    }

    /// Sets the one-way inter-region latency.
    #[must_use]
    pub fn inter_region_one_way(mut self, d: SimDuration) -> Self {
        self.inter = d;
        self
    }

    /// Uses an explicit per-region-pair latency matrix instead of the
    /// intra/inter pair.
    #[must_use]
    pub fn latency_matrix(mut self, matrix: Vec<Vec<SimDuration>>) -> Self {
        self.matrix = Some(matrix);
        self
    }

    /// Appends a region with `size` members whose parent is the
    /// `parent`-th declared region (`None` for the root).
    #[must_use]
    pub fn region(mut self, size: usize, parent: Option<usize>) -> Self {
        self.sizes.push((size, parent));
        self
    }

    /// Builds the topology, assigning dense node ids region by region.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if validation fails (empty region,
    /// dangling parent, cyclic hierarchy, malformed matrix).
    pub fn build(self) -> Result<Topology, TopologyError> {
        let mut regions = Vec::with_capacity(self.sizes.len());
        let mut next_node = 0u32;
        for (idx, (size, parent)) in self.sizes.iter().enumerate() {
            let members = (0..*size)
                .map(|_| {
                    let id = NodeId(next_node);
                    next_node += 1;
                    id
                })
                .collect();
            regions.push(RegionSpec {
                id: RegionId(idx as u16),
                parent: parent.map(|p| RegionId(p as u16)),
                members,
            });
        }
        let latency = match self.matrix {
            Some(m) => LatencyModel::Matrix { regions: m },
            None => {
                LatencyModel::RegionBased { intra_one_way: self.intra, inter_one_way: self.inter }
            }
        };
        Topology::new(regions, latency)
    }
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience constructors matching the paper's experimental setups.
pub mod presets {
    use super::*;

    /// A single region with `n` members and the paper's §4 parameters:
    /// 10 ms round-trip between any two members (5 ms one-way).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn paper_region(n: usize) -> Topology {
        TopologyBuilder::new()
            .intra_region_one_way(SimDuration::from_millis(5))
            .region(n, None)
            .build()
            .expect("a non-empty single region is always valid")
    }

    /// The three-region hierarchy of the paper's Figure 1: the sender's
    /// region 0 is the parent of region 1; region 1 is the parent of
    /// region 2.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero.
    #[must_use]
    pub fn figure1_chain(sizes: [usize; 3], inter_one_way: SimDuration) -> Topology {
        TopologyBuilder::new()
            .inter_region_one_way(inter_one_way)
            .region(sizes[0], None)
            .region(sizes[1], Some(0))
            .region(sizes[2], Some(1))
            .build()
            .expect("non-empty chain hierarchy is always valid")
    }

    /// A balanced tree of regions: the root region plus `fanout` children
    /// per region for `depth` levels, each with `region_size` members.
    ///
    /// # Panics
    ///
    /// Panics if `region_size` is zero.
    #[must_use]
    pub fn region_tree(
        region_size: usize,
        fanout: usize,
        depth: usize,
        inter_one_way: SimDuration,
    ) -> Topology {
        let mut builder = TopologyBuilder::new().inter_region_one_way(inter_one_way);
        builder = builder.region(region_size, None);
        let mut frontier = vec![0usize];
        let mut next_idx = 1usize;
        for _ in 0..depth {
            let mut next_frontier = Vec::new();
            for &parent in &frontier {
                for _ in 0..fanout {
                    builder = builder.region(region_size, Some(parent));
                    next_frontier.push(next_idx);
                    next_idx += 1;
                }
            }
            frontier = next_frontier;
        }
        builder.build().expect("non-empty tree hierarchy is always valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let topo = TopologyBuilder::new().region(3, None).region(2, Some(0)).build().unwrap();
        assert_eq!(topo.node_count(), 5);
        assert_eq!(topo.region_count(), 2);
        assert_eq!(topo.members_of(RegionId(0)), &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(topo.members_of(RegionId(1)), &[NodeId(3), NodeId(4)]);
        assert_eq!(topo.region_of(NodeId(4)), RegionId(1));
        assert_eq!(topo.parent_of(RegionId(1)), Some(RegionId(0)));
        assert_eq!(topo.parent_of(RegionId(0)), None);
    }

    #[test]
    fn latency_region_based() {
        let topo = TopologyBuilder::new()
            .intra_region_one_way(SimDuration::from_millis(5))
            .inter_region_one_way(SimDuration::from_millis(30))
            .region(2, None)
            .region(2, Some(0))
            .build()
            .unwrap();
        assert_eq!(topo.one_way_latency(NodeId(0), NodeId(1)), SimDuration::from_millis(5));
        assert_eq!(topo.one_way_latency(NodeId(0), NodeId(2)), SimDuration::from_millis(30));
        assert_eq!(topo.rtt(NodeId(0), NodeId(1)), SimDuration::from_millis(10));
        assert_eq!(topo.rtt(NodeId(1), NodeId(3)), SimDuration::from_millis(60));
    }

    #[test]
    fn latency_matrix() {
        let ms = SimDuration::from_millis;
        let topo = TopologyBuilder::new()
            .latency_matrix(vec![vec![ms(5), ms(20)], vec![ms(40), ms(5)]])
            .region(1, None)
            .region(1, Some(0))
            .build()
            .unwrap();
        assert_eq!(topo.one_way_latency(NodeId(0), NodeId(1)), ms(20));
        assert_eq!(topo.one_way_latency(NodeId(1), NodeId(0)), ms(40));
        assert_eq!(topo.rtt(NodeId(0), NodeId(1)), ms(60));
    }

    #[test]
    fn rejects_empty_region() {
        let err = TopologyBuilder::new().region(0, None).build().unwrap_err();
        assert_eq!(err, TopologyError::EmptyRegion(RegionId(0)));
    }

    #[test]
    fn rejects_dangling_parent() {
        let err = TopologyBuilder::new().region(1, Some(5)).build().unwrap_err();
        assert!(matches!(err, TopologyError::UnknownParent { .. }));
    }

    #[test]
    fn rejects_cycle() {
        // Hand-build a cyclic hierarchy: r0 -> r1 -> r0.
        let regions = vec![
            RegionSpec { id: RegionId(0), parent: Some(RegionId(1)), members: vec![NodeId(0)] },
            RegionSpec { id: RegionId(1), parent: Some(RegionId(0)), members: vec![NodeId(1)] },
        ];
        let err =
            Topology::new(regions, LatencyModel::Uniform { one_way: SimDuration::from_millis(1) })
                .unwrap_err();
        assert!(matches!(err, TopologyError::CyclicHierarchy(_)));
    }

    #[test]
    fn rejects_bad_matrix() {
        let err = TopologyBuilder::new()
            .latency_matrix(vec![vec![SimDuration::from_millis(5)]])
            .region(1, None)
            .region(1, Some(0))
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::BadLatencyMatrix);
    }

    #[test]
    fn preset_paper_region() {
        let topo = presets::paper_region(100);
        assert_eq!(topo.node_count(), 100);
        assert_eq!(topo.rtt(NodeId(0), NodeId(99)), SimDuration::from_millis(10));
    }

    #[test]
    fn preset_figure1_chain() {
        let topo = presets::figure1_chain([3, 4, 5], SimDuration::from_millis(25));
        assert_eq!(topo.region_count(), 3);
        assert_eq!(topo.parent_of(RegionId(2)), Some(RegionId(1)));
        assert_eq!(topo.node_count(), 12);
    }

    #[test]
    fn preset_region_tree() {
        let topo = presets::region_tree(10, 2, 2, SimDuration::from_millis(25));
        // 1 root + 2 children + 4 grandchildren = 7 regions.
        assert_eq!(topo.region_count(), 7);
        assert_eq!(topo.node_count(), 70);
        // Every non-root region has a parent.
        let orphans = topo.regions().filter(|r| r.parent.is_none()).count();
        assert_eq!(orphans, 1);
    }

    #[test]
    fn lookahead_is_min_inter_region_latency() {
        // Single region: no inter-region traffic, no lookahead.
        assert_eq!(presets::paper_region(4).lookahead(), None);
        // Region-based: the inter-region latency.
        let topo = TopologyBuilder::new()
            .inter_region_one_way(SimDuration::from_millis(25))
            .region(2, None)
            .region(2, Some(0))
            .build()
            .unwrap();
        assert_eq!(topo.lookahead(), Some(SimDuration::from_millis(25)));
        // Matrix: the minimum off-diagonal entry (diagonals excluded).
        let ms = SimDuration::from_millis;
        let topo = TopologyBuilder::new()
            .latency_matrix(vec![
                vec![ms(1), ms(30), ms(40)],
                vec![ms(12), ms(1), ms(50)],
                vec![ms(60), ms(70), ms(1)],
            ])
            .region(1, None)
            .region(1, Some(0))
            .region(1, Some(0))
            .build()
            .unwrap();
        assert_eq!(topo.lookahead(), Some(ms(12)));
        // Uniform applies between regions too.
        let regions = vec![
            RegionSpec { id: RegionId(0), parent: None, members: vec![NodeId(0)] },
            RegionSpec { id: RegionId(1), parent: Some(RegionId(0)), members: vec![NodeId(1)] },
        ];
        let topo = Topology::new(regions, LatencyModel::Uniform { one_way: ms(7) }).unwrap();
        assert_eq!(topo.lookahead(), Some(ms(7)));
    }

    #[test]
    fn error_display_nonempty() {
        let e = TopologyError::EmptyRegion(RegionId(3));
        assert!(!format!("{e}").is_empty());
    }
}
