//! Structured event tracing for simulations.
//!
//! Experiments and tests attach a [`TraceRecorder`] to protocol nodes to
//! capture a totally ordered log of interesting protocol-level events
//! (receipt, buffering transitions, requests, repairs). Determinism tests
//! compare whole traces; experiment harnesses aggregate them into the
//! paper's figures.

use std::collections::BTreeMap;

use crate::time::SimTime;
use crate::topology::NodeId;

/// One recorded protocol event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event happened.
    pub at: SimTime,
    /// The node it happened on.
    pub node: NodeId,
    /// Event category (static so traces stay cheap), e.g. `"data_received"`.
    pub kind: &'static str,
    /// Free-form detail, e.g. a message id rendered as text.
    pub detail: String,
}

/// An append-only log of [`TraceEntry`] values plus per-kind counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceRecorder {
    entries: Vec<TraceEntry>,
    counters: BTreeMap<&'static str, u64>,
    enabled: bool,
}

impl TraceRecorder {
    /// Creates a recorder that keeps full entries.
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder { entries: Vec::new(), counters: BTreeMap::new(), enabled: true }
    }

    /// Creates a recorder that keeps only counters (no per-event storage) —
    /// cheaper for long experiment sweeps.
    #[must_use]
    pub fn counters_only() -> Self {
        TraceRecorder { entries: Vec::new(), counters: BTreeMap::new(), enabled: false }
    }

    /// Records an event.
    pub fn record(
        &mut self,
        at: SimTime,
        node: NodeId,
        kind: &'static str,
        detail: impl Into<String>,
    ) {
        *self.counters.entry(kind).or_insert(0) += 1;
        if self.enabled {
            self.entries.push(TraceEntry { at, node, kind, detail: detail.into() });
        }
    }

    /// Increments a counter without storing an entry.
    pub fn bump(&mut self, kind: &'static str) {
        *self.counters.entry(kind).or_insert(0) += 1;
    }

    /// All recorded entries in order.
    #[must_use]
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// The value of counter `kind` (0 if never recorded).
    #[must_use]
    pub fn counter(&self, kind: &str) -> u64 {
        self.counters.get(kind).copied().unwrap_or(0)
    }

    /// All counters, sorted by kind.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    /// Entries of a given kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    /// Merges another recorder's counters and entries into this one,
    /// keeping entries sorted by time (stable).
    pub fn merge(&mut self, other: &TraceRecorder) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        self.entries.extend(other.entries.iter().cloned());
        self.entries.sort_by_key(|e| (e.at, e.node));
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn records_and_counts() {
        let mut tr = TraceRecorder::new();
        tr.record(t(1), NodeId(0), "data_received", "m1");
        tr.record(t(2), NodeId(1), "data_received", "m1");
        tr.record(t(3), NodeId(0), "repair_sent", "m1");
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.counter("data_received"), 2);
        assert_eq!(tr.counter("repair_sent"), 1);
        assert_eq!(tr.counter("missing"), 0);
        assert_eq!(tr.of_kind("data_received").count(), 2);
    }

    #[test]
    fn counters_only_mode_stores_nothing() {
        let mut tr = TraceRecorder::counters_only();
        tr.record(t(1), NodeId(0), "x", "d");
        assert!(tr.is_empty());
        assert_eq!(tr.counter("x"), 1);
    }

    #[test]
    fn bump_only_counts() {
        let mut tr = TraceRecorder::new();
        tr.bump("k");
        tr.bump("k");
        assert_eq!(tr.counter("k"), 2);
        assert!(tr.is_empty());
    }

    #[test]
    fn merge_combines_sorted() {
        let mut a = TraceRecorder::new();
        a.record(t(5), NodeId(0), "x", "");
        let mut b = TraceRecorder::new();
        b.record(t(1), NodeId(1), "x", "");
        b.record(t(9), NodeId(1), "y", "");
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.counter("x"), 2);
        assert_eq!(a.counter("y"), 1);
        let times: Vec<u64> = a.entries().iter().map(|e| e.at.as_micros()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }
}
