//! The discrete-event simulator driver.
//!
//! A [`Sim`] owns a set of user-defined nodes (anything implementing
//! [`SimNode`]), a [`Topology`], and an event queue. Nodes interact with the
//! world exclusively through a [`Ctx`] handed to their callbacks: sending
//! packets (delivered after the topology's latency, subject to an optional
//! loss model or deterministic drop filter) and setting timers.
//!
//! Determinism: all randomness is derived from the seed passed to
//! [`Sim::new`]; events at equal instants fire in scheduling order. Running
//! the same simulation twice produces byte-identical traces.

use std::collections::HashSet;

use rand::rngs::StdRng;

use crate::event::EventQueue;
use crate::loss::{DeliveryPlan, LossModel};
use crate::rng::SeedSequence;
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology};

/// A handle for cancelling a pending timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// Application logic hosted on a simulated node.
///
/// Implementations receive packets and timer expirations and react through
/// the [`Ctx`]. All callbacks are synchronous; the simulator is
/// single-threaded and deterministic.
pub trait SimNode {
    /// The packet type exchanged between nodes.
    type Msg: Clone;

    /// Called once before the first event is processed.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a packet from `from` arrives.
    fn on_packet(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set through [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, token: u64);
}

/// Buffered side effects produced during one callback.
enum Op<M> {
    Send { to: NodeId, msg: M },
    SetTimer { id: u64, token: u64, at: SimTime },
    Cancel { id: u64 },
}

/// The execution context handed to node callbacks.
///
/// Provides the current time, the node's own identity and RNG, the shared
/// topology, and the means to send packets and set timers.
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: NodeId,
    topo: &'a Topology,
    rng: &'a mut StdRng,
    ops: Vec<Op<M>>,
    next_timer_id: &'a mut u64,
}

impl<'a, M> Ctx<'a, M> {
    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node whose callback is running.
    #[must_use]
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// The shared network topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// This node's deterministic random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `msg` to `to`; it arrives after the topology's one-way latency
    /// unless the simulator's loss model or drop filter discards it.
    pub fn send(&mut self, to: NodeId, msg: M) {
        debug_assert_ne!(to, self.self_id, "protocol bug: node sent a packet to itself");
        self.ops.push(Op::Send { to, msg });
    }

    /// Sends a copy of `msg` to every node in `to` (loss applies per copy).
    pub fn send_all<I: IntoIterator<Item = NodeId>>(&mut self, to: I, msg: M)
    where
        M: Clone,
    {
        for node in to {
            if node != self.self_id {
                self.send(node, msg.clone());
            }
        }
    }

    /// Schedules `token` to fire on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        let id = *self.next_timer_id;
        *self.next_timer_id += 1;
        self.ops.push(Op::SetTimer { id, token, at: self.now + delay });
        TimerId(id)
    }

    /// Cancels a previously set timer. Cancelling an already-fired timer is
    /// a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.ops.push(Op::Cancel { id: id.0 });
    }
}

enum SimEvent<M> {
    Deliver { to: NodeId, from: NodeId, msg: M },
    Timer { node: NodeId, token: u64, id: u64 },
}

/// Aggregate network-level counters for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Unicast packets handed to the network.
    pub unicasts_sent: u64,
    /// Unicast packets discarded by the loss model or drop filter.
    pub unicasts_dropped: u64,
    /// Packets delivered to nodes.
    pub delivered: u64,
    /// Timers set.
    pub timers_set: u64,
    /// Timers fired (excluding cancelled ones).
    pub timers_fired: u64,
    /// Total events processed.
    pub events_processed: u64,
}

/// The deterministic discrete-event simulator.
///
/// ```
/// use rrmp_netsim::sim::{Sim, SimNode, Ctx};
/// use rrmp_netsim::topology::{presets, NodeId};
/// use rrmp_netsim::time::{SimTime, SimDuration};
///
/// // Each node forwards a counter to the next node until it reaches 3.
/// struct Relay;
/// impl SimNode for Relay {
///     type Msg = u32;
///     fn on_packet(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
///         if msg < 3 {
///             let next = NodeId((ctx.self_id().0 + 1) % 4);
///             ctx.send(next, msg + 1);
///         }
///     }
///     fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32>, _token: u64) {}
/// }
///
/// let topo = presets::paper_region(4);
/// let mut sim = Sim::new(topo, (0..4).map(|_| Relay).collect(), 42);
/// sim.inject(NodeId(1), NodeId(0), 1, SimTime::ZERO);
/// let end = sim.run_until_quiescent(SimTime::from_secs(1));
/// // Two hops of 5ms each after the injected packet.
/// assert_eq!(end, SimTime::from_millis(10));
/// ```
pub struct Sim<N: SimNode> {
    topo: Topology,
    nodes: Vec<N>,
    rngs: Vec<StdRng>,
    queue: EventQueue<SimEvent<N::Msg>>,
    now: SimTime,
    cancelled: HashSet<u64>,
    next_timer_id: u64,
    unicast_loss: LossModel,
    loss_rng: StdRng,
    counters: NetCounters,
    #[allow(clippy::type_complexity)]
    drop_filter: Option<Box<dyn FnMut(NodeId, NodeId, &N::Msg) -> bool>>,
    started: bool,
}

impl<N: SimNode> std::fmt::Debug for Sim<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl<M> std::fmt::Debug for Ctx<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("now", &self.now)
            .field("self_id", &self.self_id)
            .field("buffered_ops", &self.ops.len())
            .finish_non_exhaustive()
    }
}

impl<N: SimNode> Sim<N> {
    /// Creates a simulator over `topo` hosting `nodes` (one per
    /// [`NodeId`], in order), with all randomness derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` does not match the topology's node count.
    #[must_use]
    pub fn new(topo: Topology, nodes: Vec<N>, seed: u64) -> Self {
        assert_eq!(
            nodes.len(),
            topo.node_count(),
            "need exactly one node implementation per topology node"
        );
        let seq = SeedSequence::new(seed);
        let rngs = (0..nodes.len()).map(|i| seq.rng_for(i as u64)).collect();
        Sim {
            topo,
            nodes,
            rngs,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            cancelled: HashSet::new(),
            next_timer_id: 0,
            unicast_loss: LossModel::None,
            loss_rng: seq.rng_for(u64::MAX / 2),
            counters: NetCounters::default(),
            drop_filter: None,
            started: false,
        }
    }

    /// Sets the loss model applied to every unicast send (default: none —
    /// the paper's assumption that requests and repairs are not lost).
    pub fn set_unicast_loss(&mut self, model: LossModel) {
        self.unicast_loss = model;
    }

    /// Installs a deterministic drop filter consulted for every packet
    /// (return `true` to drop). Useful for fault-injection tests.
    pub fn set_drop_filter<F>(&mut self, f: F)
    where
        F: FnMut(NodeId, NodeId, &N::Msg) -> bool + 'static,
    {
        self.drop_filter = Some(Box::new(f));
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology being simulated.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Network counters accumulated so far.
    #[must_use]
    pub fn counters(&self) -> NetCounters {
        self.counters
    }

    /// Immutable access to a node (for instrumentation between steps).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node (for instrumentation between steps).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Injects a packet from `from` arriving at `to` at absolute time `at`
    /// (bypassing latency and loss) — used to set up experiment initial
    /// conditions such as "these members hold the message at time zero".
    pub fn inject(&mut self, to: NodeId, from: NodeId, msg: N::Msg, at: SimTime) {
        self.queue.schedule(at, SimEvent::Deliver { to, from, msg });
    }

    /// Injects one multicast transmission according to a [`DeliveryPlan`]:
    /// every plan holder other than `from` receives `msg` at
    /// `at + one_way_latency(from, holder)`.
    pub fn inject_multicast_plan(
        &mut self,
        from: NodeId,
        msg: &N::Msg,
        plan: &DeliveryPlan,
        at: SimTime,
    ) {
        for to in plan.holders() {
            if to == from {
                continue;
            }
            let arrive = at + self.topo.one_way_latency(from, to);
            self.queue.schedule(arrive, SimEvent::Deliver { to, from, msg: clone_msg(msg) });
        }
    }

    /// Injects a multicast where every holder receives `msg` at exactly
    /// `at` (zero latency) — the paper's Figure 6/7 setup where a subset of
    /// members "hold the message initially".
    pub fn inject_simultaneous(
        &mut self,
        from: NodeId,
        msg: &N::Msg,
        plan: &DeliveryPlan,
        at: SimTime,
    ) {
        for to in plan.holders() {
            if to == from {
                continue;
            }
            self.queue.schedule(at, SimEvent::Deliver { to, from, msg: clone_msg(msg) });
        }
    }

    /// Schedules an external timer on `node` at absolute time `at` — used
    /// by experiments to trigger scripted actions (e.g. a member leaving).
    pub fn schedule_external_timer(&mut self, node: NodeId, token: u64, at: SimTime) {
        let id = self.next_timer_id;
        self.next_timer_id += 1;
        self.counters.timers_set += 1;
        self.queue.schedule(at, SimEvent::Timer { node, token, id });
    }

    /// Runs each node's [`SimNode::on_start`] callback (at most once).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.dispatch_with(i, |node, ctx| node.on_start(ctx));
        }
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        self.start();
        loop {
            let Some((at, event)) = self.queue.pop() else { return false };
            debug_assert!(at >= self.now, "time went backwards");
            match event {
                SimEvent::Deliver { to, from, msg } => {
                    self.now = at;
                    self.counters.delivered += 1;
                    self.counters.events_processed += 1;
                    self.dispatch_with(to.index(), |node, ctx| node.on_packet(ctx, from, msg));
                    return true;
                }
                SimEvent::Timer { node, token, id } => {
                    if self.cancelled.remove(&id) {
                        continue; // cancelled; consume silently without advancing time
                    }
                    self.now = at;
                    self.counters.timers_fired += 1;
                    self.counters.events_processed += 1;
                    self.dispatch_with(node.index(), |n, ctx| n.on_timer(ctx, token));
                    return true;
                }
            }
        }
    }

    /// Time of the next pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Processes every event scheduled at or before `t`, then advances the
    /// clock to exactly `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.start();
        while let Some(at) = self.queue.peek_time() {
            if at > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Runs until no events remain or the clock would pass `limit`.
    /// Returns the time of the last processed event (or the current time if
    /// nothing ran).
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> SimTime {
        self.start();
        while let Some(at) = self.queue.peek_time() {
            if at > limit {
                break;
            }
            self.step();
        }
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn dispatch_with<F>(&mut self, idx: usize, f: F)
    where
        F: FnOnce(&mut N, &mut Ctx<'_, N::Msg>),
    {
        let mut ops = Vec::new();
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: NodeId(idx as u32),
                topo: &self.topo,
                rng: &mut self.rngs[idx],
                ops: Vec::new(),
                next_timer_id: &mut self.next_timer_id,
            };
            f(&mut self.nodes[idx], &mut ctx);
            std::mem::swap(&mut ops, &mut ctx.ops);
        }
        let from = NodeId(idx as u32);
        for op in ops {
            match op {
                Op::Send { to, msg } => {
                    self.counters.unicasts_sent += 1;
                    let filtered = self
                        .drop_filter
                        .as_mut()
                        .is_some_and(|f| f(from, to, &msg));
                    let lost = filtered || self.unicast_loss.drops_unicast(&mut self.loss_rng);
                    if lost {
                        self.counters.unicasts_dropped += 1;
                        continue;
                    }
                    let arrive = self.now + self.topo.one_way_latency(from, to);
                    self.queue.schedule(arrive, SimEvent::Deliver { to, from, msg });
                }
                Op::SetTimer { id, token, at } => {
                    self.counters.timers_set += 1;
                    self.queue.schedule(at, SimEvent::Timer { node: from, token, id });
                }
                Op::Cancel { id } => {
                    self.cancelled.insert(id);
                }
            }
        }
    }
}

fn clone_msg<M: Clone>(m: &M) -> M {
    m.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::presets::paper_region;
    use crate::topology::TopologyBuilder;

    /// Node that records everything it observes.
    #[derive(Default)]
    struct Probe {
        packets: Vec<(SimTime, NodeId, u32)>,
        timers: Vec<(SimTime, u64)>,
        started: bool,
    }

    impl SimNode for Probe {
        type Msg = u32;
        fn on_start(&mut self, _ctx: &mut Ctx<'_, u32>) {
            self.started = true;
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            self.packets.push((ctx.now(), from, msg));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, token: u64) {
            self.timers.push((ctx.now(), token));
        }
    }

    fn probes(n: usize) -> Vec<Probe> {
        (0..n).map(|_| Probe::default()).collect()
    }

    #[test]
    fn unicast_latency_applied() {
        let topo = paper_region(3);
        let mut sim = Sim::new(topo, probes(3), 1);
        sim.inject(NodeId(1), NodeId(0), 7, SimTime::ZERO);
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(sim.node(NodeId(1)).packets, vec![(SimTime::ZERO, NodeId(0), 7)]);
        assert!(sim.node(NodeId(0)).started);
    }

    /// Responder sends an ack back on first packet.
    struct Echo;
    impl SimNode for Echo {
        type Msg = u32;
        fn on_packet(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            if msg == 0 {
                ctx.send(from, 1);
            }
        }
        fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: u64) {}
    }

    #[test]
    fn round_trip_takes_rtt() {
        let topo = paper_region(2);
        let mut sim = Sim::new(topo, vec![Echo, Echo], 2);
        sim.inject(NodeId(1), NodeId(0), 0, SimTime::ZERO);
        let end = sim.run_until_quiescent(SimTime::from_secs(1));
        // Echo reply travels one intra-region hop: 5ms.
        assert_eq!(end, SimTime::from_millis(5));
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerNode {
            fired: Vec<u64>,
            cancel_me: Option<TimerId>,
        }
        impl SimNode for TimerNode {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(1), 1);
                self.cancel_me = Some(ctx.set_timer(SimDuration::from_millis(2), 2));
                ctx.set_timer(SimDuration::from_millis(3), 3);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: u64) {
                if token == 1 {
                    let id = self.cancel_me.take().expect("set in on_start");
                    ctx.cancel_timer(id);
                }
                self.fired.push(token);
            }
        }
        let topo = paper_region(1);
        let mut sim = Sim::new(topo, vec![TimerNode { fired: vec![], cancel_me: None }], 3);
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(sim.node(NodeId(0)).fired, vec![1, 3]);
        assert_eq!(sim.counters().timers_set, 3);
        assert_eq!(sim.counters().timers_fired, 2);
    }

    #[test]
    fn drop_filter_discards() {
        struct Sender;
        impl SimNode for Sender {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if ctx.self_id() == NodeId(0) {
                    ctx.send(NodeId(1), 1);
                    ctx.send(NodeId(1), 2);
                }
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u32) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: u64) {}
        }
        let topo = paper_region(2);
        let mut sim = Sim::new(topo, vec![Sender, Sender], 4);
        sim.set_drop_filter(|_, _, &msg| msg == 1);
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(sim.counters().unicasts_sent, 2);
        assert_eq!(sim.counters().unicasts_dropped, 1);
        assert_eq!(sim.counters().delivered, 1);
    }

    #[test]
    fn unicast_loss_model_applies() {
        struct Spammer;
        impl SimNode for Spammer {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if ctx.self_id() == NodeId(0) {
                    for i in 0..1000 {
                        ctx.send(NodeId(1), i);
                    }
                }
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u32) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: u64) {}
        }
        let topo = paper_region(2);
        let mut sim = Sim::new(topo, vec![Spammer, Spammer], 5);
        sim.set_unicast_loss(LossModel::Bernoulli { p: 0.5 });
        sim.run_until_quiescent(SimTime::from_secs(1));
        let dropped = sim.counters().unicasts_dropped;
        assert!((300..700).contains(&dropped), "dropped {dropped} of 1000");
    }

    #[test]
    fn multicast_plan_delivery() {
        let topo = TopologyBuilder::new()
            .intra_region_one_way(SimDuration::from_millis(5))
            .inter_region_one_way(SimDuration::from_millis(20))
            .region(2, None)
            .region(2, Some(0))
            .build()
            .unwrap();
        let mut sim = Sim::new(topo, probes(4), 6);
        let plan = DeliveryPlan::all_but(sim.topology(), [NodeId(2)]);
        sim.inject_multicast_plan(NodeId(0), &9, &plan, SimTime::ZERO);
        sim.run_until_quiescent(SimTime::from_secs(1));
        // Node 1 (same region): 5ms. Node 3 (other region): 20ms. Node 2 missed.
        assert_eq!(sim.node(NodeId(1)).packets, vec![(SimTime::from_millis(5), NodeId(0), 9)]);
        assert!(sim.node(NodeId(2)).packets.is_empty());
        assert_eq!(sim.node(NodeId(3)).packets, vec![(SimTime::from_millis(20), NodeId(0), 9)]);
    }

    #[test]
    fn inject_simultaneous_arrives_at_once() {
        let topo = paper_region(4);
        let mut sim = Sim::new(topo, probes(4), 7);
        let plan = DeliveryPlan::only(sim.topology(), [NodeId(1), NodeId(3)]);
        sim.inject_simultaneous(NodeId(0), &5, &plan, SimTime::from_millis(2));
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(sim.node(NodeId(1)).packets, vec![(SimTime::from_millis(2), NodeId(0), 5)]);
        assert_eq!(sim.node(NodeId(3)).packets, vec![(SimTime::from_millis(2), NodeId(0), 5)]);
        assert!(sim.node(NodeId(2)).packets.is_empty());
    }

    #[test]
    fn run_until_advances_clock_exactly() {
        let topo = paper_region(2);
        let mut sim = Sim::new(topo, probes(2), 8);
        sim.inject(NodeId(1), NodeId(0), 1, SimTime::from_millis(10));
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(sim.now(), SimTime::from_millis(5));
        assert!(sim.node(NodeId(1)).packets.is_empty());
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.node(NodeId(1)).packets.len(), 1);
    }

    #[test]
    fn external_timer_reaches_node() {
        let topo = paper_region(1);
        let mut sim = Sim::new(topo, probes(1), 9);
        sim.schedule_external_timer(NodeId(0), 42, SimTime::from_millis(3));
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(sim.node(NodeId(0)).timers, vec![(SimTime::from_millis(3), 42)]);
    }

    #[test]
    fn deterministic_across_runs() {
        fn run() -> Vec<(SimTime, NodeId, u32)> {
            struct Gossiper;
            impl SimNode for Gossiper {
                type Msg = u32;
                fn on_packet(&mut self, ctx: &mut Ctx<'_, u32>, _: NodeId, msg: u32) {
                    if msg > 0 {
                        use rand::Rng;
                        let n = ctx.topology().node_count() as u32;
                        let mut to = NodeId(ctx.rng().gen_range(0..n));
                        if to == ctx.self_id() {
                            to = NodeId((to.0 + 1) % n);
                        }
                        ctx.send(to, msg - 1);
                    }
                }
                fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: u64) {}
            }
            let topo = paper_region(10);
            let mut sim = Sim::new(topo, (0..10).map(|_| Gossiper).collect(), 1234);
            sim.inject(NodeId(0), NodeId(9), 50, SimTime::ZERO);
            // Track deliveries via a probe wrapper would need more machinery;
            // instead assert on counters + final time.
            sim.run_until_quiescent(SimTime::from_secs(10));
            vec![(sim.now(), NodeId(0), sim.counters().delivered as u32)]
        }
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "one node implementation per topology node")]
    fn node_count_mismatch_panics() {
        let topo = paper_region(3);
        let _ = Sim::new(topo, probes(2), 0);
    }
}
