//! The discrete-event simulator driver.
//!
//! A [`Sim`] owns a set of user-defined nodes (anything implementing
//! [`SimNode`]), a [`Topology`], and an event queue. Nodes interact with the
//! world exclusively through a [`Ctx`] handed to their callbacks: sending
//! packets (delivered after the topology's latency, subject to an optional
//! loss model or deterministic drop filter) and setting timers.
//!
//! Determinism: all randomness is derived from the seed passed to
//! [`Sim::new`]; events at equal instants fire in scheduling order. Running
//! the same simulation twice produces byte-identical traces.
//!
//! ## Hot-path design
//!
//! The event loop is allocation-free and queue-cheap in steady state:
//!
//! * Events are ordered by a **hierarchical timing wheel**
//!   ([`crate::event::EventQueue`]): O(1) amortized schedule/pop, event
//!   payloads in a generation-counted slab, exact `(time, seq)` pop order.
//! * Side effects buffered during a callback go into a **per-`Sim` scratch
//!   op buffer** that is drained and reused, instead of a fresh
//!   `Vec` per callback.
//! * Timers live in a **slab with generation counters**
//!   ([`TimerId`] packs `(slot, generation)`): cancellation bumps the
//!   generation and recycles the slot immediately — no tombstone set
//!   grows, and the stale queue entry is skipped when it surfaces.
//! * Multi-destination sends ([`Ctx::send_many`], [`Ctx::send_group`]) and
//!   injected multicast plans schedule **one region-timed batch event per
//!   distinct arrival time** instead of one queue entry per destination.
//!   Loss and drop-filter decisions are made per destination at schedule
//!   time (the reference RNG stream, byte for byte); the batch expands
//!   lazily when it fires, delivering destinations back to back in the
//!   order the reference queue would have popped them. Target vectors are
//!   pooled, and with an `Arc`-backed payload type (e.g. `bytes::Bytes`) a
//!   regional multicast never copies payload bytes.
//! * [`Sim::reset`] re-arms the same simulator for another run while the
//!   queue, slab, and scratch buffers keep their allocations warm.
//!
//! [`Sim::new_reference`] builds the same simulator with the
//! straightforward strategies instead (heap-based reference queue,
//! allocate per callback, one queue entry per destination). It is kept as
//! an executable specification: the differential tests assert
//! byte-identical traces between the two, and `BENCH_sim_core.json`
//! reports the speedup of the default path over it.

use std::sync::Arc;

use rand::rngs::StdRng;
use rrmp_trace::{streams, EventKind, TraceSink};

use crate::event::{EventQueue, ReferenceEventQueue};
use crate::fault::FaultPlan;
use crate::loss::{DeliveryPlan, LossModel};
use crate::rng::SeedSequence;
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology};

/// A handle for cancelling a pending timer.
///
/// Packs a slab slot and its generation; a `TimerId` is invalidated the
/// moment its timer fires or is cancelled, so stale handles are harmless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

impl TimerId {
    fn pack(slot: u32, gen: u32) -> Self {
        TimerId((u64::from(slot) << 32) | u64::from(gen))
    }

    fn unpack(self) -> (u32, u32) {
        ((self.0 >> 32) as u32, self.0 as u32)
    }
}

/// Slab of timer slots with generation counters.
///
/// A slot's generation is **odd while armed** and even while free; arming
/// bumps it to odd, firing or cancelling bumps it to even and recycles the
/// slot. A [`TimerId`] matches only the exact `(slot, generation)` it was
/// issued for, so heap entries for cancelled timers die on pop without any
/// tombstone collection. Memory is bounded by the peak number of
/// *concurrently armed* timers, not by the total ever set.
#[derive(Debug, Default)]
pub(crate) struct TimerSlab {
    gens: Vec<u32>,
    free: Vec<u32>,
}

impl TimerSlab {
    /// Arms a fresh timer and returns its handle.
    pub(crate) fn arm(&mut self) -> TimerId {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.gens.push(0);
                (self.gens.len() - 1) as u32
            }
        };
        let gen = self.gens[slot as usize].wrapping_add(1);
        self.gens[slot as usize] = gen;
        debug_assert!(gen & 1 == 1, "armed generation must be odd");
        TimerId::pack(slot, gen)
    }

    /// Retires `id` (fire or cancel). Returns `true` if it was live —
    /// i.e. armed and neither fired nor cancelled before.
    pub(crate) fn retire(&mut self, id: TimerId) -> bool {
        let (slot, gen) = id.unpack();
        match self.gens.get_mut(slot as usize) {
            Some(cur) if *cur == gen && gen & 1 == 1 => {
                *cur = gen.wrapping_add(1);
                self.free.push(slot);
                true
            }
            _ => false,
        }
    }

    /// Clears every timer for a fresh run while keeping the slot
    /// allocation: armed generations are bumped to even (retired) and all
    /// slots re-enter the free list, so outstanding [`TimerId`]s die and
    /// the slab's memory stays warm across [`Sim::reset`].
    pub(crate) fn reset(&mut self) {
        self.free.clear();
        for (slot, gen) in self.gens.iter_mut().enumerate() {
            if *gen & 1 == 1 {
                *gen = gen.wrapping_add(1);
            }
            self.free.push(slot as u32);
        }
    }

    /// Number of slots ever created (== peak concurrently armed timers).
    #[cfg(test)]
    pub(crate) fn slot_count(&self) -> usize {
        self.gens.len()
    }
}

/// The event queue behind a [`Sim`]: the timing-wheel [`EventQueue`] on
/// the optimized path, the retained heap-based [`ReferenceEventQueue`] in
/// reference mode — the pairing the trace-equality tests exercise.
enum SimQueue<E> {
    Wheel(EventQueue<E>),
    Reference(ReferenceEventQueue<E>),
}

impl<E> SimQueue<E> {
    fn schedule(&mut self, at: SimTime, event: E) {
        match self {
            SimQueue::Wheel(q) => q.schedule(at, event),
            SimQueue::Reference(q) => q.schedule(at, event),
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            SimQueue::Wheel(q) => q.pop(),
            SimQueue::Reference(q) => q.pop(),
        }
    }

    /// Peek-gated pop: an event past `limit` is never removed (and so
    /// never re-inserted) — one queue operation at the horizon.
    fn pop_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        match self {
            SimQueue::Wheel(q) => q.pop_at_or_before(limit),
            SimQueue::Reference(q) => q.pop_at_or_before(limit),
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        match self {
            SimQueue::Wheel(q) => q.peek_time(),
            SimQueue::Reference(q) => q.peek_time(),
        }
    }

    fn len(&self) -> usize {
        match self {
            SimQueue::Wheel(q) => q.len(),
            SimQueue::Reference(q) => q.len(),
        }
    }

    /// Drops pending events; both backends keep their allocations.
    fn clear(&mut self) {
        match self {
            SimQueue::Wheel(q) => q.clear(),
            SimQueue::Reference(q) => q.clear(),
        }
    }
}

/// Application logic hosted on a simulated node.
///
/// Implementations receive packets and timer expirations and react through
/// the [`Ctx`]. All callbacks are synchronous; the simulator is
/// single-threaded and deterministic.
pub trait SimNode {
    /// The packet type exchanged between nodes.
    type Msg: Clone;

    /// Called once before the first event is processed.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a packet from `from` arrives.
    fn on_packet(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set through [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, token: u64);
}

/// Buffered side effects produced during one callback. Shared with the
/// sharded simulator ([`crate::shard`]), whose shards drain the same op
/// language from the same [`Ctx`].
pub(crate) enum Op<M> {
    /// Unicast to one destination.
    Send { to: NodeId, msg: M },
    /// One message to a contiguous range of the target arena.
    SendMany { start: u32, len: u32, msg: M },
    /// One message to every topology node except the caller.
    SendGroup { msg: M },
    /// Schedule `token` on the caller at `at`.
    SetTimer { id: TimerId, token: u64, at: SimTime },
    /// Reference mode only: record a cancellation tombstone (the
    /// pre-refactor cancellation path).
    Cancel { id: TimerId },
}

/// The execution context handed to node callbacks.
///
/// Provides the current time, the node's own identity and RNG, the shared
/// topology, and the means to send packets and set timers.
pub struct Ctx<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) self_id: NodeId,
    pub(crate) topo: &'a Topology,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) ops: &'a mut Vec<Op<M>>,
    pub(crate) targets: &'a mut Vec<NodeId>,
    pub(crate) timers: &'a mut TimerSlab,
    /// When false (reference mode), multi-destination sends degrade to one
    /// op per destination with an eager clone — the straightforward
    /// implementation the default path is benchmarked against.
    pub(crate) fanout_ops: bool,
}

impl<'a, M> Ctx<'a, M> {
    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node whose callback is running.
    #[must_use]
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// The shared network topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// This node's deterministic random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `msg` to `to`; it arrives after the topology's one-way latency
    /// unless the simulator's loss model or drop filter discards it.
    pub fn send(&mut self, to: NodeId, msg: M) {
        debug_assert_ne!(to, self.self_id, "protocol bug: node sent a packet to itself");
        self.ops.push(Op::Send { to, msg });
    }

    /// Sends a copy of `msg` to every node in `to` (loss applies per
    /// copy). Alias of [`Ctx::send_many`], kept for source compatibility.
    pub fn send_all<I: IntoIterator<Item = NodeId>>(&mut self, to: I, msg: M)
    where
        M: Clone,
    {
        self.send_many(to, msg);
    }

    /// Fan-out send: a copy of `msg` to every node in `to` other than the
    /// caller (loss and latency apply per destination).
    ///
    /// The fast path enqueues **one** op holding `msg` once and the target
    /// list in a reused arena; copies are shallow clones made as each
    /// delivery event is scheduled. Use this for regional multicasts.
    pub fn send_many<I: IntoIterator<Item = NodeId>>(&mut self, to: I, msg: M)
    where
        M: Clone,
    {
        if !self.fanout_ops {
            // Reference mode: the historical one-op-per-destination path.
            for node in to {
                if node != self.self_id {
                    self.ops.push(Op::Send { to: node, msg: msg.clone() });
                }
            }
            return;
        }
        let start = self.targets.len();
        let self_id = self.self_id;
        self.targets.extend(to.into_iter().filter(|&n| n != self_id));
        let len = self.targets.len() - start;
        if len == 0 {
            return; // nothing was appended to the arena
        }
        self.ops.push(Op::SendMany { start: start as u32, len: len as u32, msg });
    }

    /// Group-wide fan-out: a copy of `msg` to every topology node except
    /// the caller. One op regardless of group size.
    pub fn send_group(&mut self, msg: M)
    where
        M: Clone,
    {
        if !self.fanout_ops {
            let n = self.topo.node_count() as u32;
            self.send_many((0..n).map(NodeId), msg);
            return;
        }
        self.ops.push(Op::SendGroup { msg });
    }

    /// Schedules `token` to fire on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        let id = self.timers.arm();
        self.ops.push(Op::SetTimer { id, token, at: self.now + delay });
        id
    }

    /// Cancels a previously set timer. Cancelling an already-fired timer is
    /// a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        if self.fanout_ops {
            // Fast path: bump the slot generation; the pending heap entry
            // dies on pop, and the slot is immediately reusable.
            self.timers.retire(id);
        } else {
            // Reference mode: the historical tombstone-set path.
            self.ops.push(Op::Cancel { id });
        }
    }
}

/// Appends `to` to the arrival-time group for `arrive`, opening a new
/// pooled group if this is the first destination with that latency.
///
/// Shared by both engines ([`Sim`] and [`crate::shard::ShardedSim`]): the
/// grouping discipline decides batch membership and batch order, which
/// the byte-identical-trace guarantees depend on — one implementation,
/// not two hand-synced copies.
pub(crate) fn group_fanout_target(
    target_pool: &mut Vec<Vec<NodeId>>,
    groups: &mut Vec<(SimTime, Vec<NodeId>)>,
    arrive: SimTime,
    to: NodeId,
) {
    match groups.iter_mut().find(|(t, _)| *t == arrive) {
        Some((_, batch)) => batch.push(to),
        None => {
            let mut batch = target_pool.pop().unwrap_or_default();
            debug_assert!(batch.is_empty());
            batch.push(to);
            groups.push((arrive, batch));
        }
    }
}

/// Schedules one event per arrival-time group — a plain delivery for a
/// single destination, a batch otherwise — in first-destination order,
/// with the last group taking the original message and the rest shallow
/// clones. Leaves `groups` empty with its capacity intact. Shared by both
/// engines (see [`group_fanout_target`]).
pub(crate) fn flush_fanout_groups<M: Clone>(
    from: NodeId,
    msg: M,
    groups: &mut Vec<(SimTime, Vec<NodeId>)>,
    target_pool: &mut Vec<Vec<NodeId>>,
    mut schedule: impl FnMut(SimTime, SimEvent<M>),
) {
    let n = groups.len();
    let mut msg = Some(msg);
    for (i, (arrive, mut batch)) in groups.drain(..).enumerate() {
        let copy = if i + 1 == n {
            msg.take().expect("consumed only once")
        } else {
            msg.as_ref().expect("taken only at the end").clone()
        };
        if batch.len() == 1 {
            let to = batch[0];
            batch.clear();
            target_pool.push(batch);
            schedule(arrive, SimEvent::Deliver { to, from, msg: copy });
        } else {
            schedule(arrive, SimEvent::DeliverBatch { from, targets: batch, msg: copy });
        }
    }
}

/// Hands each batch target a copy of `msg` in target order, the **last**
/// taking the original (with an `Arc`-backed payload the batch never deep
/// copies). This is the lazy expansion of a region-timed batch event —
/// the same clone discipline on both engines.
pub(crate) fn expand_batch<M: Clone>(
    targets: &[NodeId],
    msg: M,
    mut deliver: impl FnMut(NodeId, M),
) {
    let last = targets.len() - 1;
    let mut msg = Some(msg);
    for (i, &to) in targets.iter().enumerate() {
        let copy = if i == last {
            msg.take().expect("consumed only once")
        } else {
            msg.as_ref().expect("taken only at the end").clone()
        };
        deliver(to, copy);
    }
}

pub(crate) enum SimEvent<M> {
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: M,
    },
    /// One region-timed batch: every node in `targets` receives a copy of
    /// `msg` at this event's instant, in target order. Scheduled by the
    /// optimized fan-out path (one queue entry per distinct arrival time
    /// instead of one per destination) and expanded lazily at delivery;
    /// the target vector is recycled through the `Sim`'s pool.
    DeliverBatch {
        from: NodeId,
        targets: Vec<NodeId>,
        msg: M,
    },
    Timer {
        node: NodeId,
        token: u64,
        id: TimerId,
    },
}

/// Aggregate network-level counters for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Unicast packets handed to the network.
    pub unicasts_sent: u64,
    /// Unicast packets discarded by the loss model or drop filter.
    pub unicasts_dropped: u64,
    /// Packets delivered to nodes.
    pub delivered: u64,
    /// Timers set.
    pub timers_set: u64,
    /// Timers fired (excluding cancelled ones).
    pub timers_fired: u64,
    /// Total events processed.
    pub events_processed: u64,
    /// Multi-destination fan-out operations executed
    /// ([`Ctx::send_many`] / [`Ctx::send_group`] with at least one target).
    pub fanouts: u64,
    /// Packets delivered by expanding a region-timed batch event (a subset
    /// of [`NetCounters::delivered`]; always zero in reference mode).
    pub batched_deliveries: u64,
    /// Unicast copies dropped by an armed [`FaultPlan`] (a subset of
    /// [`NetCounters::unicasts_dropped`]).
    pub faults_dropped: u64,
    /// Extra copies created by an armed [`FaultPlan`]'s duplication
    /// episodes (each also counts in [`NetCounters::delivered`] when it
    /// arrives, but not in [`NetCounters::unicasts_sent`] — the network
    /// duplicated it, the sender did not send it).
    pub faults_duplicated: u64,
}

/// The deterministic discrete-event simulator.
///
/// ```
/// use rrmp_netsim::sim::{Sim, SimNode, Ctx};
/// use rrmp_netsim::topology::{presets, NodeId};
/// use rrmp_netsim::time::{SimTime, SimDuration};
///
/// // Each node forwards a counter to the next node until it reaches 3.
/// struct Relay;
/// impl SimNode for Relay {
///     type Msg = u32;
///     fn on_packet(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
///         if msg < 3 {
///             let next = NodeId((ctx.self_id().0 + 1) % 4);
///             ctx.send(next, msg + 1);
///         }
///     }
///     fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32>, _token: u64) {}
/// }
///
/// let topo = presets::paper_region(4);
/// let mut sim = Sim::new(topo, (0..4).map(|_| Relay).collect(), 42);
/// sim.inject(NodeId(1), NodeId(0), 1, SimTime::ZERO);
/// let end = sim.run_until_quiescent(SimTime::from_secs(1));
/// // Two hops of 5ms each after the injected packet.
/// assert_eq!(end, SimTime::from_millis(10));
/// ```
pub struct Sim<N: SimNode> {
    topo: Topology,
    nodes: Vec<N>,
    rngs: Vec<StdRng>,
    queue: SimQueue<SimEvent<N::Msg>>,
    now: SimTime,
    timers: TimerSlab,
    unicast_loss: LossModel,
    loss_rng: StdRng,
    /// Armed fault timeline, consulted per unicast copy at transmit time
    /// (`None` costs one branch — the unarmed hot path is unchanged).
    fault: Option<Arc<FaultPlan>>,
    /// Armed observer sink fed by the engine hooks (deliveries on the
    /// receiving node, wire verdicts on the sender). Same zero-cost
    /// contract as `fault`: `None` costs one branch.
    trace: Option<Box<TraceSink>>,
    counters: NetCounters,
    #[allow(clippy::type_complexity)]
    drop_filter: Option<Box<dyn FnMut(NodeId, NodeId, &N::Msg) -> bool>>,
    started: bool,
    /// Reference mode only: the pre-refactor cancellation tombstones,
    /// consulted on every timer pop. Unused (empty) on the fast path.
    cancelled: std::collections::HashSet<u64>,
    /// Reused callback side-effect buffer (empty between dispatches).
    scratch_ops: Vec<Op<N::Msg>>,
    /// Reused fan-out target arena (empty between dispatches).
    scratch_targets: Vec<NodeId>,
    /// Recycled target vectors for batch delivery events.
    target_pool: Vec<Vec<NodeId>>,
    /// Reused arrival-time grouping buffer for fan-out scheduling (empty
    /// between fan-outs; the inner vectors come from `target_pool`).
    scratch_groups: Vec<(SimTime, Vec<NodeId>)>,
    /// False in reference mode: allocate per callback, one op per
    /// destination (see [`Sim::new_reference`]).
    optimized: bool,
}

impl<N: SimNode> std::fmt::Debug for Sim<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .field("counters", &self.counters)
            .field("optimized", &self.optimized)
            .finish_non_exhaustive()
    }
}

impl<M> std::fmt::Debug for Ctx<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("now", &self.now)
            .field("self_id", &self.self_id)
            .field("buffered_ops", &self.ops.len())
            .finish_non_exhaustive()
    }
}

impl<N: SimNode> Sim<N> {
    /// Creates a simulator over `topo` hosting `nodes` (one per
    /// [`NodeId`], in order), with all randomness derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` does not match the topology's node count.
    #[must_use]
    pub fn new(topo: Topology, nodes: Vec<N>, seed: u64) -> Self {
        Self::with_mode(topo, nodes, seed, true)
    }

    /// Creates a simulator running the **reference** event loop: a fresh
    /// op buffer is allocated for every callback and fan-out sends clone
    /// the message once per destination — the straightforward
    /// implementation this module's optimized hot path replaced.
    ///
    /// Observable behavior (traces, counters except
    /// [`NetCounters::fanouts`], RNG streams) is identical to [`Sim::new`]
    /// by construction, which the differential tests assert. Kept for
    /// those tests and as the baseline of `BENCH_sim_core.json`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` does not match the topology's node count.
    #[must_use]
    pub fn new_reference(topo: Topology, nodes: Vec<N>, seed: u64) -> Self {
        Self::with_mode(topo, nodes, seed, false)
    }

    fn with_mode(topo: Topology, nodes: Vec<N>, seed: u64, optimized: bool) -> Self {
        assert_eq!(
            nodes.len(),
            topo.node_count(),
            "need exactly one node implementation per topology node"
        );
        let seq = SeedSequence::new(seed);
        let rngs = (0..nodes.len()).map(|i| seq.rng_for(i as u64)).collect();
        Sim {
            topo,
            nodes,
            rngs,
            queue: if optimized {
                SimQueue::Wheel(EventQueue::new())
            } else {
                SimQueue::Reference(ReferenceEventQueue::new())
            },
            now: SimTime::ZERO,
            timers: TimerSlab::default(),
            unicast_loss: LossModel::None,
            loss_rng: seq.rng_for(u64::MAX / 2),
            fault: None,
            trace: None,
            counters: NetCounters::default(),
            drop_filter: None,
            started: false,
            cancelled: std::collections::HashSet::new(),
            scratch_ops: Vec::new(),
            scratch_targets: Vec::new(),
            target_pool: Vec::new(),
            scratch_groups: Vec::new(),
            optimized,
        }
    }

    /// Resets the simulator for a fresh run over the **same topology**:
    /// replaces the nodes, re-derives every RNG stream from `seed`, zeroes
    /// the clock and counters, and clears the event queue and timer slab
    /// **without dropping their allocations** — a reused `Sim` starts its
    /// next run at full capacity instead of re-growing from empty (the
    /// pattern repeated bench iterations and multi-run experiments use).
    /// The loss model, drop filter, and armed fault plan are retained.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` does not match the topology's node count.
    pub fn reset(&mut self, nodes: Vec<N>, seed: u64) {
        assert_eq!(
            nodes.len(),
            self.topo.node_count(),
            "need exactly one node implementation per topology node"
        );
        let seq = SeedSequence::new(seed);
        self.nodes = nodes;
        self.rngs.clear();
        self.rngs.extend((0..self.nodes.len()).map(|i| seq.rng_for(i as u64)));
        self.loss_rng = seq.rng_for(u64::MAX / 2);
        self.queue.clear();
        self.timers.reset();
        self.now = SimTime::ZERO;
        self.counters = NetCounters::default();
        self.started = false;
        self.cancelled.clear();
        // An armed observer stays armed across resets (matching the fault
        // plan), but the previous run's events are discarded.
        if let Some(t) = self.trace.as_deref_mut() {
            t.clear();
        }
    }

    /// Whether this simulator runs the optimized event loop
    /// ([`Sim::new`]) as opposed to the reference one
    /// ([`Sim::new_reference`]).
    #[must_use]
    pub fn is_optimized(&self) -> bool {
        self.optimized
    }

    /// Sets the loss model applied to every unicast send (default: none —
    /// the paper's assumption that requests and repairs are not lost).
    pub fn set_unicast_loss(&mut self, model: LossModel) {
        self.unicast_loss = model;
    }

    /// Installs a deterministic drop filter consulted for every packet
    /// (return `true` to drop). Useful for fault-injection tests.
    pub fn set_drop_filter<F>(&mut self, f: F)
    where
        F: FnMut(NodeId, NodeId, &N::Msg) -> bool + 'static,
    {
        self.drop_filter = Some(Box::new(f));
    }

    /// Arms (or with `None` disarms) a [`FaultPlan`], consulted for every
    /// unicast copy at transmit time. Fault verdicts are pure functions
    /// of `(plan, send time, endpoints)`, so an armed plan keeps the run
    /// fully deterministic.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.fault = plan;
    }

    /// Arms (or with `None` disarms) the engine observer. While armed,
    /// every delivery is recorded against the receiving node and every
    /// wire verdict (loss-model drop, fault drop, duplication) against
    /// the sender, into bounded per-node rings.
    pub fn set_trace(&mut self, sink: Option<Box<TraceSink>>) {
        self.trace = sink;
    }

    /// The armed engine observer, if any.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceSink> {
        self.trace.as_deref()
    }

    /// Appends every engine-recorded event to `out` (unsorted; callers
    /// combine sinks and sort canonically).
    pub fn collect_trace(&self, out: &mut Vec<rrmp_trace::TraceEvent>) {
        if let Some(t) = self.trace.as_deref() {
            t.collect_into(out);
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology being simulated.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Network counters accumulated so far.
    #[must_use]
    pub fn counters(&self) -> NetCounters {
        self.counters
    }

    /// Immutable access to a node (for instrumentation between steps).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node (for instrumentation between steps).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Injects a packet from `from` arriving at `to` at absolute time `at`
    /// (bypassing latency and loss) — used to set up experiment initial
    /// conditions such as "these members hold the message at time zero".
    pub fn inject(&mut self, to: NodeId, from: NodeId, msg: N::Msg, at: SimTime) {
        self.queue.schedule(at, SimEvent::Deliver { to, from, msg });
    }

    /// Injects one multicast transmission according to a [`DeliveryPlan`]:
    /// every plan holder other than `from` receives `msg` at
    /// `at + one_way_latency(from, holder)`. Copies are shallow clones of
    /// the same message value.
    pub fn inject_multicast_plan(
        &mut self,
        from: NodeId,
        msg: &N::Msg,
        plan: &DeliveryPlan,
        at: SimTime,
    ) {
        if !self.optimized {
            for to in plan.holders() {
                if to == from {
                    continue;
                }
                let arrive = at + self.topo.one_way_latency(from, to);
                self.queue.schedule(arrive, SimEvent::Deliver { to, from, msg: msg.clone() });
            }
            return;
        }
        // Optimized path: one region-timed batch event per distinct
        // arrival time instead of one queue entry per holder.
        debug_assert!(self.scratch_groups.is_empty());
        let mut groups = std::mem::take(&mut self.scratch_groups);
        for to in plan.holders() {
            if to == from {
                continue;
            }
            let arrive = at + self.topo.one_way_latency(from, to);
            group_fanout_target(&mut self.target_pool, &mut groups, arrive, to);
        }
        flush_fanout_groups(from, msg.clone(), &mut groups, &mut self.target_pool, |at, ev| {
            self.queue.schedule(at, ev);
        });
        self.scratch_groups = groups;
    }

    /// Injects a multicast where every holder receives `msg` at exactly
    /// `at` (zero latency) — the paper's Figure 6/7 setup where a subset of
    /// members "hold the message initially".
    pub fn inject_simultaneous(
        &mut self,
        from: NodeId,
        msg: &N::Msg,
        plan: &DeliveryPlan,
        at: SimTime,
    ) {
        if !self.optimized {
            for to in plan.holders() {
                if to == from {
                    continue;
                }
                self.queue.schedule(at, SimEvent::Deliver { to, from, msg: msg.clone() });
            }
            return;
        }
        // Every holder shares the instant `at`: a single batch event.
        debug_assert!(self.scratch_groups.is_empty());
        let mut groups = std::mem::take(&mut self.scratch_groups);
        for to in plan.holders() {
            if to == from {
                continue;
            }
            group_fanout_target(&mut self.target_pool, &mut groups, at, to);
        }
        flush_fanout_groups(from, msg.clone(), &mut groups, &mut self.target_pool, |at, ev| {
            self.queue.schedule(at, ev);
        });
        self.scratch_groups = groups;
    }

    /// Schedules an external timer on `node` at absolute time `at` — used
    /// by experiments to trigger scripted actions (e.g. a member leaving).
    pub fn schedule_external_timer(&mut self, node: NodeId, token: u64, at: SimTime) {
        let id = self.timers.arm();
        self.counters.timers_set += 1;
        self.queue.schedule(at, SimEvent::Timer { node, token, id });
    }

    /// Runs each node's [`SimNode::on_start`] callback (at most once).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.dispatch_with(i, |node, ctx| node.on_start(ctx));
        }
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        self.start();
        loop {
            let Some((at, event)) = self.queue.pop() else { return false };
            if self.dispatch_event(at, event) {
                return true;
            }
        }
    }

    /// Like [`Sim::step`], but never dispatches an event scheduled after
    /// `limit` — cancelled timers at or before `limit` are consumed
    /// without letting a later event run early. The horizon check is a
    /// peek-gated pop: an event past `limit` is never removed from the
    /// queue (and so never re-inserted), costing one queue operation at
    /// the boundary.
    fn step_before(&mut self, limit: SimTime) -> bool {
        self.start();
        loop {
            let Some((at, event)) = self.queue.pop_at_or_before(limit) else { return false };
            if self.dispatch_event(at, event) {
                return true;
            }
        }
    }

    /// Dispatches one popped event; returns `false` if it was a cancelled
    /// timer (consumed silently, clock untouched).
    fn dispatch_event(&mut self, at: SimTime, event: SimEvent<N::Msg>) -> bool {
        debug_assert!(at >= self.now, "time went backwards");
        match event {
            SimEvent::Deliver { to, from, msg } => {
                self.now = at;
                self.counters.delivered += 1;
                self.counters.events_processed += 1;
                if let Some(t) = self.trace.as_deref_mut() {
                    t.record(at.as_micros(), to.0, streams::ENGINE_DELIVERY, EventKind::Delivered);
                }
                self.dispatch_with(to.index(), |node, ctx| node.on_packet(ctx, from, msg));
                true
            }
            SimEvent::DeliverBatch { from, mut targets, msg } => {
                // Lazy expansion: the per-destination deliveries the
                // reference path would have scheduled individually run
                // here back to back, in target order — the same order the
                // reference queue would pop their consecutive sequence
                // numbers.
                self.now = at;
                expand_batch(&targets, msg, |to, copy| {
                    self.counters.delivered += 1;
                    self.counters.events_processed += 1;
                    self.counters.batched_deliveries += 1;
                    if let Some(t) = self.trace.as_deref_mut() {
                        t.record(
                            at.as_micros(),
                            to.0,
                            streams::ENGINE_DELIVERY,
                            EventKind::Delivered,
                        );
                    }
                    self.dispatch_with(to.index(), |node, ctx| node.on_packet(ctx, from, copy));
                });
                targets.clear();
                self.target_pool.push(targets);
                true
            }
            SimEvent::Timer { node, token, id } => {
                if !self.optimized && self.cancelled.remove(&id.0) {
                    // Reference mode: tombstoned; free the slot too.
                    self.timers.retire(id);
                    return false;
                }
                if !self.timers.retire(id) {
                    return false; // cancelled; consume silently
                }
                self.now = at;
                self.counters.timers_fired += 1;
                self.counters.events_processed += 1;
                self.dispatch_with(node.index(), |n, ctx| n.on_timer(ctx, token));
                true
            }
        }
    }

    /// Time of the next pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Processes every event scheduled at or before `t`, then advances the
    /// clock to exactly `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while self.step_before(t) {}
        if self.now < t {
            self.now = t;
        }
    }

    /// Runs until no events remain or the clock would pass `limit`.
    /// Returns the time of the last processed event (or the current time if
    /// nothing ran).
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> SimTime {
        while self.step_before(limit) {}
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn dispatch_with<F>(&mut self, idx: usize, f: F)
    where
        F: FnOnce(&mut N, &mut Ctx<'_, N::Msg>),
    {
        // In the optimized mode these take the (empty) per-`Sim` scratch
        // buffers, preserving their capacity across dispatches; in
        // reference mode fresh vectors are allocated every callback.
        let (mut ops, mut targets) = if self.optimized {
            debug_assert!(self.scratch_ops.is_empty() && self.scratch_targets.is_empty());
            (std::mem::take(&mut self.scratch_ops), std::mem::take(&mut self.scratch_targets))
        } else {
            (Vec::new(), Vec::new())
        };
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: NodeId(idx as u32),
                topo: &self.topo,
                rng: &mut self.rngs[idx],
                ops: &mut ops,
                targets: &mut targets,
                timers: &mut self.timers,
                fanout_ops: self.optimized,
            };
            f(&mut self.nodes[idx], &mut ctx);
        }
        let from = NodeId(idx as u32);
        for op in ops.drain(..) {
            match op {
                Op::Send { to, msg } => self.transmit(from, to, msg),
                Op::SendMany { start, len, msg } => {
                    self.counters.fanouts += 1;
                    let range = start as usize..(start + len) as usize;
                    self.transmit_fanout(from, targets[range].iter().copied(), msg);
                }
                Op::SendGroup { msg } => {
                    self.counters.fanouts += 1;
                    let n = self.topo.node_count() as u32;
                    self.transmit_fanout(from, (0..n).map(NodeId).filter(|&to| to != from), msg);
                }
                Op::SetTimer { id, token, at } => {
                    self.counters.timers_set += 1;
                    self.queue.schedule(at, SimEvent::Timer { node: from, token, id });
                }
                Op::Cancel { id } => {
                    self.cancelled.insert(id.0);
                }
            }
        }
        if self.optimized {
            targets.clear();
            self.scratch_ops = ops;
            self.scratch_targets = targets;
        }
    }

    /// Applies counters, the drop filter, and the loss model to every
    /// fan-out destination **in destination order** — consuming the exact
    /// RNG draw sequence of the reference per-destination path — then
    /// schedules the survivors as one region-timed batch event per
    /// distinct arrival time instead of one queue entry each. The batch
    /// expands back into per-destination deliveries when it fires.
    fn transmit_fanout<I>(&mut self, from: NodeId, targets: I, msg: N::Msg)
    where
        I: Iterator<Item = NodeId>,
    {
        debug_assert!(self.scratch_groups.is_empty());
        let mut groups = std::mem::take(&mut self.scratch_groups);
        for to in targets {
            self.counters.unicasts_sent += 1;
            let filtered = self.drop_filter.as_mut().is_some_and(|f| f(from, to, &msg));
            let lost = filtered || self.edge_loses(from, to);
            if lost {
                self.counters.unicasts_dropped += 1;
                if let Some(t) = self.trace.as_deref_mut() {
                    t.record(
                        self.now.as_micros(),
                        from.0,
                        streams::ENGINE_WIRE,
                        EventKind::PacketDropped { to: to.0 },
                    );
                }
                continue;
            }
            let arrive = self.now + self.topo.one_way_latency(from, to);
            group_fanout_target(&mut self.target_pool, &mut groups, arrive, to);
            if let Some(extra) = self.dup_delay(from, to) {
                // The duplicate rides the same batch machinery: one more
                // target in the (strictly later) arrival-time group.
                self.counters.faults_duplicated += 1;
                if let Some(t) = self.trace.as_deref_mut() {
                    t.record(
                        self.now.as_micros(),
                        from.0,
                        streams::ENGINE_WIRE,
                        EventKind::FaultDuplicated { to: to.0 },
                    );
                }
                group_fanout_target(&mut self.target_pool, &mut groups, arrive + extra, to);
            }
        }
        flush_fanout_groups(from, msg, &mut groups, &mut self.target_pool, |at, ev| {
            self.queue.schedule(at, ev);
        });
        self.scratch_groups = groups;
    }

    /// Applies counters, the drop filter, and the loss model to one
    /// unicast copy, scheduling its delivery if it survives.
    fn transmit(&mut self, from: NodeId, to: NodeId, msg: N::Msg) {
        self.counters.unicasts_sent += 1;
        let filtered = self.drop_filter.as_mut().is_some_and(|f| f(from, to, &msg));
        let lost = filtered || self.edge_loses(from, to);
        if lost {
            self.counters.unicasts_dropped += 1;
            if let Some(t) = self.trace.as_deref_mut() {
                t.record(
                    self.now.as_micros(),
                    from.0,
                    streams::ENGINE_WIRE,
                    EventKind::PacketDropped { to: to.0 },
                );
            }
            return;
        }
        let arrive = self.now + self.topo.one_way_latency(from, to);
        if let Some(extra) = self.dup_delay(from, to) {
            self.counters.faults_duplicated += 1;
            if let Some(t) = self.trace.as_deref_mut() {
                t.record(
                    self.now.as_micros(),
                    from.0,
                    streams::ENGINE_WIRE,
                    EventKind::FaultDuplicated { to: to.0 },
                );
            }
            self.queue.schedule(arrive + extra, SimEvent::Deliver { to, from, msg: msg.clone() });
        }
        self.queue.schedule(arrive, SimEvent::Deliver { to, from, msg });
    }

    /// The edge loss decision for one surviving-the-filter copy: an armed
    /// fault plan gets the first say (and an active loss burst overrides
    /// the base model entirely); otherwise the base loss model draws.
    fn edge_loses(&mut self, from: NodeId, to: NodeId) -> bool {
        let verdict = match self.fault.as_deref() {
            None => None,
            Some(plan) => plan.drops(self.now, from, to, &self.topo),
        };
        match verdict {
            Some(true) => {
                self.counters.faults_dropped += 1;
                // A fault drop also records a PacketDropped at the call
                // site (mirroring `faults_dropped` + `unicasts_dropped`
                // both incrementing); this event marks the verdict.
                if let Some(t) = self.trace.as_deref_mut() {
                    t.record(
                        self.now.as_micros(),
                        from.0,
                        streams::ENGINE_WIRE,
                        EventKind::FaultDropped { to: to.0 },
                    );
                }
                true
            }
            Some(false) => false,
            None => self.unicast_loss.drops_unicast(&mut self.loss_rng),
        }
    }

    /// The duplication decision for one copy that survived the edge.
    fn dup_delay(&self, from: NodeId, to: NodeId) -> Option<SimDuration> {
        self.fault.as_deref().and_then(|plan| plan.duplicate_delay(self.now, from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::presets::paper_region;
    use crate::topology::TopologyBuilder;

    /// Node that records everything it observes.
    #[derive(Default)]
    struct Probe {
        packets: Vec<(SimTime, NodeId, u32)>,
        timers: Vec<(SimTime, u64)>,
        started: bool,
    }

    impl SimNode for Probe {
        type Msg = u32;
        fn on_start(&mut self, _ctx: &mut Ctx<'_, u32>) {
            self.started = true;
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            self.packets.push((ctx.now(), from, msg));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, token: u64) {
            self.timers.push((ctx.now(), token));
        }
    }

    fn probes(n: usize) -> Vec<Probe> {
        (0..n).map(|_| Probe::default()).collect()
    }

    #[test]
    fn unicast_latency_applied() {
        let topo = paper_region(3);
        let mut sim = Sim::new(topo, probes(3), 1);
        sim.inject(NodeId(1), NodeId(0), 7, SimTime::ZERO);
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(sim.node(NodeId(1)).packets, vec![(SimTime::ZERO, NodeId(0), 7)]);
        assert!(sim.node(NodeId(0)).started);
    }

    /// Responder sends an ack back on first packet.
    struct Echo;
    impl SimNode for Echo {
        type Msg = u32;
        fn on_packet(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            if msg == 0 {
                ctx.send(from, 1);
            }
        }
        fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: u64) {}
    }

    #[test]
    fn round_trip_takes_rtt() {
        let topo = paper_region(2);
        let mut sim = Sim::new(topo, vec![Echo, Echo], 2);
        sim.inject(NodeId(1), NodeId(0), 0, SimTime::ZERO);
        let end = sim.run_until_quiescent(SimTime::from_secs(1));
        // Echo reply travels one intra-region hop: 5ms.
        assert_eq!(end, SimTime::from_millis(5));
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerNode {
            fired: Vec<u64>,
            cancel_me: Option<TimerId>,
        }
        impl SimNode for TimerNode {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(1), 1);
                self.cancel_me = Some(ctx.set_timer(SimDuration::from_millis(2), 2));
                ctx.set_timer(SimDuration::from_millis(3), 3);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: u64) {
                if token == 1 {
                    let id = self.cancel_me.take().expect("set in on_start");
                    ctx.cancel_timer(id);
                }
                self.fired.push(token);
            }
        }
        let topo = paper_region(1);
        let mut sim = Sim::new(topo, vec![TimerNode { fired: vec![], cancel_me: None }], 3);
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(sim.node(NodeId(0)).fired, vec![1, 3]);
        assert_eq!(sim.counters().timers_set, 3);
        assert_eq!(sim.counters().timers_fired, 2);
    }

    #[test]
    fn drop_filter_discards() {
        struct Sender;
        impl SimNode for Sender {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if ctx.self_id() == NodeId(0) {
                    ctx.send(NodeId(1), 1);
                    ctx.send(NodeId(1), 2);
                }
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u32) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: u64) {}
        }
        let topo = paper_region(2);
        let mut sim = Sim::new(topo, vec![Sender, Sender], 4);
        sim.set_drop_filter(|_, _, &msg| msg == 1);
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(sim.counters().unicasts_sent, 2);
        assert_eq!(sim.counters().unicasts_dropped, 1);
        assert_eq!(sim.counters().delivered, 1);
    }

    #[test]
    fn unicast_loss_model_applies() {
        struct Spammer;
        impl SimNode for Spammer {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if ctx.self_id() == NodeId(0) {
                    for i in 0..1000 {
                        ctx.send(NodeId(1), i);
                    }
                }
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u32) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: u64) {}
        }
        let topo = paper_region(2);
        let mut sim = Sim::new(topo, vec![Spammer, Spammer], 5);
        sim.set_unicast_loss(LossModel::Bernoulli { p: 0.5 });
        sim.run_until_quiescent(SimTime::from_secs(1));
        let dropped = sim.counters().unicasts_dropped;
        assert!((300..700).contains(&dropped), "dropped {dropped} of 1000");
    }

    #[test]
    fn multicast_plan_delivery() {
        let topo = TopologyBuilder::new()
            .intra_region_one_way(SimDuration::from_millis(5))
            .inter_region_one_way(SimDuration::from_millis(20))
            .region(2, None)
            .region(2, Some(0))
            .build()
            .unwrap();
        let mut sim = Sim::new(topo, probes(4), 6);
        let plan = DeliveryPlan::all_but(sim.topology(), [NodeId(2)]);
        sim.inject_multicast_plan(NodeId(0), &9, &plan, SimTime::ZERO);
        sim.run_until_quiescent(SimTime::from_secs(1));
        // Node 1 (same region): 5ms. Node 3 (other region): 20ms. Node 2 missed.
        assert_eq!(sim.node(NodeId(1)).packets, vec![(SimTime::from_millis(5), NodeId(0), 9)]);
        assert!(sim.node(NodeId(2)).packets.is_empty());
        assert_eq!(sim.node(NodeId(3)).packets, vec![(SimTime::from_millis(20), NodeId(0), 9)]);
    }

    #[test]
    fn inject_simultaneous_arrives_at_once() {
        let topo = paper_region(4);
        let mut sim = Sim::new(topo, probes(4), 7);
        let plan = DeliveryPlan::only(sim.topology(), [NodeId(1), NodeId(3)]);
        sim.inject_simultaneous(NodeId(0), &5, &plan, SimTime::from_millis(2));
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(sim.node(NodeId(1)).packets, vec![(SimTime::from_millis(2), NodeId(0), 5)]);
        assert_eq!(sim.node(NodeId(3)).packets, vec![(SimTime::from_millis(2), NodeId(0), 5)]);
        assert!(sim.node(NodeId(2)).packets.is_empty());
    }

    #[test]
    fn run_until_advances_clock_exactly() {
        let topo = paper_region(2);
        let mut sim = Sim::new(topo, probes(2), 8);
        sim.inject(NodeId(1), NodeId(0), 1, SimTime::from_millis(10));
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(sim.now(), SimTime::from_millis(5));
        assert!(sim.node(NodeId(1)).packets.is_empty());
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.node(NodeId(1)).packets.len(), 1);
    }

    #[test]
    fn external_timer_reaches_node() {
        let topo = paper_region(1);
        let mut sim = Sim::new(topo, probes(1), 9);
        sim.schedule_external_timer(NodeId(0), 42, SimTime::from_millis(3));
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(sim.node(NodeId(0)).timers, vec![(SimTime::from_millis(3), 42)]);
    }

    #[test]
    fn deterministic_across_runs() {
        fn run() -> Vec<(SimTime, NodeId, u32)> {
            struct Gossiper;
            impl SimNode for Gossiper {
                type Msg = u32;
                fn on_packet(&mut self, ctx: &mut Ctx<'_, u32>, _: NodeId, msg: u32) {
                    if msg > 0 {
                        use rand::Rng;
                        let n = ctx.topology().node_count() as u32;
                        let mut to = NodeId(ctx.rng().gen_range(0..n));
                        if to == ctx.self_id() {
                            to = NodeId((to.0 + 1) % n);
                        }
                        ctx.send(to, msg - 1);
                    }
                }
                fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: u64) {}
            }
            let topo = paper_region(10);
            let mut sim = Sim::new(topo, (0..10).map(|_| Gossiper).collect(), 1234);
            sim.inject(NodeId(0), NodeId(9), 50, SimTime::ZERO);
            // Track deliveries via a probe wrapper would need more machinery;
            // instead assert on counters + final time.
            sim.run_until_quiescent(SimTime::from_secs(10));
            vec![(sim.now(), NodeId(0), sim.counters().delivered as u32)]
        }
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "one node implementation per topology node")]
    fn node_count_mismatch_panics() {
        let topo = paper_region(3);
        let _ = Sim::new(topo, probes(2), 0);
    }

    /// A node that fans out to the whole region on start.
    struct RegionCaster;
    impl SimNode for RegionCaster {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.self_id() == NodeId(0) {
                let n = ctx.topology().node_count() as u32;
                ctx.send_many((0..n).map(NodeId), 9);
            }
        }
        fn on_packet(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u32) {}
        fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: u64) {}
    }

    #[test]
    fn send_many_reaches_everyone_but_self() {
        let topo = paper_region(6);
        let mut sim = Sim::new(topo, (0..6).map(|_| RegionCaster).collect(), 10);
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(sim.counters().unicasts_sent, 5);
        assert_eq!(sim.counters().delivered, 5);
        assert_eq!(sim.counters().fanouts, 1);
        // A single-region fan-out is one batch event covering all five
        // destinations.
        assert_eq!(sim.counters().batched_deliveries, 5);
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn far_future_timer_crosses_wheel_horizon() {
        // ~27.8 simulated hours: past the 64^6-microsecond wheel range, so
        // the event takes the overflow path. Both modes must agree.
        let far = SimTime::from_secs(100_000);
        for reference in [false, true] {
            let topo = paper_region(1);
            let mut sim = if reference {
                Sim::new_reference(topo, probes(1), 11)
            } else {
                Sim::new(topo, probes(1), 11)
            };
            sim.schedule_external_timer(NodeId(0), 9, far);
            sim.schedule_external_timer(NodeId(0), 1, SimTime::from_millis(1));
            sim.run_until_quiescent(SimTime::MAX);
            assert_eq!(
                sim.node(NodeId(0)).timers,
                vec![(SimTime::from_millis(1), 1), (far, 9)],
                "reference={reference}"
            );
        }
    }

    #[test]
    fn reset_reuses_queue_capacity() {
        fn run(sim: &mut Sim<RegionCaster>) -> NetCounters {
            sim.run_until_quiescent(SimTime::from_secs(1));
            sim.counters()
        }
        let topo = paper_region(40);
        let mut sim = Sim::new(topo, (0..40).map(|_| RegionCaster).collect(), 12);
        let first = run(&mut sim);
        let warmed = match &sim.queue {
            SimQueue::Wheel(q) => q.allocated_capacity(),
            SimQueue::Reference(_) => unreachable!("Sim::new builds the wheel"),
        };
        sim.reset((0..40).map(|_| RegionCaster).collect(), 12);
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.counters(), NetCounters::default());
        let second = run(&mut sim);
        assert_eq!(first, second, "identical seed must replay identically");
        let after = match &sim.queue {
            SimQueue::Wheel(q) => q.allocated_capacity(),
            SimQueue::Reference(_) => unreachable!(),
        };
        assert_eq!(after, warmed, "reset must keep the queue's allocations warm");
    }

    #[test]
    fn send_group_matches_send_many_over_topology() {
        struct GroupCaster;
        impl SimNode for GroupCaster {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if ctx.self_id() == NodeId(2) {
                    ctx.send_group(1);
                }
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u32) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: u64) {}
        }
        let topo = paper_region(5);
        let mut sim = Sim::new(topo, (0..5).map(|_| GroupCaster).collect(), 11);
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(sim.counters().unicasts_sent, 4);
        assert_eq!(sim.counters().delivered, 4);
    }

    #[test]
    fn reference_mode_produces_identical_observables() {
        type PacketTrace = Vec<Vec<(SimTime, NodeId, u32)>>;
        fn run(reference: bool) -> (PacketTrace, NetCounters) {
            let topo = paper_region(8);
            let mut sim = if reference {
                Sim::new_reference(topo, probes(8), 77)
            } else {
                Sim::new(topo, probes(8), 77)
            };
            sim.set_unicast_loss(LossModel::Bernoulli { p: 0.2 });
            sim.inject(NodeId(3), NodeId(0), 5, SimTime::ZERO);
            sim.run_until_quiescent(SimTime::from_secs(1));
            let mut counters = sim.counters();
            // The only counters allowed to differ between modes.
            counters.fanouts = 0;
            counters.batched_deliveries = 0;
            let traces = (0..8).map(|i| sim.node(NodeId(i)).packets.clone()).collect();
            (traces, counters)
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn run_until_never_dispatches_past_horizon() {
        // A cancelled timer inside the horizon must not let run_until
        // dispatch the next (later) event early.
        struct DecoyNode {
            fired: Vec<SimTime>,
        }
        impl SimNode for DecoyNode {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                let decoy = ctx.set_timer(SimDuration::from_millis(5), 1);
                ctx.cancel_timer(decoy);
                ctx.set_timer(SimDuration::from_millis(50), 2);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: u64) {
                self.fired.push(ctx.now());
            }
        }
        for reference in [false, true] {
            let topo = paper_region(1);
            let nodes = vec![DecoyNode { fired: vec![] }];
            let mut sim = if reference {
                Sim::new_reference(topo, nodes, 1)
            } else {
                Sim::new(topo, nodes, 1)
            };
            // Horizon between the cancelled decoy (5ms) and the real
            // timer (50ms): nothing may fire, clock lands exactly on 10ms.
            sim.run_until(SimTime::from_millis(10));
            assert!(sim.node(NodeId(0)).fired.is_empty(), "fired early (reference={reference})");
            assert_eq!(sim.now(), SimTime::from_millis(10));
            sim.run_until(SimTime::from_millis(60));
            assert_eq!(sim.node(NodeId(0)).fired, vec![SimTime::from_millis(50)]);
        }
    }

    #[test]
    fn timer_slab_reuses_slots() {
        let mut slab = TimerSlab::default();
        let a = slab.arm();
        let b = slab.arm();
        assert!(slab.retire(a));
        assert!(!slab.retire(a), "double retire is a no-op");
        let c = slab.arm(); // reuses a's slot with a new generation
        assert_ne!(a, c);
        assert_eq!(slab.slot_count(), 2);
        assert!(slab.retire(b));
        assert!(slab.retire(c));
        // Peak concurrency was 2; the slab never grew past it.
        for _ in 0..100 {
            let id = slab.arm();
            assert!(slab.retire(id));
        }
        assert!(slab.slot_count() <= 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    /// Generator language for slab operations: arm a new timer, or retire
    /// (fire/cancel) the k-th oldest live one / a stale handle.
    #[derive(Debug, Clone)]
    enum SlabOp {
        Arm,
        RetireLive(usize),
        RetireStale(usize),
    }

    fn arb_slab_op() -> impl Strategy<Value = SlabOp> {
        prop_oneof![
            Just(SlabOp::Arm),
            (0usize..64).prop_map(SlabOp::RetireLive),
            (0usize..64).prop_map(SlabOp::RetireStale),
        ]
    }

    proptest! {
        /// The slab agrees with a naive model under arbitrary arm/cancel
        /// interleavings: retire succeeds exactly once per issued handle,
        /// stale handles never resolve, and memory stays bounded by the
        /// peak number of concurrently live timers.
        #[test]
        fn slab_matches_model(ops in proptest::collection::vec(arb_slab_op(), 0..300)) {
            let mut slab = TimerSlab::default();
            let mut live: Vec<TimerId> = Vec::new();
            let mut retired: Vec<TimerId> = Vec::new();
            let mut seen: HashSet<TimerId> = HashSet::new();
            let mut peak = 0usize;
            for op in ops {
                match op {
                    SlabOp::Arm => {
                        let id = slab.arm();
                        prop_assert!(seen.insert(id), "handle {id:?} reissued while observable");
                        live.push(id);
                        peak = peak.max(live.len());
                    }
                    SlabOp::RetireLive(k) => {
                        if live.is_empty() {
                            continue;
                        }
                        let id = live.remove(k % live.len());
                        prop_assert!(slab.retire(id), "live handle must retire");
                        retired.push(id);
                    }
                    SlabOp::RetireStale(k) => {
                        if retired.is_empty() {
                            continue;
                        }
                        let id = retired[k % retired.len()];
                        prop_assert!(!slab.retire(id), "stale handle must not retire");
                    }
                }
            }
            prop_assert!(slab.slot_count() <= peak.max(1), "slab grew past peak concurrency");
            // Every still-live handle retires exactly once.
            for id in live {
                prop_assert!(slab.retire(id));
                prop_assert!(!slab.retire(id));
            }
        }
    }

    /// One scripted reaction to a timer firing: cancel some still-pending
    /// timers (picked by index into the live list), then arm new ones with
    /// the given delays (microseconds; zero means "this same instant").
    #[derive(Debug, Clone)]
    struct ScriptStep {
        cancels: Vec<usize>,
        delays: Vec<u64>,
    }

    /// A node that replays a [`ScriptStep`] script, one step per timer
    /// firing, recording the observable `(time, token)` trace.
    struct ScriptNode {
        script: Vec<ScriptStep>,
        step: usize,
        live: Vec<(u64, TimerId)>,
        next_token: u64,
        fired: Vec<(SimTime, u64)>,
    }

    impl ScriptNode {
        fn new(script: Vec<ScriptStep>) -> Self {
            ScriptNode { script, step: 0, live: Vec::new(), next_token: 0, fired: Vec::new() }
        }

        fn arm(&mut self, ctx: &mut Ctx<'_, ()>, delay_us: u64) {
            let token = self.next_token;
            self.next_token += 1;
            let id = ctx.set_timer(SimDuration::from_micros(delay_us), token);
            self.live.push((token, id));
        }
    }

    impl SimNode for ScriptNode {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            self.arm(ctx, 1);
        }
        fn on_packet(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: u64) {
            self.fired.push((ctx.now(), token));
            self.live.retain(|&(t, _)| t != token);
            let Some(step) = self.script.get(self.step).cloned() else { return };
            self.step += 1;
            for k in step.cancels {
                if self.live.is_empty() {
                    break;
                }
                let (_, id) = self.live.remove(k % self.live.len());
                ctx.cancel_timer(id);
            }
            for d in step.delays {
                self.arm(ctx, d);
            }
        }
    }

    fn arb_script_step() -> impl Strategy<Value = ScriptStep> {
        (proptest::collection::vec(0usize..8, 0..3), proptest::collection::vec(0u64..5_000, 0..4))
            .prop_map(|(cancels, delays)| ScriptStep { cancels, delays })
    }

    proptest! {
        /// Differential: random interleaved timer schedule/cancel/fire
        /// scripts observe the identical `(time, token)` trace and
        /// counters on the timing-wheel simulator and the heap-based
        /// reference (which also uses the historical tombstone-set
        /// cancellation path).
        #[test]
        fn timer_scripts_match_reference(
            script in proptest::collection::vec(arb_script_step(), 0..30),
        ) {
            fn run(script: Vec<ScriptStep>, reference: bool) -> (Vec<(SimTime, u64)>, NetCounters) {
                let topo = crate::topology::presets::paper_region(1);
                let nodes = vec![ScriptNode::new(script)];
                let mut sim = if reference {
                    Sim::new_reference(topo, nodes, 77)
                } else {
                    Sim::new(topo, nodes, 77)
                };
                sim.run_until_quiescent(SimTime::MAX);
                let fired = sim.node(NodeId(0)).fired.clone();
                (fired, sim.counters())
            }
            let optimized = run(script.clone(), false);
            let reference = run(script, true);
            prop_assert_eq!(optimized, reference);
        }
    }
}
