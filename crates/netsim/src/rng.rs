//! Deterministic randomness plumbing.
//!
//! Every run of a simulation is driven by a single experiment seed. Per-node
//! random number generators are derived from that seed with [SplitMix64] so
//! that (a) the same seed always reproduces the same run and (b) adding a
//! node does not perturb the random streams of existing nodes.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! ```
//! use rrmp_netsim::rng::SeedSequence;
//! use rand::Rng;
//!
//! let mut seq = SeedSequence::new(42);
//! let mut a = seq.rng_for(0);
//! let mut b = seq.rng_for(1);
//! let (x, y): (u64, u64) = (a.gen(), b.gen());
//! assert_ne!(x, y); // independent streams
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Advances a SplitMix64 state and returns the next output word.
///
/// SplitMix64 is the canonical seed-expansion function: equidistributed,
/// passes BigCrush, and trivially portable. We use it only to derive seeds
/// for [`StdRng`] streams, never as the protocol RNG itself.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent, reproducible RNG streams from one experiment seed.
///
/// Stream `i` is a function of `(seed, i)` only: the order in which streams
/// are requested does not matter, and requesting the same stream twice
/// returns an identical generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    seed: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SeedSequence { seed }
    }

    /// The root experiment seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives the 64-bit sub-seed for stream `stream`.
    #[must_use]
    pub fn subseed(&self, stream: u64) -> u64 {
        // Mix the root seed and stream index through two SplitMix64 steps so
        // that adjacent streams share no low-bit structure.
        let mut s = self.seed ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(stream.wrapping_add(1));
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        a ^ b.rotate_left(32)
    }

    /// A reproducible [`StdRng`] for stream `stream`.
    #[must_use]
    pub fn rng_for(&self, stream: u64) -> StdRng {
        StdRng::seed_from_u64(self.subseed(stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 0 from the canonical C implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_stream_is_identical() {
        let seq = SeedSequence::new(7);
        let mut a = seq.rng_for(3);
        let mut b = seq.rng_for(3);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_streams_differ() {
        let seq = SeedSequence::new(7);
        let x: u64 = seq.rng_for(0).gen();
        let y: u64 = seq.rng_for(1).gen();
        let z: u64 = seq.rng_for(2).gen();
        assert!(x != y || y != z, "streams should not collide");
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = SeedSequence::new(1).rng_for(0).gen();
        let b: u64 = SeedSequence::new(2).rng_for(0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn subseed_is_order_independent() {
        let seq = SeedSequence::new(99);
        let s5_first = seq.subseed(5);
        let _ = seq.subseed(1);
        let _ = seq.subseed(9);
        assert_eq!(seq.subseed(5), s5_first);
    }
}
