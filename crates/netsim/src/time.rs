//! Simulated time.
//!
//! The simulator measures time in integer **microseconds** to keep event
//! ordering exact and reproducible (no floating-point drift). Two newtypes
//! are provided: [`SimTime`], an absolute instant since the start of a
//! simulation, and [`SimDuration`], a span between instants.
//!
//! The microsecond is also the scheduler's native granularity: the
//! timing-wheel event queue (`rrmp_netsim::event`) uses one microsecond as
//! its level-0 tick, so every representable instant is an exact wheel
//! position and no rounding can reorder events.
//!
//! ```
//! use rrmp_netsim::time::{SimTime, SimDuration};
//!
//! let t = SimTime::ZERO + SimDuration::from_millis(10);
//! assert_eq!(t.as_micros(), 10_000);
//! assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(10));
//! ```

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in microseconds since the start of
/// the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (useful as an "infinite" deadline).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the simulation start.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the simulation start.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the simulation start.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since the simulation start.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the simulation start, as a float (for reporting).
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the simulation start, as a float (for reporting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `micros` microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `millis` milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Length of the span in microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length of the span in milliseconds, as a float (for reporting).
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Length of the span in seconds, as a float (for reporting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Whether the span is empty.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative float, rounding to the nearest
    /// microsecond. Useful for jitter and back-off computations.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `factor` is negative or not finite.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor.is_finite() && factor >= 0.0, "invalid factor {factor}");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Integer division that never panics: returns [`SimDuration::ZERO`]
    /// when `divisor` is zero.
    #[must_use]
    pub const fn checked_div_or_zero(self, divisor: u64) -> SimDuration {
        match self.0.checked_div(divisor) {
            Some(v) => SimDuration(v),
            None => SimDuration(0),
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        std::time::Duration::from_micros(d.as_micros())
    }
}

impl From<std::time::Duration> for SimDuration {
    fn from(d: std::time::Duration) -> Self {
        SimDuration::from_micros(d.as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert!((SimTime::from_millis(1).as_millis_f64() - 1.0).abs() < 1e-9);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(4);
        assert_eq!(t + d, SimTime::from_millis(14));
        assert_eq!(t - d, SimTime::from_millis(6));
        assert_eq!(t - SimTime::from_millis(4), SimDuration::from_millis(6));
        assert_eq!(d + d, SimDuration::from_millis(8));
        assert_eq!(d * 3, SimDuration::from_millis(12));
        assert_eq!(d / 2, SimDuration::from_millis(2));
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(1));
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_micros(15));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(0.26), SimDuration::from_micros(3));
    }

    #[test]
    fn checked_div_or_zero_handles_zero() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.checked_div_or_zero(0), SimDuration::ZERO);
        assert_eq!(d.checked_div_or_zero(2), SimDuration::from_micros(5));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", SimTime::from_millis(1)), "1.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
    }

    #[test]
    fn std_duration_roundtrip() {
        let d = SimDuration::from_micros(12345);
        let std: std::time::Duration = d.into();
        assert_eq!(SimDuration::from(std), d);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }
}
