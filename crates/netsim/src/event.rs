//! The discrete-event queue.
//!
//! Two implementations share one contract — events pop in
//! `(time, insertion sequence)` order, so two events scheduled for the same
//! instant are always delivered in the order they were scheduled:
//!
//! * [`EventQueue`] — the production queue: a hierarchical **timing wheel**
//!   (calendar queue) with O(1) amortized schedule and pop at high event
//!   rates. Payloads live in a generation-counted slab; the wheel itself
//!   moves only small plain-data handles when cascading between levels.
//! * [`ReferenceEventQueue`] — the retained pre-refactor `BinaryHeap`
//!   implementation. It is the executable specification: the differential
//!   proptests below (and the trace-equality tests one layer up) assert
//!   that both queues produce byte-identical pop sequences.
//!
//! ## Wheel geometry
//!
//! Six levels of 64 slots, level-0 granularity of one simulated microsecond
//! (the clock's native tick): level *l* slots span `64^l` ticks, so the
//! wheel covers `64^6` ticks ≈ 19.1 simulated hours ahead of its cursor.
//! Events beyond that horizon wait in a small overflow heap and migrate
//! into the wheel as the cursor advances — far-future events (idle-timer
//! sentinels, `SimTime::MAX` deadlines) are rare, so the heap stays tiny.
//!
//! Scheduling hashes the event into `levels[level_of(delta)]` by its
//! absolute tick; popping advances the cursor directly to the next occupied
//! slot (per-level occupancy bitmaps make the scan six `u64` inspections),
//! cascading higher-level slots downward until a level-0 slot — one exact
//! tick — drains into a sorted pending run. Same-instant ties are resolved
//! by sorting that run on the insertion sequence, reproducing the heap's
//! order exactly.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// The shared event-scheduler contract: events pop in `(time, insertion
/// sequence)` order.
///
/// Implemented by the production timing wheel ([`EventQueue`]) and the
/// retained heap-based reference ([`ReferenceEventQueue`]), so every host
/// of the wheel — the simulator drivers here, the UDP runtime's timer
/// queue in `rrmp-udp`, the differential benchmarks — programs against
/// one interface and one implementation instead of growing private timer
/// heaps.
///
/// ## Cancellation is lazy
///
/// The contract deliberately has no `cancel`: a calendar queue cannot
/// remove an arbitrary event without a per-event handle map, and none of
/// the hosts need eager removal. A host that multiplexes many owners over
/// one wheel (the UDP runtime hosts every member of an event-loop thread
/// on a single queue) tags each event with the owner's generation and
/// discards stale fires at pop time — the same scheme the simulator's
/// timer slab uses.
pub trait Scheduler<E> {
    /// Schedules `event` to fire at `at`.
    fn schedule(&mut self, at: SimTime, event: E);

    /// Removes and returns the earliest event, or `None` if empty.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// Pops the earliest event only if it fires at or before `limit` — a
    /// peek-then-pop, never a pop-and-re-push.
    fn pop_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, E)>;

    /// The firing time of the earliest pending event, if any.
    fn peek_time(&self) -> Option<SimTime>;

    /// How long after `now` the earliest event fires: `None` when the
    /// queue is empty, [`crate::time::SimDuration::ZERO`] when it is
    /// already due. Hosts that block on an external wait (the UDP
    /// runtime's `poll(2)` timeout) use this to bound the wait by the
    /// next deadline without duplicating the saturation logic.
    fn next_due_in(&self, now: SimTime) -> Option<crate::time::SimDuration> {
        self.peek_time().map(|at| at.saturating_since(now))
    }

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all pending events, keeping allocations where the
    /// implementation can.
    fn clear(&mut self);
}

impl<E> Scheduler<E> for EventQueue<E> {
    fn schedule(&mut self, at: SimTime, event: E) {
        EventQueue::schedule(self, at, event);
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
    fn pop_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        EventQueue::pop_at_or_before(self, limit)
    }
    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn clear(&mut self) {
        EventQueue::clear(self);
    }
}

impl<E> Scheduler<E> for ReferenceEventQueue<E> {
    fn schedule(&mut self, at: SimTime, event: E) {
        ReferenceEventQueue::schedule(self, at, event);
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        ReferenceEventQueue::pop(self)
    }
    fn pop_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        ReferenceEventQueue::pop_at_or_before(self, limit)
    }
    fn peek_time(&self) -> Option<SimTime> {
        ReferenceEventQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        ReferenceEventQueue::len(self)
    }
    fn clear(&mut self) {
        ReferenceEventQueue::clear(self);
    }
}

/// log2 of the slot count per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels.
const LEVELS: usize = 6;
/// Ticks (microseconds) the wheel covers ahead of its cursor.
const WHEEL_RANGE: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// A 24-byte plain-data handle stored in the wheel: the firing tick, the
/// global insertion sequence (the determinism tiebreak), and the slab slot
/// holding the payload plus that slot's generation at insertion time.
///
/// The derived ordering is lexicographic `(at, seq, …)`; `seq` is unique,
/// so `(at, seq)` already totally orders entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    at: u64,
    seq: u64,
    slot: u32,
    gen: u32,
}

/// Slab of event payloads with per-slot generation counters.
///
/// A slot's generation is odd while occupied and even while free (the same
/// scheme as the simulator's timer slab); `remove` asserts the handle's
/// generation so a stale or double-freed handle is caught immediately.
/// Memory is bounded by the peak number of *concurrently pending* events.
#[derive(Debug)]
struct PayloadSlab<E> {
    slots: Vec<(u32, Option<E>)>,
    free: Vec<u32>,
}

impl<E> PayloadSlab<E> {
    fn new() -> Self {
        PayloadSlab { slots: Vec::new(), free: Vec::new() }
    }

    fn insert(&mut self, event: E) -> (u32, u32) {
        match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.0 = s.0.wrapping_add(1);
                debug_assert!(s.0 & 1 == 1, "occupied generation must be odd");
                debug_assert!(s.1.is_none(), "free-list slot still occupied");
                s.1 = Some(event);
                (slot, s.0)
            }
            None => {
                self.slots.push((1, Some(event)));
                ((self.slots.len() - 1) as u32, 1)
            }
        }
    }

    fn remove(&mut self, slot: u32, gen: u32) -> E {
        let s = &mut self.slots[slot as usize];
        assert_eq!(s.0, gen, "stale payload-slab handle");
        s.0 = s.0.wrapping_add(1);
        self.free.push(slot);
        s.1.take().expect("occupied slab slot holds a payload")
    }

    /// Drops all payloads but keeps the slot and free-list allocations.
    fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }

    fn capacity(&self) -> usize {
        self.slots.capacity()
    }
}

/// The production event queue: a hierarchical timing wheel.
///
/// Orders events by `(time, insertion sequence)` — identical observable
/// behavior to [`ReferenceEventQueue`], at O(1) amortized cost per
/// schedule/pop instead of O(log n).
///
/// ```
/// use rrmp_netsim::event::EventQueue;
/// use rrmp_netsim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "b");
/// q.schedule(SimTime::from_millis(1), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `LEVELS * SLOTS` buckets, flattened; bucket `level * SLOTS + slot`.
    levels: Vec<Vec<Entry>>,
    /// One occupancy bit per slot, per level.
    occupied: [u64; LEVELS],
    /// All entries at ticks `<= cursor` have been drained into `pending`.
    cursor: u64,
    /// The next entries to pop, sorted descending by `(at, seq)` so the
    /// minimum pops from the back. All pending entries are at ticks
    /// `<= cursor`, so they precede everything still in the wheel.
    pending: Vec<Entry>,
    /// The exact firing tick of the earliest event, `None` when empty —
    /// maintained incrementally so [`EventQueue::peek_time`] never has to
    /// disturb the wheel. Scheduling takes a running minimum; popping
    /// restores it from the settled pending run.
    next_time: Option<u64>,
    /// Entries beyond the wheel horizon, ordered by `(at, seq)`.
    overflow: BinaryHeap<Reverse<Entry>>,
    /// Event payloads; the wheel only moves [`Entry`] handles.
    slab: PayloadSlab<E>,
    next_seq: u64,
    len: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            levels: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            cursor: 0,
            pending: Vec::new(),
            next_time: None,
            overflow: BinaryHeap::new(),
            slab: PayloadSlab::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let (slot, gen) = self.slab.insert(event);
        let entry = Entry { at: at.as_micros(), seq, slot, gen };
        self.len += 1;
        self.next_time = Some(self.next_time.map_or(entry.at, |t| t.min(entry.at)));
        if entry.at <= self.cursor {
            // At or before the cursor ("now", or a past instant): straight
            // into the sorted pending run.
            let pos = self.pending.partition_point(|p| *p > entry);
            self.pending.insert(pos, entry);
        } else if entry.at - self.cursor >= WHEEL_RANGE {
            self.overflow.push(Reverse(entry));
        } else {
            self.insert_wheel(entry);
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.pending.is_empty() {
            self.settle();
        }
        let entry = self.pending.pop()?;
        self.len -= 1;
        let event = self.slab.remove(entry.slot, entry.gen);
        if self.pending.is_empty() {
            self.settle();
        }
        self.next_time = self.pending.last().map(|e| e.at);
        Some((SimTime::from_micros(entry.at), event))
    }

    /// Pops the earliest event only if it fires at or before `limit`.
    ///
    /// This is the horizon check `Sim::run_until` uses: a single peek of
    /// the pending run — an event past the horizon is never removed and
    /// re-inserted, and the wheel structure is not disturbed.
    pub fn pop_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? > limit {
            return None;
        }
        self.pop()
    }

    /// The firing time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.next_time.map(SimTime::from_micros)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled on this queue.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drops all pending events **without releasing allocations**: slot
    /// vectors, the pending run, the overflow heap, and the payload slab
    /// all keep their capacity, so a cleared queue re-fills without
    /// re-growing from empty (important for `Sim` reuse across runs).
    pub fn clear(&mut self) {
        for bucket in &mut self.levels {
            bucket.clear();
        }
        self.occupied = [0; LEVELS];
        self.cursor = 0;
        self.pending.clear();
        self.next_time = None;
        self.overflow.clear();
        self.slab.clear();
        self.len = 0;
    }

    /// A capacity proxy: the number of payload slots plus wheel/pending
    /// entry capacity currently allocated. Used by tests and benches to
    /// assert that [`EventQueue::clear`] keeps memory warm.
    #[must_use]
    pub fn allocated_capacity(&self) -> usize {
        self.slab.capacity()
            + self.pending.capacity()
            + self.levels.iter().map(Vec::capacity).sum::<usize>()
    }

    /// Hashes `entry` (which must satisfy `cursor <= at < cursor + range`)
    /// into its wheel level by absolute tick.
    fn insert_wheel(&mut self, entry: Entry) {
        let delta = entry.at - self.cursor;
        debug_assert!(delta < WHEEL_RANGE);
        let level =
            if delta == 0 { 0 } else { (63 - delta.leading_zeros() as usize) / SLOT_BITS as usize };
        let slot = ((entry.at >> (SLOT_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize;
        self.occupied[level] |= 1 << slot;
        self.levels[level * SLOTS + slot].push(entry);
    }

    /// Re-establishes the pending invariant: advances the cursor to the
    /// next occupied slot (migrating newly in-range overflow entries and
    /// cascading higher levels down) and drains that slot — one exact tick
    /// — into the sorted pending run. No-op if events are already pending
    /// or the queue is empty.
    fn settle(&mut self) {
        if !self.pending.is_empty() {
            return;
        }
        loop {
            if self.occupied == [0; LEVELS] {
                // Wheel empty: jump the cursor to the overflow front so
                // far-future events come within range.
                let Some(&Reverse(front)) = self.overflow.peek() else { return };
                debug_assert!(front.at >= self.cursor);
                self.cursor = front.at;
            }
            while let Some(&Reverse(front)) = self.overflow.peek() {
                if front.at - self.cursor >= WHEEL_RANGE {
                    break;
                }
                self.overflow.pop();
                self.insert_wheel(front);
            }
            // The earliest occupied slot across levels; on a tick-start
            // tie a higher level wins so its entries cascade down first.
            let mut best: Option<(u64, usize, usize)> = None;
            for level in 0..LEVELS {
                let bits = self.occupied[level];
                if bits == 0 {
                    continue;
                }
                let shift = SLOT_BITS as usize * level;
                let offset = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as u32;
                let ahead = bits >> offset;
                // Slots behind the cursor's offset hold *next-rotation*
                // entries. The cursor's own slot is current-rotation only
                // while the cursor sits exactly on its start (remainder
                // zero — always true at level 0); once the cursor is
                // inside the slot's span, its current-rotation range has
                // been cascaded away and an occupied own slot means
                // entries one full rotation ahead.
                let own_is_current = self.cursor & ((1u64 << shift) - 1) == 0;
                let current = if own_is_current { ahead } else { ahead >> 1 };
                let (idx, rotations) = if current != 0 {
                    let first = if own_is_current { offset } else { offset + 1 };
                    (first + current.trailing_zeros(), 0)
                } else {
                    (bits.trailing_zeros(), 1)
                };
                let window =
                    self.cursor >> (shift + SLOT_BITS as usize) << (shift + SLOT_BITS as usize);
                let tick = window + ((u64::from(idx) + rotations * SLOTS as u64) << shift);
                if best.is_none_or(|(t, l, _)| tick < t || (tick == t && level > l)) {
                    best = Some((tick, level, idx as usize));
                }
            }
            let (tick, level, idx) = best.expect("wheel holds an entry after overflow migration");
            debug_assert!(tick >= self.cursor);
            self.cursor = tick;
            self.occupied[level] &= !(1 << idx);
            // Drain the bucket in place and hand the (now empty) vector
            // back to the same bucket, so capacity stays where the
            // workload put it and cleared queues re-fill without growing.
            let mut moved = std::mem::take(&mut self.levels[level * SLOTS + idx]);
            if level == 0 {
                // One exact tick; sort descending so the minimum (lowest
                // seq) pops first from the back.
                self.pending.extend_from_slice(&moved);
                moved.clear();
                self.levels[level * SLOTS + idx] = moved;
                self.pending.sort_unstable_by(|a, b| b.cmp(a));
                return;
            }
            // Cascade a higher-level slot into finer levels.
            for entry in moved.drain(..) {
                self.insert_wheel(entry);
            }
            self.levels[level * SLOTS + idx] = moved;
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The retained pre-refactor event queue: a `BinaryHeap` ordered by
/// `(time, insertion sequence)`.
///
/// Kept as the executable specification of the ordering contract: the
/// differential proptests in this module and the trace-equality tests in
/// `rrmp-core` assert that [`EventQueue`] (the timing wheel) pops the
/// byte-identical sequence. `Sim::new_reference` runs on this queue.
#[derive(Debug)]
pub struct ReferenceEventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> ReferenceEventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        ReferenceEventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Pops the earliest event only if it fires at or before `limit` —
    /// a peek-then-pop, never a pop-and-re-push.
    pub fn pop_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? > limit {
            return None;
        }
        self.pop()
    }

    /// The firing time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drops all pending events (the heap keeps its capacity).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for ReferenceEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 5);
        q.schedule(t(1), 1);
        q.schedule(t(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn next_due_in_saturates_on_overdue_events() {
        use crate::time::SimDuration;
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(Scheduler::next_due_in(&q, t(0)), None);
        q.schedule(t(10), 1);
        assert_eq!(Scheduler::next_due_in(&q, t(4)), Some(SimDuration::from_millis(6)));
        // An already-due event reports ZERO, never underflows.
        assert_eq!(Scheduler::next_due_in(&q, t(15)), Some(SimDuration::ZERO));
        // The reference queue shares the default implementation.
        let mut r: ReferenceEventQueue<u8> = ReferenceEventQueue::new();
        r.schedule(t(10), 1);
        assert_eq!(Scheduler::next_due_in(&r, t(4)), Some(SimDuration::from_millis(6)));
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(t(9), ());
        q.schedule(t(2), ());
        assert_eq!(q.peek_time(), Some(t(2)));
        let (at, ()) = q.pop().unwrap();
        assert_eq!(at, t(2));
        assert_eq!(q.peek_time(), Some(t(9)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn clear_keeps_allocations_warm() {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_micros(i * 131 % 50_000), i);
        }
        while q.pop().is_some() {}
        let warmed = q.allocated_capacity();
        assert!(warmed > 0);
        q.clear();
        assert_eq!(q.allocated_capacity(), warmed, "clear must not shed capacity");
        // Refilling the same workload must not grow the queue further.
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_micros(i * 131 % 50_000), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.allocated_capacity(), warmed, "warmed queue re-grew");
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "late");
        q.schedule(t(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(t(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "late");
        q.schedule(t(2), "early");
        assert_eq!(q.pop_at_or_before(t(5)).unwrap().1, "early");
        assert_eq!(q.pop_at_or_before(t(5)), None);
        assert_eq!(q.len(), 1, "the late event must not be disturbed");
        assert_eq!(q.pop_at_or_before(t(10)).unwrap().1, "late");
    }

    #[test]
    fn schedule_at_or_before_cursor_still_pops_in_order() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 10);
        assert_eq!(q.pop().unwrap().1, 10);
        // The cursor sits at 10ms now; earlier instants must still pop
        // first among what remains.
        q.schedule(t(20), 20);
        q.schedule(t(3), 3);
        q.schedule(t(7), 7);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![3, 7, 20]);
    }

    #[test]
    fn own_offset_slot_holds_next_rotation_entries() {
        // Regression: advance the cursor into the middle of a level-1
        // window, then schedule an event that hashes into the slot at the
        // cursor's own level-1 offset but one rotation ahead. The settle
        // scan must read that slot as a next-rotation candidate, not as a
        // tick behind the cursor.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(100), "a");
        assert_eq!(q.pop().unwrap().1, "a"); // cursor now at tick 100
        q.schedule(SimTime::from_micros(4160), "b"); // level-1 slot 1 == offset
        q.schedule(SimTime::from_micros(150), "c");
        assert_eq!(q.pop().unwrap(), (SimTime::from_micros(150), "c"));
        assert_eq!(q.pop().unwrap(), (SimTime::from_micros(4160), "b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_overflow_ticks_pop_correctly() {
        let mut q = EventQueue::new();
        // Beyond the 64^6-tick wheel horizon, including the maximum instant.
        q.schedule(SimTime::MAX, "max");
        q.schedule(SimTime::from_secs(200_000), "far");
        q.schedule(t(1), "near");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "max");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn reference_queue_same_contract() {
        let mut q = ReferenceEventQueue::new();
        q.schedule(t(5), 5);
        q.schedule(t(1), 1);
        assert_eq!(q.peek_time(), Some(t(1)));
        assert_eq!(q.pop_at_or_before(t(0)), None);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.scheduled_total(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::time::SimTime;
    use proptest::prelude::*;

    proptest! {
        /// Popping always yields a non-decreasing time sequence, and events
        /// scheduled at equal times preserve insertion order.
        #[test]
        fn pop_order_is_stable_sort(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &ms) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(ms), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
            expected.sort(); // stable on (time, index)
            let got: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop().map(|(t, i)| (t.as_micros(), i))).collect();
            prop_assert_eq!(got, expected);
        }
    }

    /// One step of a random queue workload: schedule at an absolute time
    /// drawn from a band (dense ties, sim-scale, or past-the-wheel-horizon
    /// overflow), schedule relative to the pop frontier (the pattern real
    /// simulations produce, which exercises mid-slot cursor positions),
    /// or pop.
    #[derive(Debug, Clone)]
    enum QueueOp {
        Schedule(u64),
        ScheduleAfterFrontier(u64),
        Pop,
    }

    fn arb_queue_op() -> impl Strategy<Value = QueueOp> {
        prop_oneof![
            // Dense band: many same-instant ties.
            (0u64..40).prop_map(QueueOp::Schedule),
            // Simulation-scale micros (multi-level wheel traffic).
            (0u64..50_000_000).prop_map(QueueOp::Schedule),
            // Far-future overflow ticks, beyond the 64^6 wheel horizon.
            (crate::event::WHEEL_RANGE..u64::MAX).prop_map(QueueOp::Schedule),
            // Timer-like relative delays from the advancing frontier,
            // spanning several wheel levels.
            (0u64..300_000).prop_map(QueueOp::ScheduleAfterFrontier),
            Just(QueueOp::Pop),
            Just(QueueOp::Pop),
            Just(QueueOp::Pop),
        ]
    }

    proptest! {
        /// Differential: random interleaved schedule/pop sequences pop the
        /// identical `(time, seq-as-payload, event)` stream from the timing
        /// wheel and the reference heap, including same-instant ties and
        /// far-future overflow ticks.
        #[test]
        fn wheel_matches_reference_heap(
            ops in proptest::collection::vec(arb_queue_op(), 0..400),
        ) {
            let mut wheel = EventQueue::new();
            let mut heap = ReferenceEventQueue::new();
            let mut frontier = 0u64;
            for (i, op) in ops.iter().enumerate() {
                match *op {
                    QueueOp::Schedule(us) => {
                        wheel.schedule(SimTime::from_micros(us), i);
                        heap.schedule(SimTime::from_micros(us), i);
                    }
                    QueueOp::ScheduleAfterFrontier(delta) => {
                        let us = frontier.saturating_add(delta);
                        wheel.schedule(SimTime::from_micros(us), i);
                        heap.schedule(SimTime::from_micros(us), i);
                    }
                    QueueOp::Pop => {
                        let (w, h) = (wheel.pop(), heap.pop());
                        if let Some((t, _)) = h {
                            frontier = t.as_micros();
                        }
                        prop_assert_eq!(w, h);
                    }
                }
                prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                prop_assert_eq!(wheel.len(), heap.len());
            }
            // Drain both completely; the tails must agree too.
            loop {
                let (w, h) = (wheel.pop(), heap.pop());
                prop_assert_eq!(w, h);
                if h.is_none() {
                    break;
                }
            }
            prop_assert_eq!(wheel.scheduled_total(), heap.scheduled_total());
        }
    }
}
