//! The discrete-event queue.
//!
//! A [`EventQueue`] orders events by `(time, insertion sequence)`. The
//! sequence tiebreak makes simulations fully deterministic: two events
//! scheduled for the same instant are always delivered in the order they
//! were scheduled, regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queue for discrete-event simulation.
///
/// ```
/// use rrmp_netsim::event::EventQueue;
/// use rrmp_netsim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "b");
/// q.schedule(SimTime::from_millis(1), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// The firing time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 5);
        q.schedule(t(1), 1);
        q.schedule(t(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(t(9), ());
        q.schedule(t(2), ());
        assert_eq!(q.peek_time(), Some(t(2)));
        let (at, ()) = q.pop().unwrap();
        assert_eq!(at, t(2));
        assert_eq!(q.peek_time(), Some(t(9)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "late");
        q.schedule(t(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(t(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::time::SimTime;
    use proptest::prelude::*;

    proptest! {
        /// Popping always yields a non-decreasing time sequence, and events
        /// scheduled at equal times preserve insertion order.
        #[test]
        fn pop_order_is_stable_sort(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &ms) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(ms), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
            expected.sort(); // stable on (time, index)
            let got: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop().map(|(t, i)| (t.as_micros(), i))).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
