//! Deterministic, schedulable fault injection at the network edge.
//!
//! A [`FaultPlan`] is a static timeline of fault episodes — region↔region
//! partitions, link blackouts, node crashes and stalls, loss-burst
//! episodes that override the base [`LossModel`](crate::loss::LossModel),
//! and bounded packet duplication — consulted by both engines
//! ([`Sim`](crate::sim::Sim) and [`ShardedSim`](crate::shard::ShardedSim))
//! for every unicast copy at transmit time.
//!
//! ## Determinism
//!
//! Every decision a plan makes is a **pure function** of
//! `(plan, send time, from, to)`:
//!
//! * partitions, blackouts, crashes, and stalls are plain window checks —
//!   no randomness at all;
//! * the probabilistic episodes (loss bursts, duplication) draw from a
//!   stateless splitmix-style hash oracle over
//!   `(plan seed, episode, send time, from, to)` instead of any engine
//!   RNG stream. No generator state means no dependence on how many
//!   draws other packets consumed — the verdict for one packet is the
//!   same whether the run is sequential, sharded over 2 shards, or
//!   sharded over 16.
//!
//! Because a fault can only *drop* a packet or *add* a strictly later
//! duplicate copy (`arrive + extra_delay`), the conservative lookahead
//! rule of the sharded engine is untouched: no event is ever created
//! earlier than the no-fault schedule would have created it, so window
//! boundaries — and therefore traces — stay byte-identical at every
//! shard count.
//!
//! ## Semantics
//!
//! * **Partition** `a ↔ b` over `[from, until)`: every packet between the
//!   two regions (either direction) is dropped while the window is
//!   active. The `until` edge is the *heal* instant.
//! * **Blackout** of link `a ↔ b`: both directions of one node pair drop.
//! * **Crash** of `n` at `t`: all traffic to or from `n` drops forever
//!   after `t` (the protocol-level crash — stop processing, drop buffers —
//!   is the host harness's half; see `RrmpNetwork::arm_fault_plan`).
//! * **Stall** of `n` over `[from, until)`: like a crash that heals — the
//!   NIC goes dark but the process survives; on resume the node has
//!   missed every packet of the window and must recover via the
//!   protocol.
//! * **Loss burst** `p` over `[from, until)` (optionally scoped to one
//!   destination region): while active, the burst **overrides** the base
//!   unicast loss model — the packet's fate is decided by the oracle
//!   draw against `p`, and the engine skips its own loss-model draw.
//! * **Duplication** `p` + `extra_delay`: a surviving packet is, with
//!   probability `p`, delivered twice — the second copy `extra_delay`
//!   after the first.
//!
//! Windows are half-open `[from, until)` and evaluated at **send time**:
//! a packet sent just before a partition heals is still lost even though
//! it would have arrived after the heal (the wire was cut when it
//! entered).
//!
//! ## The env knob
//!
//! [`FaultPlan::from_env`] parses `RRMP_FAULTS`, mirroring
//! `RRMP_SIM_SHARDS` / `RRMP_POLICY`: unset means no plan, an invalid
//! value panics (a chaos job that silently fell back to a fault-free run
//! would go green while testing nothing). See [`FaultPlan::parse`] for
//! the format.

use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, RegionId, Topology};

/// Half-open activity window `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First instant the episode is active.
    pub from: SimTime,
    /// First instant after the episode — the heal point.
    pub until: SimTime,
}

impl Window {
    /// Builds a window; `from` must precede `until`.
    ///
    /// # Panics
    ///
    /// Panics if `from >= until` (an empty fault window is always a
    /// script bug, not a degenerate no-op).
    #[must_use]
    pub fn new(from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "fault window must be non-empty: {from} >= {until}");
        Window { from, until }
    }

    /// Whether `t` falls inside the window.
    #[must_use]
    pub fn contains(self, t: SimTime) -> bool {
        t >= self.from && t < self.until
    }
}

/// A loss-burst episode: while active, unicast copies (optionally only
/// those destined for `region`) are dropped with probability `p`,
/// overriding the base loss model.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Burst {
    p: f64,
    region: Option<RegionId>,
    window: Window,
}

/// A duplication episode: surviving copies are duplicated with
/// probability `p`, the extra copy arriving `extra` later.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Dup {
    p: f64,
    extra: SimDuration,
    window: Window,
}

/// A deterministic timeline of fault episodes applied at the network
/// edge. Build one with the chainable constructors, or parse the
/// `RRMP_FAULTS` format via [`FaultPlan::parse`] / [`FaultPlan::from_env`].
///
/// ```
/// use rrmp_netsim::fault::FaultPlan;
/// use rrmp_netsim::time::{SimDuration, SimTime};
/// use rrmp_netsim::topology::{presets, NodeId, RegionId};
///
/// let plan = FaultPlan::new(7)
///     .partition(RegionId(0), RegionId(1), SimTime::from_millis(100), SimTime::from_millis(400))
///     .crash(NodeId(4), SimTime::from_millis(250));
/// // Two regions of four nodes each: 0-3 in region 0, 4-7 in region 1.
/// let topo = presets::region_tree(4, 1, 1, SimDuration::from_millis(25));
/// // Cross-partition traffic drops mid-window, flows again after the heal.
/// assert_eq!(plan.drops(SimTime::from_millis(200), NodeId(0), NodeId(5), &topo), Some(true));
/// assert_eq!(plan.drops(SimTime::from_millis(450), NodeId(0), NodeId(5), &topo), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    partitions: Vec<(RegionId, RegionId, Window)>,
    blackouts: Vec<(NodeId, NodeId, Window)>,
    stalls: Vec<(NodeId, Window)>,
    crashes: Vec<(NodeId, SimTime)>,
    bursts: Vec<Burst>,
    dups: Vec<Dup>,
}

/// Stateless splitmix64 finalizer — the hash oracle's mixing step.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

const SALT_BURST: u64 = 0xB0B5_7EED;
const SALT_DUP: u64 = 0xD0DD_7EED;

impl FaultPlan {
    /// An empty plan whose probabilistic episodes will draw from the hash
    /// oracle keyed by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Cuts all traffic between regions `a` and `b` (both directions)
    /// over `[from, until)`; `until` is the heal instant.
    #[must_use]
    pub fn partition(mut self, a: RegionId, b: RegionId, from: SimTime, until: SimTime) -> Self {
        assert_ne!(a, b, "a region cannot partition from itself");
        self.partitions.push((a, b, Window::new(from, until)));
        self
    }

    /// Cuts the link between nodes `a` and `b` (both directions) over
    /// `[from, until)`.
    #[must_use]
    pub fn blackout(mut self, a: NodeId, b: NodeId, from: SimTime, until: SimTime) -> Self {
        assert_ne!(a, b, "a blackout needs two distinct endpoints");
        self.blackouts.push((a, b, Window::new(from, until)));
        self
    }

    /// Disconnects `node` entirely over `[from, until)` — every packet to
    /// or from it drops — then heals.
    #[must_use]
    pub fn stall(mut self, node: NodeId, from: SimTime, until: SimTime) -> Self {
        self.stalls.push((node, Window::new(from, until)));
        self
    }

    /// Permanently disconnects `node` from `at` onward. The host harness
    /// pairs this with the protocol-level crash (drop buffers, stop
    /// processing).
    #[must_use]
    pub fn crash(mut self, node: NodeId, at: SimTime) -> Self {
        self.crashes.push((node, at));
        self
    }

    /// A loss-burst episode over `[from, until)`: unicast copies drop
    /// with probability `p`, **overriding** the base loss model while
    /// active. `region` scopes the burst to packets *destined for* that
    /// region; `None` applies it everywhere.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[must_use]
    pub fn loss_burst(
        mut self,
        p: f64,
        region: Option<RegionId>,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!((0.0..=1.0).contains(&p), "burst probability out of range: {p}");
        self.bursts.push(Burst { p, region, window: Window::new(from, until) });
        self
    }

    /// A duplication episode over `[from, until)`: each surviving unicast
    /// copy is duplicated with probability `p`, the extra copy arriving
    /// `extra` after the first.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[must_use]
    pub fn duplicate(mut self, p: f64, extra: SimDuration, from: SimTime, until: SimTime) -> Self {
        assert!((0.0..=1.0).contains(&p), "duplication probability out of range: {p}");
        self.dups.push(Dup { p, extra, window: Window::new(from, until) });
        self
    }

    /// Whether the plan contains no episodes at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
            && self.blackouts.is_empty()
            && self.stalls.is_empty()
            && self.crashes.is_empty()
            && self.bursts.is_empty()
            && self.dups.is_empty()
    }

    /// The scheduled node crashes, for the harness to mirror at the
    /// protocol layer.
    pub fn crashes(&self) -> impl Iterator<Item = (NodeId, SimTime)> + '_ {
        self.crashes.iter().copied()
    }

    /// Every instant at which connectivity *improves* — the `until` edge
    /// of each partition, blackout, and stall window — sorted and
    /// deduplicated. The harness schedules heal notifications (recovery
    /// re-arming) at these times.
    #[must_use]
    pub fn heal_times(&self) -> Vec<SimTime> {
        let mut ts: Vec<SimTime> = self
            .partitions
            .iter()
            .map(|&(_, _, w)| w.until)
            .chain(self.blackouts.iter().map(|&(_, _, w)| w.until))
            .chain(self.stalls.iter().map(|&(_, w)| w.until))
            .collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// The latest instant any episode is still active (crashes are
    /// permanent, so a plan with crashes has no quiet point after them —
    /// this returns the crash time itself). `SimTime::ZERO` for an empty
    /// plan. Useful for sizing chaos-run horizons.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        self.partitions
            .iter()
            .map(|&(_, _, w)| w.until)
            .chain(self.blackouts.iter().map(|&(_, _, w)| w.until))
            .chain(self.stalls.iter().map(|&(_, w)| w.until))
            .chain(self.bursts.iter().map(|b| b.window.until))
            .chain(self.dups.iter().map(|d| d.window.until))
            .chain(self.crashes.iter().map(|&(_, at)| at))
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// The fault verdict for one unicast copy sent at `now` from `from`
    /// to `to`:
    ///
    /// * `Some(true)` — a fault drops it (partition, blackout, crash,
    ///   stall, or an active loss burst's oracle draw);
    /// * `Some(false)` — an active loss burst decided *deliver*, which
    ///   **overrides** the base loss model (skip its draw);
    /// * `None` — no episode applies; the base loss model decides.
    #[must_use]
    pub fn drops(&self, now: SimTime, from: NodeId, to: NodeId, topo: &Topology) -> Option<bool> {
        for &(node, at) in &self.crashes {
            if now >= at && (from == node || to == node) {
                return Some(true);
            }
        }
        for &(node, w) in &self.stalls {
            if w.contains(now) && (from == node || to == node) {
                return Some(true);
            }
        }
        for &(a, b, w) in &self.blackouts {
            if w.contains(now) && ((from == a && to == b) || (from == b && to == a)) {
                return Some(true);
            }
        }
        if !self.partitions.is_empty() {
            let (ra, rb) = (topo.region_of(from), topo.region_of(to));
            for &(pa, pb, w) in &self.partitions {
                if w.contains(now) && ((ra == pa && rb == pb) || (ra == pb && rb == pa)) {
                    return Some(true);
                }
            }
        }
        let mut verdict = None;
        for (i, b) in self.bursts.iter().enumerate() {
            if b.window.contains(now) && b.region.is_none_or(|r| topo.region_of(to) == r) {
                let drop = self.draw(SALT_BURST ^ (i as u64) << 32, now, from, to) < b.p;
                if drop {
                    return Some(true);
                }
                verdict = Some(false);
            }
        }
        verdict
    }

    /// If a duplication episode fires for a *surviving* copy sent at
    /// `now`, the extra copy's additional delay.
    #[must_use]
    pub fn duplicate_delay(&self, now: SimTime, from: NodeId, to: NodeId) -> Option<SimDuration> {
        for (i, d) in self.dups.iter().enumerate() {
            if d.window.contains(now) && self.draw(SALT_DUP ^ (i as u64) << 32, now, from, to) < d.p
            {
                return Some(d.extra);
            }
        }
        None
    }

    /// The stateless oracle: a uniform draw in `[0, 1)` keyed by
    /// `(seed, salt, now, from, to)`.
    fn draw(&self, salt: u64, now: SimTime, from: NodeId, to: NodeId) -> f64 {
        let endpoints = (u64::from(from.0) << 32) | u64::from(to.0);
        let h = mix(self.seed ^ mix(salt ^ mix(now.as_micros() ^ mix(endpoints))));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Parses the `RRMP_FAULTS` plan format: semicolon-separated clauses,
    /// times in integer milliseconds, windows half-open `start..end`.
    ///
    /// ```text
    /// seed=7;partition=0-1@100..400;blackout=2-5@50..80;stall=3@10..60;
    /// crash=4@250;burst=0.4@100..200;burst=0.3:1@100..200;dup=0.2+5@0..500
    /// ```
    ///
    /// * `seed=N` — oracle seed (default 0).
    /// * `partition=A-B@X..Y` — regions `A` and `B` partitioned over ms
    ///   `[X, Y)`.
    /// * `blackout=A-B@X..Y` — link between nodes `A` and `B` dark.
    /// * `stall=N@X..Y` — node `N` disconnected, then healed.
    /// * `crash=N@X` — node `N` gone for good at ms `X`.
    /// * `burst=P@X..Y` / `burst=P:R@X..Y` — loss burst with probability
    ///   `P`, optionally scoped to destination region `R`.
    /// * `dup=P+D@X..Y` — duplication with probability `P`, extra copy
    ///   `D` ms later.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed clause.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        fn ms(s: &str) -> Result<SimTime, String> {
            s.trim()
                .parse::<u64>()
                .map(SimTime::from_millis)
                .map_err(|_| format!("expected integer milliseconds, got {s:?}"))
        }
        fn window(s: &str) -> Result<(SimTime, SimTime), String> {
            let (a, b) = s.split_once("..").ok_or_else(|| format!("expected X..Y, got {s:?}"))?;
            let (from, until) = (ms(a)?, ms(b)?);
            if from >= until {
                return Err(format!("window {s:?} is empty"));
            }
            Ok((from, until))
        }
        fn pair(s: &str) -> Result<(u32, u32), String> {
            let (a, b) = s.split_once('-').ok_or_else(|| format!("expected A-B, got {s:?}"))?;
            let a = a.trim().parse().map_err(|_| format!("bad id {a:?}"))?;
            let b = b.trim().parse().map_err(|_| format!("bad id {b:?}"))?;
            Ok((a, b))
        }
        fn prob(s: &str) -> Result<f64, String> {
            let p: f64 = s.trim().parse().map_err(|_| format!("bad probability {s:?}"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability {p} out of [0, 1]"));
            }
            Ok(p)
        }

        let mut plan = FaultPlan::default();
        for clause in s.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("clause {clause:?} is not key=value"))?;
            let at_split = |v: &str| -> Result<(String, String), String> {
                let (head, w) =
                    v.split_once('@').ok_or_else(|| format!("clause {clause:?} lacks @window"))?;
                Ok((head.to_string(), w.to_string()))
            };
            match key.trim() {
                "seed" => {
                    plan.seed = value.trim().parse().map_err(|_| format!("bad seed {value:?}"))?;
                }
                "partition" => {
                    let (head, w) = at_split(value)?;
                    let (a, b) = pair(&head)?;
                    let a = u16::try_from(a).map_err(|_| format!("region {a} out of range"))?;
                    let b = u16::try_from(b).map_err(|_| format!("region {b} out of range"))?;
                    if a == b {
                        return Err(format!("partition {clause:?} needs two distinct regions"));
                    }
                    let (from, until) = window(&w)?;
                    plan.partitions.push((RegionId(a), RegionId(b), Window::new(from, until)));
                }
                "blackout" => {
                    let (head, w) = at_split(value)?;
                    let (a, b) = pair(&head)?;
                    if a == b {
                        return Err(format!("blackout {clause:?} needs two distinct nodes"));
                    }
                    let (from, until) = window(&w)?;
                    plan.blackouts.push((NodeId(a), NodeId(b), Window::new(from, until)));
                }
                "stall" => {
                    let (head, w) = at_split(value)?;
                    let node = head.trim().parse().map_err(|_| format!("bad node {head:?}"))?;
                    let (from, until) = window(&w)?;
                    plan.stalls.push((NodeId(node), Window::new(from, until)));
                }
                "crash" => {
                    let (head, w) = at_split(value)?;
                    let node = head.trim().parse().map_err(|_| format!("bad node {head:?}"))?;
                    plan.crashes.push((NodeId(node), ms(&w)?));
                }
                "burst" => {
                    let (head, w) = at_split(value)?;
                    let (p, region) = match head.split_once(':') {
                        Some((p, r)) => {
                            let r: u16 =
                                r.trim().parse().map_err(|_| format!("bad region {r:?}"))?;
                            (prob(p)?, Some(RegionId(r)))
                        }
                        None => (prob(&head)?, None),
                    };
                    let (from, until) = window(&w)?;
                    plan.bursts.push(Burst { p, region, window: Window::new(from, until) });
                }
                "dup" => {
                    let (head, w) = at_split(value)?;
                    let (p, extra) = head
                        .split_once('+')
                        .ok_or_else(|| format!("dup {clause:?} lacks +delay"))?;
                    let extra_ms: u64 =
                        extra.trim().parse().map_err(|_| format!("bad delay {extra:?}"))?;
                    let (from, until) = window(&w)?;
                    plan.dups.push(Dup {
                        p: prob(p)?,
                        extra: SimDuration::from_millis(extra_ms),
                        window: Window::new(from, until),
                    });
                }
                other => return Err(format!("unknown fault kind {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Reads `RRMP_FAULTS`: `Ok(None)` when unset or empty, the parsed
    /// plan otherwise.
    ///
    /// # Errors
    ///
    /// Returns the offending raw value and the per-clause parse message
    /// when the variable is set but malformed. This library layer never
    /// panics on bad input; harness boundaries that must fail loudly
    /// (a chaos job silently falling back to a fault-free run would pass
    /// while testing nothing) turn the error into a panic themselves.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        let Ok(raw) = std::env::var("RRMP_FAULTS") else { return Ok(None) };
        if raw.trim().is_empty() {
            return Ok(None);
        }
        match FaultPlan::parse(&raw) {
            Ok(plan) => Ok(Some(plan)),
            Err(e) => Err(format!("invalid RRMP_FAULTS={raw:?}: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::presets;

    fn topo() -> Topology {
        // 2 regions x 4 nodes: nodes 0-3 in region 0, 4-7 in region 1.
        presets::region_tree(4, 1, 1, SimDuration::from_millis(25))
    }

    #[test]
    fn partition_blocks_both_directions_then_heals() {
        let t = topo();
        let plan = FaultPlan::new(1).partition(
            RegionId(0),
            RegionId(1),
            SimTime::from_millis(10),
            SimTime::from_millis(20),
        );
        let mid = SimTime::from_millis(15);
        assert_eq!(plan.drops(mid, NodeId(0), NodeId(5), &t), Some(true));
        assert_eq!(plan.drops(mid, NodeId(5), NodeId(0), &t), Some(true));
        // Intra-region traffic unaffected.
        assert_eq!(plan.drops(mid, NodeId(0), NodeId(1), &t), None);
        // Outside the window (including the heal edge itself): no opinion.
        assert_eq!(plan.drops(SimTime::from_millis(20), NodeId(0), NodeId(5), &t), None);
        assert_eq!(plan.drops(SimTime::from_millis(9), NodeId(0), NodeId(5), &t), None);
        assert_eq!(plan.heal_times(), vec![SimTime::from_millis(20)]);
    }

    #[test]
    fn blackout_hits_exactly_one_link() {
        let t = topo();
        let plan = FaultPlan::new(1).blackout(
            NodeId(1),
            NodeId(2),
            SimTime::ZERO,
            SimTime::from_millis(5),
        );
        let at = SimTime::from_millis(1);
        assert_eq!(plan.drops(at, NodeId(1), NodeId(2), &t), Some(true));
        assert_eq!(plan.drops(at, NodeId(2), NodeId(1), &t), Some(true));
        assert_eq!(plan.drops(at, NodeId(1), NodeId(3), &t), None);
    }

    #[test]
    fn crash_is_permanent_stall_heals() {
        let t = topo();
        let plan = FaultPlan::new(1).crash(NodeId(4), SimTime::from_millis(50)).stall(
            NodeId(2),
            SimTime::from_millis(50),
            SimTime::from_millis(60),
        );
        for ms in [50u64, 60, 1_000_000] {
            let at = SimTime::from_millis(ms);
            assert_eq!(plan.drops(at, NodeId(4), NodeId(5), &t), Some(true), "at {ms}ms");
            assert_eq!(plan.drops(at, NodeId(5), NodeId(4), &t), Some(true), "at {ms}ms");
        }
        assert_eq!(plan.drops(SimTime::from_millis(55), NodeId(2), NodeId(1), &t), Some(true));
        assert_eq!(plan.drops(SimTime::from_millis(60), NodeId(2), NodeId(1), &t), None);
        // Crashes are not heals.
        assert_eq!(plan.heal_times(), vec![SimTime::from_millis(60)]);
    }

    #[test]
    fn burst_overrides_and_is_a_pure_function() {
        let t = topo();
        let plan =
            FaultPlan::new(99).loss_burst(0.5, None, SimTime::ZERO, SimTime::from_millis(100));
        let mut dropped = 0u32;
        for us in 0..1000u64 {
            let at = SimTime::from_micros(us * 100);
            let v = plan.drops(at, NodeId(0), NodeId(1), &t);
            // Inside the window the burst always has an opinion.
            let v = v.expect("burst window active");
            assert_eq!(plan.drops(at, NodeId(0), NodeId(1), &t), Some(v), "pure function");
            dropped += u32::from(v);
        }
        // ~Binomial(1000, 0.5): far from both degenerate outcomes.
        assert!((300..700).contains(&dropped), "burst drop count {dropped} implausible for p=0.5");
        // Outside the window: no opinion.
        assert_eq!(plan.drops(SimTime::from_millis(100), NodeId(0), NodeId(1), &t), None);
    }

    #[test]
    fn region_scoped_burst_only_hits_destination_region() {
        let t = topo();
        let plan = FaultPlan::new(3).loss_burst(
            1.0,
            Some(RegionId(1)),
            SimTime::ZERO,
            SimTime::from_millis(10),
        );
        let at = SimTime::from_millis(1);
        assert_eq!(plan.drops(at, NodeId(0), NodeId(5), &t), Some(true));
        assert_eq!(plan.drops(at, NodeId(5), NodeId(0), &t), None);
    }

    #[test]
    fn duplication_only_in_window() {
        let plan = FaultPlan::new(5).duplicate(
            1.0,
            SimDuration::from_millis(3),
            SimTime::ZERO,
            SimTime::from_millis(10),
        );
        assert_eq!(
            plan.duplicate_delay(SimTime::from_millis(1), NodeId(0), NodeId(1)),
            Some(SimDuration::from_millis(3))
        );
        assert_eq!(plan.duplicate_delay(SimTime::from_millis(10), NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn parse_round_trips_the_documented_example() {
        let plan = FaultPlan::parse(
            "seed=7;partition=0-1@100..400;blackout=2-5@50..80;stall=3@10..60;\
             crash=4@250;burst=0.4@100..200;burst=0.3:1@100..200;dup=0.2+5@0..500",
        )
        .expect("documented example parses");
        let built = FaultPlan::new(7)
            .partition(
                RegionId(0),
                RegionId(1),
                SimTime::from_millis(100),
                SimTime::from_millis(400),
            )
            .blackout(NodeId(2), NodeId(5), SimTime::from_millis(50), SimTime::from_millis(80))
            .stall(NodeId(3), SimTime::from_millis(10), SimTime::from_millis(60))
            .crash(NodeId(4), SimTime::from_millis(250))
            .loss_burst(0.4, None, SimTime::from_millis(100), SimTime::from_millis(200))
            .loss_burst(
                0.3,
                Some(RegionId(1)),
                SimTime::from_millis(100),
                SimTime::from_millis(200),
            )
            .duplicate(0.2, SimDuration::from_millis(5), SimTime::ZERO, SimTime::from_millis(500));
        assert_eq!(plan, built);
        assert_eq!(
            plan.crashes().collect::<Vec<_>>(),
            vec![(NodeId(4), SimTime::from_millis(250))]
        );
        assert_eq!(plan.horizon(), SimTime::from_millis(500));
        assert!(!plan.is_empty());
        assert!(FaultPlan::parse("").expect("empty plan parses").is_empty());
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "partition=0-0@1..2",
            "partition=0-1@5..5",
            "partition=0-1",
            "crash=x@3",
            "burst=1.5@0..1",
            "dup=0.5@0..1",
            "warp=3@0..1",
            "seed=minus-one",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parse_errors_name_the_offending_clause() {
        // The error must carry enough of the clause to locate it inside a
        // multi-clause spec, not just "parse error".
        let err = FaultPlan::parse("seed=7;partition=0-1@100..400;warp=3@0..1").unwrap_err();
        assert!(err.contains("warp"), "error should name the bad clause: {err}");
        let err = FaultPlan::parse("crash=x@3").unwrap_err();
        assert!(err.contains('x') || err.contains("crash"), "error should point at crash=x: {err}");
        let err = FaultPlan::parse("partition=0-1@5..5").unwrap_err();
        assert!(err.contains('5'), "error should show the degenerate window: {err}");
    }

    #[test]
    fn from_env_is_a_result_not_a_panic() {
        // `from_env` reads a process-global; serialize against other env
        // tests by running set/err/unset in one test body.
        std::env::set_var("RRMP_FAULTS", "warp=3@0..1");
        let err = FaultPlan::from_env().unwrap_err();
        assert!(err.contains("RRMP_FAULTS") && err.contains("warp"), "{err}");
        std::env::set_var("RRMP_FAULTS", "  ");
        assert_eq!(FaultPlan::from_env(), Ok(None), "blank value means no plan");
        std::env::set_var("RRMP_FAULTS", "crash=2@5");
        assert!(FaultPlan::from_env().expect("valid spec").is_some());
        std::env::remove_var("RRMP_FAULTS");
        assert_eq!(FaultPlan::from_env(), Ok(None));
    }
}
