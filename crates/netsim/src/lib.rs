//! # rrmp-netsim
//!
//! Deterministic discrete-event network simulator — the evaluation substrate
//! for the RRMP reliable-multicast reproduction.
//!
//! The DSN 2002 paper *"Optimizing Buffer Management for Reliable
//! Multicast"* evaluates its two-phase buffering algorithm entirely in
//! simulation, under a simple network model: members grouped into regions
//! (constant 10 ms intra-region RTT in §4), a hierarchy of regions, loss on
//! the initial IP multicast only. This crate provides that model — and
//! generalizations of it for ablation studies — as a reusable,
//! deterministic simulator:
//!
//! * [`time`] — integer-microsecond simulated clock ([`time::SimTime`]).
//! * [`rng`] — reproducible per-node RNG streams from one experiment seed.
//! * [`event`] — the `(time, insertion-order)` event queue: a hierarchical
//!   timing wheel, plus the retained heap-based reference implementation
//!   the differential tests compare against.
//! * [`topology`] — nodes, regions, the error-recovery hierarchy, latency
//!   models, and presets matching the paper's setups.
//! * [`loss`] — multicast/unicast loss models and explicit
//!   [`loss::DeliveryPlan`]s for controlled experiments.
//! * [`fault`] — deterministic fault-injection timelines
//!   ([`fault::FaultPlan`]): partitions, blackouts, crash/stall churn,
//!   loss bursts, and duplication, applied at the network edge of both
//!   engines with layout-invariant verdicts.
//! * [`sim`] — the driver: host any [`sim::SimNode`] implementation.
//! * [`shard`] — the conservatively parallel driver: regions partitioned
//!   over shards advancing under a time-window barrier, traces
//!   byte-identical at every shard count.
//! * [`trace`] / [`stats`] — event traces, counters, histograms, summaries,
//!   and time series for building the paper's figures.
//!
//! ## Example
//!
//! ```
//! use rrmp_netsim::prelude::*;
//!
//! // A node that acknowledges every packet it receives.
//! struct Acker { acked: u32 }
//! impl SimNode for Acker {
//!     type Msg = &'static str;
//!     fn on_packet(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
//!         if msg == "ping" {
//!             ctx.send(from, "ack");
//!         } else {
//!             self.acked += 1;
//!         }
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self::Msg>, _token: u64) {}
//! }
//!
//! let topo = presets::paper_region(2);
//! let mut sim = Sim::new(topo, vec![Acker { acked: 0 }, Acker { acked: 0 }], 7);
//! sim.inject(NodeId(1), NodeId(0), "ping", SimTime::ZERO);
//! sim.run_until_quiescent(SimTime::from_secs(1));
//! assert_eq!(sim.node(NodeId(0)).acked, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod fault;
pub mod loss;
pub mod rng;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;

/// Convenient glob-import of the most used simulator types.
pub mod prelude {
    pub use crate::event::Scheduler;
    pub use crate::fault::FaultPlan;
    pub use crate::loss::{DeliveryPlan, LossModel};
    pub use crate::rng::SeedSequence;
    pub use crate::shard::{ShardPlacement, ShardedSim};
    pub use crate::sim::{Ctx, Sim, SimNode, TimerId};
    pub use crate::stats::{OnlineStats, Summary, TimeSeries};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{presets, NodeId, RegionId, Topology, TopologyBuilder};
    pub use crate::trace::TraceRecorder;
}
