//! Static group specification for the UDP runtime.
//!
//! Real deployments would obtain membership from the gossip substrate;
//! the runtime keeps bootstrap simple with an explicit [`GroupSpec`]
//! mapping members to socket addresses, regions, and the error-recovery
//! hierarchy.

use std::collections::HashMap;
use std::net::SocketAddr;

use rrmp_membership::view::{HierarchyView, RegionView};
use rrmp_netsim::topology::{NodeId, RegionId};

/// One member entry of a [`GroupSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberSpec {
    /// The member's id.
    pub node: NodeId,
    /// Its UDP socket address.
    pub addr: SocketAddr,
    /// The region it belongs to.
    pub region: RegionId,
}

/// A static description of an RRMP group for the UDP runtime.
#[derive(Debug, Clone, Default)]
pub struct GroupSpec {
    members: Vec<MemberSpec>,
    parents: HashMap<RegionId, RegionId>,
    by_addr: HashMap<SocketAddr, NodeId>,
    by_node: HashMap<NodeId, usize>,
}

impl GroupSpec {
    /// Creates an empty spec.
    #[must_use]
    pub fn new() -> Self {
        GroupSpec::default()
    }

    /// Adds a member.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `addr` was already added.
    pub fn add_member(&mut self, node: NodeId, addr: SocketAddr, region: RegionId) -> &mut Self {
        assert!(!self.by_node.contains_key(&node), "duplicate member {node}");
        assert!(!self.by_addr.contains_key(&addr), "duplicate address {addr}");
        self.by_node.insert(node, self.members.len());
        self.by_addr.insert(addr, node);
        self.members.push(MemberSpec { node, addr, region });
        self
    }

    /// Declares `parent` as the parent region of `region`.
    pub fn set_parent(&mut self, region: RegionId, parent: RegionId) -> &mut Self {
        self.parents.insert(region, parent);
        self
    }

    /// All members.
    #[must_use]
    pub fn members(&self) -> &[MemberSpec] {
        &self.members
    }

    /// The address of `node`, if it is a member.
    #[must_use]
    pub fn addr_of(&self, node: NodeId) -> Option<SocketAddr> {
        self.by_node.get(&node).map(|&i| self.members[i].addr)
    }

    /// The member at `addr`, if any.
    #[must_use]
    pub fn node_at(&self, addr: SocketAddr) -> Option<NodeId> {
        self.by_addr.get(&addr).copied()
    }

    /// The region of `node`.
    #[must_use]
    pub fn region_of(&self, node: NodeId) -> Option<RegionId> {
        self.by_node.get(&node).map(|&i| self.members[i].region)
    }

    /// Members of `region`, in insertion order.
    pub fn members_of(&self, region: RegionId) -> impl Iterator<Item = &MemberSpec> + '_ {
        self.members.iter().filter(move |m| m.region == region)
    }

    /// Builds the own+parent [`HierarchyView`] for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a member.
    #[must_use]
    pub fn view_for(&self, node: NodeId) -> HierarchyView {
        let region = self.region_of(node).expect("node is a member");
        let own = RegionView::new(region, self.members_of(region).map(|m| m.node));
        let parent = self
            .parents
            .get(&region)
            .map(|&p| RegionView::new(p, self.members_of(p).map(|m| m.node)));
        HierarchyView::new(own, parent)
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the spec has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().expect("valid addr")
    }

    #[test]
    fn spec_roundtrips_lookups() {
        let mut spec = GroupSpec::new();
        spec.add_member(NodeId(0), addr(9000), RegionId(0))
            .add_member(NodeId(1), addr(9001), RegionId(0))
            .add_member(NodeId(2), addr(9002), RegionId(1))
            .set_parent(RegionId(1), RegionId(0));
        assert_eq!(spec.len(), 3);
        assert_eq!(spec.addr_of(NodeId(2)), Some(addr(9002)));
        assert_eq!(spec.node_at(addr(9001)), Some(NodeId(1)));
        assert_eq!(spec.region_of(NodeId(2)), Some(RegionId(1)));
        assert_eq!(spec.members_of(RegionId(0)).count(), 2);
    }

    #[test]
    fn view_for_includes_parent_region() {
        let mut spec = GroupSpec::new();
        spec.add_member(NodeId(0), addr(9100), RegionId(0))
            .add_member(NodeId(1), addr(9101), RegionId(1))
            .add_member(NodeId(2), addr(9102), RegionId(1))
            .set_parent(RegionId(1), RegionId(0));
        let view = spec.view_for(NodeId(1));
        assert_eq!(view.own().len(), 2);
        assert!(view.parent().expect("has parent").contains(NodeId(0)));
        let root = spec.view_for(NodeId(0));
        assert!(root.parent().is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate member")]
    fn duplicate_member_rejected() {
        let mut spec = GroupSpec::new();
        spec.add_member(NodeId(0), addr(9200), RegionId(0)).add_member(
            NodeId(0),
            addr(9201),
            RegionId(0),
        );
    }

    #[test]
    #[should_panic(expected = "duplicate address")]
    fn duplicate_address_rejected() {
        // Two members claiming one socket address would make `node_at`
        // ambiguous on the receive path; the spec refuses at build time.
        let mut spec = GroupSpec::new();
        spec.add_member(NodeId(0), addr(9300), RegionId(0)).add_member(
            NodeId(1),
            addr(9300),
            RegionId(1),
        );
    }

    #[test]
    fn unknown_lookups_return_none() {
        let mut spec = GroupSpec::new();
        spec.add_member(NodeId(0), addr(9400), RegionId(0));
        assert_eq!(spec.addr_of(NodeId(9)), None);
        assert_eq!(spec.node_at(addr(9499)), None);
        assert_eq!(spec.region_of(NodeId(9)), None);
        // A region no member belongs to is simply empty, not an error.
        assert_eq!(spec.members_of(RegionId(7)).count(), 0);
    }

    #[test]
    #[should_panic(expected = "node is a member")]
    fn view_for_unknown_node_panics() {
        let mut spec = GroupSpec::new();
        spec.add_member(NodeId(0), addr(9500), RegionId(0));
        let _ = spec.view_for(NodeId(42));
    }

    #[test]
    fn view_for_with_empty_parent_region() {
        // A parent edge pointing at a region with no members yields an
        // empty — but present — parent view: the protocol sees the
        // hierarchy, just with nobody to ask remotely yet.
        let mut spec = GroupSpec::new();
        spec.add_member(NodeId(0), addr(9600), RegionId(1)).set_parent(RegionId(1), RegionId(0));
        let view = spec.view_for(NodeId(0));
        assert_eq!(view.own().len(), 1);
        let parent = view.parent().expect("parent edge declared");
        assert_eq!(parent.len(), 0);
    }

    #[test]
    fn empty_spec_reports_empty() {
        let spec = GroupSpec::new();
        assert!(spec.is_empty());
        assert_eq!(spec.len(), 0);
        assert_eq!(spec.members().len(), 0);
    }

    #[test]
    fn members_preserve_insertion_order() {
        // Fan-out and placement both iterate `members()`; insertion order
        // is part of the contract (deterministic wire order in tests).
        let mut spec = GroupSpec::new();
        spec.add_member(NodeId(5), addr(9700), RegionId(0))
            .add_member(NodeId(1), addr(9701), RegionId(0))
            .add_member(NodeId(3), addr(9702), RegionId(1));
        let ids: Vec<NodeId> = spec.members().iter().map(|m| m.node).collect();
        assert_eq!(ids, vec![NodeId(5), NodeId(1), NodeId(3)]);
    }
}
