//! # rrmp-udp
//!
//! A thread-based runtime hosting the sans-io RRMP core on real
//! `std::net::UdpSocket`s. The identical [`rrmp_core::receiver::Receiver`]
//! state machine that drives the paper's simulations runs here against a
//! monotonic clock and a UDP transport; IP multicast is emulated by
//! unicast fan-out (the paper's protocol only observes *who received the
//! initial transmission*, which the fan-out preserves).
//!
//! Two entry points:
//!
//! * [`UdpRuntime`] — the production surface: N event-loop threads, each
//!   multiplexing many members over one shared timing wheel, one
//!   MTU-bucketed [`BufferPool`], and one `poll(2)` readiness set, so a
//!   process can host thousands of receivers.
//! * [`UdpNode`] — the original one-member facade over a private
//!   single-loop runtime, unchanged API.
//!
//! See the `udp_localhost` example for a multi-node walkthrough on
//! loopback (including forced initial-multicast loss and recovery) and
//! `udp_swarm` for many members multiplexed onto few loops.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod group;
pub mod pool;
pub mod runtime;

pub use batch::{send_to_many, PollSet, RecvBatcher};
pub use group::{GroupSpec, MemberSpec};
pub use pool::{BufferPool, PoolSnapshot, PoolStats, SizeClass, DATAGRAM_MTU, MAX_DATAGRAM};
pub use runtime::{
    Delivery, MemberHandle, RuntimeConfig, RuntimeEvent, RuntimeSnapshot, RuntimeStats, UdpNode,
    UdpRuntime,
};
