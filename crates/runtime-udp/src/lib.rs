//! # rrmp-udp
//!
//! A thread-based runtime hosting the sans-io RRMP core on real
//! `std::net::UdpSocket`s. The identical [`rrmp_core::receiver::Receiver`]
//! state machine that drives the paper's simulations runs here against a
//! monotonic clock and a UDP transport; IP multicast is emulated by
//! unicast fan-out (the paper's protocol only observes *who received the
//! initial transmission*, which the fan-out preserves).
//!
//! See the `udp_localhost` example for a multi-node walkthrough on
//! loopback, including forced initial-multicast loss and recovery.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod group;
pub mod runtime;

pub use batch::{send_to_many, RecvBatcher};
pub use group::{GroupSpec, MemberSpec};
pub use runtime::{Delivery, RuntimeEvent, UdpNode};
