//! Syscall-batched datagram I/O: `sendmmsg`/`recvmmsg` on Linux, a
//! per-datagram fallback everywhere else.
//!
//! The runtime's send path already encodes each packet **once** and
//! writes the same wire bytes to every destination; the remaining cost
//! is one `sendto(2)` syscall per destination and one `recvfrom(2)` per
//! arriving datagram. On Linux both collapse:
//!
//! * [`send_to_many`] transmits one payload to N destinations with
//!   ⌈N/64⌉ `sendmmsg(2)` calls — every message shares a single iovec
//!   pointing at the same buffer, so the kernel copy is the only
//!   per-destination work left.
//! * [`RecvBatcher`] drains up to a batch of datagrams per
//!   `recvmmsg(2)` call with `MSG_WAITFORONE`: the call blocks for the
//!   first datagram (respecting the socket's read timeout, which the
//!   event loop relies on for shutdown polling) and then collects
//!   whatever else is already queued without blocking again.
//!
//! The module is feature-gated (`mmsg`, on by default) and compiled to
//! the batched syscalls only on `target_os = "linux"`; other targets (or
//! `--no-default-features`) get a fallback with identical semantics
//! built on `send_to`/`recv_from`, so hosts never branch on platform.
//! The workspace vendors no `libc`, so the Linux path declares the tiny
//! FFI surface it needs itself — `std` already links libc on every
//! supported Unix target.

use std::net::{SocketAddr, UdpSocket};

/// Result of one receive-batch drain: how many datagrams were filled.
pub type RecvResult = std::io::Result<usize>;

/// How many datagrams one batched syscall covers at most. Also the batch
/// size of the fallback loop (where it only bounds per-call work).
pub const BATCH: usize = 64;

#[cfg(all(target_os = "linux", feature = "mmsg"))]
mod sys {
    //! Hand-declared FFI for `sendmmsg`/`recvmmsg` (no vendored `libc`).
    //! Layouts match the x86-64/aarch64 Linux ABI `struct msghdr`.
    #![allow(non_camel_case_types)]

    use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, SocketAddrV4, SocketAddrV6};
    use std::os::raw::{c_int, c_uint, c_void};

    pub const AF_INET: u16 = 2;
    pub const AF_INET6: u16 = 10;
    /// `recvmmsg`: block for the first message only, then drain.
    pub const MSG_WAITFORONE: c_int = 0x10000;
    /// Per-message flag the kernel sets when a datagram was longer than
    /// the buffer it was received into.
    pub const MSG_TRUNC: c_int = 0x20;
    /// `poll(2)`: data available to read.
    pub const POLLIN: c_short = 0x001;

    use std::os::raw::{c_short, c_ulong};

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct iovec {
        pub iov_base: *mut c_void,
        pub iov_len: usize,
    }

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct msghdr {
        pub msg_name: *mut c_void,
        pub msg_namelen: u32,
        pub msg_iov: *mut iovec,
        pub msg_iovlen: usize,
        pub msg_control: *mut c_void,
        pub msg_controllen: usize,
        pub msg_flags: c_int,
    }

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct mmsghdr {
        pub msg_hdr: msghdr,
        pub msg_len: c_uint,
    }

    /// Big enough for `sockaddr_in6`; zero padding keeps `sockaddr_in`
    /// valid too (the kernel reads only `namelen` bytes).
    #[repr(C, align(8))]
    #[derive(Debug, Clone, Copy)]
    pub struct sockaddr_storage {
        pub bytes: [u8; 28],
    }

    impl sockaddr_storage {
        pub const ZERO: sockaddr_storage = sockaddr_storage { bytes: [0u8; 28] };
    }

    extern "C" {
        pub fn sendmmsg(fd: c_int, msgvec: *mut mmsghdr, vlen: c_uint, flags: c_int) -> c_int;
        pub fn recvmmsg(
            fd: c_int,
            msgvec: *mut mmsghdr,
            vlen: c_uint,
            flags: c_int,
            timeout: *mut c_void, // struct timespec*; we always pass null
        ) -> c_int;
        pub fn poll(fds: *mut pollfd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Encodes `addr` into `storage`; returns the kernel-facing length.
    pub fn encode_addr(addr: SocketAddr, storage: &mut sockaddr_storage) -> u32 {
        match addr {
            SocketAddr::V4(v4) => {
                storage.bytes[..2].copy_from_slice(&AF_INET.to_ne_bytes());
                storage.bytes[2..4].copy_from_slice(&v4.port().to_be_bytes());
                storage.bytes[4..8].copy_from_slice(&v4.ip().octets());
                storage.bytes[8..16].fill(0); // sin_zero
                16
            }
            SocketAddr::V6(v6) => {
                storage.bytes[..2].copy_from_slice(&AF_INET6.to_ne_bytes());
                storage.bytes[2..4].copy_from_slice(&v6.port().to_be_bytes());
                storage.bytes[4..8].copy_from_slice(&v6.flowinfo().to_ne_bytes());
                storage.bytes[8..24].copy_from_slice(&v6.ip().octets());
                storage.bytes[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
                28
            }
        }
    }

    /// Decodes the kernel-written name back into a `SocketAddr`.
    pub fn decode_addr(storage: &sockaddr_storage) -> Option<SocketAddr> {
        let family = u16::from_ne_bytes([storage.bytes[0], storage.bytes[1]]);
        let port = u16::from_be_bytes([storage.bytes[2], storage.bytes[3]]);
        match family {
            AF_INET => {
                let ip: [u8; 4] = storage.bytes[4..8].try_into().ok()?;
                Some(SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::from(ip), port)))
            }
            AF_INET6 => {
                let flow = u32::from_ne_bytes(storage.bytes[4..8].try_into().ok()?);
                let ip: [u8; 16] = storage.bytes[8..24].try_into().ok()?;
                let scope = u32::from_ne_bytes(storage.bytes[24..28].try_into().ok()?);
                Some(SocketAddr::V6(SocketAddrV6::new(Ipv6Addr::from(ip), port, flow, scope)))
            }
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Batched send.
// ---------------------------------------------------------------------------

/// Sends `payload` to every address in `addrs`: one `sendmmsg(2)` per
/// [`BATCH`] destinations on Linux, a plain `send_to` loop elsewhere.
/// Transmission is best-effort per destination, like the runtime's
/// existing fan-out (UDP gives no delivery guarantee anyway): a batch
/// that errors falls back to per-datagram sends for its remainder.
/// Returns how many destinations were handed to the kernel, so callers
/// can count (rather than silently swallow) local send failures —
/// `addrs.len()` minus the return value is the number of datagrams that
/// never left this host.
#[cfg(all(target_os = "linux", feature = "mmsg"))]
pub fn send_to_many(socket: &UdpSocket, payload: &[u8], addrs: &[SocketAddr]) -> usize {
    use std::os::fd::AsRawFd;
    let fd = socket.as_raw_fd();
    let mut ok = 0usize;
    for chunk in addrs.chunks(BATCH) {
        let mut names = [sys::sockaddr_storage::ZERO; BATCH];
        let mut iovs =
            [sys::iovec { iov_base: payload.as_ptr() as *mut _, iov_len: payload.len() }; BATCH];
        let mut msgs = [sys::mmsghdr {
            msg_hdr: sys::msghdr {
                msg_name: std::ptr::null_mut(),
                msg_namelen: 0,
                msg_iov: std::ptr::null_mut(),
                msg_iovlen: 1,
                msg_control: std::ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            },
            msg_len: 0,
        }; BATCH];
        for (i, &addr) in chunk.iter().enumerate() {
            let len = sys::encode_addr(addr, &mut names[i]);
            msgs[i].msg_hdr.msg_name = names[i].bytes.as_mut_ptr().cast();
            msgs[i].msg_hdr.msg_namelen = len;
            msgs[i].msg_hdr.msg_iov = &mut iovs[i];
        }
        let mut done = 0usize;
        while done < chunk.len() {
            // SAFETY: `msgs[done..]` are fully initialized mmsghdrs whose
            // name/iov pointers reference `names`/`iovs`/`payload`, all of
            // which outlive the call; vlen matches the slice length.
            let sent = unsafe {
                sys::sendmmsg(fd, msgs.as_mut_ptr().add(done), (chunk.len() - done) as u32, 0)
            };
            if sent <= 0 {
                // Fall back to per-datagram sends for the remainder
                // (best-effort, mirroring the historical path).
                for &addr in &chunk[done..] {
                    if socket.send_to(payload, addr).is_ok() {
                        ok += 1;
                    }
                }
                break;
            }
            done += sent as usize;
            ok += sent as usize;
        }
    }
    ok
}

/// Fallback: one `send_to` per destination (non-Linux targets, or the
/// `mmsg` feature disabled). Returns how many sends succeeded.
#[cfg(not(all(target_os = "linux", feature = "mmsg")))]
pub fn send_to_many(socket: &UdpSocket, payload: &[u8], addrs: &[SocketAddr]) -> usize {
    addrs.iter().filter(|&&addr| socket.send_to(payload, addr).is_ok()).count()
}

// ---------------------------------------------------------------------------
// Batched, pool-fed receive.
// ---------------------------------------------------------------------------

use crate::pool::{BufferPool, SizeClass};
use bytes::Bytes;

/// Reusable receive-side batch state. Datagrams are received **directly
/// into pooled slabs** ([`crate::pool::BufferPool`]), truncated to their
/// wire length and frozen into [`Bytes`] — the zero-copy hand-off the
/// decoder slices without another allocation. One instance lives on each
/// event-loop thread and drains every socket the loop hosts.
///
/// ## Adaptive size class
///
/// Slabs start at the [`crate::pool::DATAGRAM_MTU`] class — the right
/// size for every protocol control packet and MTU-sized data datagram. A
/// datagram that arrives larger is reported truncated by the kernel
/// (`MSG_TRUNC`); the batcher drops it (UDP loss semantics — the
/// protocol's recovery machinery re-requests the message exactly as it
/// would after a network drop) and promotes itself to the next class, so
/// the repair — and all further traffic — is received whole. Jumbo
/// senders therefore cost one recovery round-trip once per loop, never
/// silent corruption, and MTU-sized groups never pay jumbo-slab memory.
#[derive(Debug)]
pub struct RecvBatcher {
    /// Current slab size class (promoted on truncation, never demoted).
    class: SizeClass,
    /// Writable slabs awaiting datagrams; `None` slots were consumed by a
    /// freeze and are refilled from the pool on the next call.
    slabs: Vec<Option<bytes::BytesMut>>,
    /// `(wire bytes, source, slab class)` of each datagram drained by the
    /// last call, in arrival order. The class tags the slab for its
    /// eventual [`crate::pool::BufferPool::release`].
    out: Vec<(Bytes, SocketAddr, SizeClass)>,
    /// Datagrams dropped because they exceeded the current slab class.
    truncated: u64,
    /// Reused kernel-facing arrays of the Linux path (pointers re-derived
    /// from `slabs` on every call; capacity reused, never reallocated).
    #[cfg(all(target_os = "linux", feature = "mmsg"))]
    names: Vec<sys::sockaddr_storage>,
    #[cfg(all(target_os = "linux", feature = "mmsg"))]
    iovs: Vec<sys::iovec>,
    #[cfg(all(target_os = "linux", feature = "mmsg"))]
    msgs: Vec<sys::mmsghdr>,
}

// SAFETY: the raw pointers inside `iovs`/`msgs` are only ever read by the
// kernel during `recv_batch`, which re-derives every one of them from the
// owned slabs at the start of each call — they never dangle across a
// move of the batcher between threads.
#[cfg(all(target_os = "linux", feature = "mmsg"))]
unsafe impl Send for RecvBatcher {}

impl Default for RecvBatcher {
    fn default() -> Self {
        RecvBatcher::new()
    }
}

impl RecvBatcher {
    /// Creates a batcher starting at the MTU size class.
    #[must_use]
    pub fn new() -> Self {
        RecvBatcher {
            class: SizeClass::for_len(0),
            slabs: (0..BATCH).map(|_| None).collect(),
            out: Vec::with_capacity(BATCH),
            truncated: 0,
            #[cfg(all(target_os = "linux", feature = "mmsg"))]
            names: Vec::with_capacity(BATCH),
            #[cfg(all(target_os = "linux", feature = "mmsg"))]
            iovs: Vec::with_capacity(BATCH),
            #[cfg(all(target_os = "linux", feature = "mmsg"))]
            msgs: Vec::with_capacity(BATCH),
        }
    }

    /// The slab size class datagrams are currently received into.
    #[must_use]
    pub fn class(&self) -> SizeClass {
        self.class
    }

    /// Datagrams dropped so far because they overflowed the slab class
    /// (each one also promoted the class, so a given sender pays this at
    /// most [`crate::pool::SIZE_CLASSES`]`.len() - 1` times per loop).
    #[must_use]
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Drains the datagrams filled by the last [`RecvBatcher::recv_batch`]
    /// in arrival order: `(wire bytes, source, slab class)`. The class
    /// must accompany the bytes to their eventual pool release.
    pub fn drain(&mut self) -> impl Iterator<Item = (Bytes, SocketAddr, SizeClass)> + '_ {
        self.out.drain(..)
    }

    /// Fills every consumed slab slot from the pool; on a pending class
    /// promotion, hands all old-class slabs back first.
    fn ensure_slabs(&mut self, pool: &mut BufferPool, promote: bool) {
        if promote {
            if let Some(next) = self.class.promote() {
                for slot in &mut self.slabs {
                    if let Some(slab) = slot.take() {
                        pool.release_unused(self.class, slab);
                    }
                }
                self.class = next;
            }
        }
        let size = self.class.size();
        for slot in &mut self.slabs {
            match slot {
                Some(slab) => slab.resize(size, 0),
                None => {
                    let mut slab = pool.acquire(self.class);
                    slab.resize(size, 0);
                    *slot = Some(slab);
                }
            }
        }
    }

    /// Receives a batch of datagrams into pooled slabs: up to [`BATCH`]
    /// per `recvmmsg(2)` call on Linux, one `recv_from` elsewhere. On a
    /// blocking socket the first datagram honors the read timeout
    /// (`MSG_WAITFORONE`); on a nonblocking socket an empty queue returns
    /// `WouldBlock` immediately — the event loop calls this only after
    /// `poll(2)` reported readiness. Returns how many datagrams were
    /// frozen into [`RecvBatcher::drain`].
    #[cfg(all(target_os = "linux", feature = "mmsg"))]
    pub fn recv_batch(&mut self, socket: &UdpSocket, pool: &mut BufferPool) -> RecvResult {
        use std::os::fd::AsRawFd;
        self.out.clear();
        self.ensure_slabs(pool, false);
        // Re-derive the kernel-facing pointers into the reused arrays —
        // clear + extend keeps their capacity, so nothing allocates after
        // the first call.
        self.names.clear();
        self.names.resize(BATCH, sys::sockaddr_storage::ZERO);
        self.iovs.clear();
        self.iovs.extend(self.slabs.iter_mut().map(|slot| {
            let slab = slot.as_mut().expect("ensure_slabs filled every slot");
            sys::iovec { iov_base: slab.as_mut_ptr().cast(), iov_len: slab.len() }
        }));
        self.msgs.clear();
        for i in 0..BATCH {
            self.msgs.push(sys::mmsghdr {
                msg_hdr: sys::msghdr {
                    msg_name: self.names[i].bytes.as_mut_ptr().cast(),
                    msg_namelen: self.names[i].bytes.len() as u32,
                    msg_iov: &mut self.iovs[i],
                    msg_iovlen: 1,
                    msg_control: std::ptr::null_mut(),
                    msg_controllen: 0,
                    msg_flags: 0,
                },
                msg_len: 0,
            });
        }
        // SAFETY: every mmsghdr points at live, distinct slabs owned by
        // `self` for the duration of the call (no Vec is touched between
        // the pointer derivation above and the syscall); vlen is the
        // allocated batch size. MSG_WAITFORONE makes the kernel honor the
        // socket timeout for the first datagram only.
        let got = unsafe {
            sys::recvmmsg(
                socket.as_raw_fd(),
                self.msgs.as_mut_ptr(),
                BATCH as u32,
                sys::MSG_WAITFORONE,
                std::ptr::null_mut(),
            )
        };
        if got < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let mut promote = false;
        for i in 0..got as usize {
            let msg = self.msgs[i];
            if msg.msg_hdr.msg_flags & sys::MSG_TRUNC != 0 {
                // Datagram larger than the slab: drop it (the recovery
                // protocol will re-request) and grow the class for
                // everything that follows. The slab stays reusable.
                self.truncated += 1;
                promote = true;
                continue;
            }
            // A source address the decoder does not recognize (unexpected
            // family) drops that datagram only.
            let Some(from) = sys::decode_addr(&self.names[i]) else { continue };
            let mut slab = self.slabs[i].take().expect("slab present for filled slot");
            slab.truncate(msg.msg_len as usize);
            self.out.push((slab.freeze(), from, self.class));
        }
        if promote {
            self.ensure_slabs(pool, true);
        }
        Ok(self.out.len())
    }

    /// Fallback drain: one `recv_from` into a pooled slab. Truncation
    /// cannot be detected portably, so a datagram that exactly fills the
    /// slab is treated as suspect — dropped and the class promoted —
    /// mirroring the Linux `MSG_TRUNC` behavior at worst one false
    /// positive per class step.
    #[cfg(not(all(target_os = "linux", feature = "mmsg")))]
    pub fn recv_batch(&mut self, socket: &UdpSocket, pool: &mut BufferPool) -> RecvResult {
        self.out.clear();
        self.ensure_slabs(pool, false);
        let slab = self.slabs[0].as_mut().expect("ensure_slabs filled slot 0");
        let (len, from) = socket.recv_from(&mut slab[..])?;
        if len == slab.len() && self.class.promote().is_some() {
            self.truncated += 1;
            self.ensure_slabs(pool, true);
            return Ok(0);
        }
        let mut slab = self.slabs[0].take().expect("slab present");
        slab.truncate(len);
        self.out.push((slab.freeze(), from, self.class));
        Ok(1)
    }

    /// Hands every unconsumed slab back to the pool (loop shutdown).
    pub fn park(&mut self, pool: &mut BufferPool) {
        for slot in &mut self.slabs {
            if let Some(slab) = slot.take() {
                pool.release_unused(self.class, slab);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Readiness multiplexing.
// ---------------------------------------------------------------------------

/// A reusable `poll(2)` fd set: the event loop registers every socket it
/// hosts plus its waker, blocks once per wakeup, and drains the sockets
/// reported readable. On non-Linux targets (or with the `mmsg` feature
/// off) there is no declared `poll` binding; [`PollSet::wait`] degrades
/// to a bounded 1 ms nap that reports **every** socket readable, turning
/// the loop into a nonblocking sweep with identical semantics and worse
/// idle efficiency.
#[derive(Debug, Default)]
pub struct PollSet {
    #[cfg(all(target_os = "linux", feature = "mmsg"))]
    fds: Vec<sys::pollfd>,
    #[cfg(not(all(target_os = "linux", feature = "mmsg")))]
    fds: usize,
}

impl PollSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        PollSet::default()
    }

    /// Drops every registered fd (the loop re-registers after membership
    /// changes).
    pub fn clear(&mut self) {
        #[cfg(all(target_os = "linux", feature = "mmsg"))]
        self.fds.clear();
        #[cfg(not(all(target_os = "linux", feature = "mmsg")))]
        {
            self.fds = 0;
        }
    }

    /// Registers `socket` for readability; returns its index in the set.
    pub fn register(&mut self, socket: &UdpSocket) -> usize {
        #[cfg(all(target_os = "linux", feature = "mmsg"))]
        {
            use std::os::fd::AsRawFd;
            self.fds.push(sys::pollfd { fd: socket.as_raw_fd(), events: sys::POLLIN, revents: 0 });
            self.fds.len() - 1
        }
        #[cfg(not(all(target_os = "linux", feature = "mmsg")))]
        {
            let _ = socket;
            self.fds += 1;
            self.fds - 1
        }
    }

    /// Number of registered fds.
    #[must_use]
    pub fn len(&self) -> usize {
        #[cfg(all(target_os = "linux", feature = "mmsg"))]
        {
            self.fds.len()
        }
        #[cfg(not(all(target_os = "linux", feature = "mmsg")))]
        {
            self.fds
        }
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until at least one registered socket is readable or
    /// `timeout` elapses; returns how many are ready. `EINTR` reports as
    /// zero ready (the caller's loop re-iterates). The fallback build
    /// naps for at most 1 ms and reports everything ready.
    pub fn wait(&mut self, timeout: std::time::Duration) -> std::io::Result<usize> {
        #[cfg(all(target_os = "linux", feature = "mmsg"))]
        {
            for fd in &mut self.fds {
                fd.revents = 0;
            }
            // Round sub-millisecond timeouts up so a 200 µs deadline
            // waits 1 ms instead of spinning at zero.
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let ms = if ms == 0 && !timeout.is_zero() { 1 } else { ms };
            // SAFETY: `fds` is a live, initialized pollfd array whose
            // length matches nfds.
            let n = unsafe { sys::poll(self.fds.as_mut_ptr(), self.fds.len() as u64, ms) };
            if n < 0 {
                let err = std::io::Error::last_os_error();
                if err.kind() == std::io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            Ok(n as usize)
        }
        #[cfg(not(all(target_os = "linux", feature = "mmsg")))]
        {
            std::thread::sleep(timeout.min(std::time::Duration::from_millis(1)));
            Ok(self.fds)
        }
    }

    /// Whether the socket registered at `idx` was reported readable by
    /// the last [`PollSet::wait`].
    #[must_use]
    pub fn is_readable(&self, idx: usize) -> bool {
        #[cfg(all(target_os = "linux", feature = "mmsg"))]
        {
            self.fds[idx].revents & sys::POLLIN != 0
        }
        #[cfg(not(all(target_os = "linux", feature = "mmsg")))]
        {
            idx < self.fds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr, SocketAddr) {
        let a = UdpSocket::bind("127.0.0.1:0").expect("bind a");
        let b = UdpSocket::bind("127.0.0.1:0").expect("bind b");
        let aa = a.local_addr().unwrap();
        let ba = b.local_addr().unwrap();
        (a, b, aa, ba)
    }

    #[test]
    fn send_to_many_reaches_every_destination() {
        let (tx, rx1, _, rx1_addr) = pair();
        let rx2 = UdpSocket::bind("127.0.0.1:0").expect("bind rx2");
        let rx2_addr = rx2.local_addr().unwrap();
        for rx in [&rx1, &rx2] {
            rx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        }
        assert_eq!(send_to_many(&tx, b"batched", &[rx1_addr, rx2_addr]), 2);
        let mut buf = [0u8; 64];
        for rx in [&rx1, &rx2] {
            let (len, from) = rx.recv_from(&mut buf).expect("datagram arrives");
            assert_eq!(&buf[..len], b"batched");
            assert_eq!(from, tx.local_addr().unwrap());
        }
    }

    #[test]
    fn send_to_many_handles_more_than_one_batch() {
        let (tx, rx, _, rx_addr) = pair();
        rx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // The same destination BATCH+3 times: exercises the chunked loop.
        let addrs = vec![rx_addr; BATCH + 3];
        assert_eq!(send_to_many(&tx, b"many", &addrs), BATCH + 3);
        let mut buf = [0u8; 16];
        for _ in 0..(BATCH + 3) {
            let (len, _) = rx.recv_from(&mut buf).expect("each copy arrives");
            assert_eq!(&buf[..len], b"many");
        }
    }

    #[test]
    fn recv_batch_drains_a_burst_with_sources() {
        let (tx, rx, _, rx_addr) = pair();
        rx.set_read_timeout(Some(Duration::from_millis(2000))).unwrap();
        for i in 0..5u8 {
            tx.send_to(&[i; 3], rx_addr).unwrap();
        }
        // Give loopback a moment to queue everything.
        std::thread::sleep(Duration::from_millis(50));
        let mut pool = BufferPool::new(1 << 20);
        let mut batcher = RecvBatcher::new();
        let mut seen = Vec::new();
        while seen.len() < 5 {
            let n = batcher.recv_batch(&rx, &mut pool).expect("burst arrives");
            assert!(n >= 1);
            for (bytes, from, class) in batcher.drain() {
                assert_eq!(from, tx.local_addr().unwrap());
                assert_eq!(bytes.len(), 3);
                assert_eq!(class.size(), crate::pool::DATAGRAM_MTU);
                seen.push(bytes[0]);
                pool.release(class, bytes);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        // Every released slab is recyclable: a fresh batcher's refill hits
        // the freelist instead of allocating.
        let before = pool.stats().snapshot();
        assert!(before.reclaimed + before.hits > 0 || before.free_bytes > 0);
    }

    #[test]
    fn recv_batch_times_out_like_recv_from() {
        let (_tx, rx, _, _) = pair();
        rx.set_read_timeout(Some(Duration::from_millis(30))).unwrap();
        let mut pool = BufferPool::new(1 << 20);
        let mut batcher = RecvBatcher::new();
        let err = batcher.recv_batch(&rx, &mut pool).expect_err("no datagram queued");
        assert!(
            matches!(err.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "unexpected error kind: {err:?}"
        );
        batcher.park(&mut pool);
    }

    #[test]
    fn oversize_datagram_is_dropped_and_class_promoted() {
        let (tx, rx, _, rx_addr) = pair();
        rx.set_read_timeout(Some(Duration::from_millis(2000))).unwrap();
        let jumbo = vec![0xAB; crate::pool::DATAGRAM_MTU + 100];
        tx.send_to(&jumbo, rx_addr).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let mut pool = BufferPool::new(1 << 22);
        let mut batcher = RecvBatcher::new();
        assert_eq!(batcher.class().size(), crate::pool::DATAGRAM_MTU);
        // The jumbo datagram is dropped (truncated) and the class grows.
        let n = batcher.recv_batch(&rx, &mut pool).expect("recv succeeds");
        assert_eq!(n, 0);
        assert_eq!(batcher.truncated(), 1);
        assert!(batcher.class().size() > crate::pool::DATAGRAM_MTU);
        // A retransmission of the same payload now fits whole.
        tx.send_to(&jumbo, rx_addr).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let n = batcher.recv_batch(&rx, &mut pool).expect("retry arrives");
        assert_eq!(n, 1);
        let (bytes, _, class) = batcher.drain().next().expect("datagram present");
        assert_eq!(bytes.len(), jumbo.len());
        pool.release(class, bytes);
    }

    #[test]
    fn poll_set_reports_readiness() {
        let (tx, rx, _, rx_addr) = pair();
        let mut set = PollSet::new();
        let idx = set.register(&rx);
        assert_eq!(set.len(), 1);
        tx.send_to(b"wake", rx_addr).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let ready = set.wait(Duration::from_millis(500)).expect("poll succeeds");
        assert!(ready >= 1);
        assert!(set.is_readable(idx));
        let mut buf = [0u8; 16];
        let (len, _) = rx.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..len], b"wake");
    }
}
