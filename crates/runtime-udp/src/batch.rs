//! Syscall-batched datagram I/O: `sendmmsg`/`recvmmsg` on Linux, a
//! per-datagram fallback everywhere else.
//!
//! The runtime's send path already encodes each packet **once** and
//! writes the same wire bytes to every destination; the remaining cost
//! is one `sendto(2)` syscall per destination and one `recvfrom(2)` per
//! arriving datagram. On Linux both collapse:
//!
//! * [`send_to_many`] transmits one payload to N destinations with
//!   ⌈N/64⌉ `sendmmsg(2)` calls — every message shares a single iovec
//!   pointing at the same buffer, so the kernel copy is the only
//!   per-destination work left.
//! * [`RecvBatcher`] drains up to a batch of datagrams per
//!   `recvmmsg(2)` call with `MSG_WAITFORONE`: the call blocks for the
//!   first datagram (respecting the socket's read timeout, which the
//!   event loop relies on for shutdown polling) and then collects
//!   whatever else is already queued without blocking again.
//!
//! The module is feature-gated (`mmsg`, on by default) and compiled to
//! the batched syscalls only on `target_os = "linux"`; other targets (or
//! `--no-default-features`) get a fallback with identical semantics
//! built on `send_to`/`recv_from`, so hosts never branch on platform.
//! The workspace vendors no `libc`, so the Linux path declares the tiny
//! FFI surface it needs itself — `std` already links libc on every
//! supported Unix target.

use std::net::{SocketAddr, UdpSocket};

/// Result of one receive-batch drain: how many datagrams were filled.
pub type RecvResult = std::io::Result<usize>;

/// How many datagrams one batched syscall covers at most. Also the batch
/// size of the fallback loop (where it only bounds per-call work).
pub const BATCH: usize = 64;

#[cfg(all(target_os = "linux", feature = "mmsg"))]
mod sys {
    //! Hand-declared FFI for `sendmmsg`/`recvmmsg` (no vendored `libc`).
    //! Layouts match the x86-64/aarch64 Linux ABI `struct msghdr`.
    #![allow(non_camel_case_types)]

    use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, SocketAddrV4, SocketAddrV6};
    use std::os::raw::{c_int, c_uint, c_void};

    pub const AF_INET: u16 = 2;
    pub const AF_INET6: u16 = 10;
    /// `recvmmsg`: block for the first message only, then drain.
    pub const MSG_WAITFORONE: c_int = 0x10000;

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct iovec {
        pub iov_base: *mut c_void,
        pub iov_len: usize,
    }

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct msghdr {
        pub msg_name: *mut c_void,
        pub msg_namelen: u32,
        pub msg_iov: *mut iovec,
        pub msg_iovlen: usize,
        pub msg_control: *mut c_void,
        pub msg_controllen: usize,
        pub msg_flags: c_int,
    }

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct mmsghdr {
        pub msg_hdr: msghdr,
        pub msg_len: c_uint,
    }

    /// Big enough for `sockaddr_in6`; zero padding keeps `sockaddr_in`
    /// valid too (the kernel reads only `namelen` bytes).
    #[repr(C, align(8))]
    #[derive(Debug, Clone, Copy)]
    pub struct sockaddr_storage {
        pub bytes: [u8; 28],
    }

    impl sockaddr_storage {
        pub const ZERO: sockaddr_storage = sockaddr_storage { bytes: [0u8; 28] };
    }

    extern "C" {
        pub fn sendmmsg(fd: c_int, msgvec: *mut mmsghdr, vlen: c_uint, flags: c_int) -> c_int;
        pub fn recvmmsg(
            fd: c_int,
            msgvec: *mut mmsghdr,
            vlen: c_uint,
            flags: c_int,
            timeout: *mut c_void, // struct timespec*; we always pass null
        ) -> c_int;
    }

    /// Encodes `addr` into `storage`; returns the kernel-facing length.
    pub fn encode_addr(addr: SocketAddr, storage: &mut sockaddr_storage) -> u32 {
        match addr {
            SocketAddr::V4(v4) => {
                storage.bytes[..2].copy_from_slice(&AF_INET.to_ne_bytes());
                storage.bytes[2..4].copy_from_slice(&v4.port().to_be_bytes());
                storage.bytes[4..8].copy_from_slice(&v4.ip().octets());
                storage.bytes[8..16].fill(0); // sin_zero
                16
            }
            SocketAddr::V6(v6) => {
                storage.bytes[..2].copy_from_slice(&AF_INET6.to_ne_bytes());
                storage.bytes[2..4].copy_from_slice(&v6.port().to_be_bytes());
                storage.bytes[4..8].copy_from_slice(&v6.flowinfo().to_ne_bytes());
                storage.bytes[8..24].copy_from_slice(&v6.ip().octets());
                storage.bytes[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
                28
            }
        }
    }

    /// Decodes the kernel-written name back into a `SocketAddr`.
    pub fn decode_addr(storage: &sockaddr_storage) -> Option<SocketAddr> {
        let family = u16::from_ne_bytes([storage.bytes[0], storage.bytes[1]]);
        let port = u16::from_be_bytes([storage.bytes[2], storage.bytes[3]]);
        match family {
            AF_INET => {
                let ip: [u8; 4] = storage.bytes[4..8].try_into().ok()?;
                Some(SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::from(ip), port)))
            }
            AF_INET6 => {
                let flow = u32::from_ne_bytes(storage.bytes[4..8].try_into().ok()?);
                let ip: [u8; 16] = storage.bytes[8..24].try_into().ok()?;
                let scope = u32::from_ne_bytes(storage.bytes[24..28].try_into().ok()?);
                Some(SocketAddr::V6(SocketAddrV6::new(Ipv6Addr::from(ip), port, flow, scope)))
            }
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Batched send.
// ---------------------------------------------------------------------------

/// Sends `payload` to every address in `addrs`: one `sendmmsg(2)` per
/// [`BATCH`] destinations on Linux, a plain `send_to` loop elsewhere.
/// Transmission is best-effort per destination, like the runtime's
/// existing fan-out (UDP gives no delivery guarantee anyway): a batch
/// that errors falls back to per-datagram sends for its remainder.
/// Returns how many destinations were handed to the kernel, so callers
/// can count (rather than silently swallow) local send failures —
/// `addrs.len()` minus the return value is the number of datagrams that
/// never left this host.
#[cfg(all(target_os = "linux", feature = "mmsg"))]
pub fn send_to_many(socket: &UdpSocket, payload: &[u8], addrs: &[SocketAddr]) -> usize {
    use std::os::fd::AsRawFd;
    let fd = socket.as_raw_fd();
    let mut ok = 0usize;
    for chunk in addrs.chunks(BATCH) {
        let mut names = [sys::sockaddr_storage::ZERO; BATCH];
        let mut iovs =
            [sys::iovec { iov_base: payload.as_ptr() as *mut _, iov_len: payload.len() }; BATCH];
        let mut msgs = [sys::mmsghdr {
            msg_hdr: sys::msghdr {
                msg_name: std::ptr::null_mut(),
                msg_namelen: 0,
                msg_iov: std::ptr::null_mut(),
                msg_iovlen: 1,
                msg_control: std::ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            },
            msg_len: 0,
        }; BATCH];
        for (i, &addr) in chunk.iter().enumerate() {
            let len = sys::encode_addr(addr, &mut names[i]);
            msgs[i].msg_hdr.msg_name = names[i].bytes.as_mut_ptr().cast();
            msgs[i].msg_hdr.msg_namelen = len;
            msgs[i].msg_hdr.msg_iov = &mut iovs[i];
        }
        let mut done = 0usize;
        while done < chunk.len() {
            // SAFETY: `msgs[done..]` are fully initialized mmsghdrs whose
            // name/iov pointers reference `names`/`iovs`/`payload`, all of
            // which outlive the call; vlen matches the slice length.
            let sent = unsafe {
                sys::sendmmsg(fd, msgs.as_mut_ptr().add(done), (chunk.len() - done) as u32, 0)
            };
            if sent <= 0 {
                // Fall back to per-datagram sends for the remainder
                // (best-effort, mirroring the historical path).
                for &addr in &chunk[done..] {
                    if socket.send_to(payload, addr).is_ok() {
                        ok += 1;
                    }
                }
                break;
            }
            done += sent as usize;
            ok += sent as usize;
        }
    }
    ok
}

/// Fallback: one `send_to` per destination (non-Linux targets, or the
/// `mmsg` feature disabled). Returns how many sends succeeded.
#[cfg(not(all(target_os = "linux", feature = "mmsg")))]
pub fn send_to_many(socket: &UdpSocket, payload: &[u8], addrs: &[SocketAddr]) -> usize {
    addrs.iter().filter(|&&addr| socket.send_to(payload, addr).is_ok()).count()
}

// ---------------------------------------------------------------------------
// Batched receive.
// ---------------------------------------------------------------------------

/// Reusable receive-side batch state: `datagrams` buffers filled by one
/// [`RecvBatcher::recv_batch`] call, with per-datagram source addresses.
/// One instance lives on the receive thread; buffers are reused across
/// calls, so the steady state allocates nothing.
#[derive(Debug)]
pub struct RecvBatcher {
    bufs: Vec<Vec<u8>>,
    /// `(buffer index, len, from)` of each datagram filled by the last
    /// drain — the explicit index keeps payloads and sources paired even
    /// if a slot is skipped (e.g. an undecodable source address).
    filled: Vec<(usize, usize, SocketAddr)>,
    /// Reused kernel-facing arrays of the Linux path (pointers re-derived
    /// from `bufs` on every call; capacity reused, never reallocated).
    #[cfg(all(target_os = "linux", feature = "mmsg"))]
    names: Vec<sys::sockaddr_storage>,
    #[cfg(all(target_os = "linux", feature = "mmsg"))]
    iovs: Vec<sys::iovec>,
    #[cfg(all(target_os = "linux", feature = "mmsg"))]
    msgs: Vec<sys::mmsghdr>,
}

// SAFETY: the raw pointers inside `iovs`/`msgs` are only ever read by the
// kernel during `recv_batch`, which re-derives every one of them from the
// owned buffers at the start of each call — they never dangle across a
// move of the batcher between threads.
#[cfg(all(target_os = "linux", feature = "mmsg"))]
unsafe impl Send for RecvBatcher {}

impl RecvBatcher {
    /// Creates a batcher of [`BATCH`] buffers of `buf_len` bytes each.
    #[must_use]
    pub fn new(buf_len: usize) -> Self {
        RecvBatcher {
            bufs: (0..BATCH).map(|_| vec![0u8; buf_len]).collect(),
            filled: Vec::with_capacity(BATCH),
            #[cfg(all(target_os = "linux", feature = "mmsg"))]
            names: Vec::with_capacity(BATCH),
            #[cfg(all(target_os = "linux", feature = "mmsg"))]
            iovs: Vec::with_capacity(BATCH),
            #[cfg(all(target_os = "linux", feature = "mmsg"))]
            msgs: Vec::with_capacity(BATCH),
        }
    }

    /// The datagrams filled by the last [`RecvBatcher::recv_batch`],
    /// each borrowing its buffer's first `len` bytes.
    pub fn datagrams(&self) -> impl Iterator<Item = (&[u8], SocketAddr)> + '_ {
        self.filled.iter().map(|&(i, len, from)| (&self.bufs[i][..len], from))
    }

    /// Waits for at least one datagram (respecting the socket's read
    /// timeout) and drains up to [`BATCH`] that are already queued.
    /// Returns the number of datagrams filled; timeout surfaces as the
    /// usual `WouldBlock`/`TimedOut` error, exactly like `recv_from`.
    #[cfg(all(target_os = "linux", feature = "mmsg"))]
    pub fn recv_batch(&mut self, socket: &UdpSocket) -> RecvResult {
        use std::os::fd::AsRawFd;
        self.filled.clear();
        // Re-derive the kernel-facing pointers into the reused arrays —
        // clear + extend keeps their capacity, so nothing allocates after
        // the first call.
        self.names.clear();
        self.names.resize(BATCH, sys::sockaddr_storage::ZERO);
        self.iovs.clear();
        self.iovs.extend(
            self.bufs
                .iter_mut()
                .map(|b| sys::iovec { iov_base: b.as_mut_ptr().cast(), iov_len: b.len() }),
        );
        self.msgs.clear();
        for i in 0..BATCH {
            self.msgs.push(sys::mmsghdr {
                msg_hdr: sys::msghdr {
                    msg_name: self.names[i].bytes.as_mut_ptr().cast(),
                    msg_namelen: self.names[i].bytes.len() as u32,
                    msg_iov: &mut self.iovs[i],
                    msg_iovlen: 1,
                    msg_control: std::ptr::null_mut(),
                    msg_controllen: 0,
                    msg_flags: 0,
                },
                msg_len: 0,
            });
        }
        // SAFETY: every mmsghdr points at live, distinct buffers owned by
        // `self` for the duration of the call (no Vec is touched between
        // the pointer derivation above and the syscall); vlen is the
        // allocated batch size. MSG_WAITFORONE makes the kernel honor the
        // socket timeout for the first datagram only.
        let got = unsafe {
            sys::recvmmsg(
                socket.as_raw_fd(),
                self.msgs.as_mut_ptr(),
                BATCH as u32,
                sys::MSG_WAITFORONE,
                std::ptr::null_mut(),
            )
        };
        if got < 0 {
            return Err(std::io::Error::last_os_error());
        }
        for (i, msg) in self.msgs.iter().take(got as usize).enumerate() {
            // A source address the decoder does not recognize (unexpected
            // family) drops that datagram only; the explicit buffer index
            // keeps the survivors correctly paired.
            let Some(from) = sys::decode_addr(&self.names[i]) else { continue };
            self.filled.push((i, msg.msg_len as usize, from));
        }
        Ok(self.filled.len())
    }

    /// Fallback drain: one blocking `recv_from` (so the socket timeout
    /// still paces the loop), then opportunistic non-blocking reads up
    /// to the batch size would need a nonblocking socket — the fallback
    /// keeps the historical one-datagram-per-call behavior instead.
    #[cfg(not(all(target_os = "linux", feature = "mmsg")))]
    pub fn recv_batch(&mut self, socket: &UdpSocket) -> RecvResult {
        self.filled.clear();
        let (len, from) = socket.recv_from(&mut self.bufs[0])?;
        self.filled.push((0, len, from));
        Ok(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr, SocketAddr) {
        let a = UdpSocket::bind("127.0.0.1:0").expect("bind a");
        let b = UdpSocket::bind("127.0.0.1:0").expect("bind b");
        let aa = a.local_addr().unwrap();
        let ba = b.local_addr().unwrap();
        (a, b, aa, ba)
    }

    #[test]
    fn send_to_many_reaches_every_destination() {
        let (tx, rx1, _, rx1_addr) = pair();
        let rx2 = UdpSocket::bind("127.0.0.1:0").expect("bind rx2");
        let rx2_addr = rx2.local_addr().unwrap();
        for rx in [&rx1, &rx2] {
            rx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        }
        assert_eq!(send_to_many(&tx, b"batched", &[rx1_addr, rx2_addr]), 2);
        let mut buf = [0u8; 64];
        for rx in [&rx1, &rx2] {
            let (len, from) = rx.recv_from(&mut buf).expect("datagram arrives");
            assert_eq!(&buf[..len], b"batched");
            assert_eq!(from, tx.local_addr().unwrap());
        }
    }

    #[test]
    fn send_to_many_handles_more_than_one_batch() {
        let (tx, rx, _, rx_addr) = pair();
        rx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // The same destination BATCH+3 times: exercises the chunked loop.
        let addrs = vec![rx_addr; BATCH + 3];
        assert_eq!(send_to_many(&tx, b"many", &addrs), BATCH + 3);
        let mut buf = [0u8; 16];
        for _ in 0..(BATCH + 3) {
            let (len, _) = rx.recv_from(&mut buf).expect("each copy arrives");
            assert_eq!(&buf[..len], b"many");
        }
    }

    #[test]
    fn recv_batch_drains_a_burst_with_sources() {
        let (tx, rx, _, rx_addr) = pair();
        rx.set_read_timeout(Some(Duration::from_millis(2000))).unwrap();
        for i in 0..5u8 {
            tx.send_to(&[i; 3], rx_addr).unwrap();
        }
        // Give loopback a moment to queue everything.
        std::thread::sleep(Duration::from_millis(50));
        let mut batcher = RecvBatcher::new(2048);
        let mut seen = Vec::new();
        while seen.len() < 5 {
            let n = batcher.recv_batch(&rx).expect("burst arrives");
            assert!(n >= 1);
            for (bytes, from) in batcher.datagrams() {
                assert_eq!(from, tx.local_addr().unwrap());
                assert_eq!(bytes.len(), 3);
                seen.push(bytes[0]);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_batch_times_out_like_recv_from() {
        let (_tx, rx, _, _) = pair();
        rx.set_read_timeout(Some(Duration::from_millis(30))).unwrap();
        let mut batcher = RecvBatcher::new(128);
        let err = batcher.recv_batch(&rx).expect_err("no datagram queued");
        assert!(
            matches!(err.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "unexpected error kind: {err:?}"
        );
    }
}
