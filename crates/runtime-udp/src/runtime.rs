//! The multiplexed UDP runtime hosting many sans-io protocol cores on a
//! small, fixed set of event-loop threads.
//!
//! A [`UdpRuntime`] spawns `loop_threads` **event loops**. Each loop
//! multiplexes every member placed on it over:
//!
//! * one **`poll(2)` readiness set** ([`crate::batch::PollSet`]) covering
//!   all member sockets plus a waker socket commands knock on;
//! * one shared hierarchical **timing wheel** —
//!   [`rrmp_netsim::event::EventQueue`], the identical scheduler the
//!   simulator runs on, behind the [`rrmp_netsim::event::Scheduler`]
//!   trait seam — holding *every* member's protocol timers, each event
//!   tagged with its member's slot id (slot ids are never reused, so a
//!   removed member's pending timers are **lazily cancelled**: they pop,
//!   find no slot, and vanish — see the `Scheduler` docs);
//! * one **MTU-bucketed buffer pool** ([`crate::pool::BufferPool`]) the
//!   batched receive path ([`crate::batch::RecvBatcher`], `recvmmsg` on
//!   Linux) fills directly, so the steady-state hot path is
//!   pool slab → [`Bytes`] → [`Packet::decode`] with **zero per-datagram
//!   allocation** — the decoded packet's payload *is* a window into the
//!   receive slab, and the slab returns to the pool once the protocol
//!   lets go of it;
//! * one **[`Outbox`]** (reused encode buffer + `sendmmsg` fan-out list)
//!   shared by every member on the loop.
//!
//! Members are placed on the least-loaded loop at
//! [`UdpRuntime::add_member`] time; a process can host thousands of
//! receivers this way with thread count decoupled from member count.
//!
//! [`UdpNode`] remains as a thin facade — one member on a private
//! one-loop runtime — preserving the original per-node API exactly.
//!
//! IP multicast is emulated by unicast fan-out (no multicast routing is
//! assumed): each packet is **encoded once** and the same wire bytes are
//! written to every destination, mirroring the zero-copy fan-out of the
//! simulator. A test hook can drop the initial transmission to selected
//! members to exercise recovery over real sockets.

use std::collections::HashMap;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver as ChanReceiver, Sender as ChanSender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};

use rrmp_core::events::{Action, Event, TimerKind};
use rrmp_core::ids::MessageId;
use rrmp_core::packet::Packet;
use rrmp_core::prelude::ProtocolConfig;
use rrmp_core::receiver::Receiver;
use rrmp_core::sender::{Sender, SenderAction};
use rrmp_netsim::event::{EventQueue, Scheduler};
use rrmp_netsim::time::SimTime;
use rrmp_netsim::topology::NodeId;
use rrmp_trace::{sort_canonical, streams, EventKind, TraceEvent, TraceSink};

use crate::batch::{PollSet, RecvBatcher};
use crate::group::GroupSpec;
use crate::pool::{BufferPool, PoolStats, DATAGRAM_MTU};

// ---------------------------------------------------------------------------
// Public surface: configuration, events, handles.
// ---------------------------------------------------------------------------

/// Tuning knobs for a [`UdpRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of event-loop threads. Defaults to the `RRMP_UDP_LOOPS`
    /// environment variable if set, else the machine's available
    /// parallelism (capped at 8 — loops are I/O-bound, not compute).
    pub loop_threads: usize,
    /// Per-loop cap on *idle* pooled bytes (freelist slabs). `0` disables
    /// pooling entirely — every receive allocates — which exists for the
    /// pooled-vs-unpooled benchmark arm, not for production use.
    pub pool_limit_bytes: usize,
    /// Capacity of each member's delivery channel; a member whose
    /// application stops draining sheds deliveries (counted in
    /// [`MemberHandle::send_drops`]) rather than stalling its whole loop.
    pub delivery_capacity: usize,
    /// `Some(capacity)` arms a per-loop [`TraceSink`] on the
    /// [`streams::RUNTIME`] stream recording poll wakeups, socket
    /// mute/unmute, pool scavenges, and fatal receive failures (collect
    /// with [`UdpRuntime::trace_events`]). `None` — the default — keeps
    /// the loops trace-free: every hook site is one branch on a `None`
    /// discriminant.
    pub trace_ring: Option<usize>,
}

/// Default per-loop freelist budget: enough for two full receive batches
/// of jumbo slabs with room left for MTU-class churn.
const DEFAULT_POOL_LIMIT: usize = 8 * 1024 * 1024;

impl Default for RuntimeConfig {
    fn default() -> Self {
        let loops = std::env::var("RRMP_UDP_LOOPS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
            })
            .min(8);
        RuntimeConfig {
            loop_threads: loops,
            pool_limit_bytes: DEFAULT_POOL_LIMIT,
            delivery_capacity: 4096,
            trace_ring: None,
        }
    }
}

impl RuntimeConfig {
    /// One event loop with default pool and channel sizing — what the
    /// [`UdpNode`] facade uses.
    #[must_use]
    pub fn single_loop() -> RuntimeConfig {
        RuntimeConfig {
            loop_threads: 1,
            pool_limit_bytes: DEFAULT_POOL_LIMIT,
            delivery_capacity: 4096,
            trace_ring: None,
        }
    }
}

/// Shared, lock-free per-loop health statistics — the runtime-path
/// mirror of [`PoolStats`]. Counters are cumulative; all updates are
/// `Relaxed` — they are observability, never synchronization.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    /// Poll returns with at least one readable socket.
    pub poll_wakeups: AtomicU64,
    /// Poll returns with nothing readable (timer or idle sweeps).
    pub idle_ticks: AtomicU64,
    /// Sockets muted after a non-transient receive error (backoff).
    pub mutes: AtomicU64,
    /// Sockets re-admitted to the readiness set after backoff.
    pub unmutes: AtomicU64,
    /// Fatal receive failures: sockets permanently retired (each also
    /// surfaced to its application as [`RuntimeEvent::RecvFailed`]).
    pub recv_failures: AtomicU64,
    /// Pool sweep passes that reclaimed at least one retained slab.
    pub scavenges: AtomicU64,
    /// Loop-wide fold of every member's send-path drops: datagrams the
    /// outbox could not put on the wire plus deliveries shed on full
    /// application channels (the per-member split stays on
    /// [`MemberHandle::send_drops`]).
    pub send_drops: AtomicU64,
}

/// A plain-data copy of [`RuntimeStats`] at one instant — uniform with
/// [`crate::pool::PoolSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeSnapshot {
    /// Poll returns with at least one readable socket.
    pub poll_wakeups: u64,
    /// Poll returns with nothing readable.
    pub idle_ticks: u64,
    /// Sockets muted into receive-error backoff.
    pub mutes: u64,
    /// Sockets re-admitted after backoff.
    pub unmutes: u64,
    /// Sockets permanently retired by fatal receive errors.
    pub recv_failures: u64,
    /// Pool sweeps that reclaimed at least one slab.
    pub scavenges: u64,
    /// Send-path work dropped loop-wide.
    pub send_drops: u64,
}

impl RuntimeStats {
    /// Reads every counter at once (each individually `Relaxed`).
    #[must_use]
    pub fn snapshot(&self) -> RuntimeSnapshot {
        RuntimeSnapshot {
            poll_wakeups: self.poll_wakeups.load(Ordering::Relaxed),
            idle_ticks: self.idle_ticks.load(Ordering::Relaxed),
            mutes: self.mutes.load(Ordering::Relaxed),
            unmutes: self.unmutes.load(Ordering::Relaxed),
            recv_failures: self.recv_failures.load(Ordering::Relaxed),
            scavenges: self.scavenges.load(Ordering::Relaxed),
            send_drops: self.send_drops.load(Ordering::Relaxed),
        }
    }
}

/// One event loop's observer surface: the always-on health counters plus
/// the optional [`streams::RUNTIME`] trace sink. The sink sits behind a
/// mutex only the loop thread touches while running (collection happens
/// from the runtime handle), so an armed record is an uncontended lock
/// and an unarmed one is a branch on `None`.
struct LoopMon {
    loop_idx: u32,
    stats: Arc<RuntimeStats>,
    trace: Option<Arc<Mutex<TraceSink>>>,
}

impl LoopMon {
    fn record(&self, at: SimTime, kind: EventKind) {
        if let Some(t) = &self.trace {
            t.lock().expect("trace sink lock").record(
                at.as_micros(),
                self.loop_idx,
                streams::RUNTIME,
                kind,
            );
        }
    }
}

/// A message delivered to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The message id.
    pub id: MessageId,
    /// The payload.
    pub payload: Bytes,
}

/// Everything the runtime surfaces to the application: message
/// deliveries, and terminal runtime failures that would otherwise be
/// silent (a member whose socket died keeps sending and looks healthy
/// from the outside).
#[derive(Debug)]
pub enum RuntimeEvent {
    /// A message delivered to the application.
    Delivery(Delivery),
    /// The member's socket hit a fatal receive error and was retired from
    /// the readiness set: the member is deaf to the network even though
    /// its send path may keep working. Tear the member down.
    RecvFailed(std::io::Error),
}

/// Socket errors the receive path always retries: `EINTR`, and the
/// ICMP port-unreachable feedback some stacks report on UDP sockets as
/// `ECONNREFUSED`/`ECONNRESET` when a peer is briefly down — normal
/// churn in a group, not a reason to go deaf.
fn recv_error_is_transient(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
    )
}

/// Consecutive non-transient receive errors tolerated (with backoff)
/// before a member's socket is declared dead and
/// [`RuntimeEvent::RecvFailed`] is surfaced.
const MAX_RECV_ERROR_STREAK: u32 = 8;

/// Backoff before re-polling a socket after a receive error: exponential
/// in the error streak, capped so the loop stays responsive. Implemented
/// as an unmute timer on the shared wheel — a faulty socket never makes
/// its loop sleep, it is just excluded from the readiness set until the
/// timer fires.
fn recv_backoff(streak: u32) -> Duration {
    Duration::from_millis(1u64 << streak.min(5))
}

type DropFilter = dyn Fn(NodeId) -> bool + Send;

// ---------------------------------------------------------------------------
// Loop-internal plumbing.
// ---------------------------------------------------------------------------

/// Everything one event loop can find on its timing wheel. Every entry
/// carries the owning member's slot id; slot ids are allocated
/// monotonically and never reused, so an entry whose slot is gone is a
/// lazily-cancelled timer (see the [`Scheduler`] trait docs) and is
/// dropped at pop time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopEvent {
    /// A protocol timer for the member at `slot`.
    Proto { slot: u32, kind: TimerKind },
    /// End of a receive-error backoff: re-admit `slot`'s socket to the
    /// readiness set.
    Unmute { slot: u32 },
}

/// The shared wheel type: one per loop, multiplexing every member.
type TimerWheel = EventQueue<LoopEvent>;

/// Commands accepted by an event loop, delivered over its mpsc channel
/// with a datagram knock on the waker socket.
enum LoopCmd {
    Add(Box<MemberInit>),
    Multicast(u32, Bytes),
    SetDrop(u32, Option<Box<DropFilter>>),
    Leave(u32),
    Remove(u32),
    Shutdown,
}

/// Everything a loop needs to install a new member.
struct MemberInit {
    slot: u32,
    socket: UdpSocket,
    spec: Arc<GroupSpec>,
    node: NodeId,
    cfg: ProtocolConfig,
    is_sender: bool,
    seed: u64,
    delivered_tx: SyncSender<RuntimeEvent>,
    send_drops: Arc<AtomicU64>,
}

/// One member hosted on an event loop: the sans-io protocol core plus
/// its socket and application channel.
struct MemberSlot {
    socket: UdpSocket,
    spec: Arc<GroupSpec>,
    node: NodeId,
    receiver: Receiver,
    sender: Option<Sender>,
    delivered_tx: SyncSender<RuntimeEvent>,
    initial_drop: Option<Box<DropFilter>>,
    send_drops: Arc<AtomicU64>,
    /// Consecutive non-transient receive errors (reset by any success).
    error_streak: u32,
    /// Excluded from the readiness set until an `Unmute` timer fires.
    muted: bool,
    /// Fatal receive failure surfaced; the socket is permanently retired.
    dead: bool,
}

/// The reused send path: one wire buffer and one fan-out list shared by
/// every member of a loop. Each outgoing packet is encoded exactly once
/// onto `wire`; fan-out hands the same bytes to the batched send path
/// (`sendmmsg` on Linux) in one call per [`crate::batch::BATCH`]
/// destinations.
struct Outbox {
    /// Reused encode buffer: cleared (capacity kept) per packet. Sized to
    /// the MTU bucket so a control packet never grows it.
    wire: BytesMut,
    /// Reused fan-out destination list.
    fanout_addrs: Vec<std::net::SocketAddr>,
    /// Loop-wide drop fold: every per-member drop also lands in
    /// [`RuntimeStats::send_drops`] so the operator sees the loop's
    /// health without enumerating member handles.
    loop_drops: Arc<RuntimeStats>,
}

impl Outbox {
    fn new(loop_drops: Arc<RuntimeStats>) -> Outbox {
        Outbox { wire: BytesMut::with_capacity(DATAGRAM_MTU), fanout_addrs: Vec::new(), loop_drops }
    }

    fn count_drops(&self, drops: &AtomicU64, n: u64) {
        drops.fetch_add(n, Ordering::Relaxed);
        self.loop_drops.send_drops.fetch_add(n, Ordering::Relaxed);
    }

    /// Unicast: encode onto the reused buffer and transmit to one member.
    fn send(
        &mut self,
        socket: &UdpSocket,
        spec: &GroupSpec,
        drops: &AtomicU64,
        to: NodeId,
        packet: &Packet,
    ) {
        let Some(addr) = spec.addr_of(to) else {
            self.count_drops(drops, 1);
            return;
        };
        self.wire.clear();
        packet.encode_into(&mut self.wire);
        if socket.send_to(&self.wire, addr).is_err() {
            self.count_drops(drops, 1);
        }
    }

    /// Fan-out: encode once, write the same wire bytes to every listed
    /// member (the caller excluded) for which `keep` returns true.
    /// Every datagram that cannot be put on the wire (unaddressable
    /// destination or local send error) bumps `drops`.
    #[allow(clippy::too_many_arguments)]
    fn fan_out(
        &mut self,
        socket: &UdpSocket,
        spec: &GroupSpec,
        node: NodeId,
        drops: &AtomicU64,
        packet: &Packet,
        members: &mut dyn Iterator<Item = NodeId>,
        keep: &dyn Fn(NodeId) -> bool,
    ) {
        self.wire.clear();
        packet.encode_into(&mut self.wire);
        self.fanout_addrs.clear();
        for m in members {
            if m != node && keep(m) {
                match spec.addr_of(m) {
                    Some(addr) => self.fanout_addrs.push(addr),
                    None => {
                        self.count_drops(drops, 1);
                    }
                }
            }
        }
        let sent = crate::batch::send_to_many(socket, &self.wire, &self.fanout_addrs);
        let lost = self.fanout_addrs.len() - sent;
        if lost > 0 {
            self.count_drops(drops, lost as u64);
        }
    }
}

/// Executes (and drains) a batch of receiver actions for one member.
fn execute(
    actions: &mut Vec<Action>,
    outbox: &mut Outbox,
    timers: &mut TimerWheel,
    slot_id: u32,
    slot: &MemberSlot,
    now: SimTime,
) {
    for action in actions.drain(..) {
        match action {
            Action::Send { to, packet } => {
                outbox.send(&slot.socket, &slot.spec, &slot.send_drops, to, &packet);
            }
            Action::MulticastRegion { packet } => {
                outbox.fan_out(
                    &slot.socket,
                    &slot.spec,
                    slot.node,
                    &slot.send_drops,
                    &packet,
                    &mut slot.receiver.view().own().members(),
                    &|_| true,
                );
            }
            Action::Deliver { id, payload } => {
                // A full (or closed) application channel sheds the
                // delivery; count it so a stalled consumer is visible
                // through `MemberHandle::send_drops`.
                if slot
                    .delivered_tx
                    .try_send(RuntimeEvent::Delivery(Delivery { id, payload }))
                    .is_err()
                {
                    outbox.count_drops(&slot.send_drops, 1);
                }
            }
            Action::SetTimer { delay, kind } => {
                timers.schedule(now + delay, LoopEvent::Proto { slot: slot_id, kind });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The event loop.
// ---------------------------------------------------------------------------

/// Upper bound on how long a loop blocks in `poll` even with no timer
/// due — keeps the shutdown flag polled.
const MAX_IDLE_WAIT: Duration = Duration::from_millis(20);

/// How many `recvmmsg` batches one socket may drain per wakeup before
/// the loop moves to the next readable socket — bounds how long one
/// flooded member can starve its loop-mates.
const MAX_RECV_ROUNDS: usize = 4;

/// Retained-list scavenge budget per loop wakeup (see
/// [`BufferPool::sweep`]): O(1) work amortized across wakeups.
const SWEEP_BUDGET: usize = 8;

struct LoopCtx {
    waker: UdpSocket,
    cmd_rx: ChanReceiver<LoopCmd>,
    pool_limit: usize,
    shutdown: Arc<AtomicBool>,
    stats: Arc<PoolStats>,
    mon: LoopMon,
}

fn loop_main(ctx: LoopCtx) {
    let LoopCtx { waker, cmd_rx, pool_limit, shutdown, stats, mon } = ctx;
    let epoch = Instant::now();
    let now_sim = || SimTime::from_micros(epoch.elapsed().as_micros() as u64);

    let mut slots: HashMap<u32, MemberSlot> = HashMap::new();
    let mut timers = TimerWheel::new();
    let mut pool = BufferPool::with_stats(pool_limit, stats);
    let mut batcher = RecvBatcher::new();
    let mut pollset = PollSet::new();
    // Poll indices 1.. map onto this list (index 0 is the waker).
    let mut poll_slots: Vec<u32> = Vec::new();
    let mut poll_dirty = true;
    let mut outbox = Outbox::new(Arc::clone(&mon.stats));
    // Reused action scratch: `handle_into` fills it, `execute` drains it.
    let mut actions: Vec<Action> = Vec::new();

    'run: loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }

        // 1. Fire due timers across every member. Timers armed while
        // handling one (including zero delays) are picked up within the
        // same sweep.
        let now = now_sim();
        while let Some((at, ev)) = timers.pop_at_or_before(now) {
            match ev {
                LoopEvent::Unmute { slot } => {
                    if let Some(s) = slots.get_mut(&slot) {
                        if !s.dead && s.muted {
                            s.muted = false;
                            poll_dirty = true;
                            mon.stats.unmutes.fetch_add(1, Ordering::Relaxed);
                            mon.record(at, EventKind::Unmuted { slot });
                        }
                    }
                }
                LoopEvent::Proto { slot, kind } => {
                    // Lazily-cancelled timer of a removed member.
                    let Some(s) = slots.get_mut(&slot) else { continue };
                    if kind == TimerKind::SessionTick {
                        if let Some(sender) = s.sender.as_ref() {
                            for a in sender.on_session_tick() {
                                match a {
                                    SenderAction::MulticastGroup { packet } => {
                                        outbox.fan_out(
                                            &s.socket,
                                            &s.spec,
                                            s.node,
                                            &s.send_drops,
                                            &packet,
                                            &mut s.spec.members().iter().map(|m| m.node),
                                            &|_| true,
                                        );
                                    }
                                    SenderAction::Protocol(Action::SetTimer { delay, kind }) => {
                                        timers
                                            .schedule(now + delay, LoopEvent::Proto { slot, kind });
                                    }
                                    SenderAction::Protocol(_) => {}
                                }
                            }
                        }
                        continue;
                    }
                    s.receiver.handle_into(Event::Timer(kind), at, &mut actions);
                    execute(&mut actions, &mut outbox, &mut timers, slot, s, now);
                }
            }
        }

        // 2. Drain pending commands (the waker datagram made `poll`
        // return if we were blocked).
        while let Ok(cmd) = cmd_rx.try_recv() {
            let now = now_sim();
            match cmd {
                LoopCmd::Shutdown => break 'run,
                LoopCmd::Add(init) => {
                    let MemberInit {
                        slot,
                        socket,
                        spec,
                        node,
                        cfg,
                        is_sender,
                        seed,
                        delivered_tx,
                        send_drops,
                    } = *init;
                    // Build the policy over the *full* group membership
                    // (the spec knows it) so topology-blind policies like
                    // hash placement rank every member — mirroring the
                    // simulation harness.
                    let mut members: Vec<NodeId> = spec.members().iter().map(|m| m.node).collect();
                    members.sort_unstable();
                    members.dedup();
                    let policy = cfg.policy.build(node, &members, &cfg);
                    let mut receiver =
                        Receiver::with_policy(node, spec.view_for(node), cfg.clone(), seed, policy);
                    let sender = is_sender.then(|| Sender::new(node, cfg.session_interval));
                    actions.extend(receiver.on_start());
                    let s = MemberSlot {
                        socket,
                        spec,
                        node,
                        receiver,
                        sender,
                        delivered_tx,
                        initial_drop: None,
                        send_drops,
                        error_streak: 0,
                        muted: false,
                        dead: false,
                    };
                    execute(&mut actions, &mut outbox, &mut timers, slot, &s, now);
                    // Same gate as the simulation harness: a host
                    // mirroring the legacy baselines' one-shot session ads
                    // runs without the periodic tick.
                    if cfg.periodic_sessions {
                        if let Some(sender) = &s.sender {
                            for a in sender.on_start() {
                                if let SenderAction::Protocol(Action::SetTimer { delay, kind }) = a
                                {
                                    timers.schedule(now + delay, LoopEvent::Proto { slot, kind });
                                }
                            }
                        }
                    }
                    slots.insert(slot, s);
                    poll_dirty = true;
                }
                LoopCmd::Multicast(slot, payload) => {
                    let Some(s) = slots.get_mut(&slot) else { continue };
                    let Some(sender) = s.sender.as_mut() else { continue };
                    let (id, sender_actions) = sender.multicast(payload.clone());
                    for a in sender_actions {
                        if let SenderAction::MulticastGroup { packet } = a {
                            let filter = &s.initial_drop;
                            outbox.fan_out(
                                &s.socket,
                                &s.spec,
                                s.node,
                                &s.send_drops,
                                &packet,
                                &mut s.spec.members().iter().map(|m| m.node),
                                &|m| !filter.as_ref().is_some_and(|f| f(m)),
                            );
                        }
                    }
                    // The sender holds its own message.
                    let self_packet = Packet::Data(rrmp_core::packet::DataPacket::new(id, payload));
                    s.receiver.handle_into(
                        Event::Packet { from: s.node, packet: self_packet },
                        now,
                        &mut actions,
                    );
                    execute(&mut actions, &mut outbox, &mut timers, slot, s, now);
                }
                LoopCmd::SetDrop(slot, filter) => {
                    if let Some(s) = slots.get_mut(&slot) {
                        s.initial_drop = filter;
                    }
                }
                LoopCmd::Leave(slot) => {
                    let Some(s) = slots.get_mut(&slot) else { continue };
                    s.receiver.handle_into(Event::Leave, now, &mut actions);
                    execute(&mut actions, &mut outbox, &mut timers, slot, s, now);
                }
                LoopCmd::Remove(slot) => {
                    if slots.remove(&slot).is_some() {
                        // Pending wheel entries for this slot are now
                        // lazily cancelled: they pop, miss, and vanish.
                        poll_dirty = true;
                    }
                }
            }
        }

        // 3. Rebuild the readiness set after membership/mute changes.
        if poll_dirty {
            pollset.clear();
            poll_slots.clear();
            let widx = pollset.register(&waker);
            debug_assert_eq!(widx, 0, "waker owns poll index 0");
            for (&id, s) in &slots {
                if s.muted || s.dead {
                    continue;
                }
                pollset.register(&s.socket);
                poll_slots.push(id);
            }
            poll_dirty = false;
        }

        // 4. Block until a socket is readable, a command knocks, or the
        // next timer is due.
        let timeout = timers
            .next_due_in(now_sim())
            .map_or(MAX_IDLE_WAIT, |d| Duration::from_micros(d.as_micros()).min(MAX_IDLE_WAIT));
        let ready = match pollset.wait(timeout) {
            Ok(n) => n,
            Err(_) => {
                // A failing poll (resource pressure) degrades to a paced
                // sweep rather than a spin.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };
        if ready == 0 {
            mon.stats.idle_ticks.fetch_add(1, Ordering::Relaxed);
            sweep_pool(&mut pool, &mon, &now_sim);
            continue;
        }
        mon.stats.poll_wakeups.fetch_add(1, Ordering::Relaxed);
        mon.record(now_sim(), EventKind::PollWakeup { ready: ready as u32 });

        // 5. Drain the waker (commands are picked up next iteration).
        if pollset.is_readable(0) {
            let mut knock = [0u8; 8];
            while waker.recv_from(&mut knock).is_ok() {}
        }

        // 6. Drain every readable member socket through the pooled
        // batcher, bounded per socket so a flooded member cannot starve
        // its loop-mates.
        for (i, &id) in poll_slots.iter().enumerate() {
            if !pollset.is_readable(i + 1) {
                continue;
            }
            drain_socket(
                id,
                &mut slots,
                &mut batcher,
                &mut pool,
                &mut outbox,
                &mut timers,
                &mut actions,
                &mut poll_dirty,
                &now_sim,
                &mon,
            );
        }

        // 7. Amortized reclaim of receive slabs the protocol released.
        sweep_pool(&mut pool, &mon, &now_sim);
    }

    batcher.park(&mut pool);
}

/// One amortized pool sweep, with the reclaim count surfaced to the
/// loop's observer when anything came back.
fn sweep_pool(pool: &mut BufferPool, mon: &LoopMon, now_sim: &dyn Fn() -> SimTime) {
    let reclaimed = pool.sweep(SWEEP_BUDGET);
    if reclaimed > 0 {
        mon.stats.scavenges.fetch_add(1, Ordering::Relaxed);
        mon.record(now_sim(), EventKind::PoolScavenge { reclaimed: reclaimed as u32 });
    }
}

/// Drains up to [`MAX_RECV_ROUNDS`] receive batches from one member's
/// socket, feeding decoded packets straight into its protocol core.
#[allow(clippy::too_many_arguments)]
fn drain_socket(
    id: u32,
    slots: &mut HashMap<u32, MemberSlot>,
    batcher: &mut RecvBatcher,
    pool: &mut BufferPool,
    outbox: &mut Outbox,
    timers: &mut TimerWheel,
    actions: &mut Vec<Action>,
    poll_dirty: &mut bool,
    now_sim: &dyn Fn() -> SimTime,
    mon: &LoopMon,
) {
    for _ in 0..MAX_RECV_ROUNDS {
        let Some(s) = slots.get_mut(&id) else { return };
        match batcher.recv_batch(&s.socket, pool) {
            Ok(_) => {
                s.error_streak = 0;
                let now = now_sim();
                for (bytes, from_addr, class) in batcher.drain() {
                    let Some(from) = s.spec.node_at(from_addr) else {
                        pool.release(class, bytes);
                        continue;
                    };
                    // The decoded packet's payload is a window into the
                    // same slab; the clone released below parks the slab
                    // until the protocol drops its last reference, after
                    // which a sweep recycles it.
                    let wire = bytes.clone();
                    if let Ok(packet) = Packet::decode(bytes) {
                        s.receiver.handle_into(Event::Packet { from, packet }, now, actions);
                        execute(actions, outbox, timers, id, s, now);
                    }
                    pool.release(class, wire);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return;
            }
            Err(e) if recv_error_is_transient(e.kind()) => {
                // Retried forever: normal group churn, not a socket
                // death. Move on for this wakeup.
                return;
            }
            Err(e) => {
                s.error_streak += 1;
                if s.error_streak >= MAX_RECV_ERROR_STREAK {
                    // Fatal: tell the application through the delivery
                    // channel (try_send — if the channel is full or
                    // closed, the member is being torn down anyway) and
                    // retire the socket.
                    let _ = s.delivered_tx.try_send(RuntimeEvent::RecvFailed(e));
                    s.dead = true;
                    mon.stats.recv_failures.fetch_add(1, Ordering::Relaxed);
                    mon.record(now_sim(), EventKind::RecvFailed { slot: id });
                } else {
                    // Mute instead of sleeping: the wheel wakes the
                    // socket back up, the loop keeps serving everyone
                    // else.
                    s.muted = true;
                    mon.stats.mutes.fetch_add(1, Ordering::Relaxed);
                    mon.record(now_sim(), EventKind::Muted { slot: id });
                    let delay = recv_backoff(s.error_streak);
                    timers.schedule(
                        now_sim()
                            + rrmp_netsim::time::SimDuration::from_micros(delay.as_micros() as u64),
                        LoopEvent::Unmute { slot: id },
                    );
                }
                *poll_dirty = true;
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The runtime: loop threads + placement.
// ---------------------------------------------------------------------------

/// One loop's control surface, shared between the runtime and every
/// member handle placed on it.
struct LoopLink {
    cmd_tx: ChanSender<LoopCmd>,
    /// Connected to the loop's waker socket; one datagram per command
    /// batch pops the loop out of `poll`.
    waker: UdpSocket,
    /// Members currently placed here (least-loaded placement key).
    members: AtomicUsize,
    /// Monotonic slot allocator — ids are never reused, which is what
    /// makes lazy timer cancellation safe.
    next_slot: AtomicU32,
    /// This loop's buffer-pool statistics (shared with the loop thread).
    stats: Arc<PoolStats>,
    /// This loop's runtime-health statistics (shared with the loop
    /// thread).
    rt_stats: Arc<RuntimeStats>,
    /// The loop's optional [`streams::RUNTIME`] trace sink; `None` when
    /// [`RuntimeConfig::trace_ring`] was unset.
    trace: Option<Arc<Mutex<TraceSink>>>,
}

impl LoopLink {
    fn send(&self, cmd: LoopCmd) {
        if self.cmd_tx.send(cmd).is_ok() {
            let _ = self.waker.send(&[1u8]);
        }
    }
}

struct RuntimeShared {
    links: Vec<LoopLink>,
    delivery_capacity: usize,
    shutdown: Arc<AtomicBool>,
}

/// A multiplexed UDP runtime: `loop_threads` event loops hosting many
/// group members each. See the module docs for the architecture.
pub struct UdpRuntime {
    shared: Arc<RuntimeShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for UdpRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpRuntime")
            .field("loops", &self.shared.links.len())
            .field("members", &self.member_count())
            .finish_non_exhaustive()
    }
}

impl UdpRuntime {
    /// Starts the event-loop threads.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if a waker socket cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.loop_threads` is zero.
    pub fn start(cfg: RuntimeConfig) -> std::io::Result<UdpRuntime> {
        assert!(cfg.loop_threads > 0, "at least one event loop is required");
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut links = Vec::with_capacity(cfg.loop_threads);
        let mut handles = Vec::with_capacity(cfg.loop_threads);
        for i in 0..cfg.loop_threads {
            // The waker pair: the loop polls `waker_rx`; every command
            // sender knocks via the connected `waker_tx`.
            let waker_rx = UdpSocket::bind("127.0.0.1:0")?;
            waker_rx.set_nonblocking(true)?;
            let waker_tx = UdpSocket::bind("127.0.0.1:0")?;
            waker_tx.connect(waker_rx.local_addr()?)?;
            let (cmd_tx, cmd_rx) = mpsc::channel::<LoopCmd>();
            let stats = Arc::new(PoolStats::default());
            let rt_stats = Arc::new(RuntimeStats::default());
            let trace = cfg.trace_ring.map(|cap| Arc::new(Mutex::new(TraceSink::new(cap))));
            let ctx = LoopCtx {
                waker: waker_rx,
                cmd_rx,
                pool_limit: cfg.pool_limit_bytes,
                shutdown: Arc::clone(&shutdown),
                stats: Arc::clone(&stats),
                mon: LoopMon {
                    loop_idx: i as u32,
                    stats: Arc::clone(&rt_stats),
                    trace: trace.clone(),
                },
            };
            let handle = std::thread::Builder::new()
                .name(format!("rrmp-udp-loop-{i}"))
                .spawn(move || loop_main(ctx))
                .expect("spawn event loop thread");
            links.push(LoopLink {
                cmd_tx,
                waker: waker_tx,
                members: AtomicUsize::new(0),
                next_slot: AtomicU32::new(0),
                stats,
                rt_stats,
                trace,
            });
            handles.push(handle);
        }
        Ok(UdpRuntime {
            shared: Arc::new(RuntimeShared {
                links,
                delivery_capacity: cfg.delivery_capacity,
                shutdown,
            }),
            handles,
        })
    }

    /// Number of event-loop threads.
    #[must_use]
    pub fn loop_count(&self) -> usize {
        self.shared.links.len()
    }

    /// Members currently hosted across all loops.
    #[must_use]
    pub fn member_count(&self) -> usize {
        self.shared.links.iter().map(|l| l.members.load(Ordering::Relaxed)).sum()
    }

    /// Per-loop buffer-pool statistics snapshots (index = loop).
    #[must_use]
    pub fn pool_snapshots(&self) -> Vec<crate::pool::PoolSnapshot> {
        self.shared.links.iter().map(|l| l.stats.snapshot()).collect()
    }

    /// Per-loop runtime-health snapshots (index = loop) — poll wakeups,
    /// mute/unmute churn, fatal receive failures, pool scavenges, and
    /// the loop-wide send-drop fold, uniform with
    /// [`UdpRuntime::pool_snapshots`].
    #[must_use]
    pub fn runtime_snapshots(&self) -> Vec<RuntimeSnapshot> {
        self.shared.links.iter().map(|l| l.rt_stats.snapshot()).collect()
    }

    /// Whether [`RuntimeConfig::trace_ring`] armed per-loop trace sinks.
    #[must_use]
    pub fn trace_armed(&self) -> bool {
        self.shared.links.iter().any(|l| l.trace.is_some())
    }

    /// Collects every loop's [`streams::RUNTIME`] trace events in
    /// canonical order (empty when unarmed). Timestamps are wall-clock
    /// microseconds since each loop's epoch — diagnostic, not
    /// deterministic like the simulator streams.
    #[must_use]
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for link in &self.shared.links {
            if let Some(t) = &link.trace {
                t.lock().expect("trace sink lock").collect_into(&mut out);
            }
        }
        sort_canonical(&mut out);
        out
    }

    /// Places a member on the least-loaded event loop. `socket` must
    /// already be bound to the spec's address for `node`; `is_sender`
    /// grants the multicast source role. The spec is shared by `Arc`, so
    /// hosting thousands of members of one group costs one spec total.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the socket cannot be configured.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in `spec` or `cfg` is invalid.
    pub fn add_member(
        &self,
        socket: UdpSocket,
        spec: impl Into<Arc<GroupSpec>>,
        node: NodeId,
        cfg: ProtocolConfig,
        is_sender: bool,
        seed: u64,
    ) -> std::io::Result<MemberHandle> {
        let spec: Arc<GroupSpec> = spec.into();
        cfg.validate().expect("invalid protocol config");
        assert!(spec.addr_of(node).is_some(), "{node} not in group spec");
        socket.set_nonblocking(true)?;

        let loop_idx = (0..self.shared.links.len())
            .min_by_key(|&i| self.shared.links[i].members.load(Ordering::Relaxed))
            .expect("at least one loop");
        let link = &self.shared.links[loop_idx];
        let slot = link.next_slot.fetch_add(1, Ordering::Relaxed);
        let (delivered_tx, delivered_rx) =
            mpsc::sync_channel::<RuntimeEvent>(self.shared.delivery_capacity);
        let send_drops = Arc::new(AtomicU64::new(0));
        #[cfg(test)]
        let test_delivered_tx = delivered_tx.clone();
        link.send(LoopCmd::Add(Box::new(MemberInit {
            slot,
            socket,
            spec,
            node,
            cfg,
            is_sender,
            seed,
            delivered_tx,
            send_drops: Arc::clone(&send_drops),
        })));
        link.members.fetch_add(1, Ordering::Relaxed);
        Ok(MemberHandle {
            node,
            slot,
            loop_idx,
            shared: Arc::clone(&self.shared),
            delivered_rx,
            recv_failure: Mutex::new(None),
            send_drops,
            #[cfg(test)]
            test_delivered_tx,
        })
    }

    /// Stops every event loop and joins the threads. Outstanding
    /// [`MemberHandle`]s stay valid as receive endpoints for already
    /// delivered messages but issue no further commands.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        for link in &self.shared.links {
            link.send(LoopCmd::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for UdpRuntime {
    fn drop(&mut self) {
        // C-DTOR-BLOCK: prefer an explicit `shutdown()`; the destructor
        // still stops the threads, signalling first so joins are brief.
        self.shutdown_inner();
    }
}

// ---------------------------------------------------------------------------
// Member handle.
// ---------------------------------------------------------------------------

/// The application's handle to one group member hosted on a
/// [`UdpRuntime`] event loop. Dropping the handle removes the member
/// from its loop (pending timers are lazily cancelled).
pub struct MemberHandle {
    node: NodeId,
    slot: u32,
    loop_idx: usize,
    shared: Arc<RuntimeShared>,
    delivered_rx: ChanReceiver<RuntimeEvent>,
    /// Set when a [`RuntimeEvent::RecvFailed`] was observed on the
    /// delivery channel, so the plain [`MemberHandle::recv_timeout`] /
    /// [`MemberHandle::try_recv`] surface still exposes the failure.
    recv_failure: Mutex<Option<std::io::Error>>,
    /// Outgoing work dropped for this member: datagrams the outbox could
    /// not transmit and deliveries shed because the application stopped
    /// draining the channel.
    send_drops: Arc<AtomicU64>,
    /// Test hook: inject events on the delivery channel as the loop
    /// would.
    #[cfg(test)]
    test_delivered_tx: SyncSender<RuntimeEvent>,
}

impl std::fmt::Debug for MemberHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemberHandle")
            .field("node", &self.node)
            .field("slot", &self.slot)
            .field("loop_idx", &self.loop_idx)
            .finish_non_exhaustive()
    }
}

impl MemberHandle {
    fn link(&self) -> &LoopLink {
        &self.shared.links[self.loop_idx]
    }

    /// This member's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// The event loop hosting this member (for placement introspection).
    #[must_use]
    pub fn loop_index(&self) -> usize {
        self.loop_idx
    }

    /// Multicasts `payload` to the group (sender role only; ignored
    /// otherwise).
    pub fn multicast(&self, payload: impl Into<Bytes>) {
        self.link().send(LoopCmd::Multicast(self.slot, payload.into()));
    }

    /// Installs a drop filter applied to the **initial** multicast only
    /// (test hook to force recovery); `None` clears it. Ordered with
    /// subsequent [`MemberHandle::multicast`] calls (same command
    /// channel).
    pub fn set_initial_drop<F>(&self, filter: Option<F>)
    where
        F: Fn(NodeId) -> bool + Send + 'static,
    {
        self.link()
            .send(LoopCmd::SetDrop(self.slot, filter.map(|f| Box::new(f) as Box<DropFilter>)));
    }

    /// Receives the next runtime event (delivery or fatal receive-path
    /// failure), waiting up to `timeout`.
    #[must_use]
    pub fn recv_event_timeout(&self, timeout: Duration) -> Option<RuntimeEvent> {
        let event = self.delivered_rx.recv_timeout(timeout).ok()?;
        self.note_failure(&event);
        Some(event)
    }

    /// Receives the next delivered message, waiting up to `timeout`.
    /// A fatal receive-path failure arriving instead is recorded (see
    /// [`MemberHandle::recv_failure`]) and reported as `None`.
    #[must_use]
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Delivery> {
        match self.recv_event_timeout(timeout)? {
            RuntimeEvent::Delivery(d) => Some(d),
            RuntimeEvent::RecvFailed(_) => None,
        }
    }

    /// Non-blocking poll for a delivered message. A fatal receive-path
    /// failure is recorded (see [`MemberHandle::recv_failure`]) and
    /// reported as `None`.
    #[must_use]
    pub fn try_recv(&self) -> Option<Delivery> {
        let event = self.delivered_rx.try_recv().ok()?;
        self.note_failure(&event);
        match event {
            RuntimeEvent::Delivery(d) => Some(d),
            RuntimeEvent::RecvFailed(_) => None,
        }
    }

    /// The fatal receive-path error observed so far, if any: the member
    /// is deaf to the network and should be torn down. Populated when a
    /// [`RuntimeEvent::RecvFailed`] passes through any of the receive
    /// methods.
    #[must_use]
    pub fn recv_failure(&self) -> Option<std::io::ErrorKind> {
        self.recv_failure.lock().expect("recv_failure lock").as_ref().map(std::io::Error::kind)
    }

    /// Outgoing work dropped for this member so far: datagrams the send
    /// path could not transmit (no address for the destination, or the
    /// local socket write failed) plus deliveries shed because the
    /// application was not draining the channel. UDP loss in the network
    /// is invisible by nature; *local* loss is not, and a monotonically
    /// rising value here tells the operator this member is shedding its
    /// own output — the send-side mirror of
    /// [`MemberHandle::recv_failure`].
    #[must_use]
    pub fn send_drops(&self) -> u64 {
        self.send_drops.load(Ordering::Relaxed)
    }

    fn note_failure(&self, event: &RuntimeEvent) {
        if let RuntimeEvent::RecvFailed(e) = event {
            let copy = std::io::Error::new(e.kind(), e.to_string());
            *self.recv_failure.lock().expect("recv_failure lock") = Some(copy);
        }
    }

    /// Initiates a voluntary leave (long-term buffers are handed off).
    pub fn leave(&self) {
        self.link().send(LoopCmd::Leave(self.slot));
    }

    #[cfg(test)]
    fn delivered_rx_test_inject(&self, event: RuntimeEvent) {
        self.test_delivered_tx.try_send(event).expect("inject test event");
    }
}

impl Drop for MemberHandle {
    fn drop(&mut self) {
        if !self.shared.shutdown.load(Ordering::Relaxed) {
            self.link().send(LoopCmd::Remove(self.slot));
        }
        self.link().members.fetch_sub(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Per-node facade.
// ---------------------------------------------------------------------------

/// A single group member running over real UDP sockets — the original
/// per-node API, now a thin facade over a private one-loop
/// [`UdpRuntime`]. Spawn one per process (or several in one process for
/// tests); to host *many* members efficiently, use [`UdpRuntime`]
/// directly. See the `udp_localhost` example for an end-to-end
/// walkthrough.
pub struct UdpNode {
    member: Option<MemberHandle>,
    runtime: Option<UdpRuntime>,
}

impl std::fmt::Debug for UdpNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpNode")
            .field("node", &self.member.as_ref().map(MemberHandle::id))
            .finish_non_exhaustive()
    }
}

impl UdpNode {
    /// Starts a member on `socket` (already bound; its address must match
    /// the spec's entry for `node`). `is_sender` grants the multicast
    /// source role.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the socket cannot be configured.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in `spec` or `cfg` is invalid.
    pub fn start(
        socket: UdpSocket,
        spec: GroupSpec,
        node: NodeId,
        cfg: ProtocolConfig,
        is_sender: bool,
        seed: u64,
    ) -> std::io::Result<UdpNode> {
        let runtime = UdpRuntime::start(RuntimeConfig::single_loop())?;
        let member = runtime.add_member(socket, spec, node, cfg, is_sender, seed)?;
        Ok(UdpNode { member: Some(member), runtime: Some(runtime) })
    }

    fn member(&self) -> &MemberHandle {
        self.member.as_ref().expect("member present until shutdown")
    }

    /// This member's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.member().id()
    }

    /// Multicasts `payload` to the group (sender role only; ignored
    /// otherwise).
    pub fn multicast(&self, payload: impl Into<Bytes>) {
        self.member().multicast(payload);
    }

    /// Installs a drop filter applied to the **initial** multicast only
    /// (test hook to force recovery); `None` clears it.
    pub fn set_initial_drop<F>(&self, filter: Option<F>)
    where
        F: Fn(NodeId) -> bool + Send + 'static,
    {
        self.member().set_initial_drop(filter);
    }

    /// Receives the next runtime event (delivery or fatal receive-path
    /// failure), waiting up to `timeout`.
    #[must_use]
    pub fn recv_event_timeout(&self, timeout: Duration) -> Option<RuntimeEvent> {
        self.member().recv_event_timeout(timeout)
    }

    /// Receives the next delivered message, waiting up to `timeout`.
    /// A fatal receive-path failure arriving instead is recorded (see
    /// [`UdpNode::recv_failure`]) and reported as `None`.
    #[must_use]
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Delivery> {
        self.member().recv_timeout(timeout)
    }

    /// Non-blocking poll for a delivered message. A fatal receive-path
    /// failure is recorded (see [`UdpNode::recv_failure`]) and reported
    /// as `None`.
    #[must_use]
    pub fn try_recv(&self) -> Option<Delivery> {
        self.member().try_recv()
    }

    /// The fatal receive-path error observed so far, if any: the node is
    /// deaf to the network and should be torn down.
    #[must_use]
    pub fn recv_failure(&self) -> Option<std::io::ErrorKind> {
        self.member().recv_failure()
    }

    /// Outgoing work dropped on this host so far (see
    /// [`MemberHandle::send_drops`]).
    #[must_use]
    pub fn send_drops(&self) -> u64 {
        self.member().send_drops()
    }

    /// Initiates a voluntary leave (long-term buffers are handed off).
    pub fn leave(&self) {
        self.member().leave();
    }

    /// Stops the node's event loop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Handle first (sends Remove while the loop is alive), then the
        // runtime join.
        self.member.take();
        if let Some(rt) = self.runtime.take() {
            rt.shutdown();
        }
    }

    #[cfg(test)]
    fn delivered_rx_test_inject(&self, event: RuntimeEvent) {
        self.member().delivered_rx_test_inject(event);
    }
}

impl Drop for UdpNode {
    fn drop(&mut self) {
        // C-DTOR-BLOCK: prefer an explicit `shutdown()`; the destructor
        // still stops the threads, signalling first so joins are brief.
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrmp_netsim::topology::RegionId;
    use std::net::SocketAddr;

    fn bind_n(n: usize) -> Vec<(UdpSocket, SocketAddr)> {
        (0..n)
            .map(|_| {
                let s = UdpSocket::bind("127.0.0.1:0").expect("bind ephemeral");
                let a = s.local_addr().expect("local addr");
                (s, a)
            })
            .collect()
    }

    fn spec_single_region(addrs: &[SocketAddr]) -> GroupSpec {
        let mut spec = GroupSpec::new();
        for (i, &a) in addrs.iter().enumerate() {
            spec.add_member(NodeId(i as u32), a, RegionId(0));
        }
        spec
    }

    fn fast_cfg() -> ProtocolConfig {
        // Short session interval so tail losses are detected quickly in
        // real time.
        ProtocolConfig::builder()
            .session_interval(rrmp_netsim::time::SimDuration::from_millis(30))
            .build()
            .expect("valid test config")
    }

    #[test]
    fn lossless_multicast_over_real_sockets() {
        let bound = bind_n(3);
        let addrs: Vec<SocketAddr> = bound.iter().map(|(_, a)| *a).collect();
        let spec = spec_single_region(&addrs);
        let nodes: Vec<UdpNode> = bound
            .into_iter()
            .enumerate()
            .map(|(i, (sock, _))| {
                UdpNode::start(
                    sock,
                    spec.clone(),
                    NodeId(i as u32),
                    fast_cfg(),
                    i == 0,
                    42 + i as u64,
                )
                .expect("start node")
            })
            .collect();
        nodes[0].multicast(&b"over the wire"[..]);
        for (i, n) in nodes.iter().enumerate() {
            let d = n
                .recv_timeout(Duration::from_secs(5))
                .unwrap_or_else(|| panic!("node {i} did not deliver"));
            assert_eq!(&d.payload[..], b"over the wire");
        }
        for n in nodes {
            n.shutdown();
        }
    }

    #[test]
    fn dropped_initial_multicast_recovers_via_protocol() {
        let bound = bind_n(4);
        let addrs: Vec<SocketAddr> = bound.iter().map(|(_, a)| *a).collect();
        let spec = spec_single_region(&addrs);
        let nodes: Vec<UdpNode> = bound
            .into_iter()
            .enumerate()
            .map(|(i, (sock, _))| {
                UdpNode::start(
                    sock,
                    spec.clone(),
                    NodeId(i as u32),
                    fast_cfg(),
                    i == 0,
                    77 + i as u64,
                )
                .expect("start node")
            })
            .collect();
        // Node 3 misses every initial multicast; it must recover through
        // local requests answered by buffered copies.
        nodes[0].set_initial_drop(Some(|n: NodeId| n == NodeId(3)));
        nodes[0].multicast(&b"first"[..]);
        nodes[0].multicast(&b"second"[..]);
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.len() < 2 && Instant::now() < deadline {
            if let Some(d) = nodes[3].recv_timeout(Duration::from_millis(200)) {
                got.push(d.payload);
            }
        }
        assert_eq!(got.len(), 2, "node 3 should recover both messages");
        for n in nodes {
            n.shutdown();
        }
    }

    #[test]
    fn many_members_share_few_loops() {
        // The tentpole path: one runtime, two loops, a whole group of
        // members multiplexed across them — deliveries reach everyone.
        const N: usize = 24;
        let bound = bind_n(N);
        let addrs: Vec<SocketAddr> = bound.iter().map(|(_, a)| *a).collect();
        let spec = Arc::new(spec_single_region(&addrs));
        let rt = UdpRuntime::start(RuntimeConfig {
            loop_threads: 2,
            pool_limit_bytes: DEFAULT_POOL_LIMIT,
            delivery_capacity: 64,
            trace_ring: Some(1024),
        })
        .expect("start runtime");
        let members: Vec<MemberHandle> = bound
            .into_iter()
            .enumerate()
            .map(|(i, (sock, _))| {
                rt.add_member(
                    sock,
                    Arc::clone(&spec),
                    NodeId(i as u32),
                    fast_cfg(),
                    i == 0,
                    i as u64,
                )
                .expect("add member")
            })
            .collect();
        assert_eq!(rt.loop_count(), 2);
        assert_eq!(rt.member_count(), N);
        // Least-loaded placement splits the group evenly.
        let on_first = members.iter().filter(|m| m.loop_index() == 0).count();
        assert_eq!(on_first, N / 2, "placement should balance across loops");
        members[0].multicast(&b"multiplexed"[..]);
        for (i, m) in members.iter().enumerate() {
            let d = m
                .recv_timeout(Duration::from_secs(5))
                .unwrap_or_else(|| panic!("member {i} did not deliver"));
            assert_eq!(&d.payload[..], b"multiplexed");
        }
        // Steady-state receive went through the pool.
        let totals = rt.pool_snapshots();
        let hits: u64 = totals.iter().map(|s| s.hits).sum();
        let misses: u64 = totals.iter().map(|s| s.misses).sum();
        assert!(hits + misses > 0, "receive path must draw from the pool");
        // The runtime observer saw the loops wake for those datagrams,
        // and the armed trace carries the same story on the RUNTIME
        // stream.
        let health = rt.runtime_snapshots();
        assert_eq!(health.len(), 2);
        let wakeups: u64 = health.iter().map(|s| s.poll_wakeups).sum();
        assert!(wakeups > 0, "deliveries imply readable-socket wakeups");
        assert!(rt.trace_armed());
        let events = rt.trace_events();
        assert!(!events.is_empty(), "armed loops must record wakeup events");
        assert!(events.iter().all(|e| e.stream == streams::RUNTIME));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::PollWakeup { ready } if ready > 0)));
        drop(members);
        rt.shutdown();
    }

    #[test]
    fn recovery_works_multiplexed_on_one_loop() {
        // Loss recovery where requester, repairer, and sender all share
        // one event-loop thread.
        let bound = bind_n(4);
        let addrs: Vec<SocketAddr> = bound.iter().map(|(_, a)| *a).collect();
        let spec = Arc::new(spec_single_region(&addrs));
        let rt = UdpRuntime::start(RuntimeConfig::single_loop()).expect("start runtime");
        let members: Vec<MemberHandle> = bound
            .into_iter()
            .enumerate()
            .map(|(i, (sock, _))| {
                rt.add_member(
                    sock,
                    Arc::clone(&spec),
                    NodeId(i as u32),
                    fast_cfg(),
                    i == 0,
                    i as u64,
                )
                .expect("add member")
            })
            .collect();
        members[0].set_initial_drop(Some(|n: NodeId| n == NodeId(2)));
        members[0].multicast(&b"repair me"[..]);
        let d = members[2]
            .recv_timeout(Duration::from_secs(10))
            .expect("dropped member recovers via protocol");
        assert_eq!(&d.payload[..], b"repair me");
        drop(members);
        rt.shutdown();
    }

    #[test]
    fn removed_member_timers_are_lazily_cancelled() {
        // Dropping a handle removes the member; its pending session-tick
        // timers keep popping on the shared wheel and must be discarded
        // without disturbing the surviving members.
        let bound = bind_n(3);
        let addrs: Vec<SocketAddr> = bound.iter().map(|(_, a)| *a).collect();
        let spec = Arc::new(spec_single_region(&addrs));
        let rt = UdpRuntime::start(RuntimeConfig::single_loop()).expect("start runtime");
        let mut members: Vec<MemberHandle> = bound
            .into_iter()
            .enumerate()
            .map(|(i, (sock, _))| {
                rt.add_member(
                    sock,
                    Arc::clone(&spec),
                    NodeId(i as u32),
                    fast_cfg(),
                    i == 0,
                    i as u64,
                )
                .expect("add member")
            })
            .collect();
        // Remove a receiver mid-flight.
        let removed = members.remove(2);
        drop(removed);
        assert_eq!(rt.member_count(), 2);
        // The survivors keep working across several timer generations.
        members[0].multicast(&b"after removal"[..]);
        let d = members[1].recv_timeout(Duration::from_secs(5)).expect("survivor delivers");
        assert_eq!(&d.payload[..], b"after removal");
        std::thread::sleep(Duration::from_millis(150));
        members[0].multicast(&b"still alive"[..]);
        let d = members[1].recv_timeout(Duration::from_secs(5)).expect("survivor still delivers");
        assert_eq!(&d.payload[..], b"still alive");
        drop(members);
        rt.shutdown();
    }

    #[test]
    fn transient_recv_errors_are_retried_forever() {
        // ICMP feedback and EINTR must never count toward the fatal
        // streak — a group member restarting is routine, not a socket
        // death.
        for kind in [
            std::io::ErrorKind::Interrupted,
            std::io::ErrorKind::ConnectionRefused,
            std::io::ErrorKind::ConnectionReset,
        ] {
            assert!(recv_error_is_transient(kind), "{kind:?} should be retried");
        }
        for kind in [
            std::io::ErrorKind::NotConnected,
            std::io::ErrorKind::BrokenPipe,
            std::io::ErrorKind::InvalidInput,
            std::io::ErrorKind::Other,
        ] {
            assert!(!recv_error_is_transient(kind), "{kind:?} should be bounded");
        }
    }

    #[test]
    fn recv_backoff_is_bounded() {
        assert_eq!(recv_backoff(1), Duration::from_millis(2));
        // The cap keeps the loop responsive no matter how long the error
        // streak runs.
        for streak in 0..64 {
            assert!(recv_backoff(streak) <= Duration::from_millis(32));
        }
    }

    #[test]
    fn outbox_counts_unaddressable_sends_as_drops() {
        use rrmp_core::ids::{MessageId, SeqNo};
        let drops = AtomicU64::new(0);
        let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
        // A spec that knows only node 0: every other destination is
        // unaddressable and must be counted, not silently skipped.
        let mut spec = GroupSpec::new();
        spec.add_member(NodeId(0), sock.local_addr().unwrap(), RegionId(0));
        let loop_stats = Arc::new(RuntimeStats::default());
        let mut outbox = Outbox::new(Arc::clone(&loop_stats));
        let packet = Packet::LocalRequest { msg: MessageId::new(NodeId(9), SeqNo(1)) };
        outbox.send(&sock, &spec, &drops, NodeId(9), &packet);
        assert_eq!(drops.load(Ordering::Relaxed), 1, "unaddressable unicast counts");
        // Fan-out to two unknown members (self is excluded, not dropped).
        outbox.fan_out(
            &sock,
            &spec,
            NodeId(0),
            &drops,
            &packet,
            &mut [NodeId(0), NodeId(7), NodeId(8)].into_iter(),
            &|_| true,
        );
        assert_eq!(drops.load(Ordering::Relaxed), 3, "unaddressable fan-out legs count");
        // Every member-level drop also folds into the loop-wide counter.
        assert_eq!(loop_stats.snapshot().send_drops, 3, "loop fold mirrors member drops");
    }

    #[test]
    fn recv_failed_event_is_recorded_on_the_plain_surface() {
        let bound = bind_n(1);
        let addrs: Vec<SocketAddr> = bound.iter().map(|(_, a)| *a).collect();
        let spec = spec_single_region(&addrs);
        let (sock, _) = bound.into_iter().next().expect("one socket");
        let node = UdpNode::start(sock, spec, NodeId(0), fast_cfg(), true, 7).expect("start node");
        assert_eq!(node.recv_failure(), None);
        assert_eq!(node.send_drops(), 0);
        // Inject a failure the way the event loop would surface one.
        node.delivered_rx_test_inject(RuntimeEvent::RecvFailed(std::io::Error::new(
            std::io::ErrorKind::NotConnected,
            "socket died",
        )));
        assert!(node.try_recv().is_none());
        assert_eq!(node.recv_failure(), Some(std::io::ErrorKind::NotConnected));
        node.shutdown();
    }
}
