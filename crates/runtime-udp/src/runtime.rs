//! The thread-based UDP runtime hosting the sans-io protocol core.
//!
//! A [`UdpNode`] runs three things:
//!
//! * a **receive thread** reading datagrams off the socket, decoding them
//!   with the shared wire codec, and handing `(from, Packet)` pairs to the
//!   event loop;
//! * an **event loop thread** owning the [`Receiver`] (and the [`Sender`]
//!   role, if any), a monotonic clock mapped onto [`SimTime`], and the
//!   shared hierarchical **timing wheel** (`rrmp_netsim::event`, whose
//!   [`rrmp_netsim::event::Scheduler`] trait names the shared contract)
//!   for the protocol's [`TimerKind`]s — the same scheduler
//!   implementation the simulator runs on, keyed by microseconds since
//!   the loop's epoch;
//! * a command path for the application: multicast payloads, leave,
//!   shutdown.
//!
//! Packets and application commands are multiplexed onto **one**
//! `std::sync::mpsc` channel, so the event loop is a single
//! `recv_timeout` wait — no external channel crates are needed.
//!
//! IP multicast is emulated by unicast fan-out (no multicast routing is
//! assumed): each packet is **encoded once** and the same wire bytes are
//! written to every destination, mirroring the zero-copy fan-out of the
//! simulator. A test hook can drop the initial transmission to selected
//! members to exercise recovery over real sockets.
//!
//! The send path is allocation-free in the steady state: every outgoing
//! packet is encoded with [`Packet::encode_into`] onto one reused
//! [`BytesMut`] (the [`Outbox`]), protocol actions accumulate in a reused
//! scratch vector via [`Receiver::handle_into`], and each wakeup drains
//! up to a batch of queued inputs before re-checking timers — one timer
//! sweep and one channel wait amortize over the whole burst instead of
//! being paid per packet.

use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver as ChanReceiver, Sender as ChanSender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};

use rrmp_core::events::{Action, Event, TimerKind};
use rrmp_core::ids::MessageId;
use rrmp_core::packet::Packet;
use rrmp_core::prelude::ProtocolConfig;
use rrmp_core::receiver::Receiver;
use rrmp_core::sender::{Sender, SenderAction};
use rrmp_netsim::event::EventQueue;
use rrmp_netsim::time::SimTime;
use rrmp_netsim::topology::NodeId;

use crate::group::GroupSpec;

/// Application commands accepted by the event loop.
enum Command {
    Multicast(Bytes),
    Leave,
    Shutdown,
}

/// Everything the event loop can wake up for.
enum Input {
    Packet(NodeId, Packet),
    Cmd(Command),
}

/// A message delivered to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The message id.
    pub id: MessageId,
    /// The payload.
    pub payload: Bytes,
}

/// Everything the runtime surfaces to the application: message
/// deliveries, and terminal runtime failures that would otherwise be
/// silent (a node whose receive thread died keeps sending and looks
/// healthy from the outside).
#[derive(Debug)]
pub enum RuntimeEvent {
    /// A message delivered to the application.
    Delivery(Delivery),
    /// The receive thread hit a fatal socket error and stopped: the node
    /// is deaf to the network even though the event loop (and the send
    /// path) may keep running. Tear the node down.
    RecvFailed(std::io::Error),
}

/// Socket errors the receive loop always retries: `EINTR`, and the
/// ICMP port-unreachable feedback some stacks report on UDP sockets as
/// `ECONNREFUSED`/`ECONNRESET` when a peer is briefly down — normal
/// churn in a group, not a reason to go deaf.
fn recv_error_is_transient(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
    )
}

/// Consecutive non-transient receive errors tolerated (with backoff)
/// before the loop declares the socket dead and surfaces
/// [`RuntimeEvent::RecvFailed`].
const MAX_RECV_ERROR_STREAK: u32 = 8;

/// Backoff before retrying after a receive error: exponential in the
/// error streak, capped so the shutdown flag stays responsive.
fn recv_backoff(streak: u32) -> Duration {
    Duration::from_millis(1u64 << streak.min(5))
}

type DropFilter = dyn Fn(NodeId) -> bool + Send;

/// The event loop's timer queue: the shared timing wheel keyed by
/// [`SimTime`] microseconds since the loop's epoch. Same-deadline timers
/// fire in scheduling order (the wheel's `(time, seq)` contract), exactly
/// as the retired `BinaryHeap<TimerEntry>` ordered them — without a
/// hand-rolled entry type or O(log n) pushes.
type TimerWheel = EventQueue<TimerKind>;

/// A group member running over real UDP sockets.
///
/// Spawn one per process (or several in one process for tests); see the
/// `udp_localhost` example for an end-to-end walkthrough.
pub struct UdpNode {
    node: NodeId,
    input_tx: ChanSender<Input>,
    delivered_rx: ChanReceiver<RuntimeEvent>,
    loop_handle: Option<JoinHandle<()>>,
    recv_handle: Option<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    initial_drop: Arc<Mutex<Option<Box<DropFilter>>>>,
    /// Set when a [`RuntimeEvent::RecvFailed`] was observed on the
    /// delivery channel, so the plain [`UdpNode::recv_timeout`] /
    /// [`UdpNode::try_recv`] surface still exposes the failure.
    recv_failure: Mutex<Option<std::io::Error>>,
    /// Outgoing work dropped on this host: datagrams the outbox could
    /// not transmit (unaddressable destination or local send error) and
    /// deliveries shed because the application stopped draining the
    /// channel. The send-side mirror of [`RuntimeEvent::RecvFailed`] —
    /// surfaced via [`UdpNode::send_drops`] instead of silently lost.
    send_drops: Arc<AtomicU64>,
    /// Test hook: inject events on the delivery channel as the recv
    /// thread would.
    #[cfg(test)]
    test_delivered_tx: SyncSender<RuntimeEvent>,
}

impl std::fmt::Debug for UdpNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpNode")
            .field("node", &self.node)
            .field("shutdown", &self.shutdown.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl UdpNode {
    /// Starts a member on `socket` (already bound; its address must match
    /// the spec's entry for `node`). `is_sender` grants the multicast
    /// source role.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the socket cannot be configured.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in `spec` or `cfg` is invalid.
    pub fn start(
        socket: UdpSocket,
        spec: GroupSpec,
        node: NodeId,
        cfg: ProtocolConfig,
        is_sender: bool,
        seed: u64,
    ) -> std::io::Result<UdpNode> {
        cfg.validate().expect("invalid protocol config");
        assert!(spec.addr_of(node).is_some(), "{node} not in group spec");
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;
        let (input_tx, input_rx) = mpsc::channel::<Input>();
        let (delivered_tx, delivered_rx) = mpsc::sync_channel::<RuntimeEvent>(4096);
        let shutdown = Arc::new(AtomicBool::new(false));
        let initial_drop: Arc<Mutex<Option<Box<DropFilter>>>> = Arc::new(Mutex::new(None));
        let send_drops = Arc::new(AtomicU64::new(0));

        // Receive thread: datagram -> decoded packet -> event loop.
        let recv_socket = socket.try_clone()?;
        let recv_spec = spec.clone();
        let recv_shutdown = Arc::clone(&shutdown);
        let pkt_tx = input_tx.clone();
        let fail_tx = delivered_tx.clone();
        #[cfg(test)]
        let test_delivered_tx = delivered_tx.clone();
        let recv_handle = std::thread::Builder::new()
            .name(format!("rrmp-udp-recv-{node}"))
            .spawn(move || {
                // Batched drain: one recvmmsg per datagram burst on
                // Linux (MSG_WAITFORONE blocks for the first, grabs the
                // rest), one recv_from elsewhere — either way the socket
                // read timeout keeps the shutdown flag polled.
                let mut batcher = crate::batch::RecvBatcher::new(64 * 1024);
                // Consecutive receive errors (reset by any success or
                // plain timeout). Transient kinds retry forever with a
                // capped backoff; anything else gets a bounded streak
                // before the failure is surfaced — never a silent break
                // that leaves the runtime deaf.
                let mut error_streak = 0u32;
                'recv: while !recv_shutdown.load(Ordering::Relaxed) {
                    match batcher.recv_batch(&recv_socket) {
                        Ok(_) => {
                            error_streak = 0;
                            for (bytes, from_addr) in batcher.datagrams() {
                                let Some(from) = recv_spec.node_at(from_addr) else { continue };
                                match Packet::decode(Bytes::copy_from_slice(bytes)) {
                                    Ok(packet) => {
                                        if pkt_tx.send(Input::Packet(from, packet)).is_err() {
                                            break 'recv;
                                        }
                                    }
                                    Err(_) => continue, // corrupt datagram: drop
                                }
                            }
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            error_streak = 0;
                            continue;
                        }
                        Err(e) => {
                            error_streak += 1;
                            if !recv_error_is_transient(e.kind())
                                && error_streak >= MAX_RECV_ERROR_STREAK
                            {
                                // Fatal: tell the application through the
                                // delivery channel (try_send — if the
                                // channel is full or closed, the node is
                                // being torn down anyway) and stop.
                                let _ = fail_tx.try_send(RuntimeEvent::RecvFailed(e));
                                break 'recv;
                            }
                            std::thread::sleep(recv_backoff(error_streak));
                        }
                    }
                }
            })
            .expect("spawn recv thread");

        // Event loop thread.
        let loop_shutdown = Arc::clone(&shutdown);
        let loop_drop = Arc::clone(&initial_drop);
        let loop_send_drops = Arc::clone(&send_drops);
        let loop_handle = std::thread::Builder::new()
            .name(format!("rrmp-udp-loop-{node}"))
            .spawn(move || {
                event_loop(EventLoop {
                    socket,
                    spec,
                    node,
                    cfg,
                    is_sender,
                    seed,
                    input_rx,
                    delivered_tx,
                    shutdown: loop_shutdown,
                    initial_drop: loop_drop,
                    send_drops: loop_send_drops,
                });
            })
            .expect("spawn event loop thread");

        Ok(UdpNode {
            node,
            input_tx,
            delivered_rx,
            loop_handle: Some(loop_handle),
            recv_handle: Some(recv_handle),
            shutdown,
            initial_drop,
            recv_failure: Mutex::new(None),
            send_drops,
            #[cfg(test)]
            test_delivered_tx,
        })
    }

    #[cfg(test)]
    fn delivered_rx_test_inject(&self, event: RuntimeEvent) {
        self.test_delivered_tx.try_send(event).expect("inject test event");
    }

    /// This member's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Multicasts `payload` to the group (sender role only; ignored
    /// otherwise).
    pub fn multicast(&self, payload: impl Into<Bytes>) {
        let _ = self.input_tx.send(Input::Cmd(Command::Multicast(payload.into())));
    }

    /// Installs a drop filter applied to the **initial** multicast only
    /// (test hook to force recovery); `None` clears it.
    pub fn set_initial_drop<F>(&self, filter: Option<F>)
    where
        F: Fn(NodeId) -> bool + Send + 'static,
    {
        // A panicking user filter poisons the lock on the event-loop
        // thread; recover the guard so the application thread keeps
        // working (matching the pre-std-Mutex behavior).
        *self.initial_drop.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
            filter.map(|f| Box::new(f) as Box<DropFilter>);
    }

    /// Receives the next runtime event (delivery or fatal receive-path
    /// failure), waiting up to `timeout`.
    #[must_use]
    pub fn recv_event_timeout(&self, timeout: Duration) -> Option<RuntimeEvent> {
        let event = self.delivered_rx.recv_timeout(timeout).ok()?;
        self.note_failure(&event);
        Some(event)
    }

    /// Receives the next delivered message, waiting up to `timeout`.
    /// A fatal receive-path failure arriving instead is recorded (see
    /// [`UdpNode::recv_failure`]) and reported as `None`.
    #[must_use]
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Delivery> {
        match self.recv_event_timeout(timeout)? {
            RuntimeEvent::Delivery(d) => Some(d),
            RuntimeEvent::RecvFailed(_) => None,
        }
    }

    /// Non-blocking poll for a delivered message. A fatal receive-path
    /// failure is recorded (see [`UdpNode::recv_failure`]) and reported
    /// as `None`.
    #[must_use]
    pub fn try_recv(&self) -> Option<Delivery> {
        let event = self.delivered_rx.try_recv().ok()?;
        self.note_failure(&event);
        match event {
            RuntimeEvent::Delivery(d) => Some(d),
            RuntimeEvent::RecvFailed(_) => None,
        }
    }

    /// The fatal receive-path error observed so far, if any: the node is
    /// deaf to the network and should be torn down. Populated when a
    /// [`RuntimeEvent::RecvFailed`] passes through any of the receive
    /// methods.
    #[must_use]
    pub fn recv_failure(&self) -> Option<std::io::ErrorKind> {
        self.recv_failure.lock().expect("recv_failure lock").as_ref().map(std::io::Error::kind)
    }

    /// Outgoing work dropped on this host so far: datagrams the send
    /// path could not transmit (no address for the destination, or the
    /// local socket write failed) plus deliveries shed because the
    /// application was not draining the channel. UDP loss in the network
    /// is invisible by nature; *local* loss is not, and a monotonically
    /// rising value here tells the operator this node is shedding its own
    /// output — the send-side mirror of [`UdpNode::recv_failure`].
    #[must_use]
    pub fn send_drops(&self) -> u64 {
        self.send_drops.load(Ordering::Relaxed)
    }

    fn note_failure(&self, event: &RuntimeEvent) {
        if let RuntimeEvent::RecvFailed(e) = event {
            let copy = std::io::Error::new(e.kind(), e.to_string());
            *self.recv_failure.lock().expect("recv_failure lock") = Some(copy);
        }
    }

    /// Initiates a voluntary leave (long-term buffers are handed off).
    pub fn leave(&self) {
        let _ = self.input_tx.send(Input::Cmd(Command::Leave));
    }

    /// Stops the node's threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = self.input_tx.send(Input::Cmd(Command::Shutdown));
        if let Some(h) = self.loop_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.recv_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for UdpNode {
    fn drop(&mut self) {
        // C-DTOR-BLOCK: prefer an explicit `shutdown()`; the destructor
        // still stops the threads, signalling first so joins are brief.
        self.shutdown_inner();
    }
}

/// Everything the event loop thread owns.
struct EventLoop {
    socket: UdpSocket,
    spec: GroupSpec,
    node: NodeId,
    cfg: ProtocolConfig,
    is_sender: bool,
    seed: u64,
    input_rx: ChanReceiver<Input>,
    delivered_tx: SyncSender<RuntimeEvent>,
    shutdown: Arc<AtomicBool>,
    initial_drop: Arc<Mutex<Option<Box<DropFilter>>>>,
    send_drops: Arc<AtomicU64>,
}

/// How many queued inputs one wakeup drains before re-checking timers —
/// bounds how long a packet flood can defer a due timer.
const MAX_INPUT_BATCH: usize = 64;

/// The reused send path: one wire buffer for every outgoing packet.
struct Outbox<'a> {
    socket: &'a UdpSocket,
    spec: &'a GroupSpec,
    node: NodeId,
    /// Reused encode buffer: cleared (capacity kept) per packet.
    wire: BytesMut,
    /// Reused fan-out destination list, handed to the batched send path
    /// (`sendmmsg` on Linux) in one call per packet.
    fanout_addrs: Vec<std::net::SocketAddr>,
    /// Shared drop counter (see [`UdpNode::send_drops`]): every datagram
    /// this outbox fails to put on the wire bumps it.
    drops: &'a AtomicU64,
}

impl Outbox<'_> {
    /// Unicast: encode onto the reused buffer and transmit to one member.
    fn send(&mut self, to: NodeId, packet: &Packet) {
        let Some(addr) = self.spec.addr_of(to) else {
            self.drops.fetch_add(1, Ordering::Relaxed);
            return;
        };
        self.wire.clear();
        packet.encode_into(&mut self.wire);
        if self.socket.send_to(&self.wire, addr).is_err() {
            self.drops.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fan-out: encode once, write the same wire bytes to every listed
    /// member (the caller excluded) for which `keep` returns true — as
    /// one batched `sendmmsg` per [`crate::batch::BATCH`] destinations
    /// on Linux, a `send_to` loop elsewhere.
    fn fan_out(
        &mut self,
        packet: &Packet,
        members: &mut dyn Iterator<Item = NodeId>,
        keep: &dyn Fn(NodeId) -> bool,
    ) {
        self.wire.clear();
        packet.encode_into(&mut self.wire);
        self.fanout_addrs.clear();
        for m in members {
            if m != self.node && keep(m) {
                match self.spec.addr_of(m) {
                    Some(addr) => self.fanout_addrs.push(addr),
                    None => {
                        self.drops.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        let sent = crate::batch::send_to_many(self.socket, &self.wire, &self.fanout_addrs);
        let lost = self.fanout_addrs.len() - sent;
        if lost > 0 {
            self.drops.fetch_add(lost as u64, Ordering::Relaxed);
        }
    }
}

fn event_loop(ctx: EventLoop) {
    let EventLoop {
        socket,
        spec,
        node,
        cfg,
        is_sender,
        seed,
        input_rx,
        delivered_tx,
        shutdown,
        initial_drop,
        send_drops,
    } = ctx;
    let epoch = Instant::now();
    let now_sim = |at: Instant| SimTime::from_micros(at.duration_since(epoch).as_micros() as u64);
    // Maps a wheel deadline back onto the monotonic clock for the
    // channel-wait timeout.
    let instant_of = |at: SimTime| epoch + Duration::from_micros(at.as_micros());
    // Build the policy over the *full* group membership (the spec knows
    // it) so topology-blind policies like hash placement rank every
    // member — mirroring the simulation harness, and unlike the
    // own∪parent approximation `Receiver::new` would fall back to.
    let mut members: Vec<NodeId> = spec.members().iter().map(|m| m.node).collect();
    members.sort_unstable();
    members.dedup();
    let policy = cfg.policy.build(node, &members, &cfg);
    let mut receiver = Receiver::with_policy(node, spec.view_for(node), cfg.clone(), seed, policy);
    let mut sender = is_sender.then(|| Sender::new(node, cfg.session_interval));
    let mut timers = TimerWheel::new();
    let mut outbox = Outbox {
        socket: &socket,
        spec: &spec,
        node,
        wire: BytesMut::with_capacity(2048),
        fanout_addrs: Vec::new(),
        drops: &send_drops,
    };
    // Reused action scratch: `handle_into` fills it, `execute` drains it.
    let mut actions: Vec<Action> = Vec::new();
    // Reused input batch drained from the channel per wakeup.
    let mut inbox: Vec<Input> = Vec::with_capacity(MAX_INPUT_BATCH);

    let push_timer =
        |timers: &mut TimerWheel, delay: rrmp_netsim::time::SimDuration, kind: TimerKind| {
            timers.schedule(now_sim(Instant::now()) + delay, kind);
        };

    // Execute (and drain) a batch of receiver actions.
    fn execute(
        actions: &mut Vec<Action>,
        outbox: &mut Outbox<'_>,
        timers: &mut TimerWheel,
        receiver: &Receiver,
        delivered_tx: &SyncSender<RuntimeEvent>,
        now_of: impl Fn() -> SimTime,
    ) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, packet } => outbox.send(to, &packet),
                Action::MulticastRegion { packet } => {
                    outbox.fan_out(&packet, &mut receiver.view().own().members(), &|_| true);
                }
                Action::Deliver { id, payload } => {
                    // A full (or closed) application channel sheds the
                    // delivery; count it so a stalled consumer is visible
                    // through `UdpNode::send_drops`.
                    if delivered_tx
                        .try_send(RuntimeEvent::Delivery(Delivery { id, payload }))
                        .is_err()
                    {
                        outbox.drops.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Action::SetTimer { delay, kind } => {
                    timers.schedule(now_of() + delay, kind);
                }
            }
        }
    }
    let now_of = || now_sim(Instant::now());

    // Start-up actions.
    actions.extend(receiver.on_start());
    execute(&mut actions, &mut outbox, &mut timers, &receiver, &delivered_tx, now_of);
    // Same gate as the simulation harness: a host mirroring the legacy
    // baselines' one-shot session ads runs without the periodic tick.
    if cfg.periodic_sessions {
        if let Some(s) = &sender {
            for a in s.on_start() {
                if let SenderAction::Protocol(Action::SetTimer { delay, kind }) = a {
                    push_timer(&mut timers, delay, kind);
                }
            }
        }
    }

    loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        // Fire due timers. Timers armed while handling one (including
        // zero delays) are picked up within the same sweep, as the old
        // heap's peek-loop did.
        let now = now_sim(Instant::now());
        while let Some((at, kind)) = timers.pop_at_or_before(now) {
            if kind == TimerKind::SessionTick {
                if let Some(s) = &sender {
                    for a in s.on_session_tick() {
                        match a {
                            SenderAction::MulticastGroup { packet } => {
                                outbox.fan_out(
                                    &packet,
                                    &mut spec.members().iter().map(|m| m.node),
                                    &|_| true,
                                );
                            }
                            SenderAction::Protocol(Action::SetTimer { delay, kind }) => {
                                push_timer(&mut timers, delay, kind);
                            }
                            SenderAction::Protocol(_) => {}
                        }
                    }
                }
                continue;
            }
            receiver.handle_into(Event::Timer(kind), at, &mut actions);
            execute(&mut actions, &mut outbox, &mut timers, &receiver, &delivered_tx, now_of);
        }
        // Wait for work until the next timer deadline, then drain up to a
        // batch of additional queued inputs in the same wakeup — a burst
        // of datagrams pays one channel wait and one timer sweep total.
        let timeout = timers
            .peek_time()
            .map(|at| instant_of(at).saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(20))
            .min(Duration::from_millis(20));
        debug_assert!(inbox.is_empty());
        match input_rx.recv_timeout(timeout) {
            Ok(first) => {
                inbox.push(first);
                while inbox.len() < MAX_INPUT_BATCH {
                    match input_rx.try_recv() {
                        Ok(next) => inbox.push(next),
                        Err(_) => break,
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
        }
        let mut stop = false;
        for input in inbox.drain(..) {
            match input {
                Input::Packet(from, packet) => {
                    receiver.handle_into(
                        Event::Packet { from, packet },
                        now_sim(Instant::now()),
                        &mut actions,
                    );
                    execute(
                        &mut actions,
                        &mut outbox,
                        &mut timers,
                        &receiver,
                        &delivered_tx,
                        now_of,
                    );
                }
                Input::Cmd(Command::Multicast(payload)) => {
                    let Some(s) = sender.as_mut() else { continue };
                    let (id, sender_actions) = s.multicast(payload.clone());
                    for a in sender_actions {
                        if let SenderAction::MulticastGroup { packet } = a {
                            let drop = initial_drop
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            outbox.fan_out(
                                &packet,
                                &mut spec.members().iter().map(|m| m.node),
                                &|m| !drop.as_ref().is_some_and(|f| f(m)),
                            );
                        }
                    }
                    // The sender holds its own message.
                    let self_packet = Packet::Data(rrmp_core::packet::DataPacket::new(id, payload));
                    receiver.handle_into(
                        Event::Packet { from: node, packet: self_packet },
                        now_sim(Instant::now()),
                        &mut actions,
                    );
                    execute(
                        &mut actions,
                        &mut outbox,
                        &mut timers,
                        &receiver,
                        &delivered_tx,
                        now_of,
                    );
                }
                Input::Cmd(Command::Leave) => {
                    receiver.handle_into(Event::Leave, now_sim(Instant::now()), &mut actions);
                    execute(
                        &mut actions,
                        &mut outbox,
                        &mut timers,
                        &receiver,
                        &delivered_tx,
                        now_of,
                    );
                }
                Input::Cmd(Command::Shutdown) => {
                    stop = true;
                    break;
                }
            }
        }
        inbox.clear();
        if stop {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrmp_netsim::topology::RegionId;
    use std::net::SocketAddr;

    fn bind_n(n: usize) -> Vec<(UdpSocket, SocketAddr)> {
        (0..n)
            .map(|_| {
                let s = UdpSocket::bind("127.0.0.1:0").expect("bind ephemeral");
                let a = s.local_addr().expect("local addr");
                (s, a)
            })
            .collect()
    }

    fn spec_single_region(addrs: &[SocketAddr]) -> GroupSpec {
        let mut spec = GroupSpec::new();
        for (i, &a) in addrs.iter().enumerate() {
            spec.add_member(NodeId(i as u32), a, RegionId(0));
        }
        spec
    }

    fn fast_cfg() -> ProtocolConfig {
        // Short session interval so tail losses are detected quickly in
        // real time.
        ProtocolConfig::builder()
            .session_interval(rrmp_netsim::time::SimDuration::from_millis(30))
            .build()
            .expect("valid test config")
    }

    #[test]
    fn lossless_multicast_over_real_sockets() {
        let bound = bind_n(3);
        let addrs: Vec<SocketAddr> = bound.iter().map(|(_, a)| *a).collect();
        let spec = spec_single_region(&addrs);
        let nodes: Vec<UdpNode> = bound
            .into_iter()
            .enumerate()
            .map(|(i, (sock, _))| {
                UdpNode::start(
                    sock,
                    spec.clone(),
                    NodeId(i as u32),
                    fast_cfg(),
                    i == 0,
                    42 + i as u64,
                )
                .expect("start node")
            })
            .collect();
        nodes[0].multicast(&b"over the wire"[..]);
        for (i, n) in nodes.iter().enumerate() {
            let d = n
                .recv_timeout(Duration::from_secs(5))
                .unwrap_or_else(|| panic!("node {i} did not deliver"));
            assert_eq!(&d.payload[..], b"over the wire");
        }
        for n in nodes {
            n.shutdown();
        }
    }

    #[test]
    fn dropped_initial_multicast_recovers_via_protocol() {
        let bound = bind_n(4);
        let addrs: Vec<SocketAddr> = bound.iter().map(|(_, a)| *a).collect();
        let spec = spec_single_region(&addrs);
        let nodes: Vec<UdpNode> = bound
            .into_iter()
            .enumerate()
            .map(|(i, (sock, _))| {
                UdpNode::start(
                    sock,
                    spec.clone(),
                    NodeId(i as u32),
                    fast_cfg(),
                    i == 0,
                    77 + i as u64,
                )
                .expect("start node")
            })
            .collect();
        // Node 3 misses every initial multicast; it must recover through
        // local requests answered by buffered copies.
        nodes[0].set_initial_drop(Some(|n: NodeId| n == NodeId(3)));
        nodes[0].multicast(&b"first"[..]);
        nodes[0].multicast(&b"second"[..]);
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.len() < 2 && Instant::now() < deadline {
            if let Some(d) = nodes[3].recv_timeout(Duration::from_millis(200)) {
                got.push(d.payload);
            }
        }
        assert_eq!(got.len(), 2, "node 3 should recover both messages");
        for n in nodes {
            n.shutdown();
        }
    }

    #[test]
    fn transient_recv_errors_are_retried_forever() {
        // ICMP feedback and EINTR must never count toward the fatal
        // streak — a group member restarting is routine, not a socket
        // death.
        for kind in [
            std::io::ErrorKind::Interrupted,
            std::io::ErrorKind::ConnectionRefused,
            std::io::ErrorKind::ConnectionReset,
        ] {
            assert!(recv_error_is_transient(kind), "{kind:?} should be retried");
        }
        for kind in [
            std::io::ErrorKind::NotConnected,
            std::io::ErrorKind::BrokenPipe,
            std::io::ErrorKind::InvalidInput,
            std::io::ErrorKind::Other,
        ] {
            assert!(!recv_error_is_transient(kind), "{kind:?} should be bounded");
        }
    }

    #[test]
    fn recv_backoff_is_bounded() {
        assert_eq!(recv_backoff(1), Duration::from_millis(2));
        // The cap keeps the shutdown flag responsive no matter how long
        // the error streak runs.
        for streak in 0..64 {
            assert!(recv_backoff(streak) <= Duration::from_millis(32));
        }
    }

    #[test]
    fn outbox_counts_unaddressable_sends_as_drops() {
        use rrmp_core::ids::{MessageId, SeqNo};
        let drops = AtomicU64::new(0);
        let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
        // A spec that knows only node 0: every other destination is
        // unaddressable and must be counted, not silently skipped.
        let mut spec = GroupSpec::new();
        spec.add_member(NodeId(0), sock.local_addr().unwrap(), RegionId(0));
        let mut outbox = Outbox {
            socket: &sock,
            spec: &spec,
            node: NodeId(0),
            wire: BytesMut::new(),
            fanout_addrs: Vec::new(),
            drops: &drops,
        };
        let packet = Packet::LocalRequest { msg: MessageId::new(NodeId(9), SeqNo(1)) };
        outbox.send(NodeId(9), &packet);
        assert_eq!(drops.load(Ordering::Relaxed), 1, "unaddressable unicast counts");
        // Fan-out to two unknown members (self is excluded, not dropped).
        outbox.fan_out(&packet, &mut [NodeId(0), NodeId(7), NodeId(8)].into_iter(), &|_| true);
        assert_eq!(drops.load(Ordering::Relaxed), 3, "unaddressable fan-out legs count");
    }

    #[test]
    fn recv_failed_event_is_recorded_on_the_plain_surface() {
        let bound = bind_n(1);
        let addrs: Vec<SocketAddr> = bound.iter().map(|(_, a)| *a).collect();
        let spec = spec_single_region(&addrs);
        let (sock, _) = bound.into_iter().next().expect("one socket");
        let node = UdpNode::start(sock, spec, NodeId(0), fast_cfg(), true, 7).expect("start node");
        assert_eq!(node.recv_failure(), None);
        assert_eq!(node.send_drops(), 0);
        // Inject a failure the way the recv thread would surface one.
        node.delivered_rx_test_inject(RuntimeEvent::RecvFailed(std::io::Error::new(
            std::io::ErrorKind::NotConnected,
            "socket died",
        )));
        assert!(node.try_recv().is_none());
        assert_eq!(node.recv_failure(), Some(std::io::ErrorKind::NotConnected));
        node.shutdown();
    }
}
