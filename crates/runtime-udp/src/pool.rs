//! MTU-bucketed buffer pool for the UDP runtime's receive path.
//!
//! Modeled on the GStreamer buffer-pool pattern (size-bucketed freelists,
//! reuse for same-size allocations, a memory limit, statistics): datagrams
//! are received **directly into pooled slabs**, frozen into [`Bytes`] and
//! decoded zero-copy — the steady state allocates nothing per datagram.
//!
//! ## Size classes
//!
//! Three buckets: [`DATAGRAM_MTU`] (every protocol control packet and
//! MTU-sized data datagram — the common case by far), a 16 KiB middle
//! class, and [`MAX_DATAGRAM`] (the largest UDP payload; jumbo
//! application multicasts). [`DATAGRAM_MTU`] is the single source of
//! truth for datagram sizing: the send path's encode buffer and the
//! receive slabs both start from it.
//!
//! ## Slab life cycle
//!
//! ```text
//! acquire(class)          -> BytesMut slab   (freelist hit, scavenged
//!                                             reclaim, or fresh alloc = miss)
//! recvmmsg into slab      -> truncate to datagram length
//! freeze()                -> Bytes           (zero-copy view, decode shares it)
//! release(class, bytes)   -> unique?  back on the freelist
//!                            shared?  parked on the retained list
//!                                     (a buffered payload still points in)
//! sweep()/acquire misses  -> retained slabs whose last outside reference
//!                            dropped are reclaimed to the freelist
//! ```
//!
//! The retained list is how zero-copy coexists with the protocol's
//! buffering: a `Data` payload inserted into the receiver's
//! `MessageStore` keeps the slab alive, so the pool parks its handle and
//! reclaims the slab when the store eventually discards the message. The
//! list is bounded in proportion to the pool's byte budget (floored at
//! [`RETAINED_CAP`] entries) — beyond the cap the oldest handle is
//! forfeited (the slab frees itself whenever the store drops it; the pool
//! merely stops tracking it), so a pathological workload degrades to
//! plain allocation instead of growing the pool without bound, while a
//! generously budgeted pool can ride out thousands of receivers pinning
//! an in-flight window of payloads simultaneously.
//!
//! Statistics are shared [`PoolStats`] atomics so operators (and the
//! runtime bench) can observe hit/miss/reclaim rates and the allocation
//! high-water mark without touching the loop thread. A flat `misses`
//! count after warmup is the "flat allocation rate" success criterion
//! from the roadmap.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{Bytes, BytesMut};

/// The runtime's datagram MTU budget: the size class every protocol
/// control packet and MTU-sized data datagram fits in, and the initial
/// capacity of the send path's encode buffer. One source of truth for
/// datagram sizing — the pool's smallest bucket is exactly this.
pub const DATAGRAM_MTU: usize = 2048;

/// The largest datagram the runtime handles: the UDP payload ceiling.
pub const MAX_DATAGRAM: usize = 64 * 1024;

/// Bucket sizes, ascending. `SizeClass` indexes into this ladder.
pub const SIZE_CLASSES: [usize; 3] = [DATAGRAM_MTU, 16 * 1024, MAX_DATAGRAM];

/// Retained-list bound floor per class: the cap scales with the pool's
/// byte budget (`free_limit_bytes / class size` — the pool tracks as many
/// parked slabs as it would be willing to keep free) but never drops
/// below this, so small pools still ride out a buffering burst. Beyond
/// the cap, the oldest still-shared slab handle is forfeited rather than
/// tracked forever.
const RETAINED_CAP: usize = 4096;

/// How many retained entries one scavenge pass inspects.
const SCAVENGE_BUDGET: usize = 8;

/// Index into [`SIZE_CLASSES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeClass(pub usize);

impl SizeClass {
    /// The smallest class whose slab holds `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`MAX_DATAGRAM`].
    #[must_use]
    pub fn for_len(len: usize) -> SizeClass {
        let idx = SIZE_CLASSES
            .iter()
            .position(|&s| s >= len)
            .unwrap_or_else(|| panic!("datagram of {len} bytes exceeds MAX_DATAGRAM"));
        SizeClass(idx)
    }

    /// The slab size of this class in bytes.
    #[must_use]
    pub fn size(self) -> usize {
        SIZE_CLASSES[self.0]
    }

    /// The next larger class, if any.
    #[must_use]
    pub fn promote(self) -> Option<SizeClass> {
        (self.0 + 1 < SIZE_CLASSES.len()).then(|| SizeClass(self.0 + 1))
    }
}

/// Shared, lock-free pool statistics. Counters are cumulative; gauges
/// reflect the current state. All updates are `Relaxed` — they are
/// observability, never synchronization.
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Acquires served straight from a freelist.
    pub hits: AtomicU64,
    /// Acquires that allocated a fresh slab (the pool grew).
    pub misses: AtomicU64,
    /// Slabs recovered from the retained list after their last outside
    /// reference dropped.
    pub reclaimed: AtomicU64,
    /// Slabs released while still shared (a buffered payload points in),
    /// parked on the retained list.
    pub parked: AtomicU64,
    /// Unique slabs dropped because the freelist byte limit was reached.
    pub trimmed: AtomicU64,
    /// Still-shared handles dropped because the retained list was full;
    /// the slab frees itself when its buffer owner drops it.
    pub forfeited: AtomicU64,
    /// Bytes currently sitting on freelists.
    pub free_bytes: AtomicU64,
    /// Bytes in slabs the pool has allocated and still tracks
    /// (freelists + slabs out with callers or parked on retained lists).
    pub tracked_bytes: AtomicU64,
    /// High-water mark of `tracked_bytes`.
    pub high_water_bytes: AtomicU64,
}

/// A plain-data copy of [`PoolStats`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Acquires served from a freelist.
    pub hits: u64,
    /// Fresh slab allocations.
    pub misses: u64,
    /// Slabs recovered from the retained list.
    pub reclaimed: u64,
    /// Shared releases parked for later reclaim.
    pub parked: u64,
    /// Unique slabs dropped over the freelist limit.
    pub trimmed: u64,
    /// Shared handles dropped over the retained cap.
    pub forfeited: u64,
    /// Bytes on freelists now.
    pub free_bytes: u64,
    /// Bytes tracked by the pool now.
    pub tracked_bytes: u64,
    /// Peak of `tracked_bytes`.
    pub high_water_bytes: u64,
}

impl PoolStats {
    /// Reads every counter at once (each individually `Relaxed`).
    #[must_use]
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
            parked: self.parked.load(Ordering::Relaxed),
            trimmed: self.trimmed.load(Ordering::Relaxed),
            forfeited: self.forfeited.load(Ordering::Relaxed),
            free_bytes: self.free_bytes.load(Ordering::Relaxed),
            tracked_bytes: self.tracked_bytes.load(Ordering::Relaxed),
            high_water_bytes: self.high_water_bytes.load(Ordering::Relaxed),
        }
    }
}

/// One size class: a freelist of writable slabs plus the retained list of
/// released-but-still-shared handles awaiting reclaim.
#[derive(Debug, Default)]
struct ClassPool {
    free: Vec<BytesMut>,
    retained: std::collections::VecDeque<Bytes>,
}

/// The MTU-bucketed slab pool. One instance per event-loop thread — no
/// locking anywhere; only the statistics cross threads.
#[derive(Debug)]
pub struct BufferPool {
    classes: [ClassPool; SIZE_CLASSES.len()],
    /// Byte budget for the freelists (summed over classes). `0` disables
    /// pooling entirely: every acquire allocates, every release drops —
    /// the differential "unpooled" arm of the runtime bench.
    free_limit_bytes: usize,
    stats: Arc<PoolStats>,
}

impl BufferPool {
    /// Creates a pool whose freelists may hold up to `free_limit_bytes`.
    /// Pass `0` to disable pooling (per-datagram allocation, for
    /// differential benchmarking).
    #[must_use]
    pub fn new(free_limit_bytes: usize) -> BufferPool {
        BufferPool::with_stats(free_limit_bytes, Arc::new(PoolStats::default()))
    }

    /// Like [`BufferPool::new`], publishing into a caller-provided stats
    /// block — how each event loop exposes its pool to runtime-level
    /// introspection without sharing the pool itself.
    #[must_use]
    pub fn with_stats(free_limit_bytes: usize, stats: Arc<PoolStats>) -> BufferPool {
        BufferPool { classes: Default::default(), free_limit_bytes, stats }
    }

    /// The shared statistics handle.
    #[must_use]
    pub fn stats(&self) -> Arc<PoolStats> {
        Arc::clone(&self.stats)
    }

    /// Whether pooling is enabled (a zero byte limit disables it).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.free_limit_bytes > 0
    }

    fn track_alloc(&self, size: usize) {
        let now = self.stats.tracked_bytes.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        self.stats.high_water_bytes.fetch_max(now, Ordering::Relaxed);
    }

    fn untrack(&self, size: usize) {
        self.stats.tracked_bytes.fetch_sub(size as u64, Ordering::Relaxed);
    }

    /// Hands out a writable slab of `class` (capacity ≥ the class size,
    /// length 0). Freelist first, then a bounded scavenge of the retained
    /// list, then — counted as a miss — a fresh allocation.
    pub fn acquire(&mut self, class: SizeClass) -> BytesMut {
        let size = class.size();
        if self.enabled() {
            if let Some(mut slab) = self.classes[class.0].free.pop() {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.stats.free_bytes.fetch_sub(size as u64, Ordering::Relaxed);
                slab.clear();
                return slab;
            }
            if let Some(mut slab) = self.scavenge(class, SCAVENGE_BUDGET) {
                self.stats.reclaimed.fetch_add(1, Ordering::Relaxed);
                slab.clear();
                return slab;
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        self.track_alloc(size);
        BytesMut::with_capacity(size)
    }

    /// Returns a frozen slab to the pool. `class` must be the class the
    /// slab was acquired as (the receive batcher tags its datagrams). A
    /// slab that is the last reference goes back on the freelist (or is
    /// dropped over the byte limit); one still shared — a decoded payload
    /// keeps it alive — is parked for a later reclaim.
    pub fn release(&mut self, class: SizeClass, bytes: Bytes) {
        let size = class.size();
        if !self.enabled() {
            // Unpooled mode never tracked the allocation.
            return;
        }
        match bytes.try_into_mut() {
            Ok(slab) => self.push_free(class, slab),
            Err(shared) => {
                self.stats.parked.fetch_add(1, Ordering::Relaxed);
                let cap = self.retained_cap(class);
                let retained = &mut self.classes[class.0].retained;
                retained.push_back(shared);
                if retained.len() > cap {
                    // Oldest first: forfeit tracking; the slab frees
                    // itself when its buffer owner drops the payload.
                    let _ = retained.pop_front();
                    self.stats.forfeited.fetch_add(1, Ordering::Relaxed);
                    self.untrack(size);
                }
            }
        }
    }

    /// Returns a writable slab that was acquired but never frozen (the
    /// receive batcher hands back unfilled slabs when it switches size
    /// class). Not a hit or a miss — the acquire already counted.
    pub fn release_unused(&mut self, class: SizeClass, slab: BytesMut) {
        if !self.enabled() {
            return;
        }
        self.push_free(class, slab);
    }

    /// Bounded maintenance pass: for each class, inspect up to `budget`
    /// parked slabs and reclaim the ones whose outside references have
    /// dropped. The event loop calls this once per wakeup so steady-state
    /// reuse never depends on an acquire happening to miss. Returns how
    /// many slabs this pass reclaimed (the runtime's scavenge trace hook
    /// reports it).
    pub fn sweep(&mut self, budget: usize) -> usize {
        if !self.enabled() {
            return 0;
        }
        let mut reclaimed = 0;
        for ci in 0..SIZE_CLASSES.len() {
            for _ in 0..budget {
                if self.classes[ci].retained.is_empty() {
                    break;
                }
                if let Some(slab) = self.scavenge(SizeClass(ci), 1) {
                    self.stats.reclaimed.fetch_add(1, Ordering::Relaxed);
                    self.push_free(SizeClass(ci), slab);
                    reclaimed += 1;
                }
            }
        }
        reclaimed
    }

    /// How many still-shared handles `class` may park: proportional to
    /// the byte budget (a pool sized for N free slabs expects up to ~N
    /// slabs pinned by buffered payloads at once), floored at
    /// [`RETAINED_CAP`].
    fn retained_cap(&self, class: SizeClass) -> usize {
        RETAINED_CAP.max(self.free_limit_bytes / class.size())
    }

    /// Pops up to `budget` retained entries of `class`, returning the
    /// first that has become unique; still-shared entries rotate to the
    /// back so successive passes cover the whole list.
    fn scavenge(&mut self, class: SizeClass, budget: usize) -> Option<BytesMut> {
        let retained = &mut self.classes[class.0].retained;
        for _ in 0..budget.min(retained.len()) {
            let candidate = retained.pop_front()?;
            match candidate.try_into_mut() {
                Ok(slab) => return Some(slab),
                Err(still_shared) => retained.push_back(still_shared),
            }
        }
        None
    }

    fn push_free(&mut self, class: SizeClass, mut slab: BytesMut) {
        let size = class.size();
        let free = self.stats.free_bytes.load(Ordering::Relaxed) as usize;
        if free + size <= self.free_limit_bytes {
            slab.clear();
            self.stats.free_bytes.fetch_add(size as u64, Ordering::Relaxed);
            self.classes[class.0].free.push(slab);
        } else {
            self.stats.trimmed.fetch_add(1, Ordering::Relaxed);
            self.untrack(size);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ladder_covers_the_datagram_range() {
        assert_eq!(SizeClass::for_len(0).size(), DATAGRAM_MTU);
        assert_eq!(SizeClass::for_len(DATAGRAM_MTU).size(), DATAGRAM_MTU);
        assert_eq!(SizeClass::for_len(DATAGRAM_MTU + 1).size(), 16 * 1024);
        assert_eq!(SizeClass::for_len(MAX_DATAGRAM).size(), MAX_DATAGRAM);
        assert_eq!(SizeClass(0).promote(), Some(SizeClass(1)));
        assert_eq!(SizeClass(2).promote(), None);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_DATAGRAM")]
    fn oversize_len_is_rejected() {
        let _ = SizeClass::for_len(MAX_DATAGRAM + 1);
    }

    #[test]
    fn acquire_release_cycle_is_a_hit_after_the_first_miss() {
        let mut pool = BufferPool::new(1 << 20);
        let class = SizeClass(0);
        let mut slab = pool.acquire(class);
        slab.extend_from_slice(b"datagram");
        pool.release(class, slab.freeze());
        for _ in 0..10 {
            let slab = pool.acquire(class);
            assert!(slab.capacity() >= class.size());
            assert!(slab.is_empty(), "recycled slabs come back cleared");
            pool.release(class, slab.freeze());
        }
        let s = pool.stats().snapshot();
        assert_eq!(s.misses, 1, "only the cold start allocates");
        assert_eq!(s.hits, 10);
        assert_eq!(s.tracked_bytes, class.size() as u64);
        assert_eq!(s.high_water_bytes, class.size() as u64);
    }

    #[test]
    fn shared_slabs_are_parked_then_reclaimed() {
        let mut pool = BufferPool::new(1 << 20);
        let class = SizeClass(0);
        let mut slab = pool.acquire(class);
        slab.extend_from_slice(b"payload-to-buffer");
        let frozen = slab.freeze();
        let payload = frozen.slice(8..); // a MessageStore would hold this
        pool.release(class, frozen);
        let s = pool.stats().snapshot();
        assert_eq!(s.parked, 1);
        // While the payload lives, acquires must allocate (or hit the
        // freelist) — the parked slab cannot be reclaimed.
        let other = pool.acquire(class);
        assert_eq!(pool.stats().snapshot().misses, 2);
        pool.release(class, other.freeze());
        // Payload dropped: the sweep reclaims the parked slab.
        drop(payload);
        pool.sweep(8);
        let s = pool.stats().snapshot();
        assert_eq!(s.reclaimed, 1);
        // Both slabs now sit on the freelist.
        assert_eq!(s.free_bytes, 2 * class.size() as u64);
    }

    #[test]
    fn freelist_respects_the_byte_limit() {
        let class = SizeClass(0);
        // Room for exactly one slab.
        let mut pool = BufferPool::new(class.size());
        let a = pool.acquire(class);
        let b = pool.acquire(class);
        pool.release(class, a.freeze());
        pool.release(class, b.freeze());
        let s = pool.stats().snapshot();
        assert_eq!(s.trimmed, 1, "the second slab is dropped, not pooled");
        assert_eq!(s.free_bytes, class.size() as u64);
        assert_eq!(s.tracked_bytes, class.size() as u64);
    }

    #[test]
    fn zero_limit_disables_pooling() {
        let mut pool = BufferPool::new(0);
        assert!(!pool.enabled());
        let class = SizeClass(0);
        for _ in 0..3 {
            let slab = pool.acquire(class);
            pool.release(class, slab.freeze());
        }
        let s = pool.stats().snapshot();
        assert_eq!(s.misses, 3, "every acquire allocates");
        assert_eq!(s.hits, 0);
        assert_eq!(s.free_bytes, 0);
    }

    #[test]
    fn retained_cap_forfeits_oldest() {
        let class = SizeClass(0);
        // A tiny byte budget keeps the retained cap at its floor.
        let mut pool = BufferPool::new(class.size());
        let mut keepers = Vec::new();
        for _ in 0..(RETAINED_CAP + 3) {
            let mut slab = pool.acquire(class);
            slab.extend_from_slice(b"x");
            let frozen = slab.freeze();
            keepers.push(frozen.clone()); // keep every slab shared
            pool.release(class, frozen);
        }
        let s = pool.stats().snapshot();
        assert_eq!(s.forfeited, 3);
        assert_eq!(s.parked, (RETAINED_CAP + 3) as u64);
        // Tracked bytes shrank by the forfeited slabs.
        assert_eq!(s.tracked_bytes, (RETAINED_CAP * class.size()) as u64);
    }

    #[test]
    fn retained_cap_scales_with_the_byte_budget() {
        let class = SizeClass(0);
        let over_floor = RETAINED_CAP + 64;
        // Budget for `over_floor` free slabs -> the same number may park.
        let mut pool = BufferPool::new(over_floor * class.size());
        let mut keepers = Vec::new();
        for _ in 0..over_floor {
            let mut slab = pool.acquire(class);
            slab.extend_from_slice(b"x");
            let frozen = slab.freeze();
            keepers.push(frozen.clone());
            pool.release(class, frozen);
        }
        assert_eq!(pool.stats().snapshot().forfeited, 0);
        // Dropping the payloads makes every parked slab reclaimable.
        drop(keepers);
        let reclaimed = std::iter::repeat_with(|| pool.acquire(class)).take(over_floor).count();
        let s = pool.stats().snapshot();
        assert_eq!(reclaimed, over_floor);
        assert_eq!(s.reclaimed, over_floor as u64, "no parked slab was lost");
    }
}
