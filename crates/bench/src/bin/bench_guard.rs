//! Bench-regression guard: compares a freshly generated
//! `BENCH_sim_core.json` against a committed baseline and flags any
//! workload whose speedup dropped below 0.9x of the recorded value.
//!
//! ```text
//! cargo run --release -p rrmp-bench --bin bench_guard <fresh.json> <baseline.json> [--warn-only]
//! ```
//!
//! Exits non-zero on a regression unless `--warn-only` is given, in which
//! case it only emits GitHub Actions `::warning::` annotations (CI runners
//! are noisy; a hard gate there would flake). Workloads present in only
//! one file are reported but never fail the check, so adding or retiring
//! workloads doesn't break the guard.

use std::process::ExitCode;

/// Fraction of the baseline speedup a fresh run must reach.
const THRESHOLD: f64 = 0.9;

/// Extracts `(workload, speedup)` pairs from the fixed JSON layout
/// `sim_core_bench` writes: each workload opens with `"<name>": {` inside
/// the `"workloads"` object and carries a `"speedup": <float>` line.
fn parse_speedups(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix('"') {
            if let Some((name, tail)) = rest.split_once('"') {
                if tail.trim_start().starts_with(": {") && name != "workloads" {
                    current = Some(name.to_string());
                }
            }
        }
        if let Some(value) = trimmed.strip_prefix("\"speedup\":") {
            if let (Some(name), Ok(speedup)) =
                (current.take(), value.trim().trim_end_matches(',').parse::<f64>())
            {
                out.push((name, speedup));
            }
        }
    }
    out
}

fn read_speedups(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_guard: cannot read {path}: {e}"));
    let parsed = parse_speedups(&text);
    assert!(!parsed.is_empty(), "bench_guard: no workload speedups found in {path}");
    parsed
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let warn_only = args.iter().any(|a| a == "--warn-only");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [fresh_path, baseline_path] = files[..] else {
        eprintln!("usage: bench_guard <fresh.json> <baseline.json> [--warn-only]");
        return ExitCode::from(2);
    };

    let fresh = read_speedups(fresh_path);
    let baseline = read_speedups(baseline_path);
    let mut regressed = false;

    for (name, base) in &baseline {
        let Some((_, new)) = fresh.iter().find(|(n, _)| n == name) else {
            println!("::warning::bench_guard: workload '{name}' missing from {fresh_path}");
            continue;
        };
        let floor = base * THRESHOLD;
        if *new < floor {
            regressed = true;
            println!(
                "::warning::bench_guard: '{name}' speedup regressed: {new:.3}x < {floor:.3}x \
                 (baseline {base:.3}x * {THRESHOLD})"
            );
        } else {
            println!("bench_guard: '{name}' ok: {new:.3}x vs baseline {base:.3}x");
        }
    }
    for (name, new) in &fresh {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("bench_guard: '{name}' is new ({new:.3}x), no baseline to compare");
        }
    }

    if regressed && !warn_only {
        eprintln!("bench_guard: FAILED — at least one workload fell below {THRESHOLD}x baseline");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
