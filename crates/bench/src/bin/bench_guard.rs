//! Bench-regression guard: compares a freshly generated
//! `BENCH_sim_core.json` against a committed baseline and flags any
//! workload whose speedup dropped below 0.9x of the recorded value.
//!
//! ```text
//! cargo run --release -p rrmp-bench --bin bench_guard \
//!     <fresh.json> <baseline.json> [--warn-only] [--enforce=a,b,c]
//! ```
//!
//! Exits non-zero on a regression unless `--warn-only` is given, in which
//! case it only emits GitHub Actions `::warning::` annotations (CI runners
//! are noisy; a hard gate there would flake). `--enforce=` names workloads
//! that fail the check even under `--warn-only` — the stable,
//! low-variance workloads (raw queue ops, fan-out, index queries) are
//! gated hard in CI while the noisy end-to-end and parallelism workloads
//! stay warn-only. Workloads present in only one file are reported but
//! never fail the check, so adding or retiring workloads doesn't break
//! the guard.

use std::process::ExitCode;

/// Fraction of the baseline speedup a fresh run must reach.
const THRESHOLD: f64 = 0.9;

/// Extracts `(workload, speedup)` pairs from the fixed JSON layout
/// `sim_core_bench` writes: each workload opens with `"<name>": {` inside
/// the `"workloads"` object and carries a `"speedup": <float>` line.
fn parse_speedups(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix('"') {
            if let Some((name, tail)) = rest.split_once('"') {
                if tail.trim_start().starts_with(": {") && name != "workloads" {
                    current = Some(name.to_string());
                }
            }
        }
        if let Some(value) = trimmed.strip_prefix("\"speedup\":") {
            if let (Some(name), Ok(speedup)) =
                (current.take(), value.trim().trim_end_matches(',').parse::<f64>())
            {
                out.push((name, speedup));
            }
        }
    }
    out
}

fn read_speedups(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_guard: cannot read {path}: {e}"));
    let parsed = parse_speedups(&text);
    assert!(!parsed.is_empty(), "bench_guard: no workload speedups found in {path}");
    parsed
}

/// First integer value of a top-level-ish `"key": <int>` line.
fn int_field(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    text.lines()
        .find_map(|l| l.trim().strip_prefix(pat.as_str()))
        .and_then(|v| v.trim().trim_end_matches(',').parse().ok())
}

/// Warn-only peak-RSS budget check.
///
/// **The metric the budget is evaluated against is
/// `members_scale.rss_delta_kb`** — the peak-RSS delta the members-scale
/// workload added, measured immediately around it, so the budget gates
/// that workload's own footprint. `peak_rss_proxy_kb` is the *whole
/// process* high-water mark (every workload in the run plus allocator
/// retention) and is reported for context only; it routinely exceeds the
/// budget without meaning anything — a JSON where
/// `peak_rss_proxy_kb > peak_rss_budget_kb` is **not** a violation.
/// Memory accounting varies across allocators and kernels, so this never
/// hard-fails — it annotates.
fn check_rss_budget(fresh_text: &str) {
    let Some(budget) = int_field(fresh_text, "peak_rss_budget_kb") else { return };
    if let Some(delta) = int_field(fresh_text, "rss_delta_kb") {
        if delta > budget {
            println!(
                "::warning::bench_guard: evaluated metric members_scale.rss_delta_kb = \
                 {delta} kB exceeds peak_rss_budget_kb = {budget} kB"
            );
        } else {
            println!(
                "bench_guard: evaluated metric members_scale.rss_delta_kb = {delta} kB \
                 within peak_rss_budget_kb = {budget} kB"
            );
        }
    }
    if let Some(proxy) = int_field(fresh_text, "peak_rss_proxy_kb") {
        println!(
            "bench_guard: peak_rss_proxy_kb = {proxy} kB is the whole-process high-water \
             mark across all workloads — informational, never compared against the budget"
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let warn_only = args.iter().any(|a| a == "--warn-only");
    let enforced: Vec<String> = args
        .iter()
        .filter_map(|a| a.strip_prefix("--enforce="))
        .flat_map(|list| list.split(','))
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [fresh_path, baseline_path] = files[..] else {
        eprintln!(
            "usage: bench_guard <fresh.json> <baseline.json> [--warn-only] [--enforce=a,b,c]"
        );
        return ExitCode::from(2);
    };

    let fresh_text = std::fs::read_to_string(fresh_path)
        .unwrap_or_else(|e| panic!("bench_guard: cannot read {fresh_path}: {e}"));
    let fresh = parse_speedups(&fresh_text);
    assert!(!fresh.is_empty(), "bench_guard: no workload speedups found in {fresh_path}");
    let baseline = read_speedups(baseline_path);
    check_rss_budget(&fresh_text);

    // An enforced name that matches nothing would silently turn the hard
    // gate into a no-op (e.g. after a workload rename) — fail loudly
    // instead, like the unknown-RRMP_POLICY panic.
    let mut unknown_enforced = false;
    for name in &enforced {
        let known = baseline.iter().any(|(n, _)| n == name) && fresh.iter().any(|(n, _)| n == name);
        if !known {
            unknown_enforced = true;
            println!(
                "::error::bench_guard: enforced workload '{name}' not present in both files — \
                 the gate would test nothing"
            );
        }
    }
    if unknown_enforced {
        eprintln!("bench_guard: FAILED — --enforce names a workload missing from the results");
        return ExitCode::FAILURE;
    }

    let mut regressed = false;
    let mut enforced_regressed = false;

    for (name, base) in &baseline {
        let Some((_, new)) = fresh.iter().find(|(n, _)| n == name) else {
            println!("::warning::bench_guard: workload '{name}' missing from {fresh_path}");
            continue;
        };
        let floor = base * THRESHOLD;
        if *new < floor {
            regressed = true;
            let hard = enforced.iter().any(|e| e == name);
            enforced_regressed |= hard;
            let level = if hard { "error" } else { "warning" };
            println!(
                "::{level}::bench_guard: '{name}' speedup regressed: {new:.3}x < {floor:.3}x \
                 (baseline {base:.3}x * {THRESHOLD}{})",
                if hard { ", enforced" } else { "" }
            );
        } else {
            println!("bench_guard: '{name}' ok: {new:.3}x vs baseline {base:.3}x");
        }
    }
    for (name, new) in &fresh {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("bench_guard: '{name}' is new ({new:.3}x), no baseline to compare");
        }
    }

    if enforced_regressed {
        eprintln!("bench_guard: FAILED — an enforced workload fell below {THRESHOLD}x baseline");
        return ExitCode::FAILURE;
    }
    if regressed && !warn_only {
        eprintln!("bench_guard: FAILED — at least one workload fell below {THRESHOLD}x baseline");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
