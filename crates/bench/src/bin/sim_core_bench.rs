//! Reproducible simulator hot-path benchmark: times the optimized paths
//! this refactor introduced against faithful reconstructions of the
//! pre-refactor implementation, on identical deterministic workloads, and
//! writes `BENCH_sim_core.json`.
//!
//! Run via `scripts/bench.sh` (release build) or directly:
//!
//! ```text
//! cargo run --release -p rrmp-bench --bin sim_core_bench [out.json]
//! ```
//!
//! Workloads (optimized vs pre-refactor baseline):
//!
//! * `event_loop` — timer-and-unicast storm: reused scratch op buffer +
//!   slab timers vs a fresh `Vec` per callback.
//! * `multicast_fanout` — 1 KiB payload to 200 destinations per
//!   multicast: one `send_many` op sharing an `Arc`-backed `Bytes`
//!   payload vs the pre-refactor shape (per-callback allocation, one op
//!   per destination, deep per-destination payload copies — the seed had
//!   no zero-copy buffer type).
//! * `delivered_query` — `has_delivered` via the per-source interval
//!   index vs the historical linear scan of the delivery log.
//! * `encode_reuse` — `encode_into` a reused buffer vs a freshly
//!   allocated, growing buffer per packet (the historical `encode`).
//! * `rrmp_e2e` — the full protocol recovering a half-lost multicast
//!   stream, optimized end to end vs the reference host and event loop.
//! * `fault_path` — the `rrmp_e2e` run unarmed vs armed with an inert
//!   `FaultPlan` (far-future windows plus a p=0 duplication spanning the
//!   run): identical traces by construction, so the ratio is the pure
//!   cost of the per-copy fault hook. Proves the unarmed hook (one
//!   `Option` check) costs nothing on fault-free runs.
//! * `trace_path` — the `rrmp_e2e` run unarmed vs armed with the full
//!   observer (ring-buffered trace sinks on every receiver and the
//!   engine, samplers off so both arms process identical event
//!   sequences): the ratio is the pure cost of the tracing hooks, and
//!   the unarmed arm is the fast path the golden fingerprints pin — one
//!   `Option` check per hook site.
//! * `overload` — a repair storm (80% loss burst, 100 members, a tenth
//!   seeded per message) with the graceful-degradation kit armed (memory
//!   budget + token-bucket damping + liveness watchdog) vs the same
//!   storm undamped. What damping buys is wire traffic, not wall-clock
//!   (shed rounds re-queue as paced timer events), so the comparison is
//!   storms per million repair unicasts — deterministic per seed, so the
//!   entry only moves when the protocol does (warn-only in
//!   `bench_guard`).
//! * `queue_ops` — a raw schedule/pop storm with thousands of pending
//!   events: the hierarchical timing wheel vs the reference `BinaryHeap`
//!   queue, including capacity reuse across runs via `clear`.
//! * `multi_run_reuse` — twelve back-to-back experiment runs, both arms
//!   on the optimized loop: one network `reset` between runs (warm
//!   queue/slab allocations) vs constructing a fresh network per run —
//!   the ratio isolates the reuse effect itself.
//! * `members_1m` — the scaling flagship: a million members across
//!   heterogeneous regions (a few large campuses, a long tail of small
//!   sites) recovering a lossy stream on the sharded engine. Optimized
//!   arm: load-aware LPT region→shard placement; reference arm:
//!   round-robin placement, both at 4 shards with an equal-event-count
//!   assert (placement never changes the trace). Runs *first* so the
//!   peak-RSS delta it records approximates the workload's own
//!   footprint, checked warn-only against `peak_rss_budget_kb` by
//!   `bench_guard`. `--members=N` shrinks it (the CI smoke job runs
//!   100k; the workload is then named `members_scale`), `--members-only`
//!   skips everything else.
//!
//! Every workload is deterministic per seed; optimized and reference
//! modes process byte-identical event sequences (asserted by the
//! trace-equality tests), so wall-clock ratios isolate the hot-path
//! changes.

use std::hint::black_box;
use std::time::Instant;

use bytes::{Bytes, BytesMut};
use rand::{Rng, SeedableRng};
use rrmp_baselines::ported::{multicast_with_session, policy_config};
use rrmp_baselines::{
    HashConfig, HashNetwork, SenderBasedConfig, SenderBasedNetwork, StabilityConfig,
    StabilityNetwork, TreeConfig, TreeNetwork,
};
use rrmp_core::harness::RrmpNetwork;
use rrmp_core::ids::{MessageId, SeqNo};
use rrmp_core::packet::{DataPacket, Packet};
use rrmp_core::policy::PolicyKind;
use rrmp_core::prelude::{DampingConfig, ProtocolConfig, TraceConfig, WatchdogConfig};
use rrmp_netsim::event::{EventQueue, ReferenceEventQueue, Scheduler};
use rrmp_netsim::fault::FaultPlan;
use rrmp_netsim::loss::{DeliveryPlan, LossModel};
use rrmp_netsim::shard::ShardPlacement;
use rrmp_netsim::sim::{Ctx, Sim, SimNode};
use rrmp_netsim::time::{SimDuration, SimTime};
use rrmp_netsim::topology::{presets, NodeId, RegionId, Topology};

/// Best-of-`runs` wall seconds for `f` (which must do identical work each
/// call). Returns `(best_seconds, work_items)`.
fn best_secs<F: FnMut() -> u64>(runs: usize, mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut work = 0u64;
    for _ in 0..runs {
        let start = Instant::now();
        work = f();
        let secs = start.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
    }
    (best, work)
}

// ----- workload 1: timer + unicast event storm ------------------------------

/// On every timer fire: send to a random peer, re-arm, and arm-then-cancel
/// a decoy timer (exercising slab reuse).
struct PingNode {
    payload: Bytes,
}

impl SimNode for PingNode {
    type Msg = Bytes;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Bytes>) {
        ctx.set_timer(SimDuration::from_micros(100), 0);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_, Bytes>, _from: NodeId, _msg: Bytes) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Bytes>, _token: u64) {
        let n = ctx.topology().node_count() as u32;
        let mut to = NodeId(ctx.rng().gen_range(0..n));
        if to == ctx.self_id() {
            to = NodeId((to.0 + 1) % n);
        }
        ctx.send(to, self.payload.clone());
        let decoy = ctx.set_timer(SimDuration::from_micros(50), 1);
        ctx.cancel_timer(decoy);
        ctx.set_timer(SimDuration::from_micros(100), 0);
    }
}

fn event_loop_workload(optimized: bool) -> (f64, u64) {
    best_secs(3, || {
        let topo = presets::paper_region(64);
        let payload = Bytes::from(vec![0xA5u8; 64]);
        let nodes = (0..64).map(|_| PingNode { payload: payload.clone() }).collect();
        let mut sim =
            if optimized { Sim::new(topo, nodes, 42) } else { Sim::new_reference(topo, nodes, 42) };
        sim.run_until(SimTime::from_millis(400));
        sim.counters().events_processed
    })
}

// ----- workload 2: regional fan-out -----------------------------------------

/// Node 0 multicasts `payload` to the whole region on every timer fire.
struct Caster<M: Clone> {
    payload: M,
    casts: u64,
}

impl<M: Clone + 'static> SimNode for Caster<M> {
    type Msg = M;

    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        if ctx.self_id() == NodeId(0) {
            ctx.set_timer(SimDuration::from_micros(100), 0);
        }
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_, M>, _from: NodeId, _msg: M) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, _token: u64) {
        let n = ctx.topology().node_count() as u32;
        ctx.send_many((0..n).map(NodeId), self.payload.clone());
        self.casts += 1;
        ctx.set_timer(SimDuration::from_micros(100), 0);
    }
}

fn fanout_workload<M: Clone + 'static>(optimized: bool, payload: M) -> (f64, u64) {
    best_secs(3, move || {
        let topo = presets::paper_region(200);
        let nodes = (0..200).map(|_| Caster { payload: payload.clone(), casts: 0 }).collect();
        let mut sim =
            if optimized { Sim::new(topo, nodes, 7) } else { Sim::new_reference(topo, nodes, 7) };
        sim.run_until(SimTime::from_millis(300));
        sim.node(NodeId(0)).casts
    })
}

// ----- workload 3: delivered-set queries ------------------------------------

fn delivered_query_workload() -> (f64, f64, u64) {
    // One network, a 300-message fully delivered stream over 100 nodes.
    let topo = presets::paper_region(100);
    let mut net = RrmpNetwork::new(topo, ProtocolConfig::paper_defaults(), 3);
    let mut ids = Vec::new();
    for _ in 0..300 {
        let plan = DeliveryPlan::all(net.topology());
        ids.push(net.multicast_with_plan(&b"query-stream"[..], &plan));
        let next = net.now() + SimDuration::from_millis(2);
        net.run_until(next);
    }
    net.run_until(net.now() + SimDuration::from_millis(100));
    let queries = (ids.len() * net.topology().node_count()) as u64;

    // Optimized: the per-source interval index behind has_delivered.
    let (opt_s, hits) = best_secs(5, || {
        let mut acc = 0u64;
        for &id in &ids {
            for (_, n) in net.nodes() {
                acc += u64::from(n.has_delivered(id));
            }
        }
        black_box(acc)
    });
    // Baseline: the historical linear scan over the same delivery logs.
    let (ref_s, ref_hits) = best_secs(5, || {
        let mut acc = 0u64;
        for &id in &ids {
            for (_, n) in net.nodes() {
                acc += u64::from(n.delivered().iter().any(|&(_, d)| d == id));
            }
        }
        black_box(acc)
    });
    assert_eq!(hits, ref_hits, "index and scan must agree");
    assert_eq!(hits, queries, "stream was fully delivered");
    (queries as f64 / opt_s, queries as f64 / ref_s, queries)
}

// ----- workload 4: encode-buffer reuse --------------------------------------

fn encode_stream() -> Vec<Packet> {
    let mid = |seq: u64| MessageId::new(NodeId(0), SeqNo(seq));
    (0..2_000u64)
        .map(|i| match i % 4 {
            0 => Packet::Data(DataPacket::new(mid(i), Bytes::from(vec![0x7Cu8; 1024]))),
            1 => Packet::LocalRequest { msg: mid(i) },
            2 => Packet::Repair {
                data: DataPacket::new(mid(i), Bytes::from(vec![0x7Cu8; 512])),
                kind: rrmp_core::packet::RepairKind::Remote,
            },
            _ => Packet::Session { source: NodeId(0), high: SeqNo(i) },
        })
        .collect()
}

fn encode_reuse_workload() -> (f64, f64, u64) {
    let packets = encode_stream();
    let work = packets.len() as u64;
    // Optimized: one reused buffer, cleared between packets.
    let (opt_s, _) = best_secs(5, || {
        let mut buf = BytesMut::with_capacity(2048);
        let mut total = 0u64;
        for _ in 0..20 {
            for p in &packets {
                buf.clear();
                p.encode_into(&mut buf);
                total += buf.len() as u64;
            }
        }
        black_box(total)
    });
    // Baseline: the historical encode — a fresh buffer per packet, grown
    // from a small initial capacity.
    let (ref_s, _) = best_secs(5, || {
        let mut total = 0u64;
        for _ in 0..20 {
            for p in &packets {
                let mut buf = BytesMut::with_capacity(32);
                p.encode_into(&mut buf);
                total += buf.freeze().len() as u64;
            }
        }
        black_box(total)
    });
    let encodes = work * 20;
    (encodes as f64 / opt_s, encodes as f64 / ref_s, encodes)
}

// ----- workload 5: full protocol end to end ---------------------------------

fn rrmp_workload(optimized: bool) -> (f64, u64) {
    best_secs(3, || {
        let topo = presets::paper_region(100);
        let cfg = ProtocolConfig::paper_defaults();
        let mut net = if optimized {
            RrmpNetwork::new(topo, cfg, 7)
        } else {
            RrmpNetwork::new_reference(topo, cfg, 7)
        };
        for _ in 0..20 {
            let plan = DeliveryPlan::only(net.topology(), (0..50).map(NodeId));
            net.multicast_with_plan(&b"bench-payload-bench-payload"[..], &plan);
            let next = net.now() + SimDuration::from_millis(30);
            net.run_until(next);
        }
        net.run_until(net.now() + SimDuration::from_millis(500));
        net.net_counters().events_processed
    })
}

// ----- workload 5b: fault-hook overhead -------------------------------------

/// The `rrmp_e2e` run again, unarmed vs armed with an inert plan: every
/// episode either sits in a far-future window (never active, but scanned
/// per copy) or is a p=0 duplication spanning the whole run (active, so
/// every surviving copy pays a window check plus a hash-oracle draw, but
/// no verdict ever changes). Both arms process byte-identical event
/// sequences; the ratio isolates the fault hook itself. The unarmed arm
/// is the fast path CI guards: one `Option` check per unicast copy.
fn fault_path_workload(armed: bool) -> (f64, u64) {
    best_secs(3, || {
        let topo = presets::paper_region(100);
        let cfg = ProtocolConfig::paper_defaults();
        let mut net = RrmpNetwork::new(topo, cfg, 7);
        if armed {
            let far = SimTime::from_secs(10_000);
            let plan = FaultPlan::new(11)
                .partition(RegionId(0), RegionId(1), far, far + SimDuration::from_secs(1))
                .stall(NodeId(5), far, far + SimDuration::from_secs(1))
                .duplicate(0.0, SimDuration::from_millis(5), SimTime::ZERO, far);
            net.arm_fault_plan(plan);
        }
        for _ in 0..20 {
            let plan = DeliveryPlan::only(net.topology(), (0..50).map(NodeId));
            net.multicast_with_plan(&b"bench-payload-bench-payload"[..], &plan);
            let next = net.now() + SimDuration::from_millis(30);
            net.run_until(next);
        }
        net.run_until(net.now() + SimDuration::from_millis(500));
        net.net_counters().events_processed
    })
}

// ----- workload 5b': observer-hook overhead ---------------------------------

/// The `rrmp_e2e` run unarmed vs armed with the observer: ring-buffered
/// trace sinks on every receiver and the engine, samplers off
/// (`sample_every: None`), so no extra timers fire and both arms process
/// byte-identical event sequences. The ratio isolates the tracing hooks
/// themselves; the unarmed arm is the fast path the golden fingerprints
/// pin — one `Option` check per hook site.
fn trace_path_workload(armed: bool) -> (f64, u64) {
    best_secs(3, || {
        let topo = presets::paper_region(100);
        let cfg = ProtocolConfig::paper_defaults();
        let mut net = RrmpNetwork::new(topo, cfg, 7);
        if armed {
            net.arm_observer(TraceConfig { ring_capacity: 4096, sample_every: None });
        }
        for _ in 0..20 {
            let plan = DeliveryPlan::only(net.topology(), (0..50).map(NodeId));
            net.multicast_with_plan(&b"bench-payload-bench-payload"[..], &plan);
            let next = net.now() + SimDuration::from_millis(30);
            net.run_until(next);
        }
        net.run_until(net.now() + SimDuration::from_millis(500));
        net.net_counters().events_processed
    })
}

// ----- workload 5c: repair storm, damped vs undamped ------------------------

/// A repair storm on a 100-member region: a heavy loss burst makes most
/// of the group start recovery for every message at once. Damped arm:
/// the full overload kit armed (memory budget, token-bucket damping,
/// liveness watchdog); undamped arm: the same storm with the kit off.
/// Returns the **wire unicasts** the storm cost — the quantity damping
/// exists to bound. (Wall-clock is the wrong axis here: shed rounds
/// re-queue as paced timer events, so the damped arm does *more*
/// simulator work while putting ~8x fewer packets on the wire.)
fn overload_workload(damped: bool) -> (f64, u64) {
    best_secs(3, || {
        let topo = presets::paper_region(100);
        let mut cfg = ProtocolConfig::paper_defaults();
        if damped {
            cfg.memory_budget = Some(16 * 1024);
            cfg.damping = Some(DampingConfig {
                burst: 2,
                refill: SimDuration::from_millis(40),
                suppress_window: SimDuration::from_millis(15),
            });
            cfg.watchdog = Some(WatchdogConfig {
                interval: SimDuration::from_millis(200),
                horizon: SimDuration::from_millis(400),
            });
        }
        let mut net = RrmpNetwork::new(topo, cfg, 7);
        net.arm_fault_plan(FaultPlan::new(11).loss_burst(
            0.8,
            None,
            SimTime::from_millis(50),
            SimTime::from_millis(500),
        ));
        for _ in 0..20 {
            // Only a tenth of the group gets the initial multicast: the
            // other ninety members all turn to recovery — the storm.
            let plan = DeliveryPlan::only(net.topology(), (0..10).map(NodeId));
            net.multicast_with_plan(&b"storm-payload-storm-payload"[..], &plan);
            let next = net.now() + SimDuration::from_millis(30);
            net.run_until(next);
        }
        net.run_until(net.now() + SimDuration::from_secs(2));
        net.net_counters().unicasts_sent
    })
}

// ----- workload 6: raw queue schedule/pop storm -----------------------------

/// Sim-shaped queue churn at large-group scale: hold ~32k pending events,
/// pop the frontier and schedule a replacement at a deterministic
/// pseudo-random delay, across eight runs reusing one queue (`clear`
/// keeps allocations warm). Counts one unit of work per schedule+pop pair.
/// Both queues are driven through the shared `Scheduler` trait — the
/// contract the UDP runtime's timer wheel uses too.
fn queue_ops_workload<Q: Scheduler<u64> + Default>() -> (f64, u64) {
    const PENDING: u64 = 32_768;
    const CHURN: u64 = 120_000;
    fn next(lcg: &mut u64) -> u64 {
        *lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *lcg >> 33
    }
    best_secs(3, || {
        let mut q = Q::default();
        let mut ops = 0u64;
        for run in 0..8u64 {
            q.clear();
            let mut lcg = 0x243F_6A88_85A3_08D3u64 ^ run;
            for i in 0..PENDING {
                q.schedule(SimTime::from_micros(next(&mut lcg) % 5_000_000), i);
            }
            for i in 0..CHURN {
                let (t, _) = q.pop().expect("queue holds pending events");
                let delta = 1 + next(&mut lcg) % 5_000_000;
                q.schedule(SimTime::from_micros(t.as_micros() + delta), i);
                ops += 1;
            }
            while q.pop().is_some() {}
        }
        ops
    })
}

// ----- workload 7: multi-run experiment reuse -------------------------------

fn one_experiment_run(net: &mut RrmpNetwork) -> u64 {
    let plan = DeliveryPlan::only(net.topology(), (0..30).map(NodeId));
    net.multicast_with_plan(&b"reuse-run"[..], &plan);
    net.run_until(SimTime::from_millis(400));
    net.net_counters().events_processed
}

/// Twelve identical experiment runs, both arms on the optimized event
/// loop so the ratio isolates the reuse effect itself. Optimized: one
/// network, `reset` between runs — queue and timer-slab allocations stay
/// warm. Baseline: the pre-`reset` usage pattern, a fresh network
/// (topology build, protocol state, cold queue) per run.
fn multi_run_reuse_workload(reuse: bool) -> (f64, u64) {
    const RUNS: u64 = 12;
    best_secs(3, || {
        let cfg = ProtocolConfig::paper_defaults();
        let mut events = 0u64;
        if reuse {
            let mut net = RrmpNetwork::new(presets::paper_region(60), cfg, 5);
            for run in 0..RUNS {
                if run > 0 {
                    net.reset(5);
                }
                events += one_experiment_run(&mut net);
            }
        } else {
            for _ in 0..RUNS {
                let mut net = RrmpNetwork::new(presets::paper_region(60), cfg.clone(), 5);
                events += one_experiment_run(&mut net);
            }
        }
        events
    })
}

// ----- workload 8: parallel per-region simulation ---------------------------

/// A 32-region × 2048-member group (64 members per region, all regions
/// children of the sender's) recovering a region-correlated lossy
/// multicast stream on the **sharded** engine: mostly intra-region repair
/// traffic — the regime conservative-window parallelism targets — with
/// cross-region remote recovery keeping the mailboxes busy.
fn parallel_regions_run(shards: usize) -> (f64, u64) {
    best_secs(2, || {
        let mut builder = rrmp_netsim::topology::TopologyBuilder::new()
            .inter_region_one_way(SimDuration::from_millis(25))
            .region(64, None);
        for _ in 1..32 {
            builder = builder.region(64, Some(0));
        }
        let topo = builder.build().expect("valid 32-region topology");
        let mut net = RrmpNetwork::with_shards(topo, ProtocolConfig::paper_defaults(), 7, shards);
        net.set_multicast_loss(rrmp_netsim::loss::LossModel::RegionCorrelated {
            p_region: 0.25,
            p_member: 0.05,
        });
        for _ in 0..6 {
            net.multicast(&b"parallel-regions-payload"[..]);
            let next = net.now() + SimDuration::from_millis(40);
            net.run_until(next);
        }
        net.run_until(SimTime::from_secs(2));
        net.net_counters().events_processed
    })
}

// ----- workload 9: policy × group size × loss-rate matrix --------------------

const MATRIX_POLICIES: [PolicyKind; 5] = [
    PolicyKind::TwoPhase,
    PolicyKind::HashBufferers,
    PolicyKind::SenderBased,
    PolicyKind::Stability,
    PolicyKind::TreeRmtp,
];
const MATRIX_SIZES: [usize; 2] = [40, 160];
const MATRIX_LOSS: [f64; 2] = [0.05, 0.25];
const MATRIX_MESSAGES: usize = 6;

/// Per-message delivery plans drawn once per combo, so the shared-engine
/// and legacy-stack arms see the identical loss pattern.
fn matrix_plans(topo: &Topology, loss: f64, seed: u64) -> Vec<DeliveryPlan> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let model = LossModel::Bernoulli { p: loss };
    (0..MATRIX_MESSAGES)
        .map(|_| DeliveryPlan::from_model(topo, NodeId(0), &model, &mut rng))
        .collect()
}

/// One lossy-stream run; returns the total delivered count (the checksum
/// both arms must agree on). `Net` abstracts over the three stacks via
/// closures below.
fn matrix_drive<Net>(
    plans: &[DeliveryPlan],
    net: &mut Net,
    mut cast: impl FnMut(&mut Net, &DeliveryPlan),
    mut run_until: impl FnMut(&mut Net, SimTime),
    mut now: impl FnMut(&Net) -> SimTime,
) {
    for plan in plans {
        cast(net, plan);
        let next = now(net) + SimDuration::from_millis(40);
        run_until(net, next);
    }
    let horizon = now(net) + SimDuration::from_secs(1);
    run_until(net, horizon);
}

/// The policy-matrix sweep on ONE protocol engine: every algorithm as a
/// [`PolicyKind`] over the shared (timing-wheel) `RrmpNetwork`.
fn policy_matrix_shared_engine() -> (f64, u64) {
    best_secs(3, || {
        let mut delivered = 0u64;
        for kind in MATRIX_POLICIES {
            for n in MATRIX_SIZES {
                for loss in MATRIX_LOSS {
                    let topo = presets::paper_region(n);
                    let plans = matrix_plans(&topo, loss, n as u64 ^ (loss * 100.0) as u64);
                    let mut net = RrmpNetwork::new(topo, policy_config(kind), 7);
                    let mut ids = Vec::new();
                    matrix_drive(
                        &plans,
                        &mut net,
                        |net, plan| ids.push(multicast_with_session(net, &b"matrix"[..], plan)),
                        |net, t| net.run_until(t),
                        |net| net.now(),
                    );
                    delivered += ids.iter().map(|&id| net.delivered_count(id) as u64).sum::<u64>();
                }
            }
        }
        delivered
    })
}

/// The same sweep the pre-refactor way: one duplicated protocol stack per
/// algorithm (reference event loop for two-phase, the standalone
/// `HashNetwork` / `SenderBasedNetwork` baselines for the others).
fn policy_matrix_legacy_stacks() -> (f64, u64) {
    best_secs(3, || {
        let mut delivered = 0u64;
        for kind in MATRIX_POLICIES {
            for n in MATRIX_SIZES {
                for loss in MATRIX_LOSS {
                    let topo = presets::paper_region(n);
                    let plans = matrix_plans(&topo, loss, n as u64 ^ (loss * 100.0) as u64);
                    match kind {
                        PolicyKind::TwoPhase => {
                            let mut net = RrmpNetwork::new_reference(topo, policy_config(kind), 7);
                            let mut ids = Vec::new();
                            matrix_drive(
                                &plans,
                                &mut net,
                                |net, plan| {
                                    ids.push(multicast_with_session(net, &b"matrix"[..], plan));
                                },
                                |net, t| net.run_until(t),
                                |net| net.now(),
                            );
                            delivered +=
                                ids.iter().map(|&id| net.delivered_count(id) as u64).sum::<u64>();
                        }
                        PolicyKind::HashBufferers => {
                            let mut net = HashNetwork::new(topo, HashConfig::default(), 7);
                            let mut ids = Vec::new();
                            matrix_drive(
                                &plans,
                                &mut net,
                                |net, plan| {
                                    ids.push(net.multicast_with_plan(&b"matrix"[..], plan));
                                },
                                |net, t| net.run_until(t),
                                |net| net.now(),
                            );
                            delivered +=
                                ids.iter().map(|&id| net.delivered_count(id) as u64).sum::<u64>();
                        }
                        PolicyKind::Stability => {
                            let mut net =
                                StabilityNetwork::new(topo, StabilityConfig::default(), 7);
                            let mut ids = Vec::new();
                            matrix_drive(
                                &plans,
                                &mut net,
                                |net, plan| {
                                    ids.push(net.multicast_with_plan(&b"matrix"[..], plan));
                                },
                                |net, t| net.run_until(t),
                                |net| net.now(),
                            );
                            delivered +=
                                ids.iter().map(|&id| net.delivered_count(id) as u64).sum::<u64>();
                        }
                        PolicyKind::TreeRmtp => {
                            let mut net = TreeNetwork::new(topo, TreeConfig::default(), 7);
                            let mut ids = Vec::new();
                            matrix_drive(
                                &plans,
                                &mut net,
                                |net, plan| {
                                    ids.push(net.multicast_with_plan(&b"matrix"[..], plan));
                                },
                                |net, t| net.run_until(t),
                                |net| net.now(),
                            );
                            delivered +=
                                ids.iter().map(|&id| net.delivered_count(id) as u64).sum::<u64>();
                        }
                        _ => {
                            let mut net =
                                SenderBasedNetwork::new(topo, SenderBasedConfig::default(), 7);
                            let mut ids = Vec::new();
                            matrix_drive(
                                &plans,
                                &mut net,
                                |net, plan| {
                                    ids.push(net.multicast_with_plan(&b"matrix"[..], plan));
                                },
                                |net, t| net.run_until(t),
                                |net| net.now(),
                            );
                            delivered +=
                                ids.iter().map(|&id| net.delivered_count(id) as u64).sum::<u64>();
                        }
                    }
                }
            }
        }
        delivered
    })
}

/// One extra shared-engine sweep of the identical matrix with the chaos
/// kit armed — a mid-run loss burst plus low-rate duplication at the
/// network edge, and the liveness watchdog — purely to capture the
/// health signals as columns of the `policy_matrix` entry
/// (`watchdog_rearms`, `faults_dropped`). Deterministic per seed, so the
/// columns only move when the protocol does. Not part of the timing
/// comparison: the legacy stacks have no fault layer or watchdog, so an
/// armed plan would break the delivered-count assert.
fn policy_matrix_chaos_signals() -> (u64, u64) {
    let mut watchdog_rearms = 0u64;
    let mut faults_dropped = 0u64;
    for kind in MATRIX_POLICIES {
        for n in MATRIX_SIZES {
            for loss in MATRIX_LOSS {
                let topo = presets::paper_region(n);
                let plans = matrix_plans(&topo, loss, n as u64 ^ (loss * 100.0) as u64);
                let mut cfg = policy_config(kind);
                // Tight retry caps + a long total unicast blackout: most
                // recoveries exhaust their caps mid-burst and wedge — the
                // state the watchdog exists to re-arm once the burst ends.
                cfg.max_local_attempts = 3;
                cfg.max_remote_attempts = 2;
                cfg.max_search_attempts = 2;
                cfg.watchdog = Some(WatchdogConfig {
                    interval: SimDuration::from_millis(150),
                    horizon: SimDuration::from_millis(300),
                });
                let mut net = RrmpNetwork::new(topo, cfg, 7);
                net.arm_fault_plan(
                    FaultPlan::new(13)
                        .loss_burst(1.0, None, SimTime::from_millis(20), SimTime::from_millis(700))
                        .duplicate(
                            0.05,
                            SimDuration::from_millis(5),
                            SimTime::ZERO,
                            SimTime::from_secs(10),
                        ),
                );
                let mut ids = Vec::new();
                matrix_drive(
                    &plans,
                    &mut net,
                    |net, plan| ids.push(multicast_with_session(net, &b"matrix"[..], plan)),
                    |net, t| net.run_until(t),
                    |net| net.now(),
                );
                faults_dropped += net.net_counters().faults_dropped;
                watchdog_rearms += net
                    .nodes()
                    .map(|(_, n)| n.receiver().metrics().counters.watchdog_rearms)
                    .sum::<u64>();
            }
        }
    }
    (watchdog_rearms, faults_dropped)
}

// ----- workload 10: million-member scaling flagship --------------------------

/// Peak-RSS budget (kB) for the full `members_1m` run: 4 GiB. The compact
/// SoA receiver state plus interval-compressed delivery indexes keep a
/// million mostly-idle members well under this; a regression that
/// reintroduces per-peer or per-source hash maps blows through it.
const MEMBERS_RSS_BUDGET_KB: u64 = 4 * 1024 * 1024;

/// Heterogeneous region-size cycle for the scaling workload: a few large
/// "campus" regions dominating a long tail of small sites — the skew that
/// leaves round-robin placement hostage to which shard drew the big
/// regions, while LPT bin packing spreads them by weight.
const SCALE_REGION_SIZES: [usize; 8] = [4096, 1024, 1024, 256, 64, 64, 64, 64];

/// Builds a `target`-member topology by cycling [`SCALE_REGION_SIZES`]
/// (every region a child of the sender's) until the member budget is
/// spent. Deterministic: same `target`, same topology.
fn members_scale_topology(target: usize) -> Topology {
    let mut builder = rrmp_netsim::topology::TopologyBuilder::new()
        .inter_region_one_way(SimDuration::from_millis(25));
    let mut placed = 0usize;
    let mut i = 0usize;
    while placed < target {
        let size = SCALE_REGION_SIZES[i % SCALE_REGION_SIZES.len()].min(target - placed);
        builder = builder.region(size, if i == 0 { None } else { Some(0) });
        placed += size;
        i += 1;
    }
    builder.build().expect("valid scaling topology")
}

/// One lossy two-message stream over `topo` on the sharded engine with
/// the given region→shard placement. Few messages and a short horizon:
/// the point is state footprint and per-event cost at scale, not repair
/// convergence. Single timed run — at this size construction is part of
/// the cost being measured.
fn members_scale_run(topo: &Topology, shards: usize, placement: ShardPlacement) -> (f64, u64) {
    best_secs(1, || {
        let mut cfg = ProtocolConfig::paper_defaults();
        // The per-node protocol event log is an observability tool; at a
        // million members it would dominate the memory the budget is
        // trying to measure. Turning it off does not change the trace.
        cfg.record_events = false;
        let mut net = RrmpNetwork::with_shards_placement(topo.clone(), cfg, 11, shards, placement);
        net.set_multicast_loss(LossModel::RegionCorrelated { p_region: 0.05, p_member: 0.01 });
        for _ in 0..2 {
            net.multicast(&b"members-scale-payload"[..]);
            let next = net.now() + SimDuration::from_millis(40);
            net.run_until(next);
        }
        net.run_until(net.now() + SimDuration::from_millis(260));
        net.net_counters().events_processed
    })
}

// ----- reporting -------------------------------------------------------------

/// Peak resident set (VmHWM) in kB from /proc — a cheap RSS proxy.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

struct Comparison {
    name: &'static str,
    unit: &'static str,
    optimized_rate: f64,
    reference_rate: f64,
    work: u64,
    /// Extra scalar signal columns rendered ahead of the timing fields
    /// (deterministic per seed — trend data for `bench_guard`, which
    /// ignores everything but the `"speedup"` line).
    extra: Vec<(&'static str, u64)>,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.optimized_rate / self.reference_rate
    }

    fn json(&self) -> String {
        let extra: String =
            self.extra.iter().map(|(k, v)| format!("      \"{k}\": {v},\n")).collect();
        format!(
            "    \"{}\": {{\n{extra}      \"unit\": \"{}\",\n      \"work_items\": {},\n      \"optimized_per_sec\": {:.0},\n      \"reference_per_sec\": {:.0},\n      \"speedup\": {:.3}\n    }}",
            self.name,
            self.unit,
            self.work,
            self.optimized_rate,
            self.reference_rate,
            self.speedup()
        )
    }
}

/// The full differential suite (everything except the scaling flagship,
/// which `main` runs first for a clean peak-RSS delta).
fn run_core_workloads(comparisons: &mut Vec<Comparison>) {
    eprintln!("event_loop: timer/unicast storm, 64 nodes ...");
    let (opt_s, events) = event_loop_workload(true);
    let (ref_s, ref_events) = event_loop_workload(false);
    assert_eq!(events, ref_events, "both modes must process identical event counts");
    comparisons.push(Comparison {
        name: "event_loop",
        unit: "events/sec",
        optimized_rate: events as f64 / opt_s,
        reference_rate: events as f64 / ref_s,
        work: events,
        extra: Vec::new(),
    });

    eprintln!("multicast_fanout: 1 KiB payload to 200 destinations ...");
    let (opt_s, casts) = fanout_workload(true, Bytes::from(vec![0x5Au8; 1024]));
    let (ref_s, ref_casts) = fanout_workload(false, vec![0x5Au8; 1024]);
    assert_eq!(casts, ref_casts);
    comparisons.push(Comparison {
        name: "multicast_fanout",
        unit: "multicasts/sec",
        optimized_rate: casts as f64 / opt_s,
        reference_rate: casts as f64 / ref_s,
        work: casts,
        extra: Vec::new(),
    });

    eprintln!("delivered_query: interval index vs linear scan ...");
    let (opt_rate, ref_rate, queries) = delivered_query_workload();
    comparisons.push(Comparison {
        name: "delivered_query",
        unit: "queries/sec",
        optimized_rate: opt_rate,
        reference_rate: ref_rate,
        work: queries,
        extra: Vec::new(),
    });

    eprintln!("encode_reuse: reused encode buffer vs per-packet allocation ...");
    let (opt_rate, ref_rate, encodes) = encode_reuse_workload();
    comparisons.push(Comparison {
        name: "encode_reuse",
        unit: "encodes/sec",
        optimized_rate: opt_rate,
        reference_rate: ref_rate,
        work: encodes,
        extra: Vec::new(),
    });

    eprintln!("rrmp_e2e: 100-member region, 20-message half-lost stream ...");
    let (opt_s, events) = rrmp_workload(true);
    let (ref_s, ref_events) = rrmp_workload(false);
    assert_eq!(events, ref_events);
    comparisons.push(Comparison {
        name: "rrmp_e2e",
        unit: "events/sec",
        optimized_rate: events as f64 / opt_s,
        reference_rate: events as f64 / ref_s,
        work: events,
        extra: Vec::new(),
    });

    eprintln!("fault_path: rrmp_e2e unarmed vs armed inert fault plan ...");
    let (opt_s, events) = fault_path_workload(false);
    let (ref_s, ref_events) = fault_path_workload(true);
    assert_eq!(events, ref_events, "an inert fault plan must not change the trace");
    comparisons.push(Comparison {
        name: "fault_path",
        unit: "events/sec",
        optimized_rate: events as f64 / opt_s,
        reference_rate: events as f64 / ref_s,
        work: events,
        extra: Vec::new(),
    });

    eprintln!("trace_path: rrmp_e2e unarmed vs armed observer (samplers off) ...");
    let (opt_s, events) = trace_path_workload(false);
    let (ref_s, ref_events) = trace_path_workload(true);
    assert_eq!(events, ref_events, "arming the observer must not change the trace");
    comparisons.push(Comparison {
        name: "trace_path",
        unit: "events/sec",
        optimized_rate: events as f64 / opt_s,
        reference_rate: events as f64 / ref_s,
        work: events,
        extra: Vec::new(),
    });

    eprintln!("overload: 100-member repair storm, damped vs undamped ...");
    let (opt_s, pkts) = overload_workload(true);
    let (ref_s, ref_pkts) = overload_workload(false);
    // Both arms simulate the identical storm to the identical horizon;
    // what damping buys is wire traffic, so the rates are storms per
    // million repair unicasts (deterministic per seed — this entry does
    // not drift with machine noise, only with protocol changes).
    eprintln!(
        "  damped: {pkts} repair unicasts ({opt_s:.3}s); \
         undamped: {ref_pkts} repair unicasts ({ref_s:.3}s)"
    );
    comparisons.push(Comparison {
        name: "overload",
        unit: "storms/Mpkt",
        optimized_rate: 1e6 / pkts as f64,
        reference_rate: 1e6 / ref_pkts as f64,
        work: pkts,
        extra: Vec::new(),
    });

    eprintln!("queue_ops: 32768-pending schedule/pop storm, wheel vs heap ...");
    let (opt_s, ops) = queue_ops_workload::<EventQueue<u64>>();
    let (ref_s, ref_ops) = queue_ops_workload::<ReferenceEventQueue<u64>>();
    assert_eq!(ops, ref_ops, "both queues must do identical work");
    comparisons.push(Comparison {
        name: "queue_ops",
        unit: "ops/sec",
        optimized_rate: ops as f64 / opt_s,
        reference_rate: ops as f64 / ref_s,
        work: ops,
        extra: Vec::new(),
    });

    eprintln!("multi_run_reuse: 12 runs, warm reset vs fresh construction (both optimized) ...");
    let (opt_s, events) = multi_run_reuse_workload(true);
    let (ref_s, ref_events) = multi_run_reuse_workload(false);
    assert_eq!(events, ref_events, "both modes must process identical event counts");
    comparisons.push(Comparison {
        name: "multi_run_reuse",
        unit: "events/sec",
        optimized_rate: events as f64 / opt_s,
        reference_rate: events as f64 / ref_s,
        work: events,
        extra: Vec::new(),
    });

    eprintln!("policy_matrix: policy x group size x loss rate, shared engine vs legacy stacks ...");
    let (opt_s, delivered) = policy_matrix_shared_engine();
    let (ref_s, ref_delivered) = policy_matrix_legacy_stacks();
    assert_eq!(
        delivered, ref_delivered,
        "shared-engine and legacy-stack sweeps must deliver identical message counts"
    );
    eprintln!("  chaos-signal sweep: matrix + loss burst + duplication + watchdog ...");
    let (watchdog_rearms, faults_dropped) = policy_matrix_chaos_signals();
    eprintln!("  watchdog_rearms={watchdog_rearms} faults_dropped={faults_dropped}");
    comparisons.push(Comparison {
        name: "policy_matrix",
        unit: "deliveries/sec",
        optimized_rate: delivered as f64 / opt_s,
        reference_rate: delivered as f64 / ref_s,
        work: delivered,
        extra: vec![("watchdog_rearms", watchdog_rearms), ("faults_dropped", faults_dropped)],
    });

    eprintln!("parallel_regions: 32 regions x 2048 members, shard count sweep ...");
    let mut shard_rates = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let (secs, events) = parallel_regions_run(shards);
        let rate = events as f64 / secs;
        eprintln!("  shards={shards}: {rate:.0} events/sec ({events} events)");
        shard_rates.push((shards, rate, events));
    }
    let (_, seq_rate, seq_events) = shard_rates[0];
    for &(shards, _, events) in &shard_rates[1..] {
        assert_eq!(
            events, seq_events,
            "sharded run at {shards} shards diverged from the sequential oracle"
        );
    }
    let &(_, four_rate, _) =
        shard_rates.iter().find(|&&(s, _, _)| s == 4).expect("4-shard arm runs");
    comparisons.push(Comparison {
        name: "parallel_regions",
        unit: "events/sec",
        optimized_rate: four_rate,
        reference_rate: seq_rate,
        work: seq_events,
        extra: Vec::new(),
    });
}

fn main() {
    let mut out_path = "BENCH_sim_core.json".to_string();
    let mut scale_members: usize = 1_000_000;
    let mut members_only = false;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--members=") {
            scale_members = v.parse().expect("--members takes a positive integer");
            assert!(scale_members > 0, "--members takes a positive integer");
        } else if arg == "--members-only" {
            members_only = true;
        } else {
            out_path = arg;
        }
    }
    // The flagship keeps its headline name only at full size, so a
    // shrunken run (CI smoke) can never overwrite the committed
    // million-member numbers unnoticed — bench_guard reports the renamed
    // workload as missing instead of comparing apples to oranges.
    let scale_name: &'static str =
        if scale_members == 1_000_000 { "members_1m" } else { "members_scale" };
    let mut comparisons = Vec::new();

    // Runs first: VmHWM is a high-water mark, so only with nothing before
    // it does (after - before) approximate this workload's own footprint.
    eprintln!(
        "{scale_name}: {scale_members} members, heterogeneous regions, \
         LPT vs round-robin placement @ 4 shards ..."
    );
    let rss_before = peak_rss_kb();
    let topo = members_scale_topology(scale_members);
    let scale_regions = topo.region_count();
    let (lpt_s, lpt_events) = members_scale_run(&topo, 4, ShardPlacement::LoadAware);
    // The budgeted delta covers the optimized (load-aware) arm only: the
    // round-robin arm exists for the timing ratio and the trace assert,
    // and running it before the measurement would fold the allocator's
    // retained-heap fragmentation from a second full network into the
    // high-water mark.
    let rss_after = peak_rss_kb();
    let rss_delta = rss_after.saturating_sub(rss_before);
    let (rr_s, rr_events) = members_scale_run(&topo, 4, ShardPlacement::RoundRobin);
    assert_eq!(lpt_events, rr_events, "shard placement must not change the trace");
    drop(topo);
    eprintln!(
        "  {scale_regions} regions, {lpt_events} events; LPT {:.0}/s vs round-robin {:.0}/s; \
         peak-RSS delta {rss_delta} kB (budget {MEMBERS_RSS_BUDGET_KB} kB)",
        lpt_events as f64 / lpt_s,
        rr_events as f64 / rr_s,
    );
    comparisons.push(Comparison {
        name: scale_name,
        unit: "events/sec",
        optimized_rate: lpt_events as f64 / lpt_s,
        reference_rate: rr_events as f64 / rr_s,
        work: lpt_events,
        extra: Vec::new(),
    });

    if !members_only {
        run_core_workloads(&mut comparisons);
    }

    let rss = peak_rss_kb();
    let body = comparisons.iter().map(Comparison::json).collect::<Vec<_>>().join(",\n");
    let json = format!(
        "{{\n  \"benchmark\": \"sim_core\",\n  \"description\": \"timing-wheel scheduler + batched regional delivery + zero-allocation event loop vs faithful pre-refactor baselines (identical deterministic workloads)\",\n  \"peak_rss_proxy_kb\": {rss},\n  \"peak_rss_budget_kb\": {MEMBERS_RSS_BUDGET_KB},\n  \"peak_rss_note\": \"the budget applies to members_scale.rss_delta_kb (the workload's own footprint, measured around it); peak_rss_proxy_kb is the whole process including every other workload and is informational only\",\n  \"members_scale\": {{\n    \"members\": {scale_members},\n    \"regions\": {scale_regions},\n    \"rss_before_kb\": {rss_before},\n    \"rss_after_kb\": {rss_after},\n    \"rss_delta_kb\": {rss_delta}\n  }},\n  \"workloads\": {{\n{body}\n  }}\n}}\n"
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));

    println!("{json}");
    for c in &comparisons {
        println!(
            "{:<20} {:>12.0} vs {:>12.0} {}  => {:.2}x",
            c.name,
            c.optimized_rate,
            c.reference_rate,
            c.unit,
            c.speedup()
        );
    }
}
