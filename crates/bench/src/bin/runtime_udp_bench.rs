//! Runtime benchmark for the multiplexed UDP runtime: thousands of
//! group members per process on a handful of event-loop threads.
//!
//! Drives a real multicast + lossy-recovery workload over loopback
//! sockets — one sender, `--members=N` receivers (default 2,000), a
//! slice of which misses every initial multicast and recovers through
//! the protocol — and measures end-to-end **deliveries per second**
//! across three axes:
//!
//! * **loop sweep**: the identical workload on 1, 2, and 4 event-loop
//!   threads (`loop_scaling` reports 4-loop ÷ 1-loop; on a single-core
//!   container this hovers near 1.0x and is checked warn-only in CI);
//! * **pooled vs unpooled receive** (`pooled_receive`): the same 1-loop
//!   workload with the MTU-bucketed buffer pool enabled vs
//!   `pool_limit_bytes = 0` (every datagram allocates fresh);
//! * **pool statistics**: each phase runs a warmup burst first and then
//!   reports the *steady-state* miss rate — acquires that still had to
//!   allocate after warmup — which should sit at ~0.
//!
//! Writes `BENCH_runtime_udp.json` in the `bench_guard`-compatible
//! layout (a `"workloads"` object with per-workload `"speedup"`).
//!
//! ```text
//! cargo run --release -p rrmp-bench --bin runtime_udp_bench -- \
//!     [--members=N] [--out=PATH]
//! ```

use std::net::UdpSocket;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rrmp_core::prelude::ProtocolConfig;
use rrmp_netsim::time::SimDuration;
use rrmp_netsim::topology::{NodeId, RegionId};
use rrmp_udp::{GroupSpec, MemberHandle, PoolSnapshot, RuntimeConfig, UdpRuntime};

/// Messages multicast before measurement starts: fills the buffer pools
/// (every slab the steady state needs gets its one allocating miss here)
/// and lets the protocol reach its session rhythm. Must exceed
/// `MEASURED_MESSAGES` with margin — the measured phase pins one receive
/// slab per (member, in-flight message) until the idle threshold
/// releases it, and steady state means that whole working set was
/// already allocated (and freed back) during warmup.
const WARMUP_MESSAGES: usize = 16;
/// Messages in the measured phase.
const MEASURED_MESSAGES: usize = 12;
/// Pause between warmup and measurement: long enough for the protocol's
/// idle transitions (`IDLE_THRESHOLD_MS`) to release the warmup burst's
/// buffered payloads, unpinning their receive slabs back into the pool —
/// the measured phase then runs against a primed freelist.
const SETTLE: Duration = Duration::from_millis(1_000);
/// Idle threshold handed to the protocol: messages quiet this long are
/// released by every non-bufferer, which is what bounds the pool's
/// working set in steady state. Must satisfy the recovery invariant
/// `session_interval + rtt < idle_threshold` (see `ProtocolConfig`) with
/// real scheduling-latency margin — a lossy member learns what it missed
/// from the next session ad, and its first pull must land while its
/// neighbors still hold the message short-term; otherwise every repair
/// degenerates into a long-term-bufferer search, which grows with region
/// size and collapses throughput.
const IDLE_THRESHOLD_MS: u64 = 400;
/// Per-loop freelist budget floor for the pooled arms; `pool_limit_for`
/// scales it up with the member count so the warmup burst's slabs are
/// never trimmed out of the freelist the measured phase draws from.
const BENCH_POOL_LIMIT: usize = 32 * 1024 * 1024;

/// Freelist budget sized to the phase's working set: one MTU slab per
/// (member, warmup message) plus slack for session/control traffic.
fn pool_limit_for(member_count: usize) -> usize {
    (member_count * (WARMUP_MESSAGES + 4) * 2048).max(BENCH_POOL_LIMIT)
}
/// Fraction of the group that misses every initial multicast and must
/// recover through the protocol.
const LOSSY_FRACTION: usize = 50; // 1/50 = 2%
/// Hard ceiling on any single phase, so a pathological run reports a
/// truncated rate instead of hanging the bench.
const PHASE_DEADLINE: Duration = Duration::from_secs(120);

struct PhaseResult {
    loops: usize,
    pooled: bool,
    deliveries: u64,
    expected: u64,
    elapsed: f64,
    warm: Vec<PoolSnapshot>,
    end: Vec<PoolSnapshot>,
}

impl PhaseResult {
    fn rate(&self) -> f64 {
        self.deliveries as f64 / self.elapsed
    }

    /// Misses per acquire *after* warmup, summed over the phase's loops.
    fn steady_miss_rate(&self) -> f64 {
        let acquires: u64 = self
            .end
            .iter()
            .zip(&self.warm)
            .map(|(e, w)| (e.hits + e.misses) - (w.hits + w.misses))
            .sum();
        let misses: u64 = self.end.iter().zip(&self.warm).map(|(e, w)| e.misses - w.misses).sum();
        if acquires == 0 {
            0.0
        } else {
            misses as f64 / acquires as f64
        }
    }

    /// Whole-phase pool hit rate: hits per acquire across all loops
    /// (warmup included — the lifetime ratio, complementing the
    /// post-warmup `steady_state_miss_rate`). 0 for the unpooled arm.
    fn pool_hit_rate(&self) -> f64 {
        let hits: u64 = self.end.iter().map(|s| s.hits).sum();
        let misses: u64 = self.end.iter().map(|s| s.misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    fn json(&self) -> String {
        let hits: u64 = self.end.iter().map(|s| s.hits).sum();
        let misses: u64 = self.end.iter().map(|s| s.misses).sum();
        let reclaimed: u64 = self.end.iter().map(|s| s.reclaimed).sum();
        let high_water: u64 = self.end.iter().map(|s| s.high_water_bytes).sum();
        format!(
            "    {{\n      \"loops\": {},\n      \"pooled\": {},\n      \"deliveries\": {},\n      \"expected_deliveries\": {},\n      \"elapsed_sec\": {:.3},\n      \"deliveries_per_sec\": {:.0},\n      \"pool_hits\": {hits},\n      \"pool_misses\": {misses},\n      \"pool_reclaimed\": {reclaimed},\n      \"pool_high_water_bytes\": {high_water},\n      \"pool_hit_rate\": {:.4},\n      \"steady_state_miss_rate\": {:.4}\n    }}",
            self.loops,
            self.pooled,
            self.deliveries,
            self.expected,
            self.elapsed,
            self.rate(),
            self.pool_hit_rate(),
            self.steady_miss_rate(),
        )
    }
}

/// Drains every member's delivery channel round-robin until `target`
/// deliveries arrived or `deadline` passed; returns the count.
fn drain_deliveries(members: &[MemberHandle], target: u64, deadline: Instant) -> u64 {
    let mut got = 0u64;
    while got < target && Instant::now() < deadline {
        let mut any = false;
        for m in members {
            while m.try_recv().is_some() {
                got += 1;
                any = true;
            }
        }
        if !any {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    got
}

fn run_phase(member_count: usize, loops: usize, pool_limit: usize) -> PhaseResult {
    let sockets: Vec<UdpSocket> = (0..member_count)
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("bind member socket"))
        .collect();
    let mut spec = GroupSpec::new();
    for (i, s) in sockets.iter().enumerate() {
        spec.add_member(NodeId(i as u32), s.local_addr().expect("addr"), RegionId(0));
    }
    let spec = Arc::new(spec);
    // A relaxed session interval keeps the background session-ad fan-out
    // (sender -> every member, each tick) from dominating a large group;
    // the short idle threshold is what gives the pool a steady state —
    // non-bufferers release a message's payload (and thereby its receive
    // slab) `IDLE_THRESHOLD_MS` after it goes quiet.
    let cfg = ProtocolConfig::builder()
        .session_interval(SimDuration::from_millis(150))
        .idle_threshold(SimDuration::from_millis(IDLE_THRESHOLD_MS))
        .build()
        .expect("valid config");
    let rt = UdpRuntime::start(RuntimeConfig {
        loop_threads: loops,
        pool_limit_bytes: pool_limit,
        delivery_capacity: WARMUP_MESSAGES + MEASURED_MESSAGES + 16,
        trace_ring: None,
    })
    .expect("start runtime");
    let members: Vec<MemberHandle> = sockets
        .into_iter()
        .enumerate()
        .map(|(i, sock)| {
            rt.add_member(sock, Arc::clone(&spec), NodeId(i as u32), cfg.clone(), i == 0, i as u64)
                .expect("add member")
        })
        .collect();

    // A 1/LOSSY_FRACTION slice at the tail misses every initial
    // multicast: the measured rate includes real recovery traffic.
    let dropped = member_count / LOSSY_FRACTION;
    let cutoff = (member_count - dropped) as u32;
    members[0].set_initial_drop(Some(move |n: NodeId| n.0 >= cutoff));

    // Both phases stream flow-controlled: each message is multicast and
    // fully delivered group-wide before the next goes out — an
    // application-paced stream, so the measured rate is real end-to-end
    // capacity (fan-out + recvmmsg + protocol + recovery + delivery),
    // not a drain of pre-queued socket buffers.
    // Per message, the stream waits for every member that got the
    // initial copy; the lossy slice recovers concurrently with later
    // messages (its deliveries are picked up by subsequent drains and a
    // final catch-up), so recovery latency overlaps the stream instead
    // of serializing it.
    let deadline = Instant::now() + PHASE_DEADLINE;
    let stream = |first: usize, count: usize| -> u64 {
        let mut got = 0u64;
        for i in 0..count {
            members[0].multicast(vec![(first + i) as u8; 1024]);
            got += drain_deliveries(&members, (member_count - dropped) as u64, deadline);
        }
        // Catch-up: the recovery stragglers of the burst's tail.
        let expected = (member_count * count) as u64;
        got + drain_deliveries(&members, expected - got.min(expected), deadline)
    };

    // Warmup: populate the pools and the protocol's buffering state,
    // then let idle transitions unpin the warmup payloads.
    let warm_target = (member_count * WARMUP_MESSAGES) as u64;
    let warm_got = stream(0, WARMUP_MESSAGES);
    assert!(
        warm_got >= warm_target * 9 / 10,
        "warmup delivered {warm_got}/{warm_target} — runtime is not keeping up"
    );
    std::thread::sleep(SETTLE);
    let warm = rt.pool_snapshots();

    // Measured phase.
    let start = Instant::now();
    let got = stream(WARMUP_MESSAGES, MEASURED_MESSAGES);
    let elapsed = start.elapsed().as_secs_f64();
    let target = (member_count * MEASURED_MESSAGES) as u64;
    let end = rt.pool_snapshots();

    drop(members);
    rt.shutdown();
    PhaseResult {
        loops,
        pooled: pool_limit > 0,
        deliveries: got,
        expected: target,
        elapsed,
        warm,
        end,
    }
}

fn main() {
    let mut member_count = 2_000usize;
    let mut out_path = String::from("BENCH_runtime_udp.json");
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--members=") {
            member_count = v.parse().expect("--members=N");
        } else if let Some(v) = arg.strip_prefix("--out=") {
            out_path = v.to_string();
        } else {
            panic!("unknown argument {arg} (supported: --members=N, --out=PATH)");
        }
    }
    assert!(member_count >= 100, "--members must be at least 100");

    eprintln!("runtime_udp_bench: {member_count} members, 1 KiB payloads, 2% lossy-recovery");

    let mut sweep = Vec::new();
    for loops in [1usize, 2, 4] {
        eprintln!("  loop sweep: {loops} event-loop thread(s), pooled ...");
        let phase = run_phase(member_count, loops, pool_limit_for(member_count));
        eprintln!(
            "    {:.0} deliveries/sec ({}/{} delivered), steady-state miss rate {:.4}",
            phase.rate(),
            phase.deliveries,
            phase.expected,
            phase.steady_miss_rate()
        );
        sweep.push(phase);
    }
    eprintln!("  unpooled arm: 1 loop, pool disabled ...");
    let unpooled = run_phase(member_count, 1, 0);
    eprintln!(
        "    {:.0} deliveries/sec ({}/{} delivered)",
        unpooled.rate(),
        unpooled.deliveries,
        unpooled.expected
    );

    let pooled_1 = &sweep[0];
    let pooled_4 = &sweep[2];
    let sweep_json = sweep.iter().map(PhaseResult::json).collect::<Vec<_>>().join(",\n");
    let json = format!(
        "{{\n  \"benchmark\": \"runtime_udp\",\n  \"description\": \"multiplexed UDP runtime: N event-loop threads hosting {member_count} group members over poll(2) + recvmmsg with an MTU-bucketed zero-copy buffer pool, end-to-end multicast + lossy-recovery deliveries\",\n  \"members\": {member_count},\n  \"messages_measured\": {MEASURED_MESSAGES},\n  \"payload_bytes\": 1024,\n  \"loop_sweep\": [\n{sweep_json},\n{unpooled}\n  ],\n  \"workloads\": {{\n    \"pooled_receive\": {{\n      \"unit\": \"deliveries/sec\",\n      \"work_items\": {work},\n      \"optimized_per_sec\": {p1:.0},\n      \"reference_per_sec\": {u1:.0},\n      \"speedup\": {ps:.3}\n    }},\n    \"loop_scaling\": {{\n      \"unit\": \"deliveries/sec\",\n      \"work_items\": {work},\n      \"optimized_per_sec\": {p4:.0},\n      \"reference_per_sec\": {p1:.0},\n      \"speedup\": {ls:.3}\n    }}\n  }}\n}}\n",
        unpooled = unpooled.json(),
        work = pooled_1.expected,
        p1 = pooled_1.rate(),
        u1 = unpooled.rate(),
        ps = pooled_1.rate() / unpooled.rate(),
        p4 = pooled_4.rate(),
        ls = pooled_4.rate() / pooled_1.rate(),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");
    eprintln!(
        "pooled_receive {:.3}x, loop_scaling {:.3}x -> {out_path}",
        pooled_1.rate() / unpooled.rate(),
        pooled_4.rate() / pooled_1.rate(),
    );
}
