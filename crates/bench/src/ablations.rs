//! Ablation experiments for the design choices DESIGN.md calls out:
//! buffer-policy comparison (A1), λ sweep (A2), back-off suppression (A3),
//! idle-threshold sweep (A4), churn/handoff (A5), and the C trade-off (A6).

use rand::SeedableRng;
use rrmp_baselines::common::RunReport;
use rrmp_baselines::{
    HashConfig, HashNetwork, StabilityConfig, StabilityNetwork, TreeConfig, TreeNetwork,
};
use rrmp_core::harness::RrmpNetwork;
use rrmp_core::packet::Packet;
use rrmp_core::prelude::{PolicyKind, ProtocolConfig};
use rrmp_netsim::loss::{DeliveryPlan, LossModel};
use rrmp_netsim::stats::OnlineStats;
use rrmp_netsim::time::{SimDuration, SimTime};
use rrmp_netsim::topology::{NodeId, RegionId, Topology, TopologyBuilder};

use crate::figures::run_epidemic;

/// The workload shared by every scheme in the A1 comparison.
#[derive(Debug, Clone)]
pub struct PolicyWorkload {
    /// Region sizes of the three-region chain (Figure 1 shape).
    pub region_sizes: [usize; 3],
    /// Messages multicast.
    pub messages: usize,
    /// Gap between multicasts.
    pub interval: SimDuration,
    /// Per-receiver loss probability on the initial multicast.
    pub loss_p: f64,
    /// How long to run after the last multicast.
    pub drain: SimDuration,
}

impl Default for PolicyWorkload {
    fn default() -> Self {
        PolicyWorkload {
            region_sizes: [34, 33, 33],
            messages: 10,
            interval: SimDuration::from_millis(100),
            loss_p: 0.1,
            drain: SimDuration::from_secs(3),
        }
    }
}

fn chain_topology(sizes: [usize; 3]) -> Topology {
    TopologyBuilder::new()
        .intra_region_one_way(SimDuration::from_millis(5))
        .inter_region_one_way(SimDuration::from_millis(25))
        .region(sizes[0], None)
        .region(sizes[1], Some(0))
        .region(sizes[2], Some(1))
        .build()
        .expect("chain topology is valid")
}

/// Draws the per-message delivery plans once, so every scheme sees the
/// identical loss pattern.
fn draw_plans(topo: &Topology, workload: &PolicyWorkload, seed: u64) -> Vec<DeliveryPlan> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xA1A1);
    let model = LossModel::Bernoulli { p: workload.loss_p };
    (0..workload.messages)
        .map(|_| DeliveryPlan::from_model(topo, NodeId(0), &model, &mut rng))
        .collect()
}

/// Builds a [`RunReport`] from an RRMP network. Canonical implementation
/// in [`rrmp_baselines::ported`], shared with the differential tests.
pub use rrmp_baselines::ported::rrmp_report;

fn run_rrmp_policy(
    scheme: &'static str,
    policy: PolicyKind,
    workload: &PolicyWorkload,
    seed: u64,
) -> RunReport {
    let topo = chain_topology(workload.region_sizes);
    let plans = draw_plans(&topo, workload, seed);
    let cfg = ProtocolConfig::builder().policy(policy).build().expect("valid policy config");
    let mut net = RrmpNetwork::new(topo, cfg, seed);
    let mut ids = Vec::new();
    let mut sent = Vec::new();
    for plan in &plans {
        sent.push(net.now());
        ids.push(net.multicast_with_plan(&b"workload-message"[..], plan));
        let next = net.now() + workload.interval;
        net.run_until(next);
    }
    let horizon = net.now() + workload.drain;
    net.run_until(horizon);
    rrmp_report(scheme, &net, &ids, &sent)
}

/// A1: compares the paper's two-phase scheme against fixed-time,
/// keep-everything, hash-deterministic, stability-detection and tree/RMTP
/// buffering on the identical lossy workload. The hash and sender-based
/// schemes additionally appear **as policies on the shared engine**
/// (`hash-policy`, `sender-policy` rows) — same table, one engine.
#[must_use]
pub fn ablation_buffer_policies(workload: &PolicyWorkload, seed: u64) -> Vec<RunReport> {
    let mut reports = vec![
        run_rrmp_policy("two-phase", PolicyKind::TwoPhase, workload, seed),
        run_rrmp_policy(
            "fixed-500ms",
            PolicyKind::FixedTime { hold: SimDuration::from_millis(500) },
            workload,
            seed,
        ),
        run_rrmp_policy("keep-all", PolicyKind::KeepAll, workload, seed),
        run_rrmp_policy("hash-policy", PolicyKind::HashBufferers, workload, seed),
        run_rrmp_policy("sender-policy", PolicyKind::SenderBased, workload, seed),
    ];

    // Hash-deterministic baseline.
    {
        let topo = chain_topology(workload.region_sizes);
        let plans = draw_plans(&topo, workload, seed);
        let mut net = HashNetwork::new(topo, HashConfig::default(), seed);
        let mut ids = Vec::new();
        for plan in &plans {
            ids.push(net.multicast_with_plan(&b"workload-message"[..], plan));
            let next = net.now() + workload.interval;
            net.run_until(next);
        }
        let horizon = net.now() + workload.drain;
        net.run_until(horizon);
        reports.push(net.report(&ids));
    }

    // Stability-detection baseline.
    {
        let topo = chain_topology(workload.region_sizes);
        let plans = draw_plans(&topo, workload, seed);
        let mut net = StabilityNetwork::new(topo, StabilityConfig::default(), seed);
        let mut ids = Vec::new();
        for plan in &plans {
            ids.push(net.multicast_with_plan(&b"workload-message"[..], plan));
            let next = net.now() + workload.interval;
            net.run_until(next);
        }
        let horizon = net.now() + workload.drain;
        net.run_until(horizon);
        reports.push(net.report(&ids));
    }

    // Tree/RMTP baseline.
    {
        let topo = chain_topology(workload.region_sizes);
        let plans = draw_plans(&topo, workload, seed);
        let mut net = TreeNetwork::new(topo, TreeConfig::default(), seed);
        let mut ids = Vec::new();
        for plan in &plans {
            ids.push(net.multicast_with_plan(&b"workload-message"[..], plan));
            let next = net.now() + workload.interval;
            net.run_until(next);
        }
        let horizon = net.now() + workload.drain;
        net.run_until(horizon);
        reports.push(net.report(&ids));
    }

    reports
}

/// A2 rows: λ vs remote-request duplication and regional recovery latency.
#[derive(Debug, Clone, PartialEq)]
pub struct LambdaRow {
    /// The λ parameter (expected remote requests per regional loss).
    pub lambda: f64,
    /// Mean remote requests actually sent per run.
    pub mean_remote_requests: f64,
    /// Mean time (ms) until the entire lossy region delivered the message.
    pub mean_region_latency_ms: f64,
    /// Mean regional repair multicasts sent (duplicates reaching the region).
    pub mean_regional_multicasts: f64,
}

/// A2: sweeps λ on the Figure 1 chain with a whole-region loss in the leaf
/// region.
#[must_use]
pub fn ablation_lambda(lambdas: &[f64], seeds: u64, base_seed: u64) -> Vec<LambdaRow> {
    lambdas
        .iter()
        .map(|&lambda| {
            let mut req = OnlineStats::new();
            let mut lat = OnlineStats::new();
            let mut mcasts = OnlineStats::new();
            for s in 0..seeds {
                let seed = base_seed ^ ((lambda * 1000.0) as u64) << 20 ^ s;
                let topo = chain_topology([20, 20, 20]);
                let cfg = ProtocolConfig::builder().lambda(lambda).build().expect("valid lambda");
                let mut net = RrmpNetwork::new(topo, cfg, seed);
                let plan = DeliveryPlan::region_loss(net.topology(), RegionId(2));
                let id = net.multicast_with_plan(&b"regional"[..], &plan);
                net.run_until(SimTime::from_secs(3));
                req.push(net.total_counter(|c| c.remote_requests_sent) as f64);
                mcasts.push(net.total_counter(|c| c.regional_multicasts_sent) as f64);
                let region2: Vec<NodeId> = net.topology().members_of(RegionId(2)).to_vec();
                let worst = region2
                    .iter()
                    .filter_map(|&m| {
                        net.node(m).delivered().iter().find(|&&(_, d)| d == id).map(|&(t, _)| t)
                    })
                    .max();
                if let Some(t) = worst {
                    if region2.iter().all(|&m| net.node(m).has_delivered(id)) {
                        lat.push(t.as_millis_f64());
                    }
                }
            }
            LambdaRow {
                lambda,
                mean_remote_requests: req.mean(),
                mean_region_latency_ms: lat.mean(),
                mean_regional_multicasts: mcasts.mean(),
            }
        })
        .collect()
}

/// A3 rows: back-off window vs duplicate regional multicasts.
#[derive(Debug, Clone, PartialEq)]
pub struct BackoffRow {
    /// The back-off window in ms (None = disabled, printed as 0).
    pub window_ms: u64,
    /// Whether back-off was enabled.
    pub enabled: bool,
    /// Mean regional repair multicasts sent.
    pub mean_sent: f64,
    /// Mean multicasts suppressed by the back-off.
    pub mean_suppressed: f64,
    /// Mean time until the lossy region fully delivered (ms).
    pub mean_region_latency_ms: f64,
}

/// A3: with λ = 4 several members fetch remote repairs concurrently; the
/// randomized back-off suppresses the duplicate regional multicasts.
#[must_use]
pub fn ablation_backoff(
    windows: &[Option<SimDuration>],
    seeds: u64,
    base_seed: u64,
) -> Vec<BackoffRow> {
    windows
        .iter()
        .map(|&window| {
            let mut sent = OnlineStats::new();
            let mut supp = OnlineStats::new();
            let mut lat = OnlineStats::new();
            for s in 0..seeds {
                let seed = base_seed ^ window.map_or(0, |w| w.as_micros()) << 16 ^ s;
                let topo = chain_topology([20, 20, 20]);
                let cfg = ProtocolConfig::builder()
                    .lambda(4.0)
                    .backoff_window(window)
                    .build()
                    .expect("valid backoff config");
                let mut net = RrmpNetwork::new(topo, cfg, seed);
                let plan = DeliveryPlan::region_loss(net.topology(), RegionId(2));
                let id = net.multicast_with_plan(&b"dup"[..], &plan);
                net.run_until(SimTime::from_secs(3));
                sent.push(net.total_counter(|c| c.regional_multicasts_sent) as f64);
                supp.push(net.total_counter(|c| c.regional_multicasts_suppressed) as f64);
                let region2: Vec<NodeId> = net.topology().members_of(RegionId(2)).to_vec();
                if region2.iter().all(|&m| net.node(m).has_delivered(id)) {
                    let worst = region2
                        .iter()
                        .filter_map(|&m| {
                            net.node(m).delivered().iter().find(|&&(_, d)| d == id).map(|&(t, _)| t)
                        })
                        .max()
                        .expect("all delivered");
                    lat.push(worst.as_millis_f64());
                }
            }
            BackoffRow {
                window_ms: window.map_or(0, |w| w.as_micros() / 1000),
                enabled: window.is_some(),
                mean_sent: sent.mean(),
                mean_suppressed: supp.mean(),
                mean_region_latency_ms: lat.mean(),
            }
        })
        .collect()
}

/// A4 rows: idle threshold T vs buffering cost and feedback quality.
#[derive(Debug, Clone, PartialEq)]
pub struct IdleThresholdRow {
    /// The idle threshold T in ms.
    pub t_ms: u64,
    /// Mean short-term buffering duration of initial holders (ms).
    pub mean_buffering_ms: f64,
    /// Mean requests that found the responder's buffer already empty.
    pub mean_ignored_requests: f64,
    /// Mean local requests sent per run (retries grow when buffers
    /// discard too early).
    pub mean_requests: f64,
    /// Fraction of runs where all members recovered within the horizon.
    pub recovery_rate: f64,
}

/// A4: sweeps T in the Figure 6 scenario (k initial holders of n).
#[must_use]
pub fn ablation_idle_threshold(
    ts_ms: &[u64],
    n: usize,
    k: usize,
    seeds: u64,
    base_seed: u64,
) -> Vec<IdleThresholdRow> {
    ts_ms
        .iter()
        .map(|&t_ms| {
            let mut buffering = OnlineStats::new();
            let mut ignored = OnlineStats::new();
            let mut requests = OnlineStats::new();
            let mut recovered = 0u64;
            for s in 0..seeds {
                let seed = base_seed ^ (t_ms << 24) ^ s;
                let topo = rrmp_netsim::topology::presets::paper_region(n);
                let cfg = ProtocolConfig::builder()
                    .idle_threshold(SimDuration::from_millis(t_ms))
                    .build()
                    .expect("valid T");
                let mut net = RrmpNetwork::new(topo, cfg, seed);
                let holders: Vec<NodeId> = (0..k as u32).map(NodeId).collect();
                let id = net.seed_message_with_holders(&b"T-sweep"[..], &holders);
                net.run_until(SimTime::from_secs(2));
                for h in &holders {
                    if let Some(d) = net
                        .node(*h)
                        .receiver()
                        .metrics()
                        .buffer_record(id)
                        .and_then(|r| r.short_term_duration())
                    {
                        buffering.push(d.as_millis_f64());
                    }
                }
                let recv_reqs = net.total_counter(|c| c.local_requests_received);
                let answered = net.total_counter(|c| c.repairs_sent_local);
                ignored.push(recv_reqs.saturating_sub(answered) as f64);
                requests.push(net.total_counter(|c| c.local_requests_sent) as f64);
                if net.received_count(id) == n {
                    recovered += 1;
                }
            }
            IdleThresholdRow {
                t_ms,
                mean_buffering_ms: buffering.mean(),
                mean_ignored_requests: ignored.mean(),
                mean_requests: requests.mean(),
                recovery_rate: recovered as f64 / seeds as f64,
            }
        })
        .collect()
}

/// A5 rows: graceful leave (with §3.2 handoff) vs crash.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnRow {
    /// `"leave"` (handoff) or `"crash"`.
    pub mode: &'static str,
    /// Mean long-term copies surviving after the churn event.
    pub mean_copies_after: f64,
    /// Fraction of runs where a later downstream request was satisfied.
    pub recovery_rate: f64,
    /// Mean search time for the satisfied runs (ms).
    pub mean_search_ms: f64,
}

/// A5: all long-term bufferers of a message depart simultaneously; with
/// handoff the copies survive on other members, with crashes they are
/// gone and the downstream request fails.
#[must_use]
pub fn ablation_churn_handoff(seeds: u64, base_seed: u64) -> Vec<ChurnRow> {
    let mut rows = Vec::new();
    for &(mode, graceful) in &[("leave", true), ("crash", false)] {
        let mut copies = OnlineStats::new();
        let mut search = OnlineStats::new();
        let mut recovered = 0u64;
        for s in 0..seeds {
            let seed = base_seed ^ u64::from(graceful) << 40 ^ s;
            let topo = TopologyBuilder::new()
                .intra_region_one_way(SimDuration::from_millis(5))
                .inter_region_one_way(SimDuration::from_millis(25))
                .region(60, None)
                .region(1, Some(0))
                .build()
                .expect("valid churn topology");
            let cfg = ProtocolConfig::paper_defaults();
            let mut net = RrmpNetwork::new(topo, cfg, seed);
            // The origin (node 60) must stay ignorant of the message until
            // we probe: block session advertisements to it so its own
            // remote recovery cannot pre-empt the experiment.
            net.sim_mut().set_drop_filter(|_, to, pkt: &Packet| {
                to == NodeId(60) && matches!(pkt, Packet::Session { .. })
            });
            // Everyone in region 0 receives the message; the origin
            // (node 60) does not and knows nothing of it yet.
            let plan = DeliveryPlan::only(net.topology(), (0..60).map(NodeId));
            let id = net.multicast_with_plan(&b"churn"[..], &plan);
            net.run_until(SimTime::from_millis(300)); // idle transitions done
            let bufferers: Vec<NodeId> = (0..60)
                .map(NodeId)
                .filter(|&m| net.node(m).receiver().store().contains(id))
                .collect();
            for &b in &bufferers {
                if graceful {
                    net.schedule_leave(b, SimTime::from_millis(350));
                } else {
                    net.schedule_crash(b, SimTime::from_millis(350));
                }
            }
            net.run_until(SimTime::from_millis(600));
            let after = (0..60)
                .map(NodeId)
                .filter(|&m| {
                    !net.node(m).receiver().has_left()
                        && net.node(m).receiver().store().contains(id)
                })
                .count();
            copies.push(after as f64);
            // A downstream member now asks for the message, probing a
            // surviving region-0 member.
            let survivors: Vec<NodeId> =
                (0..60).map(NodeId).filter(|&m| !net.node(m).receiver().has_left()).collect();
            let entry = survivors[s as usize % survivors.len()];
            let t0 = SimTime::from_millis(700);
            net.inject_packet(entry, NodeId(60), Packet::RemoteRequest { msg: id }, t0);
            net.run_until(SimTime::from_secs(4));
            if net.node(NodeId(60)).has_delivered(id) {
                recovered += 1;
                if let Some(t) = net.first_remote_repair_at(id) {
                    search.push(t.saturating_since(t0).as_millis_f64());
                }
            }
        }
        rows.push(ChurnRow {
            mode,
            mean_copies_after: copies.mean(),
            recovery_rate: recovered as f64 / seeds as f64,
            mean_search_ms: search.mean(),
        });
    }
    rows
}

/// A6 rows: the C trade-off — buffer copies vs no-bufferer risk vs search
/// latency (paper §3.2's "tradeoff between buffer requirements and
/// recovery latency").
#[derive(Debug, Clone, PartialEq)]
pub struct CTradeoffRow {
    /// C, the expected long-term bufferers.
    pub c: f64,
    /// Mean long-term bufferers measured after a full epidemic.
    pub mean_longterm: f64,
    /// Fraction of runs ending with zero long-term bufferers.
    pub frac_zero: f64,
    /// The analytic `e^{-C}`.
    pub analytic_zero: f64,
    /// Mean search time (ms) with `round(C)` bufferers (from the §3.3
    /// search measurement).
    pub search_ms: f64,
}

/// A6: sweeps C, measuring the realized bufferer count distribution and
/// the matching search latency.
#[must_use]
pub fn ablation_c_tradeoff(cs: &[f64], n: usize, seeds: u64, base_seed: u64) -> Vec<CTradeoffRow> {
    cs.iter()
        .map(|&c| {
            let mut longterm = OnlineStats::new();
            let mut zero_runs = 0u64;
            for s in 0..seeds {
                let seed = base_seed ^ ((c * 100.0) as u64) << 30 ^ s;
                let topo = rrmp_netsim::topology::presets::paper_region(n);
                let cfg = ProtocolConfig::builder().c(c).build().expect("valid C");
                let mut net = RrmpNetwork::new(topo, cfg, seed);
                let plan = DeliveryPlan::all(net.topology());
                let id = net.multicast_with_plan(&b"c-sweep"[..], &plan);
                net.run_until(SimTime::from_millis(500));
                let lt = net.long_term_count(id);
                longterm.push(lt as f64);
                if lt == 0 {
                    zero_runs += 1;
                }
            }
            let j = (c.round() as usize).max(1);
            let search = crate::figures::search_time_point(n, j, seeds.min(40), base_seed ^ 0xC0);
            CTradeoffRow {
                c,
                mean_longterm: longterm.mean(),
                frac_zero: zero_runs as f64 / seeds as f64,
                analytic_zero: rrmp_analysis::models::no_bufferer_probability(c),
                search_ms: search.mean_search_ms,
            }
        })
        .collect()
}

/// Convenience: run the Figure 6/7 epidemic and return the long-term
/// count (used by quick sanity checks in benches).
#[must_use]
pub fn epidemic_longterm_count(n: usize, seed: u64) -> usize {
    let (id, _, net) = run_epidemic(n, 1, seed, SimTime::from_secs(1));
    net.long_term_count(id)
}

/// A7 helper: runs RRMP on an `n`-member region where members
/// `1..=missers` miss the initial multicast, and returns the **busiest**
/// node's recovery-packet load — the quantity that explodes at the sender
/// under sender-based recovery but stays flat under RRMP's randomized
/// load spreading.
#[must_use]
pub fn implosion_point(n: usize, missers: usize, seed: u64) -> u64 {
    let topo = rrmp_netsim::topology::presets::paper_region(n);
    let mut net = RrmpNetwork::new(topo, ProtocolConfig::paper_defaults(), seed);
    let plan = DeliveryPlan::all_but(net.topology(), (1..=missers as u32).map(NodeId));
    net.multicast_with_plan(&b"implode"[..], &plan);
    net.run_until(SimTime::from_secs(2));
    net.nodes().map(|(_, node)| node.recovery_packets_received()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_sweep_monotone_requests() {
        let rows = ablation_lambda(&[0.5, 4.0], 4, 11);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].mean_remote_requests > rows[0].mean_remote_requests,
            "higher lambda sends more remote requests: {rows:?}"
        );
    }

    #[test]
    fn backoff_reduces_duplicates() {
        let rows = ablation_backoff(&[None, Some(SimDuration::from_millis(10))], 5, 22);
        let (off, on) = (&rows[0], &rows[1]);
        assert!(!off.enabled && on.enabled);
        assert!(
            on.mean_sent <= off.mean_sent,
            "backoff should not increase duplicates: off {} on {}",
            off.mean_sent,
            on.mean_sent
        );
        assert!(on.mean_suppressed > 0.0, "some multicasts should be suppressed");
    }

    #[test]
    fn churn_handoff_preserves_copies() {
        let rows = ablation_churn_handoff(4, 33);
        let leave = rows.iter().find(|r| r.mode == "leave").unwrap();
        let crash = rows.iter().find(|r| r.mode == "crash").unwrap();
        assert!(
            leave.mean_copies_after > crash.mean_copies_after,
            "handoff must preserve copies: {rows:?}"
        );
        assert!(crash.mean_copies_after < 0.5, "crash leaves ~no copies");
        assert!(leave.recovery_rate > crash.recovery_rate || leave.recovery_rate == 1.0);
    }

    #[test]
    fn idle_threshold_sweep_shapes() {
        let rows = ablation_idle_threshold(&[10, 80], 60, 6, 3, 44);
        // Larger T buffers longer...
        assert!(rows[1].mean_buffering_ms > rows[0].mean_buffering_ms, "{rows:?}");
        // ...and leaves fewer requests unanswered.
        assert!(rows[1].mean_ignored_requests <= rows[0].mean_ignored_requests, "{rows:?}");
    }

    #[test]
    fn c_tradeoff_tracks_analytics() {
        let rows = ablation_c_tradeoff(&[2.0, 6.0], 100, 12, 55);
        // Measured long-term count grows with C.
        assert!(rows[1].mean_longterm > rows[0].mean_longterm, "{rows:?}");
        // Zero-bufferer risk shrinks with C.
        assert!(rows[1].frac_zero <= rows[0].frac_zero, "{rows:?}");
    }

    #[test]
    fn policy_comparison_all_schemes_deliver() {
        let workload = PolicyWorkload {
            region_sizes: [12, 12, 12],
            messages: 3,
            interval: SimDuration::from_millis(100),
            loss_p: 0.1,
            drain: SimDuration::from_secs(2),
        };
        let reports = ablation_buffer_policies(&workload, 66);
        assert_eq!(reports.len(), 8);
        for r in &reports {
            assert_eq!(
                r.fully_delivered_members, r.members,
                "{} failed to deliver: {r:?}",
                r.scheme
            );
            assert_eq!(r.residual_losses, 0, "{}: {r:?}", r.scheme);
        }
        // Keep-all must cost at least as much buffer×time as two-phase.
        let two_phase = reports.iter().find(|r| r.scheme == "two-phase").unwrap();
        let keep_all = reports.iter().find(|r| r.scheme == "keep-all").unwrap();
        assert!(keep_all.byte_time_total >= two_phase.byte_time_total);
        // Tree concentrates load: its peak(max)/peak(mean) ratio dwarfs
        // two-phase's.
        let tree = reports.iter().find(|r| r.scheme == "tree-rmtp").unwrap();
        assert!(
            tree.peak_entries_max as f64 / tree.peak_entries_mean.max(0.01)
                > two_phase.peak_entries_max as f64 / two_phase.peak_entries_mean.max(0.01)
        );
    }
}
