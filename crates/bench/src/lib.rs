//! # rrmp-bench
//!
//! The experiment harness that regenerates every figure of the paper's
//! evaluation (§4) and the ablation studies listed in `DESIGN.md`. Each
//! `cargo bench` target in `benches/` is a thin printer around the
//! functions here, so the experiment logic itself is unit-tested.
//!
//! | bench target | reproduces |
//! |---|---|
//! | `fig3_longterm_distribution` | Figure 3 (Poisson bufferer counts) |
//! | `fig4_no_bufferer_probability` | Figure 4 (`e^{-C}`) |
//! | `fig6_feedback_buffering` | Figure 6 (buffering time vs holders) |
//! | `fig7_received_vs_buffered` | Figure 7 (received vs buffered series) |
//! | `fig8_search_time_vs_bufferers` | Figure 8 |
//! | `fig9_search_time_vs_region_size` | Figure 9 |
//! | `ablation_*` | design-choice studies A1–A6 |
//! | `micro_core` | Criterion microbenches of the implementation |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablations;
pub mod figures;
