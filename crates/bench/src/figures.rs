//! Reproductions of every figure in the paper's evaluation (§4) plus the
//! analytic figures of §3.2. Each function returns printable rows; the
//! bench targets in `benches/` print them as the paper's series.

use rand::Rng;
use rrmp_analysis::models::{
    bufferer_count_pmf, bufferer_count_pmf_exact, no_bufferer_probability,
    no_bufferer_probability_exact, SearchModel,
};
use rrmp_core::harness::RrmpNetwork;
use rrmp_core::ids::MessageId;
use rrmp_core::packet::Packet;
use rrmp_core::prelude::{PreloadState, ProtocolConfig};
use rrmp_netsim::rng::SeedSequence;
use rrmp_netsim::stats::OnlineStats;
use rrmp_netsim::time::{SimDuration, SimTime};
use rrmp_netsim::topology::{presets, NodeId, TopologyBuilder};

/// Figure 3: probability that `k` members buffer an idle message, for
/// several values of C — analytic Poisson, exact binomial (n = 100), and
/// Monte-Carlo over the actual `C/n` coin the protocol flips.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// C, the expected number of long-term bufferers.
    pub c: f64,
    /// k, the number of bufferers.
    pub k: u64,
    /// Poisson(C) pmf at k (the paper's plotted value).
    pub poisson: f64,
    /// Exact Binomial(n, C/n) pmf at k.
    pub binomial: f64,
    /// Monte-Carlo estimate from simulated retention draws.
    pub monte_carlo: f64,
}

/// Computes Figure 3 for `n`-member regions with `trials` Monte-Carlo
/// draws per C.
#[must_use]
pub fn fig3_rows(cs: &[f64], n: usize, k_max: u64, trials: u64, seed: u64) -> Vec<Fig3Row> {
    let mut rows = Vec::new();
    let seq = SeedSequence::new(seed);
    for (ci, &c) in cs.iter().enumerate() {
        let p = (c / n as f64).min(1.0);
        let mut rng = seq.rng_for(ci as u64);
        let mut histogram = vec![0u64; (n + 1).max(k_max as usize + 1)];
        for _ in 0..trials {
            // Each member independently keeps the idle message with
            // probability C/n — exactly the Receiver's retention draw.
            let kept = (0..n).filter(|_| rng.gen_bool(p)).count();
            histogram[kept] += 1;
        }
        for k in 0..=k_max {
            rows.push(Fig3Row {
                c,
                k,
                poisson: bufferer_count_pmf(c, k),
                binomial: bufferer_count_pmf_exact(n, c, k),
                monte_carlo: histogram[k as usize] as f64 / trials as f64,
            });
        }
    }
    rows
}

/// Figure 4: probability that **no** member buffers an idle message vs C.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// C, the expected number of long-term bufferers.
    pub c: f64,
    /// The paper's `e^{-C}` curve.
    pub poisson: f64,
    /// Exact `(1 - C/n)^n` for the finite region.
    pub exact: f64,
    /// Monte-Carlo estimate.
    pub monte_carlo: f64,
}

/// Computes Figure 4 over `cs` for an `n`-member region.
#[must_use]
pub fn fig4_rows(cs: &[f64], n: usize, trials: u64, seed: u64) -> Vec<Fig4Row> {
    let seq = SeedSequence::new(seed);
    cs.iter()
        .enumerate()
        .map(|(ci, &c)| {
            let p = (c / n as f64).min(1.0);
            let mut rng = seq.rng_for(ci as u64);
            let mut zero = 0u64;
            for _ in 0..trials {
                if !(0..n).any(|_| rng.gen_bool(p)) {
                    zero += 1;
                }
            }
            Fig4Row {
                c,
                poisson: no_bufferer_probability(c),
                exact: no_bufferer_probability_exact(n, c),
                monte_carlo: zero as f64 / trials as f64,
            }
        })
        .collect()
}

/// Figure 6: average short-term buffering time of the members that hold a
/// message initially, vs how many hold it.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Number of members holding the message at t = 0.
    pub initial_holders: usize,
    /// Mean buffering time (ms) of those members across seeds.
    pub mean_buffering_ms: f64,
    /// Sample standard deviation across holders and seeds.
    pub std_dev_ms: f64,
    /// Seeds × holders measured.
    pub samples: u64,
}

/// Runs the Figure 6 experiment: `n`-member region, paper parameters
/// (10 ms RTT, T = 40 ms), `seeds` independent runs per point.
#[must_use]
pub fn fig6_rows(n: usize, holder_counts: &[usize], seeds: u64, base_seed: u64) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    for &k in holder_counts {
        let mut stats = OnlineStats::new();
        for s in 0..seeds {
            let seed = base_seed ^ (k as u64) << 32 | s;
            let (id, holders, net) = run_epidemic(n, k, seed, SimTime::from_secs(2));
            for h in &holders {
                let rec = net
                    .node(*h)
                    .receiver()
                    .metrics()
                    .buffer_record(id)
                    .copied()
                    .unwrap_or_default();
                if let Some(d) = rec.short_term_duration() {
                    stats.push(d.as_millis_f64());
                }
            }
        }
        rows.push(Fig6Row {
            initial_holders: k,
            mean_buffering_ms: stats.mean(),
            std_dev_ms: stats.sample_variance().sqrt(),
            samples: stats.count(),
        });
    }
    rows
}

/// One sample of the Figure 7 time series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// Sample time (ms since the message entered the system).
    pub time_ms: f64,
    /// Members that have received the message (mean over seeds).
    pub received: f64,
    /// Members buffering it in any phase (mean over seeds).
    pub buffered: f64,
    /// Members buffering it short-term (mean over seeds).
    pub buffered_short: f64,
}

/// Runs the Figure 7 experiment: one initial holder in an `n`-member
/// region, sampling both series every `step_ms` until `horizon_ms`.
#[must_use]
pub fn fig7_series(
    n: usize,
    seeds: u64,
    base_seed: u64,
    step_ms: u64,
    horizon_ms: u64,
) -> Vec<Fig7Row> {
    let steps = horizon_ms / step_ms + 1;
    let mut received = vec![0f64; steps as usize];
    let mut buffered = vec![0f64; steps as usize];
    let mut buffered_short = vec![0f64; steps as usize];
    for s in 0..seeds {
        let seed = base_seed ^ 0xF167 ^ s;
        let topo = presets::paper_region(n);
        let mut net = RrmpNetwork::new(topo, ProtocolConfig::paper_defaults(), seed);
        let holder = pick_holders(&mut SeedSequence::new(seed).rng_for(999), n, 1);
        let id = net.seed_message_with_holders(&b"fig7"[..], &holder);
        for (i, slot) in (0..steps).zip(0..) {
            let t = SimTime::from_millis(i * step_ms);
            net.run_until(t);
            received[slot] += net.received_count(id) as f64;
            buffered[slot] += net.buffered_count(id) as f64;
            buffered_short[slot] += net.short_buffered_count(id) as f64;
        }
    }
    (0..steps)
        .map(|i| Fig7Row {
            time_ms: (i * step_ms) as f64,
            received: received[i as usize] / seeds as f64,
            buffered: buffered[i as usize] / seeds as f64,
            buffered_short: buffered_short[i as usize] / seeds as f64,
        })
        .collect()
}

/// Figure 8/9: mean search time for a remote request arriving in a region
/// where `j` of `n` members buffer the message long-term and the rest have
/// discarded it.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRow {
    /// Region size.
    pub n: usize,
    /// Number of bufferers.
    pub bufferers: usize,
    /// Mean measured search time (ms) over seeds.
    pub mean_search_ms: f64,
    /// Sample standard deviation (ms).
    pub std_dev_ms: f64,
    /// The analytic random-probe model's prediction (ms).
    pub model_ms: f64,
    /// Runs in which the search failed within the horizon.
    pub failures: u64,
}

/// Runs one search-time measurement point averaged over `seeds` runs —
/// the engine behind Figures 8 and 9.
#[must_use]
pub fn search_time_point(n: usize, j: usize, seeds: u64, base_seed: u64) -> SearchRow {
    let mut stats = OnlineStats::new();
    let mut failures = 0u64;
    for s in 0..seeds {
        let seed = base_seed ^ ((n as u64) << 40) ^ ((j as u64) << 20) ^ s;
        match run_search_once(n, j, seed) {
            Some(ms) => stats.push(ms),
            None => failures += 1,
        }
    }
    SearchRow {
        n,
        bufferers: j,
        mean_search_ms: stats.mean(),
        std_dev_ms: stats.sample_variance().sqrt(),
        model_ms: SearchModel::paper(n, j).expected_search_time_ms(),
        failures,
    }
}

/// Figure 8: search time vs number of bufferers (region of `n`).
#[must_use]
pub fn fig8_rows(n: usize, j_values: &[usize], seeds: u64, base_seed: u64) -> Vec<SearchRow> {
    j_values.iter().map(|&j| search_time_point(n, j, seeds, base_seed)).collect()
}

/// Figure 9: search time vs region size (fixed `j` bufferers).
#[must_use]
pub fn fig9_rows(ns: &[usize], j: usize, seeds: u64, base_seed: u64) -> Vec<SearchRow> {
    ns.iter().map(|&n| search_time_point(n, j, seeds, base_seed)).collect()
}

// ----- shared machinery ------------------------------------------------------

/// Picks `k` distinct random nodes out of `n`.
fn pick_holders<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<NodeId> {
    let mut all: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    // Partial Fisher-Yates.
    for i in 0..k.min(n) {
        let j = rng.gen_range(i..n);
        all.swap(i, j);
    }
    all.truncate(k);
    all
}

/// Runs the §4 epidemic-recovery scenario: `k` of `n` members hold a
/// message at t = 0, everyone else detects the loss simultaneously.
/// Returns the message id, the holders, and the finished network.
#[must_use]
pub fn run_epidemic(
    n: usize,
    k: usize,
    seed: u64,
    horizon: SimTime,
) -> (MessageId, Vec<NodeId>, RrmpNetwork) {
    let topo = presets::paper_region(n);
    let mut net = RrmpNetwork::new(topo, ProtocolConfig::paper_defaults(), seed);
    let holders = pick_holders(&mut SeedSequence::new(seed).rng_for(999), n, k);
    let id = net.seed_message_with_holders(&b"epidemic"[..], &holders);
    net.run_until(horizon);
    (id, holders, net)
}

/// Runs one §3.3 search: region of `n` (region 0), a one-member
/// downstream region (the origin), `j` random long-term bufferers, and a
/// remote request injected at a random region-0 member at t = 0. Returns
/// the measured search time in ms, or `None` if no repair was sent within
/// the horizon.
#[must_use]
pub fn run_search_once(n: usize, j: usize, seed: u64) -> Option<f64> {
    let topo = TopologyBuilder::new()
        .intra_region_one_way(SimDuration::from_millis(5))
        .inter_region_one_way(SimDuration::from_millis(25))
        .region(n, None)
        .region(1, Some(0))
        .build()
        .expect("two-region search topology is valid");
    let mut net = RrmpNetwork::new(topo, ProtocolConfig::paper_defaults(), seed);
    let id = MessageId::new(NodeId(0), rrmp_core::ids::SeqNo(1));
    let seq = SeedSequence::new(seed ^ 0x5E_A2C4);
    let mut rng = seq.rng_for(1);
    let bufferers = pick_holders(&mut rng, n, j);
    let bufferer_set: std::collections::HashSet<NodeId> = bufferers.iter().copied().collect();
    for i in 0..n as u32 {
        let state = if bufferer_set.contains(&NodeId(i)) {
            PreloadState::LongTerm
        } else {
            PreloadState::ReceivedDiscarded
        };
        net.preload(NodeId(i), id, &b"searched"[..], state);
    }
    let origin = NodeId(n as u32);
    let entry = NodeId(rng.gen_range(0..n as u32));
    net.inject_packet(entry, origin, Packet::RemoteRequest { msg: id }, SimTime::ZERO);
    net.run_until_quiescent(SimTime::from_secs(4));
    net.first_remote_repair_at(id).map(|t| t.as_millis_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_distributions_normalize() {
        let rows = fig3_rows(&[6.0], 100, 20, 20_000, 1);
        let poisson_total: f64 = rows.iter().map(|r| r.poisson).sum();
        let mc_total: f64 = rows.iter().map(|r| r.monte_carlo).sum();
        assert!(poisson_total > 0.99, "poisson {poisson_total}");
        assert!(mc_total > 0.98, "mc {mc_total}");
        // Monte-Carlo tracks the analytic pmf.
        for r in &rows {
            assert!(
                (r.monte_carlo - r.binomial).abs() < 0.02,
                "k={}: mc {} vs binomial {}",
                r.k,
                r.monte_carlo,
                r.binomial
            );
        }
    }

    #[test]
    fn fig4_monte_carlo_tracks_exponential() {
        let rows = fig4_rows(&[1.0, 2.0, 3.0], 100, 50_000, 2);
        for r in &rows {
            assert!((r.monte_carlo - r.exact).abs() < 0.01, "{r:?}");
            assert!((r.poisson - r.exact).abs() < 0.01, "{r:?}");
        }
        // e^{-1} ≈ 36.8%.
        assert!((rows[0].poisson - 0.3679).abs() < 1e-3);
    }

    #[test]
    fn fig6_buffering_decreases_with_more_holders() {
        let rows = fig6_rows(100, &[1, 16, 64], 3, 7);
        assert_eq!(rows.len(), 3);
        // The paper's headline shape: monotone decreasing toward T = 40 ms.
        assert!(
            rows[0].mean_buffering_ms > rows[1].mean_buffering_ms,
            "k=1 {} should buffer longer than k=16 {}",
            rows[0].mean_buffering_ms,
            rows[1].mean_buffering_ms
        );
        assert!(rows[1].mean_buffering_ms > rows[2].mean_buffering_ms);
        // Floor: nobody can idle out before T = 40 ms.
        for r in &rows {
            assert!(r.mean_buffering_ms >= 40.0 - 1e-6, "{r:?}");
        }
        // k=1 should be near the paper's ~100 ms (wide tolerance: this is
        // a different simulator).
        assert!(
            (60.0..160.0).contains(&rows[0].mean_buffering_ms),
            "k=1 mean {}",
            rows[0].mean_buffering_ms
        );
    }

    #[test]
    fn fig7_series_has_paper_shape() {
        // Base seed chosen so both runs complete: with a single initial
        // holder there is a small (~2%) chance per run that no request
        // reaches the holder before the idle threshold and it discards,
        // making the message unrecoverable in a lone region — legitimate
        // protocol behavior, but not the shape this test is about.
        let rows = fig7_series(100, 2, 12, 5, 200);
        // Received is monotone non-decreasing and reaches ~everyone.
        for w in rows.windows(2) {
            assert!(w[1].received >= w[0].received - 1e-9);
        }
        let last = rows.last().unwrap();
        assert!(last.received > 99.0, "received {}", last.received);
        // Short-term buffering collapses by the end.
        assert!(last.buffered_short < 5.0, "short {}", last.buffered_short);
        // Peak buffered is near n while recovery is in flight.
        let peak = rows.iter().map(|r| r.buffered).fold(0.0, f64::max);
        assert!(peak > 90.0, "peak buffered {peak}");
    }

    #[test]
    fn search_time_zero_when_everyone_buffers() {
        let row = search_time_point(20, 20, 5, 3);
        assert_eq!(row.failures, 0);
        assert!(row.mean_search_ms.abs() < 1e-9, "{row:?}");
    }

    #[test]
    fn fig8_search_time_decreases_with_bufferers() {
        let rows = fig8_rows(100, &[1, 10], 15, 5);
        assert!(rows.iter().all(|r| r.failures == 0), "{rows:?}");
        assert!(
            rows[0].mean_search_ms > rows[1].mean_search_ms,
            "j=1 {} vs j=10 {}",
            rows[0].mean_search_ms,
            rows[1].mean_search_ms
        );
        // Magnitudes in the paper's band (j=1 ≈ 45 ms, j=10 ≈ 20 ms).
        assert!((15.0..90.0).contains(&rows[0].mean_search_ms), "{rows:?}");
        assert!((2.0..40.0).contains(&rows[1].mean_search_ms), "{rows:?}");
    }

    #[test]
    fn fig9_search_time_grows_sublinearly() {
        let rows = fig9_rows(&[100, 400], 10, 15, 6);
        assert!(rows.iter().all(|r| r.failures == 0));
        let ratio = rows[1].mean_search_ms / rows[0].mean_search_ms;
        assert!(
            ratio > 1.0 && ratio < 4.0,
            "4x region should raise search time sublinearly, ratio {ratio}"
        );
    }

    #[test]
    fn pick_holders_distinct() {
        let mut rng = SeedSequence::new(1).rng_for(0);
        let holders = pick_holders(&mut rng, 50, 10);
        let set: std::collections::HashSet<NodeId> = holders.iter().copied().collect();
        assert_eq!(set.len(), 10);
    }
}
