//! A5: voluntary leave with §3.2 buffer handoff vs crash — does the
//! handoff keep messages recoverable after every bufferer departs?

use rrmp_bench::ablations::ablation_churn_handoff;

fn main() {
    let seeds = 20;
    println!("# A5 — churn: leave-with-handoff vs crash (all bufferers depart; {seeds} seeds)");
    println!("{:>7} {:>14} {:>14} {:>12}", "mode", "copies after", "recovery rate", "search ms");
    for row in ablation_churn_handoff(seeds, 0xA5) {
        println!(
            "{:>7} {:>14.1} {:>14.2} {:>12.1}",
            row.mode, row.mean_copies_after, row.recovery_rate, row.mean_search_ms
        );
    }
    println!("# Expect: handoff preserves ~all copies and downstream recovery; crash loses both.");
}
