//! A3: randomized back-off suppression of duplicate regional repair
//! multicasts (§2.2 / [14]), stressed with λ = 4.

use rrmp_bench::ablations::ablation_backoff;
use rrmp_netsim::time::SimDuration;

fn main() {
    let seeds = 20;
    println!("# A3 — regional-repair back-off (lambda = 4, {seeds} seeds)");
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>12}",
        "window ms", "enabled", "mcasts", "suppressed", "latency ms"
    );
    let windows = [
        None,
        Some(SimDuration::from_millis(5)),
        Some(SimDuration::from_millis(10)),
        Some(SimDuration::from_millis(20)),
    ];
    for row in ablation_backoff(&windows, seeds, 0xA3) {
        println!(
            "{:>10} {:>8} {:>12.2} {:>12.2} {:>12.1}",
            row.window_ms,
            row.enabled,
            row.mean_sent,
            row.mean_suppressed,
            row.mean_region_latency_ms
        );
    }
    println!("# Expect: suppression trades duplicate multicasts for a little latency.");
}
