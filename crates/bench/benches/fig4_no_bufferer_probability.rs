//! Figure 4: the probability that no member buffers an idle message
//! decreases exponentially with C (e^{-C}; 0.25% at C = 6).

use rrmp_bench::figures::fig4_rows;

fn main() {
    let n = 100;
    let trials = 400_000;
    println!("# Figure 4 — P[no long-term bufferer] vs C  (n = {n}, {trials} MC trials)");
    println!("{:>4} {:>12} {:>12} {:>12}", "C", "e^-C %", "exact %", "montecarlo %");
    for row in fig4_rows(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], n, trials, 0xF164) {
        println!(
            "{:>4} {:>12.4} {:>12.4} {:>12.4}",
            row.c,
            row.poisson * 100.0,
            row.exact * 100.0,
            row.monte_carlo * 100.0
        );
    }
    println!("# Paper check: \"When C = 6 ... the probability is only 0.25%\" (§3.2).");
}
