//! Criterion microbenchmarks of the implementation's hot paths: the
//! packet codec, the two-phase store, the interval set, the event queue,
//! and an end-to-end simulated region recovery.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rrmp_baselines::designated_bufferers;
use rrmp_core::buffer::MessageStore;
use rrmp_core::harness::RrmpNetwork;
use rrmp_core::ids::{MessageId, SeqNo};
use rrmp_core::interval_set::IntervalSet;
use rrmp_core::packet::{DataPacket, Packet};
use rrmp_core::prelude::ProtocolConfig;
use rrmp_netsim::event::EventQueue;
use rrmp_netsim::loss::DeliveryPlan;
use rrmp_netsim::time::SimTime;
use rrmp_netsim::topology::{presets, NodeId};

fn mid(seq: u64) -> MessageId {
    MessageId::new(NodeId(0), SeqNo(seq))
}

fn bench_codec(c: &mut Criterion) {
    let packet = Packet::Data(DataPacket::new(mid(42), Bytes::from(vec![7u8; 256])));
    c.bench_function("codec/encode_data_256B", |b| b.iter(|| black_box(packet.encode())));
    let encoded = packet.encode();
    c.bench_function("codec/decode_data_256B", |b| {
        b.iter(|| black_box(Packet::decode(encoded.clone()).unwrap()))
    });
}

fn bench_store(c: &mut Criterion) {
    c.bench_function("store/insert_promote_discard_1k", |b| {
        b.iter(|| {
            let mut store = MessageStore::new();
            let payload = Bytes::from_static(b"payload-payload-payload");
            for i in 0..1000u64 {
                store.insert_short(mid(i), payload.clone(), SimTime::from_micros(i));
            }
            for i in 0..1000u64 {
                store.promote_to_long(mid(i), SimTime::from_micros(2000 + i));
            }
            for i in 0..1000u64 {
                store.discard(mid(i), SimTime::from_micros(4000 + i));
            }
            black_box(store.len())
        })
    });
}

fn bench_interval_set(c: &mut Criterion) {
    c.bench_function("interval_set/insert_10k_with_gaps", |b| {
        b.iter(|| {
            let mut set = IntervalSet::new();
            for i in 0..10_000u64 {
                // Every 97th value skipped: keeps fragmentation realistic.
                if i % 97 != 0 {
                    set.insert(i);
                }
            }
            black_box(set.interval_count())
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/wheel_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_micros(i * 7919 % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    c.bench_function("event_queue/reference_heap_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = rrmp_netsim::event::ReferenceEventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_micros(i * 7919 % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

fn bench_hash_selection(c: &mut Criterion) {
    let members: Vec<NodeId> = (0..1000).map(NodeId).collect();
    c.bench_function("baseline/hash_select_6_of_1000", |b| {
        b.iter(|| black_box(designated_bufferers(&members, mid(9), 6)))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    c.bench_function("e2e/region100_half_loss_recovery", |b| {
        b.iter(|| {
            let topo = presets::paper_region(100);
            let mut net = RrmpNetwork::new(topo, ProtocolConfig::paper_defaults(), 7);
            let plan = DeliveryPlan::only(net.topology(), (0..50).map(NodeId));
            let id = net.multicast_with_plan(&b"bench"[..], &plan);
            net.run_until(SimTime::from_millis(300));
            assert_eq!(net.received_count(id), 100);
            black_box(net.net_counters().events_processed)
        })
    });
}

criterion_group!(
    benches,
    bench_codec,
    bench_store,
    bench_interval_set,
    bench_event_queue,
    bench_hash_selection,
    bench_end_to_end
);
criterion_main!(benches);
