//! A2: λ sweep — remote-request duplication vs regional recovery latency
//! (§2.2: expected λ remote requests per region-wide loss).

use rrmp_bench::ablations::ablation_lambda;

fn main() {
    let seeds = 20;
    println!("# A2 — lambda sweep (whole leaf region misses; {seeds} seeds)");
    println!(
        "{:>8} {:>16} {:>16} {:>18}",
        "lambda", "remote reqs", "latency ms", "regional mcasts"
    );
    for row in ablation_lambda(&[0.25, 0.5, 1.0, 2.0, 4.0, 8.0], seeds, 0xA2) {
        println!(
            "{:>8} {:>16.1} {:>16.1} {:>18.1}",
            row.lambda,
            row.mean_remote_requests,
            row.mean_region_latency_ms,
            row.mean_regional_multicasts
        );
    }
    println!("# Expect: larger lambda lowers latency but multiplies duplicate remote traffic.");
}
