//! Figure 9: search time vs region size with 10 bufferers (paper: a 10x
//! region-size increase raises search time only ~2.2x).

use rrmp_bench::figures::fig9_rows;

fn main() {
    let seeds = 100;
    println!("# Figure 9 — search time vs region size  (10 bufferers, {seeds} seeds)");
    println!(
        "{:>8} {:>14} {:>10} {:>10} {:>9}",
        "n", "search ms", "stddev", "model ms", "failures"
    );
    let ns = [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];
    let rows = fig9_rows(&ns, 10, seeds, 0xF169);
    for row in &rows {
        println!(
            "{:>8} {:>14.1} {:>10.1} {:>10.1} {:>9}",
            row.n, row.mean_search_ms, row.std_dev_ms, row.model_ms, row.failures
        );
    }
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        println!(
            "# growth factor over 10x region size: {:.2}x (paper: ~2.2x)",
            last.mean_search_ms / first.mean_search_ms
        );
    }
}
