//! A7: message implosion — the paper's §1 motivation for distributed
//! error recovery. With sender-based recovery, every NACK and every
//! repair concentrates on one node; RRMP spreads recovery across the
//! group. We sweep the number of simultaneous missers and report the
//! busiest node's packet load under both schemes.

use rrmp_baselines::{SenderBasedConfig, SenderBasedNetwork};
use rrmp_bench::ablations::implosion_point;
use rrmp_core::prelude::ProtocolConfig;
use rrmp_netsim::loss::DeliveryPlan;
use rrmp_netsim::time::SimTime;
use rrmp_netsim::topology::{presets, NodeId};

fn main() {
    let n = 100;
    let seeds = 10;
    println!("# A7 — message implosion: sender-based recovery vs RRMP (n = {n}, {seeds} seeds)");
    println!(
        "{:>9} {:>22} {:>22} {:>12}",
        "#missers", "sender-based hotspot", "rrmp busiest node", "ratio"
    );
    for &missers in &[10usize, 25, 50, 75, 99] {
        let mut hotspot = 0.0f64;
        let mut rrmp_max = 0.0f64;
        for s in 0..seeds {
            // Sender-based: all recovery traffic lands on node 0.
            let topo = presets::paper_region(n);
            let mut sb = SenderBasedNetwork::new(topo, SenderBasedConfig::default(), s);
            let plan = DeliveryPlan::all_but(sb.topology(), (1..=missers as u32).map(NodeId));
            sb.multicast_with_plan(&b"implode"[..], &plan);
            sb.run_until(SimTime::from_secs(2));
            hotspot += sb.sender_load() as f64;

            rrmp_max += implosion_point(n, missers, s) as f64;
        }
        hotspot /= seeds as f64;
        rrmp_max /= seeds as f64;
        println!(
            "{:>9} {:>22.1} {:>22.1} {:>12.1}",
            missers,
            hotspot,
            rrmp_max,
            hotspot / rrmp_max.max(1.0)
        );
    }
    println!("# Expect: the sender-based hotspot grows with the misser count; RRMP's busiest");
    println!("# node stays near the per-member average (the load-spreading claim of §6).");
    let _ = ProtocolConfig::paper_defaults();
}
