//! A1: two-phase buffering vs fixed-time, keep-all, hash-deterministic,
//! stability-detection and tree/RMTP on an identical lossy workload.

use rrmp_baselines::common::RunReport;
use rrmp_bench::ablations::{ablation_buffer_policies, PolicyWorkload};

fn main() {
    let workload = PolicyWorkload::default();
    println!(
        "# A1 — buffer-policy comparison ({} msgs, {:.0}% loss, 3 regions of {:?})",
        workload.messages,
        workload.loss_p * 100.0,
        workload.region_sizes
    );
    println!("{}", RunReport::table_header());
    for report in ablation_buffer_policies(&workload, 0xA1) {
        println!("{}", report.table_row());
    }
    println!("# Expect: two-phase ≪ keep-all/stability in byte·ms; tree concentrates peak(max);");
    println!("# stability pays standing history traffic (pkts) even where losses are few.");
}
