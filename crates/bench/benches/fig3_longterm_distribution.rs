//! Figure 3: the probability that k members buffer an idle message, for
//! C ∈ {5, 6, 7, 8} — analytic Poisson(C) (the paper's plot), the exact
//! Binomial(n, C/n), and Monte-Carlo over the protocol's retention draw.

use rrmp_bench::figures::fig3_rows;

fn main() {
    let n = 100;
    let trials = 200_000;
    println!("# Figure 3 — P[k members buffer an idle message]  (n = {n}, {trials} MC trials)");
    println!("{:>4} {:>4} {:>12} {:>12} {:>12}", "C", "k", "poisson%", "binomial%", "montecarlo%");
    for row in fig3_rows(&[5.0, 6.0, 7.0, 8.0], n, 20, trials, 0xF163) {
        println!(
            "{:>4} {:>4} {:>12.3} {:>12.3} {:>12.3}",
            row.c,
            row.k,
            row.poisson * 100.0,
            row.binomial * 100.0,
            row.monte_carlo * 100.0
        );
    }
    println!("# Paper check: distributions peak near k = C (Fig. 3).");
}
