//! A4: idle-threshold (T) sweep — §3.1's confidence/buffering trade-off.

use rrmp_bench::ablations::ablation_idle_threshold;

fn main() {
    let seeds = 10;
    println!("# A4 — idle threshold sweep (n = 100, 8 initial holders, {seeds} seeds)");
    println!(
        "{:>7} {:>14} {:>16} {:>12} {:>9}",
        "T ms", "buffering ms", "ignored reqs", "local reqs", "recovery"
    );
    for row in ablation_idle_threshold(&[10, 20, 40, 80, 160], 100, 8, seeds, 0xA4) {
        println!(
            "{:>7} {:>14.1} {:>16.1} {:>12.1} {:>9.2}",
            row.t_ms,
            row.mean_buffering_ms,
            row.mean_ignored_requests,
            row.mean_requests,
            row.recovery_rate
        );
    }
    println!(
        "# Expect: small T discards too early (ignored requests, retries); large T buffers longer."
    );
}
