//! Figure 8: search time for a remote request vs the number of bufferers
//! in a 100-member region (paper: ~45 ms at 1 bufferer, ~20 ms at 10;
//! 100 random seeds averaged).

use rrmp_bench::figures::fig8_rows;

fn main() {
    let seeds = 100;
    println!("# Figure 8 — search time vs #bufferers  (n = 100, {seeds} seeds)");
    println!(
        "{:>10} {:>14} {:>10} {:>10} {:>9}",
        "#bufferers", "search ms", "stddev", "model ms", "failures"
    );
    for row in fig8_rows(100, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], seeds, 0xF168) {
        println!(
            "{:>10} {:>14.1} {:>10.1} {:>10.1} {:>9}",
            row.bufferers, row.mean_search_ms, row.std_dev_ms, row.model_ms, row.failures
        );
    }
    println!("# Paper check: decreasing curve, ~2x RTT at 10 bufferers (Fig. 8).");
}
