//! Figure 7: #members that received vs #members that buffer a message as
//! error recovery proceeds (1 initial holder, region of 100). Short-term
//! bufferers collapse once ~96% have received; the long-term tail ≈ C.

use rrmp_bench::figures::fig7_series;

fn main() {
    let seeds = 20;
    println!(
        "# Figure 7 — #received vs #buffered over time  (n = 100, 1 initial holder, {seeds} seeds)"
    );
    println!("{:>8} {:>10} {:>10} {:>12}", "t (ms)", "#received", "#buffered", "#short-term");
    for row in fig7_series(100, seeds, 0xF167, 5, 200) {
        println!(
            "{:>8.0} {:>10.1} {:>10.1} {:>12.1}",
            row.time_ms, row.received, row.buffered, row.buffered_short
        );
    }
    println!("# Paper check: buffered tracks received, then collapses after ~96% receive;");
    println!("# the residual tail is the expected C = 6 long-term bufferers.");
}
