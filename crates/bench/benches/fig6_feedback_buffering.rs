//! Figure 6: average buffering time of the members holding a message
//! initially vs how many hold it (region of 100, RTT 10 ms, T = 40 ms;
//! log-scale y in the paper, decreasing from ~100+ ms toward the T floor).

use rrmp_bench::figures::fig6_rows;

fn main() {
    let seeds = 30;
    println!(
        "# Figure 6 — feedback-based short-term buffering  (n = 100, T = 40 ms, {seeds} seeds)"
    );
    println!("{:>9} {:>16} {:>10} {:>8}", "#holders", "avg buffering ms", "stddev ms", "samples");
    for row in fig6_rows(100, &[1, 2, 4, 8, 16, 32, 64], seeds, 0xF166) {
        println!(
            "{:>9} {:>16.1} {:>10.1} {:>8}",
            row.initial_holders, row.mean_buffering_ms, row.std_dev_ms, row.samples
        );
    }
    println!("# Paper check: monotone decrease toward the T = 40 ms floor (Fig. 6, log y-axis).");
}
