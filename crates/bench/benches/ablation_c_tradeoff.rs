//! A6: the C trade-off (§3.2) — buffer copies vs e^{-C} no-bufferer risk
//! vs search latency.

use rrmp_bench::ablations::ablation_c_tradeoff;

fn main() {
    let seeds = 60;
    println!("# A6 — C trade-off (n = 100, {seeds} seeds)");
    println!(
        "{:>4} {:>14} {:>12} {:>12} {:>12}",
        "C", "longterm mean", "frac zero", "e^-C", "search ms"
    );
    for row in ablation_c_tradeoff(&[1.0, 2.0, 3.0, 4.0, 6.0, 8.0], 100, seeds, 0xA6) {
        println!(
            "{:>4} {:>14.2} {:>12.3} {:>12.3} {:>12.1}",
            row.c, row.mean_longterm, row.frac_zero, row.analytic_zero, row.search_ms
        );
    }
    println!("# Expect: measured bufferers ≈ C; zero-bufferer risk tracks e^-C; search time falls with C.");
}
