//! Tree-based repair-server buffering (RMTP-style: Paul et al., JSAC '97)
//! — the designated-repair-server design the paper's §1 and §6 argue
//! against: "a repair server bears the entire burden of buffering messages
//! for a local region".
//!
//! Each region designates one member as its *repair server*. The server
//! buffers **every** message of the session; ordinary receivers buffer
//! nothing. A receiver that detects a loss NACKs its repair server; a
//! server missing the message NACKs the repair server of its parent
//! region. The comparison experiment shows the resulting load
//! concentration (one member's buffer grows with the session) against
//! RRMP's spread-out long-term buffering.

use std::collections::{BTreeSet, HashMap};

use bytes::Bytes;
use rrmp_core::buffer::MessageStore;
use rrmp_core::ids::{MessageId, SeqNo};
use rrmp_core::loss::LossDetector;
use rrmp_core::packet::DataPacket;
use rrmp_netsim::loss::DeliveryPlan;
use rrmp_netsim::sim::{Ctx, Sim, SimNode};
use rrmp_netsim::time::{SimDuration, SimTime};
use rrmp_netsim::topology::{NodeId, Topology};

use crate::common::{mean_latency_ms, RunReport};

/// Wire messages of the tree baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreePacket {
    /// Initial multicast data.
    Data(DataPacket),
    /// Session advertisement from the sender.
    Session {
        /// The sender.
        source: NodeId,
        /// Highest sequence multicast.
        high: SeqNo,
    },
    /// Negative acknowledgment sent up the repair tree.
    Nack {
        /// The missing message.
        msg: MessageId,
    },
    /// Retransmission answer from a repair server.
    Repair(DataPacket),
}

/// Configuration of the tree baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeConfig {
    /// NACK retry timeout toward the own repair server.
    pub nack_timeout: SimDuration,
    /// NACK retry timeout toward the parent repair server.
    pub parent_nack_timeout: SimDuration,
    /// Retry cap.
    pub max_attempts: u32,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            nack_timeout: SimDuration::from_millis(10),
            parent_nack_timeout: SimDuration::from_millis(60),
            max_attempts: 200,
        }
    }
}

/// One member of the tree baseline.
#[derive(Debug)]
pub struct TreeNode {
    id: NodeId,
    /// This region's repair server.
    repair_server: NodeId,
    /// The parent region's repair server (None at the root).
    parent_server: Option<NodeId>,
    cfg: TreeConfig,
    detector: LossDetector,
    store: MessageStore,
    delivered: Vec<(SimTime, MessageId)>,
    waiters: HashMap<MessageId, BTreeSet<NodeId>>,
    attempts: HashMap<MessageId, u32>,
    pending_timers: HashMap<u64, MessageId>,
    next_token: u64,
}

impl TreeNode {
    /// Creates a member with its repair-tree coordinates.
    #[must_use]
    pub fn new(
        id: NodeId,
        repair_server: NodeId,
        parent_server: Option<NodeId>,
        cfg: TreeConfig,
    ) -> Self {
        TreeNode {
            id,
            repair_server,
            parent_server,
            cfg,
            detector: LossDetector::new(),
            store: MessageStore::new(),
            delivered: Vec::new(),
            waiters: HashMap::new(),
            attempts: HashMap::new(),
            pending_timers: HashMap::new(),
            next_token: 0,
        }
    }

    /// Whether this member is its region's repair server.
    #[must_use]
    pub fn is_server(&self) -> bool {
        self.repair_server == self.id
    }

    /// Messages delivered here.
    #[must_use]
    pub fn delivered(&self) -> &[(SimTime, MessageId)] {
        &self.delivered
    }

    /// Whether `id` was delivered here.
    #[must_use]
    pub fn has_delivered(&self, id: MessageId) -> bool {
        self.delivered.iter().any(|&(_, d)| d == id)
    }

    /// The message store.
    #[must_use]
    pub fn store(&self) -> &MessageStore {
        &self.store
    }

    fn nack_target(&self) -> Option<NodeId> {
        if self.is_server() {
            self.parent_server
        } else {
            Some(self.repair_server)
        }
    }

    fn send_nack(&mut self, ctx: &mut Ctx<'_, TreePacket>, msg: MessageId) {
        let attempts = self.attempts.entry(msg).or_insert(0);
        *attempts += 1;
        if *attempts > self.cfg.max_attempts {
            return;
        }
        let Some(target) = self.nack_target() else { return };
        ctx.send(target, TreePacket::Nack { msg });
        let timeout =
            if self.is_server() { self.cfg.parent_nack_timeout } else { self.cfg.nack_timeout };
        let token = self.next_token;
        self.next_token += 1;
        self.pending_timers.insert(token, msg);
        ctx.set_timer(timeout, token);
    }

    fn on_data_like(&mut self, ctx: &mut Ctx<'_, TreePacket>, data: DataPacket) {
        let outcome = self.detector.on_data(data.id);
        if outcome.newly_received {
            self.delivered.push((ctx.now(), data.id));
            self.attempts.remove(&data.id);
            if self.is_server() {
                // The repair server buffers the whole session (the RMTP
                // file-transfer model).
                self.store.insert_long(data.id, data.payload.clone(), ctx.now());
            }
            for m in outcome.newly_missing {
                self.send_nack(ctx, m);
            }
        }
        // Serve any receivers waiting on this message.
        if let Some(waiters) = self.waiters.remove(&data.id) {
            for w in waiters {
                ctx.send(w, TreePacket::Repair(data.clone()));
            }
        }
    }
}

impl SimNode for TreeNode {
    type Msg = TreePacket;

    fn on_packet(&mut self, ctx: &mut Ctx<'_, TreePacket>, from: NodeId, msg: TreePacket) {
        match msg {
            TreePacket::Data(d) | TreePacket::Repair(d) => self.on_data_like(ctx, d),
            TreePacket::Session { source, high } => {
                for m in self.detector.on_session(source, high) {
                    self.send_nack(ctx, m);
                }
            }
            TreePacket::Nack { msg } => {
                if let Some(payload) = self.store.get(msg) {
                    self.store.note_use(msg, ctx.now());
                    ctx.send(from, TreePacket::Repair(DataPacket::new(msg, payload)));
                } else {
                    // The server misses it too: remember the waiter and
                    // recover through the parent server.
                    self.waiters.entry(msg).or_default().insert(from);
                    for m in self.detector.on_hint(msg) {
                        self.send_nack(ctx, m);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, TreePacket>, token: u64) {
        if let Some(msg) = self.pending_timers.remove(&token) {
            if self.detector.is_missing(msg) {
                self.send_nack(ctx, msg);
            }
        }
    }
}

/// A simulated group running the tree/RMTP baseline. The repair server of
/// each region is its lowest-id member; the repair tree follows the
/// topology's region hierarchy.
#[derive(Debug)]
pub struct TreeNetwork {
    sim: Sim<TreeNode>,
    sender: NodeId,
    next_seq: SeqNo,
    sent_at: HashMap<MessageId, SimTime>,
}

impl TreeNetwork {
    /// Builds the group over `topo` with node 0 as sender.
    ///
    /// # Panics
    ///
    /// Panics if any region is empty (validated topologies never are).
    #[must_use]
    pub fn new(topo: Topology, cfg: TreeConfig, seed: u64) -> Self {
        let server_of = |r: rrmp_netsim::topology::RegionId| topo.members_of(r)[0];
        let nodes = topo
            .nodes()
            .map(|id| {
                let region = topo.region_of(id);
                let repair_server = server_of(region);
                let parent_server = topo.parent_of(region).map(server_of);
                TreeNode::new(id, repair_server, parent_server, cfg.clone())
            })
            .collect();
        let sim = Sim::new(topo, nodes, seed);
        TreeNetwork { sim, sender: NodeId(0), next_seq: SeqNo::FIRST, sent_at: HashMap::new() }
    }

    /// The simulated topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.sim.topology()
    }

    /// Multicasts with an explicit plan (session advertised to missers).
    pub fn multicast_with_plan(
        &mut self,
        payload: impl Into<Bytes>,
        plan: &DeliveryPlan,
    ) -> MessageId {
        let id = MessageId::new(self.sender, self.next_seq);
        self.next_seq = self.next_seq.next();
        let now = self.sim.now();
        self.sent_at.insert(id, now);
        let data = TreePacket::Data(DataPacket::new(id, payload.into()));
        self.sim.inject(self.sender, self.sender, data.clone(), now);
        let mut without_sender = plan.clone();
        without_sender.set_receives(self.sender, false);
        self.sim.inject_multicast_plan(self.sender, &data, &without_sender, now);
        let session = TreePacket::Session { source: self.sender, high: id.seq };
        for n in self.sim.topology().nodes().collect::<Vec<_>>() {
            if !plan.receives(n) && n != self.sender {
                self.sim.inject(n, self.sender, session.clone(), now);
            }
        }
        id
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Runs until `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Number of members that delivered `id`.
    #[must_use]
    pub fn delivered_count(&self, id: MessageId) -> usize {
        self.sim.nodes().filter(|(_, n)| n.has_delivered(id)).count()
    }

    /// Access to one node.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &TreeNode {
        self.sim.node(id)
    }

    /// Builds the comparison report over `ids`.
    #[must_use]
    pub fn report(&self, ids: &[MessageId]) -> RunReport {
        let now = self.sim.now();
        let members = self.sim.topology().node_count();
        let fully =
            self.sim.nodes().filter(|(_, n)| ids.iter().all(|&m| n.has_delivered(m))).count();
        let byte_time_total: u128 =
            self.sim.nodes().map(|(_, n)| n.store().byte_time_integral(now)).sum();
        let peaks: Vec<usize> = self.sim.nodes().map(|(_, n)| n.store().peak_entries()).collect();
        let mut latencies = Vec::new();
        let mut residual = 0usize;
        for &id in ids {
            let sent = self.sent_at.get(&id).copied().unwrap_or(SimTime::ZERO);
            for (_, n) in self.sim.nodes() {
                match n.delivered().iter().find(|&&(_, d)| d == id) {
                    // Normalize to a per-message recovery duration.
                    Some(&(at, _)) if at > sent => latencies.push(SimTime::ZERO + (at - sent)),
                    Some(_) => {}
                    None => residual += 1,
                }
            }
        }
        RunReport {
            scheme: "tree-rmtp",
            fully_delivered_members: fully,
            members,
            byte_time_total,
            peak_entries_max: peaks.iter().copied().max().unwrap_or(0),
            peak_entries_mean: peaks.iter().sum::<usize>() as f64 / peaks.len().max(1) as f64,
            packets_sent: self.sim.counters().unicasts_sent,
            mean_recovery_latency_ms: mean_latency_ms(&latencies, SimTime::ZERO),
            residual_losses: residual,
            // The legacy stacks have no give-up accounting or fault
            // layer: any residual pair counts as still pending.
            residual_gave_up: 0,
            residual_pending: residual,
            recovery_gave_up: 0,
            faults_dropped: 0,
            faults_duplicated: 0,
            watchdog_rearms: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrmp_netsim::time::SimDuration;
    use rrmp_netsim::topology::presets::{figure1_chain, paper_region};

    #[test]
    fn server_buffers_everything_receivers_nothing() {
        let topo = paper_region(10);
        let mut net = TreeNetwork::new(topo, TreeConfig::default(), 1);
        let plan = DeliveryPlan::all(net.topology());
        for _ in 0..5 {
            net.multicast_with_plan(&b"m"[..], &plan);
        }
        net.run_until(SimTime::from_millis(100));
        assert_eq!(net.node(NodeId(0)).store().len(), 5, "server keeps the session");
        for i in 1..10 {
            assert_eq!(net.node(NodeId(i)).store().len(), 0, "receivers buffer nothing");
        }
    }

    #[test]
    fn local_loss_repaired_by_server() {
        let topo = paper_region(10);
        let mut net = TreeNetwork::new(topo, TreeConfig::default(), 2);
        let plan = DeliveryPlan::all_but(net.topology(), (5..10).map(NodeId));
        let id = net.multicast_with_plan(&b"m"[..], &plan);
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.delivered_count(id), 10);
    }

    #[test]
    fn regional_loss_repaired_through_parent_server() {
        let topo = figure1_chain([4, 4, 4], SimDuration::from_millis(25));
        let mut net = TreeNetwork::new(topo, TreeConfig::default(), 3);
        // Region 2 (nodes 8..12) misses everything, including its server.
        let plan = DeliveryPlan::all_but(net.topology(), (8..12).map(NodeId));
        let id = net.multicast_with_plan(&b"m"[..], &plan);
        net.run_until(SimTime::from_secs(2));
        assert_eq!(net.delivered_count(id), 12);
        // The region-2 server (node 8) fetched it from region 1's server
        // (node 4) and now buffers it.
        assert!(net.node(NodeId(8)).store().contains(id));
    }

    #[test]
    fn report_shows_load_concentration() {
        let topo = paper_region(20);
        let mut net = TreeNetwork::new(topo, TreeConfig::default(), 4);
        let plan = DeliveryPlan::all(net.topology());
        let ids: Vec<MessageId> =
            (0..10).map(|_| net.multicast_with_plan(&b"m"[..], &plan)).collect();
        net.run_until(SimTime::from_secs(1));
        let r = net.report(&ids);
        assert_eq!(r.fully_delivered_members, 20);
        // All buffering cost sits on one node.
        assert_eq!(r.peak_entries_max, 10);
        assert!(r.peak_entries_mean < 1.0, "mean {} should be tiny", r.peak_entries_mean);
    }
}
