//! Sender-based recovery — the strawman the field moved away from, and
//! the opening motivation of the paper's §1: "putting the responsibility
//! of error recovery entirely on the sender can lead to a message
//! implosion problem".
//!
//! Every receiver NACKs the original sender directly; the sender buffers
//! the whole session and answers every NACK itself. The implosion
//! measurement is the packet load concentrated at the sender, compared
//! with RRMP's spread-out recovery traffic.
//!
//! **Status**: this standalone stack is the *legacy differential oracle*.
//! The scheme now runs as a policy over the shared engine
//! ([`rrmp_core::policy::SenderBased`], see [`crate::ported`]); the
//! `policy_differential` test asserts the ported policy reproduces this
//! implementation's [`RunReport`] metrics on identical seeds.

use std::collections::HashMap;

use crate::common::{mean_latency_ms, RunReport};
use bytes::Bytes;
use rrmp_core::buffer::MessageStore;
use rrmp_core::ids::{MessageId, SeqNo};
use rrmp_core::loss::LossDetector;
use rrmp_core::packet::DataPacket;
use rrmp_netsim::loss::DeliveryPlan;
use rrmp_netsim::sim::{Ctx, Sim, SimNode};
use rrmp_netsim::time::{SimDuration, SimTime};
use rrmp_netsim::topology::{NodeId, Topology};

/// Wire messages of the sender-based baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SenderBasedPacket {
    /// Initial multicast data.
    Data(DataPacket),
    /// Session advertisement.
    Session {
        /// The sender.
        source: NodeId,
        /// Highest sequence multicast.
        high: SeqNo,
    },
    /// Negative acknowledgment, always addressed to the sender.
    Nack {
        /// The missing message.
        msg: MessageId,
    },
    /// Retransmission from the sender.
    Repair(DataPacket),
}

/// Configuration of the sender-based baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct SenderBasedConfig {
    /// NACK retry timeout (covers the RTT to the sender).
    pub nack_timeout: SimDuration,
    /// Retry cap.
    pub max_attempts: u32,
}

impl Default for SenderBasedConfig {
    fn default() -> Self {
        SenderBasedConfig { nack_timeout: SimDuration::from_millis(60), max_attempts: 200 }
    }
}

/// One member of the sender-based baseline.
#[derive(Debug)]
pub struct SenderBasedNode {
    id: NodeId,
    sender: NodeId,
    cfg: SenderBasedConfig,
    detector: LossDetector,
    store: MessageStore,
    delivered: Vec<(SimTime, MessageId)>,
    attempts: HashMap<MessageId, u32>,
    pending_timers: HashMap<u64, MessageId>,
    next_token: u64,
    /// Packets of any kind received by this node — the implosion metric.
    pub packets_received: u64,
}

impl SenderBasedNode {
    /// Creates a member; `sender` is the single recovery endpoint.
    #[must_use]
    pub fn new(id: NodeId, sender: NodeId, cfg: SenderBasedConfig) -> Self {
        SenderBasedNode {
            id,
            sender,
            cfg,
            detector: LossDetector::new(),
            store: MessageStore::new(),
            delivered: Vec::new(),
            attempts: HashMap::new(),
            pending_timers: HashMap::new(),
            next_token: 0,
            packets_received: 0,
        }
    }

    /// Messages delivered here.
    #[must_use]
    pub fn delivered(&self) -> &[(SimTime, MessageId)] {
        &self.delivered
    }

    /// Whether `id` was delivered here.
    #[must_use]
    pub fn has_delivered(&self, id: MessageId) -> bool {
        self.delivered.iter().any(|&(_, d)| d == id)
    }

    /// The message store (only the sender's is ever non-empty).
    #[must_use]
    pub fn store(&self) -> &MessageStore {
        &self.store
    }

    fn nack(&mut self, ctx: &mut Ctx<'_, SenderBasedPacket>, msg: MessageId) {
        if self.id == self.sender {
            return; // the sender cannot NACK itself
        }
        let attempts = self.attempts.entry(msg).or_insert(0);
        *attempts += 1;
        if *attempts > self.cfg.max_attempts {
            return;
        }
        ctx.send(self.sender, SenderBasedPacket::Nack { msg });
        let token = self.next_token;
        self.next_token += 1;
        self.pending_timers.insert(token, msg);
        ctx.set_timer(self.cfg.nack_timeout, token);
    }

    fn on_data_like(&mut self, ctx: &mut Ctx<'_, SenderBasedPacket>, data: DataPacket) {
        let outcome = self.detector.on_data(data.id);
        if !outcome.newly_received {
            return;
        }
        self.delivered.push((ctx.now(), data.id));
        self.attempts.remove(&data.id);
        if self.id == self.sender {
            self.store.insert_long(data.id, data.payload, ctx.now());
        }
        for m in outcome.newly_missing {
            self.nack(ctx, m);
        }
    }
}

impl SimNode for SenderBasedNode {
    type Msg = SenderBasedPacket;

    fn on_packet(
        &mut self,
        ctx: &mut Ctx<'_, SenderBasedPacket>,
        from: NodeId,
        msg: SenderBasedPacket,
    ) {
        self.packets_received += 1;
        match msg {
            SenderBasedPacket::Data(d) | SenderBasedPacket::Repair(d) => self.on_data_like(ctx, d),
            SenderBasedPacket::Session { source, high } => {
                for m in self.detector.on_session(source, high) {
                    self.nack(ctx, m);
                }
            }
            SenderBasedPacket::Nack { msg } => {
                if let Some(payload) = self.store.get(msg) {
                    self.store.note_use(msg, ctx.now());
                    ctx.send(from, SenderBasedPacket::Repair(DataPacket::new(msg, payload)));
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SenderBasedPacket>, token: u64) {
        if let Some(msg) = self.pending_timers.remove(&token) {
            if self.detector.is_missing(msg) {
                self.nack(ctx, msg);
            }
        }
    }
}

/// A simulated group running sender-based recovery.
#[derive(Debug)]
pub struct SenderBasedNetwork {
    sim: Sim<SenderBasedNode>,
    sender: NodeId,
    next_seq: SeqNo,
    sent_at: HashMap<MessageId, SimTime>,
}

impl SenderBasedNetwork {
    /// Builds the group over `topo` with node 0 as the sender.
    #[must_use]
    pub fn new(topo: Topology, cfg: SenderBasedConfig, seed: u64) -> Self {
        let nodes =
            topo.nodes().map(|id| SenderBasedNode::new(id, NodeId(0), cfg.clone())).collect();
        let sim = Sim::new(topo, nodes, seed);
        SenderBasedNetwork {
            sim,
            sender: NodeId(0),
            next_seq: SeqNo::FIRST,
            sent_at: HashMap::new(),
        }
    }

    /// The simulated topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.sim.topology()
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Multicasts with an explicit plan (session advertised to missers so
    /// loss detection is immediate, as in the other harnesses).
    pub fn multicast_with_plan(
        &mut self,
        payload: impl Into<Bytes>,
        plan: &DeliveryPlan,
    ) -> MessageId {
        let id = MessageId::new(self.sender, self.next_seq);
        self.next_seq = self.next_seq.next();
        let now = self.sim.now();
        self.sent_at.insert(id, now);
        let data = SenderBasedPacket::Data(DataPacket::new(id, payload.into()));
        self.sim.inject(self.sender, self.sender, data.clone(), now);
        let mut without_sender = plan.clone();
        without_sender.set_receives(self.sender, false);
        self.sim.inject_multicast_plan(self.sender, &data, &without_sender, now);
        let session = SenderBasedPacket::Session { source: self.sender, high: id.seq };
        for n in self.sim.topology().nodes().collect::<Vec<_>>() {
            if !plan.receives(n) && n != self.sender {
                self.sim.inject(n, self.sender, session.clone(), now);
            }
        }
        id
    }

    /// Runs until `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Number of members that delivered `id`.
    #[must_use]
    pub fn delivered_count(&self, id: MessageId) -> usize {
        self.sim.nodes().filter(|(_, n)| n.has_delivered(id)).count()
    }

    /// Packets received by the sender — the implosion hotspot.
    #[must_use]
    pub fn sender_load(&self) -> u64 {
        self.sim.node(self.sender).packets_received
    }

    /// The maximum packets received by any non-sender member.
    #[must_use]
    pub fn max_receiver_load(&self) -> u64 {
        self.sim
            .nodes()
            .filter(|(id, _)| *id != self.sender)
            .map(|(_, n)| n.packets_received)
            .max()
            .unwrap_or(0)
    }

    /// Access to one node.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &SenderBasedNode {
        self.sim.node(id)
    }

    /// Builds the comparison report over `ids` (mirrors the other
    /// baselines' report builders; the differential oracle surface).
    #[must_use]
    pub fn report(&self, ids: &[MessageId]) -> RunReport {
        let now = self.sim.now();
        let members = self.sim.topology().node_count();
        let fully =
            self.sim.nodes().filter(|(_, n)| ids.iter().all(|&m| n.has_delivered(m))).count();
        let byte_time_total: u128 =
            self.sim.nodes().map(|(_, n)| n.store().byte_time_integral(now)).sum();
        let peaks: Vec<usize> = self.sim.nodes().map(|(_, n)| n.store().peak_entries()).collect();
        let mut latencies = Vec::new();
        let mut residual = 0usize;
        for &id in ids {
            let sent = self.sent_at.get(&id).copied().unwrap_or(SimTime::ZERO);
            for (_, n) in self.sim.nodes() {
                match n.delivered().iter().find(|&&(_, d)| d == id) {
                    Some(&(at, _)) if at > sent => {
                        // Normalize to a per-message recovery duration.
                        latencies.push(SimTime::ZERO + (at - sent));
                    }
                    Some(_) => {}
                    None => residual += 1,
                }
            }
        }
        RunReport {
            scheme: "sender-based",
            fully_delivered_members: fully,
            members,
            byte_time_total,
            peak_entries_max: peaks.iter().copied().max().unwrap_or(0),
            peak_entries_mean: peaks.iter().sum::<usize>() as f64 / peaks.len().max(1) as f64,
            packets_sent: self.sim.counters().unicasts_sent,
            mean_recovery_latency_ms: mean_latency_ms(&latencies, SimTime::ZERO),
            residual_losses: residual,
            // The legacy stacks have no give-up accounting or fault
            // layer: any residual pair counts as still pending.
            residual_gave_up: 0,
            residual_pending: residual,
            recovery_gave_up: 0,
            faults_dropped: 0,
            faults_duplicated: 0,
            watchdog_rearms: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrmp_netsim::topology::presets::paper_region;

    #[test]
    fn recovers_through_the_sender() {
        let topo = paper_region(30);
        let mut net = SenderBasedNetwork::new(topo, SenderBasedConfig::default(), 1);
        let plan = DeliveryPlan::only(net.topology(), (0..10).map(NodeId));
        let id = net.multicast_with_plan(&b"x"[..], &plan);
        net.run_until(SimTime::from_secs(2));
        assert_eq!(net.delivered_count(id), 30);
        // Only the sender buffers.
        assert!(net.node(NodeId(0)).store().contains(id));
        assert!((1..30).all(|i| !net.node(NodeId(i)).store().contains(id)));
    }

    #[test]
    fn nack_implosion_concentrates_on_sender() {
        let topo = paper_region(60);
        let mut net = SenderBasedNetwork::new(topo, SenderBasedConfig::default(), 2);
        // Everyone except the sender misses it: 59 simultaneous NACKs.
        let plan = DeliveryPlan::only(net.topology(), [NodeId(0)]);
        let id = net.multicast_with_plan(&b"x"[..], &plan);
        net.run_until(SimTime::from_secs(2));
        assert_eq!(net.delivered_count(id), 60);
        let sender_load = net.sender_load();
        let max_other = net.max_receiver_load();
        assert!(sender_load >= 59, "sender should absorb all NACKs: {sender_load}");
        assert!(
            sender_load > 10 * max_other.max(1),
            "implosion: sender {sender_load} vs max receiver {max_other}"
        );
    }

    #[test]
    fn sender_never_nacks_itself() {
        let topo = paper_region(5);
        let mut net = SenderBasedNetwork::new(topo, SenderBasedConfig::default(), 3);
        let plan = DeliveryPlan::all(net.topology());
        net.multicast_with_plan(&b"x"[..], &plan);
        net.run_until(SimTime::from_millis(200));
        // No NACK traffic at all in a lossless run.
        assert_eq!(net.sender_load(), 1, "only its own injected copy");
    }
}
