//! # rrmp-baselines
//!
//! The buffering schemes the DSN 2002 paper compares RRMP's two-phase
//! algorithm against, each implemented as a full protocol on the
//! [`rrmp_netsim`] simulator:
//!
//! * [`hash_buffering`] — deterministic hash-selected bufferers
//!   (Ozkasap et al., NGC '99; the authors' previous scheme, §3.4).
//! * [`stability`] — stability detection via periodic history exchange
//!   (Guo & Rhee, INFOCOM '00; §1/§6's "stability detection protocols").
//! * [`tree_rmtp`] — per-region repair servers buffering the entire
//!   session (RMTP, JSAC '97; the tree-based protocols of §1).
//! * [`sender_based`] — the strawman of §1: all recovery through the
//!   sender, demonstrating the message-implosion problem.
//!
//! The hash-based and sender-based schemes also run as **policies over
//! the shared protocol engine** ([`rrmp_core::policy`], glue in
//! [`ported`]) — one engine, many buffering algorithms, every scenario
//! generator and both simulation engines available to each. The
//! standalone stacks here remain as *differential oracles*: the
//! `policy_differential` test asserts the ported policies reproduce
//! their [`RunReport`] metrics on identical seeds.
//!
//! Two further baselines come directly from `rrmp-core`'s
//! [`PolicyKind`](rrmp_core::policy::PolicyKind): fixed-time buffering
//! (Bimodal Multicast's policy, §2) and keep-everything.
//!
//! All networks produce a [`common::RunReport`] with identical metrics so
//! the `ablation_buffer_policies` bench can print one comparison table.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod common;
pub mod hash_buffering;
pub mod ported;
pub mod sender_based;
pub mod stability;
pub mod tree_rmtp;

pub use common::RunReport;
pub use hash_buffering::{designated_bufferers, HashConfig, HashNetwork, HashNode, HashPacket};
pub use sender_based::{SenderBasedConfig, SenderBasedNetwork, SenderBasedNode, SenderBasedPacket};
pub use stability::{StabilityConfig, StabilityNetwork, StabilityNode, StabilityPacket};
pub use tree_rmtp::{TreeConfig, TreeNetwork, TreeNode, TreePacket};
