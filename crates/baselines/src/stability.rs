//! Stability-detection buffering (Guo & Rhee, INFOCOM 2000 style) — the
//! class of protocols the paper's §1/§6 contrasts with: every member
//! buffers every message until it is *stable* (received by all members),
//! learned by periodically exchanging message-history (ACK) vectors.
//!
//! Costs the paper highlights: periodic history traffic even when nothing
//! is lost, full-group membership knowledge, and buffers that drain only
//! at the pace of the slowest member.

use std::collections::HashMap;

use bytes::Bytes;
use rrmp_core::buffer::MessageStore;
use rrmp_core::ids::{MessageId, SeqNo};
use rrmp_core::loss::LossDetector;
use rrmp_core::packet::DataPacket;
use rrmp_netsim::loss::DeliveryPlan;
use rrmp_netsim::sim::{Ctx, Sim, SimNode};
use rrmp_netsim::time::{SimDuration, SimTime};
use rrmp_netsim::topology::{NodeId, Topology};

use crate::common::{mean_latency_ms, RunReport};

/// Wire messages of the stability-detection baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StabilityPacket {
    /// Initial multicast data.
    Data(DataPacket),
    /// Session advertisement from the sender.
    Session {
        /// The sender.
        source: NodeId,
        /// Highest sequence multicast.
        high: SeqNo,
    },
    /// Retransmission request to a random member.
    Request {
        /// The missing message.
        msg: MessageId,
    },
    /// Retransmission answer.
    Repair(DataPacket),
    /// Periodic history exchange: the sender-side contiguous ACK.
    History {
        /// The advertising member's contiguous-receipt watermark.
        ack: SeqNo,
    },
}

/// Configuration of the stability-detection baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityConfig {
    /// How often each member broadcasts its history vector.
    pub history_interval: SimDuration,
    /// Local request retry timeout.
    pub request_timeout: SimDuration,
    /// Retry cap.
    pub max_attempts: u32,
}

impl Default for StabilityConfig {
    fn default() -> Self {
        StabilityConfig {
            history_interval: SimDuration::from_millis(100),
            request_timeout: SimDuration::from_millis(10),
            max_attempts: 200,
        }
    }
}

const HISTORY_TICK: u64 = u64::MAX;

/// One member of the stability-detection baseline.
#[derive(Debug)]
pub struct StabilityNode {
    id: NodeId,
    members: Vec<NodeId>,
    source: NodeId,
    cfg: StabilityConfig,
    detector: LossDetector,
    store: MessageStore,
    delivered: Vec<(SimTime, MessageId)>,
    acks: HashMap<NodeId, SeqNo>,
    attempts: HashMap<MessageId, u32>,
    pending_timers: HashMap<u64, MessageId>,
    next_token: u64,
    /// History packets sent (the overhead RRMP avoids).
    pub history_sent: u64,
}

impl StabilityNode {
    /// Creates a member knowing the full group membership and the sender.
    #[must_use]
    pub fn new(id: NodeId, members: Vec<NodeId>, source: NodeId, cfg: StabilityConfig) -> Self {
        StabilityNode {
            id,
            members,
            source,
            cfg,
            detector: LossDetector::new(),
            store: MessageStore::new(),
            delivered: Vec::new(),
            acks: HashMap::new(),
            attempts: HashMap::new(),
            pending_timers: HashMap::new(),
            next_token: 0,
            history_sent: 0,
        }
    }

    /// Messages delivered here.
    #[must_use]
    pub fn delivered(&self) -> &[(SimTime, MessageId)] {
        &self.delivered
    }

    /// Whether `id` was delivered here.
    #[must_use]
    pub fn has_delivered(&self, id: MessageId) -> bool {
        self.delivered.iter().any(|&(_, d)| d == id)
    }

    /// The message store.
    #[must_use]
    pub fn store(&self) -> &MessageStore {
        &self.store
    }

    /// The stable watermark: the minimum ACK over every member (0 until
    /// all members have been heard from).
    #[must_use]
    pub fn stable_watermark(&self) -> SeqNo {
        let mut min = self.detector.contiguous_received(self.source);
        for m in &self.members {
            if *m == self.id {
                continue;
            }
            match self.acks.get(m) {
                Some(&a) => min = min.min(a),
                None => return SeqNo::NONE,
            }
        }
        min
    }

    fn discard_stable(&mut self, now: SimTime) {
        let stable = self.stable_watermark();
        if stable == SeqNo::NONE {
            return;
        }
        let to_discard: Vec<MessageId> = self
            .store
            .iter()
            .filter(|(id, _)| id.source == self.source && id.seq <= stable)
            .map(|(&id, _)| id)
            .collect();
        for id in to_discard {
            self.store.discard(id, now);
        }
    }

    fn request_random(&mut self, ctx: &mut Ctx<'_, StabilityPacket>, msg: MessageId) {
        let attempts = self.attempts.entry(msg).or_insert(0);
        *attempts += 1;
        if *attempts > self.cfg.max_attempts {
            return;
        }
        use rand::Rng;
        let candidates: Vec<NodeId> =
            self.members.iter().copied().filter(|&m| m != self.id).collect();
        if candidates.is_empty() {
            return;
        }
        let target = candidates[ctx.rng().gen_range(0..candidates.len())];
        ctx.send(target, StabilityPacket::Request { msg });
        let token = self.next_token;
        self.next_token += 1;
        self.pending_timers.insert(token, msg);
        ctx.set_timer(self.cfg.request_timeout, token);
    }

    fn on_data_like(&mut self, ctx: &mut Ctx<'_, StabilityPacket>, data: DataPacket) {
        let outcome = self.detector.on_data(data.id);
        if !outcome.newly_received {
            return;
        }
        self.delivered.push((ctx.now(), data.id));
        self.attempts.remove(&data.id);
        // Everyone buffers everything until stability.
        self.store.insert_long(data.id, data.payload, ctx.now());
        for m in outcome.newly_missing {
            self.request_random(ctx, m);
        }
    }
}

impl SimNode for StabilityNode {
    type Msg = StabilityPacket;

    fn on_start(&mut self, ctx: &mut Ctx<'_, StabilityPacket>) {
        ctx.set_timer(self.cfg.history_interval, HISTORY_TICK);
    }

    fn on_packet(
        &mut self,
        ctx: &mut Ctx<'_, StabilityPacket>,
        from: NodeId,
        msg: StabilityPacket,
    ) {
        match msg {
            StabilityPacket::Data(d) | StabilityPacket::Repair(d) => self.on_data_like(ctx, d),
            StabilityPacket::Session { source, high } => {
                for m in self.detector.on_session(source, high) {
                    self.request_random(ctx, m);
                }
            }
            StabilityPacket::Request { msg } => {
                if let Some(payload) = self.store.get(msg) {
                    ctx.send(from, StabilityPacket::Repair(DataPacket::new(msg, payload)));
                }
            }
            StabilityPacket::History { ack } => {
                let entry = self.acks.entry(from).or_insert(SeqNo::NONE);
                *entry = (*entry).max(ack);
                self.discard_stable(ctx.now());
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, StabilityPacket>, token: u64) {
        if token == HISTORY_TICK {
            let ack = self.detector.contiguous_received(self.source);
            let others: Vec<NodeId> =
                self.members.iter().copied().filter(|&m| m != self.id).collect();
            self.history_sent += others.len() as u64;
            ctx.send_all(others, StabilityPacket::History { ack });
            ctx.set_timer(self.cfg.history_interval, HISTORY_TICK);
            return;
        }
        if let Some(msg) = self.pending_timers.remove(&token) {
            if self.detector.is_missing(msg) {
                self.request_random(ctx, msg);
            }
        }
    }
}

/// A simulated group running stability-detection buffering.
#[derive(Debug)]
pub struct StabilityNetwork {
    sim: Sim<StabilityNode>,
    sender: NodeId,
    next_seq: SeqNo,
    sent_at: HashMap<MessageId, SimTime>,
}

impl StabilityNetwork {
    /// Builds the group over `topo` with node 0 as sender.
    #[must_use]
    pub fn new(topo: Topology, cfg: StabilityConfig, seed: u64) -> Self {
        let members: Vec<NodeId> = topo.nodes().collect();
        let nodes = topo
            .nodes()
            .map(|id| StabilityNode::new(id, members.clone(), NodeId(0), cfg.clone()))
            .collect();
        let sim = Sim::new(topo, nodes, seed);
        StabilityNetwork { sim, sender: NodeId(0), next_seq: SeqNo::FIRST, sent_at: HashMap::new() }
    }

    /// The simulated topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.sim.topology()
    }

    /// Multicasts with an explicit plan (see the RRMP harness for the
    /// session-advertisement convention).
    pub fn multicast_with_plan(
        &mut self,
        payload: impl Into<Bytes>,
        plan: &DeliveryPlan,
    ) -> MessageId {
        let id = MessageId::new(self.sender, self.next_seq);
        self.next_seq = self.next_seq.next();
        let now = self.sim.now();
        self.sent_at.insert(id, now);
        let data = StabilityPacket::Data(DataPacket::new(id, payload.into()));
        self.sim.inject(self.sender, self.sender, data.clone(), now);
        let mut without_sender = plan.clone();
        without_sender.set_receives(self.sender, false);
        self.sim.inject_multicast_plan(self.sender, &data, &without_sender, now);
        let session = StabilityPacket::Session { source: self.sender, high: id.seq };
        for n in self.sim.topology().nodes().collect::<Vec<_>>() {
            if !plan.receives(n) && n != self.sender {
                self.sim.inject(n, self.sender, session.clone(), now);
            }
        }
        id
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Runs until `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Number of members that delivered `id`.
    #[must_use]
    pub fn delivered_count(&self, id: MessageId) -> usize {
        self.sim.nodes().filter(|(_, n)| n.has_delivered(id)).count()
    }

    /// Number of members still buffering `id`.
    #[must_use]
    pub fn buffered_count(&self, id: MessageId) -> usize {
        self.sim.nodes().filter(|(_, n)| n.store().contains(id)).count()
    }

    /// Total history packets sent so far (the standing overhead).
    #[must_use]
    pub fn history_packets(&self) -> u64 {
        self.sim.nodes().map(|(_, n)| n.history_sent).sum()
    }

    /// Access to one node.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &StabilityNode {
        self.sim.node(id)
    }

    /// Builds the comparison report over `ids`.
    #[must_use]
    pub fn report(&self, ids: &[MessageId]) -> RunReport {
        let now = self.sim.now();
        let members = self.sim.topology().node_count();
        let fully =
            self.sim.nodes().filter(|(_, n)| ids.iter().all(|&m| n.has_delivered(m))).count();
        let byte_time_total: u128 =
            self.sim.nodes().map(|(_, n)| n.store().byte_time_integral(now)).sum();
        let peaks: Vec<usize> = self.sim.nodes().map(|(_, n)| n.store().peak_entries()).collect();
        let mut latencies = Vec::new();
        let mut residual = 0usize;
        for &id in ids {
            let sent = self.sent_at.get(&id).copied().unwrap_or(SimTime::ZERO);
            for (_, n) in self.sim.nodes() {
                match n.delivered().iter().find(|&&(_, d)| d == id) {
                    // Normalize to a per-message recovery duration.
                    Some(&(at, _)) if at > sent => latencies.push(SimTime::ZERO + (at - sent)),
                    Some(_) => {}
                    None => residual += 1,
                }
            }
        }
        RunReport {
            scheme: "stability",
            fully_delivered_members: fully,
            members,
            byte_time_total,
            peak_entries_max: peaks.iter().copied().max().unwrap_or(0),
            peak_entries_mean: peaks.iter().sum::<usize>() as f64 / peaks.len().max(1) as f64,
            packets_sent: self.sim.counters().unicasts_sent,
            mean_recovery_latency_ms: mean_latency_ms(&latencies, SimTime::ZERO),
            residual_losses: residual,
            // The legacy stacks have no give-up accounting or fault
            // layer: any residual pair counts as still pending.
            residual_gave_up: 0,
            residual_pending: residual,
            recovery_gave_up: 0,
            faults_dropped: 0,
            faults_duplicated: 0,
            watchdog_rearms: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrmp_netsim::topology::presets::paper_region;

    #[test]
    fn everyone_buffers_until_stable_then_discards() {
        let topo = paper_region(10);
        let mut net = StabilityNetwork::new(topo, StabilityConfig::default(), 1);
        let plan = DeliveryPlan::all(net.topology());
        let id = net.multicast_with_plan(&b"m"[..], &plan);
        net.run_until(SimTime::from_millis(50));
        // Before a full history round completes, everyone buffers.
        assert_eq!(net.buffered_count(id), 10);
        // After a couple of history intervals, stability is detected and
        // buffers drain everywhere.
        net.run_until(SimTime::from_millis(500));
        assert_eq!(net.buffered_count(id), 0, "stable message should be discarded");
        assert_eq!(net.delivered_count(id), 10);
    }

    #[test]
    fn unstable_message_is_retained() {
        let topo = paper_region(10);
        let cfg = StabilityConfig {
            max_attempts: 1, // cripple recovery so the message stays unstable
            ..StabilityConfig::default()
        };
        let mut net = StabilityNetwork::new(topo, cfg, 2);
        // Node 9 misses it; with recovery crippled it may stay missing.
        let plan = DeliveryPlan::all_but(net.topology(), [NodeId(9)]);
        let id = net.multicast_with_plan(&b"m"[..], &plan);
        net.run_until(SimTime::from_millis(80));
        if net.delivered_count(id) < 10 {
            // As long as one member misses it, nobody discards.
            assert_eq!(net.buffered_count(id), net.delivered_count(id));
        }
    }

    #[test]
    fn recovery_then_stability() {
        let topo = paper_region(20);
        let mut net = StabilityNetwork::new(topo, StabilityConfig::default(), 3);
        let plan = DeliveryPlan::only(net.topology(), (0..5).map(NodeId));
        let id = net.multicast_with_plan(&b"m"[..], &plan);
        net.run_until(SimTime::from_secs(2));
        assert_eq!(net.delivered_count(id), 20);
        assert_eq!(net.buffered_count(id), 0);
        // History traffic flows continuously — the overhead RRMP avoids.
        assert!(net.history_packets() > 20 * 10);
    }

    #[test]
    fn report_reflects_costs() {
        let topo = paper_region(10);
        let mut net = StabilityNetwork::new(topo, StabilityConfig::default(), 4);
        let plan = DeliveryPlan::all(net.topology());
        let id = net.multicast_with_plan(&b"m"[..], &plan);
        net.run_until(SimTime::from_secs(1));
        let r = net.report(&[id]);
        assert_eq!(r.fully_delivered_members, 10);
        assert_eq!(r.residual_losses, 0);
        // Stability detection keeps sending packets with no losses at all.
        assert!(r.packets_sent > 100, "history overhead expected, got {}", r.packets_sent);
    }
}
