//! Shared measurement surface for comparing buffering schemes.
//!
//! Every baseline network (and the RRMP harness itself, via the bench
//! code) produces a [`RunReport`] with the same cost and latency metrics,
//! so the `ablation_buffer_policies` experiment can print one table across
//! all schemes.

use rrmp_netsim::time::SimTime;

/// Cost/latency metrics of one buffering-scheme run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Scheme name for table rows.
    pub scheme: &'static str,
    /// Members that delivered every message under test.
    pub fully_delivered_members: usize,
    /// Total membership.
    pub members: usize,
    /// Sum over members of the buffer byte×time integral (byte·µs) — the
    /// aggregate buffering cost.
    pub byte_time_total: u128,
    /// Largest per-member peak buffer entry count (load concentration:
    /// repair-server schemes spike here, RRMP spreads it).
    pub peak_entries_max: usize,
    /// Mean per-member peak buffer entry count.
    pub peak_entries_mean: f64,
    /// Unicast control+repair packets handed to the network.
    pub packets_sent: u64,
    /// Mean recovery latency (ms) over members that missed the initial
    /// multicast and later delivered, if any recovered.
    pub mean_recovery_latency_ms: Option<f64>,
    /// Residual losses: `(member, message)` pairs never delivered.
    pub residual_losses: usize,
    /// Residual pairs whose recovery terminated cleanly at a retry cap
    /// (the member knows it gave up — bounded, accounted-for loss).
    pub residual_gave_up: usize,
    /// Residual pairs with recovery machinery still live at run end (the
    /// run was cut short, or something is wedged — worth investigating).
    pub residual_pending: usize,
    /// Total recovery efforts abandoned at a retry cap, summed over
    /// members (the protocol `recovery_gave_up` counter; can exceed the
    /// residual split when an abandoned effort later succeeded through
    /// another path or a heal re-arm).
    pub recovery_gave_up: u64,
    /// Unicast copies dropped by the armed fault plan at the network
    /// edge (0 when no plan is armed — legacy stacks have no fault
    /// layer).
    pub faults_dropped: u64,
    /// Duplicate copies injected by the armed fault plan.
    pub faults_duplicated: u64,
    /// Wedged recovery efforts restarted by the liveness watchdog,
    /// summed over members (0 when the watchdog is unarmed — the legacy
    /// stacks have no watchdog).
    pub watchdog_rearms: u64,
}

impl RunReport {
    /// Renders the report as one row of the comparison table.
    #[must_use]
    pub fn table_row(&self) -> String {
        format!(
            "{:<14} {:>9} {:>16} {:>10} {:>12.1} {:>12} {:>12} {:>9} {:>9} {:>8} {:>11} {:>7}",
            self.scheme,
            format!("{}/{}", self.fully_delivered_members, self.members),
            self.byte_time_total / 1000, // byte·ms
            self.peak_entries_max,
            self.peak_entries_mean,
            self.packets_sent,
            self.mean_recovery_latency_ms.map_or_else(|| "-".to_string(), |v| format!("{v:.1}")),
            self.residual_losses,
            // The split: gave up cleanly vs still pending at run end.
            format!("{}/{}", self.residual_gave_up, self.residual_pending),
            self.recovery_gave_up,
            // Fault-plan activity at the network edge: drops/duplicates.
            format!("{}/{}", self.faults_dropped, self.faults_duplicated),
            self.watchdog_rearms,
        )
    }

    /// Renders the report as one deterministic JSON object — the
    /// machine-readable face of [`RunReport::table_row`], consumed by the
    /// scenario runners (`trace_dump`) and CI checkers. Field order and
    /// number formatting are fixed, so identical runs export identical
    /// bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = rrmp_trace::JsonObj::new();
        o.str("scheme", self.scheme);
        o.u64("fully_delivered_members", self.fully_delivered_members as u64);
        o.u64("members", self.members as u64);
        // u128 byte·µs totals exceed u64 in long budget runs; JSON gets
        // the exact decimal rendering either way.
        o.raw("byte_time_total", &self.byte_time_total.to_string());
        o.u64("peak_entries_max", self.peak_entries_max as u64);
        o.f64("peak_entries_mean", self.peak_entries_mean);
        o.u64("packets_sent", self.packets_sent);
        match self.mean_recovery_latency_ms {
            Some(v) => o.f64("mean_recovery_latency_ms", v),
            None => o.raw("mean_recovery_latency_ms", "null"),
        }
        o.u64("residual_losses", self.residual_losses as u64);
        o.u64("residual_gave_up", self.residual_gave_up as u64);
        o.u64("residual_pending", self.residual_pending as u64);
        o.u64("recovery_gave_up", self.recovery_gave_up);
        o.u64("faults_dropped", self.faults_dropped);
        o.u64("faults_duplicated", self.faults_duplicated);
        o.u64("watchdog_rearms", self.watchdog_rearms);
        o.finish()
    }

    /// The header matching [`RunReport::table_row`].
    #[must_use]
    pub fn table_header() -> String {
        format!(
            "{:<14} {:>9} {:>16} {:>10} {:>12} {:>12} {:>12} {:>9} {:>9} {:>8} {:>11} {:>7}",
            "scheme",
            "delivered",
            "byte·ms buffered",
            "peak(max)",
            "peak(mean)",
            "pkts",
            "lat(ms)",
            "residual",
            "gaveup/pe",
            "gaveups",
            "fault(d/x)",
            "rearms"
        )
    }
}

/// Computes mean recovery latency in milliseconds from `(member_missed,
/// delivered_at)` pairs relative to `sent_at`.
#[must_use]
pub fn mean_latency_ms(deliveries: &[SimTime], sent_at: SimTime) -> Option<f64> {
    if deliveries.is_empty() {
        return None;
    }
    let total: f64 = deliveries.iter().map(|&d| d.saturating_since(sent_at).as_millis_f64()).sum();
    Some(total / deliveries.len() as f64)
}

/// Deterministic 64-bit hash of `(member, message)` used by the
/// hash-buffering baseline. The canonical implementation moved to
/// [`rrmp_core::policy`] with the ported hash policy; the legacy stack
/// re-uses it so both sides keep agreeing byte for byte.
pub use rrmp_core::policy::bufferer_hash;

#[cfg(test)]
mod tests {
    use super::*;
    use rrmp_core::ids::{MessageId, SeqNo};
    use rrmp_netsim::topology::NodeId;

    #[test]
    fn table_row_and_header_align() {
        let r = RunReport {
            scheme: "two-phase",
            fully_delivered_members: 100,
            members: 100,
            byte_time_total: 123_456,
            peak_entries_max: 7,
            peak_entries_mean: 1.5,
            packets_sent: 42,
            mean_recovery_latency_ms: Some(12.3),
            residual_losses: 0,
            residual_gave_up: 0,
            residual_pending: 0,
            recovery_gave_up: 0,
            faults_dropped: 0,
            faults_duplicated: 0,
            watchdog_rearms: 0,
        };
        let header = RunReport::table_header();
        let row = r.table_row();
        assert!(!header.is_empty() && !row.is_empty());
        assert!(row.contains("two-phase"));
        assert!(row.contains("100/100"));
        // The JSON face parses back and round-trips the key numbers.
        let v = rrmp_trace::Value::parse(&r.to_json()).expect("valid JSON");
        assert_eq!(v.get("scheme").and_then(rrmp_trace::Value::as_str), Some("two-phase"));
        assert_eq!(v.get("packets_sent").and_then(rrmp_trace::Value::as_u64), Some(42));
        assert_eq!(
            v.get("mean_recovery_latency_ms").and_then(rrmp_trace::Value::as_f64),
            Some(12.3)
        );
        let none = RunReport { mean_recovery_latency_ms: None, ..r };
        let v = rrmp_trace::Value::parse(&none.to_json()).expect("valid JSON");
        assert_eq!(v.get("mean_recovery_latency_ms"), Some(&rrmp_trace::Value::Null));
    }

    #[test]
    fn mean_latency_handles_empty() {
        assert_eq!(mean_latency_ms(&[], SimTime::ZERO), None);
        let v =
            mean_latency_ms(&[SimTime::from_millis(10), SimTime::from_millis(20)], SimTime::ZERO)
                .unwrap();
        assert!((v - 15.0).abs() < 1e-9);
    }

    #[test]
    fn bufferer_hash_is_deterministic_and_spreads() {
        let msg = MessageId::new(NodeId(0), SeqNo(1));
        let a = bufferer_hash(NodeId(1), msg);
        let b = bufferer_hash(NodeId(1), msg);
        assert_eq!(a, b);
        // Different members and messages give different hashes (whp).
        let others: std::collections::HashSet<u64> =
            (0..100u32).map(|m| bufferer_hash(NodeId(m), msg)).collect();
        assert!(others.len() >= 99, "hash collisions too frequent");
        let msg2 = MessageId::new(NodeId(0), SeqNo(2));
        assert_ne!(bufferer_hash(NodeId(1), msg), bufferer_hash(NodeId(1), msg2));
    }
}
