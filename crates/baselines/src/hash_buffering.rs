//! Deterministic hash-based bufferer selection — the authors' *previous*
//! scheme (Ozkasap, van Renesse, Birman, Xiao: "Efficient buffering in
//! reliable multicast protocols", NGC '99), which the paper's §1 and §3.4
//! compare against.
//!
//! Every member knows (an approximation of) the entire membership. For a
//! message `m`, the `k` members with the smallest `hash(member, m)` are
//! its designated bufferers; everyone can compute the set locally. A
//! member that misses `m` requests it directly from a randomly chosen
//! designated bufferer. The scheme needs no search traffic — but it is
//! topology-blind: requests routinely cross high-latency links, the
//! weakness that motivated RRMP's regional design.
//!
//! **Status**: this standalone stack is the *legacy differential oracle*.
//! The scheme now runs as a policy over the shared engine
//! ([`rrmp_core::policy::HashBufferers`], see [`crate::ported`]); the
//! `policy_differential` test asserts the ported policy reproduces this
//! implementation's [`RunReport`] metrics on identical seeds.

use std::collections::HashMap;

use bytes::Bytes;
use rrmp_core::buffer::MessageStore;
use rrmp_core::ids::{MessageId, SeqNo};
use rrmp_core::loss::LossDetector;
use rrmp_core::packet::DataPacket;
use rrmp_netsim::loss::DeliveryPlan;
use rrmp_netsim::sim::{Ctx, Sim, SimNode};
use rrmp_netsim::time::{SimDuration, SimTime};
use rrmp_netsim::topology::{NodeId, Topology};

use crate::common::{mean_latency_ms, RunReport};

/// Wire messages of the hash-buffering baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HashPacket {
    /// Initial multicast data.
    Data(DataPacket),
    /// Session advertisement from the sender.
    Session {
        /// The sender.
        source: NodeId,
        /// Highest sequence multicast.
        high: SeqNo,
    },
    /// Retransmission request sent directly to a designated bufferer.
    Request {
        /// The missing message.
        msg: MessageId,
    },
    /// Retransmission answer.
    Repair(DataPacket),
}

/// Configuration of the hash-buffering baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct HashConfig {
    /// Designated bufferers per message.
    pub k: usize,
    /// Request retry timeout (should cover the worst-case RTT, since
    /// requests may cross regions).
    pub request_timeout: SimDuration,
    /// Retry cap before giving up.
    pub max_attempts: u32,
}

impl Default for HashConfig {
    fn default() -> Self {
        HashConfig { k: 6, request_timeout: SimDuration::from_millis(60), max_attempts: 200 }
    }
}

/// The `k` designated bufferers for `msg` among `members`. Canonical
/// implementation in [`rrmp_core::policy`], shared with the ported
/// [`HashBufferers`](rrmp_core::policy::HashBufferers) policy so both
/// protocol stacks always select the same sets.
pub use rrmp_core::policy::designated_bufferers;

/// One member of the hash-buffering baseline protocol.
#[derive(Debug)]
pub struct HashNode {
    id: NodeId,
    members: Vec<NodeId>,
    cfg: HashConfig,
    detector: LossDetector,
    store: MessageStore,
    delivered: Vec<(SimTime, MessageId)>,
    attempts: HashMap<MessageId, u32>,
    pending_timers: HashMap<u64, MessageId>,
    next_token: u64,
}

impl HashNode {
    /// Creates a member knowing the full group membership.
    #[must_use]
    pub fn new(id: NodeId, members: Vec<NodeId>, cfg: HashConfig) -> Self {
        HashNode {
            id,
            members,
            cfg,
            detector: LossDetector::new(),
            store: MessageStore::new(),
            delivered: Vec::new(),
            attempts: HashMap::new(),
            pending_timers: HashMap::new(),
            next_token: 0,
        }
    }

    /// Messages delivered here, with delivery times.
    #[must_use]
    pub fn delivered(&self) -> &[(SimTime, MessageId)] {
        &self.delivered
    }

    /// Whether `id` was delivered here.
    #[must_use]
    pub fn has_delivered(&self, id: MessageId) -> bool {
        self.delivered.iter().any(|&(_, d)| d == id)
    }

    /// The message store (occupancy instrumentation).
    #[must_use]
    pub fn store(&self) -> &MessageStore {
        &self.store
    }

    fn is_designated(&self, msg: MessageId) -> bool {
        designated_bufferers(&self.members, msg, self.cfg.k).contains(&self.id)
    }

    fn request_from_bufferer(&mut self, ctx: &mut Ctx<'_, HashPacket>, msg: MessageId) {
        let attempts = self.attempts.entry(msg).or_insert(0);
        *attempts += 1;
        if *attempts > self.cfg.max_attempts {
            return;
        }
        let bufferers = designated_bufferers(&self.members, msg, self.cfg.k);
        let candidates: Vec<NodeId> = bufferers.into_iter().filter(|&b| b != self.id).collect();
        if candidates.is_empty() {
            return;
        }
        use rand::Rng;
        let target = candidates[ctx.rng().gen_range(0..candidates.len())];
        ctx.send(target, HashPacket::Request { msg });
        let token = self.next_token;
        self.next_token += 1;
        self.pending_timers.insert(token, msg);
        ctx.set_timer(self.cfg.request_timeout, token);
    }

    fn on_data_like(&mut self, ctx: &mut Ctx<'_, HashPacket>, data: DataPacket) {
        let outcome = self.detector.on_data(data.id);
        if !outcome.newly_received {
            return;
        }
        self.delivered.push((ctx.now(), data.id));
        self.attempts.remove(&data.id);
        // Only designated members buffer; everyone else keeps nothing
        // beyond delivery (the NGC '99 design point).
        if self.is_designated(data.id) {
            self.store.insert_long(data.id, data.payload, ctx.now());
        }
        for m in outcome.newly_missing {
            self.request_from_bufferer(ctx, m);
        }
    }
}

impl SimNode for HashNode {
    type Msg = HashPacket;

    fn on_packet(&mut self, ctx: &mut Ctx<'_, HashPacket>, from: NodeId, msg: HashPacket) {
        match msg {
            HashPacket::Data(d) | HashPacket::Repair(d) => self.on_data_like(ctx, d),
            HashPacket::Session { source, high } => {
                for m in self.detector.on_session(source, high) {
                    self.request_from_bufferer(ctx, m);
                }
            }
            HashPacket::Request { msg } => {
                if let Some(payload) = self.store.get(msg) {
                    self.store.note_use(msg, ctx.now());
                    ctx.send(from, HashPacket::Repair(DataPacket::new(msg, payload)));
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, HashPacket>, token: u64) {
        if let Some(msg) = self.pending_timers.remove(&token) {
            if self.detector.is_missing(msg) {
                self.request_from_bufferer(ctx, msg);
            }
        }
    }
}

/// A simulated group running the hash-buffering baseline.
#[derive(Debug)]
pub struct HashNetwork {
    sim: Sim<HashNode>,
    sender: NodeId,
    next_seq: SeqNo,
    sent_at: HashMap<MessageId, SimTime>,
}

impl HashNetwork {
    /// Builds the group over `topo` with node 0 as sender.
    #[must_use]
    pub fn new(topo: Topology, cfg: HashConfig, seed: u64) -> Self {
        let members: Vec<NodeId> = topo.nodes().collect();
        let nodes =
            topo.nodes().map(|id| HashNode::new(id, members.clone(), cfg.clone())).collect();
        let sim = Sim::new(topo, nodes, seed);
        HashNetwork { sim, sender: NodeId(0), next_seq: SeqNo::FIRST, sent_at: HashMap::new() }
    }

    /// The simulated topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.sim.topology()
    }

    /// Multicasts a payload with an explicit initial-delivery plan and
    /// advertises it to everyone via a session message (so missing members
    /// detect the loss immediately, matching the RRMP harness setup).
    pub fn multicast_with_plan(
        &mut self,
        payload: impl Into<Bytes>,
        plan: &DeliveryPlan,
    ) -> MessageId {
        let id = MessageId::new(self.sender, self.next_seq);
        self.next_seq = self.next_seq.next();
        let now = self.sim.now();
        self.sent_at.insert(id, now);
        let data = HashPacket::Data(DataPacket::new(id, payload.into()));
        let mut plan = plan.clone();
        plan.set_receives(self.sender, true);
        self.sim.inject(self.sender, self.sender, data.clone(), now);
        let mut without_sender = plan.clone();
        without_sender.set_receives(self.sender, false);
        self.sim.inject_multicast_plan(self.sender, &data, &without_sender, now);
        let session = HashPacket::Session { source: self.sender, high: id.seq };
        for n in self.sim.topology().nodes().collect::<Vec<_>>() {
            if !plan.receives(n) {
                self.sim.inject(n, self.sender, session.clone(), now);
            }
        }
        id
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Runs until `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Number of members that delivered `id`.
    #[must_use]
    pub fn delivered_count(&self, id: MessageId) -> usize {
        self.sim.nodes().filter(|(_, n)| n.has_delivered(id)).count()
    }

    /// Access to one node.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &HashNode {
        self.sim.node(id)
    }

    /// Builds the comparison report over `ids` at time `now`.
    #[must_use]
    pub fn report(&self, ids: &[MessageId]) -> RunReport {
        let now = self.sim.now();
        let members = self.sim.topology().node_count();
        let fully =
            self.sim.nodes().filter(|(_, n)| ids.iter().all(|&m| n.has_delivered(m))).count();
        let byte_time_total: u128 =
            self.sim.nodes().map(|(_, n)| n.store().byte_time_integral(now)).sum();
        let peaks: Vec<usize> = self.sim.nodes().map(|(_, n)| n.store().peak_entries()).collect();
        let mut latencies = Vec::new();
        let mut residual = 0usize;
        for &id in ids {
            let sent = self.sent_at.get(&id).copied().unwrap_or(SimTime::ZERO);
            for (_, n) in self.sim.nodes() {
                match n.delivered().iter().find(|&&(_, d)| d == id) {
                    Some(&(at, _)) if at > sent => {
                        // Normalize to a per-message recovery duration.
                        latencies.push(SimTime::ZERO + (at - sent));
                    }
                    Some(_) => {}
                    None => residual += 1,
                }
            }
        }
        RunReport {
            scheme: "hash-determ",
            fully_delivered_members: fully,
            members,
            byte_time_total,
            peak_entries_max: peaks.iter().copied().max().unwrap_or(0),
            peak_entries_mean: peaks.iter().sum::<usize>() as f64 / peaks.len().max(1) as f64,
            packets_sent: self.sim.counters().unicasts_sent,
            mean_recovery_latency_ms: mean_latency_ms(&latencies, SimTime::ZERO),
            residual_losses: residual,
            // The legacy stacks have no give-up accounting or fault
            // layer: any residual pair counts as still pending.
            residual_gave_up: 0,
            residual_pending: residual,
            recovery_gave_up: 0,
            faults_dropped: 0,
            faults_duplicated: 0,
            watchdog_rearms: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrmp_netsim::topology::presets::paper_region;

    fn mid(seq: u64) -> MessageId {
        MessageId::new(NodeId(0), SeqNo(seq))
    }

    #[test]
    fn designated_set_is_stable_and_sized() {
        let members: Vec<NodeId> = (0..100).map(NodeId).collect();
        let a = designated_bufferers(&members, mid(1), 6);
        let b = designated_bufferers(&members, mid(1), 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        // Different messages select (almost surely) different sets.
        let c = designated_bufferers(&members, mid(2), 6);
        assert_ne!(a, c);
    }

    #[test]
    fn load_spreads_across_messages() {
        // Over many messages, every member should be selected sometimes.
        let members: Vec<NodeId> = (0..20).map(NodeId).collect();
        let mut counts = vec![0usize; 20];
        for seq in 1..=400u64 {
            for b in designated_bufferers(&members, mid(seq), 4) {
                counts[b.index()] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c > 0), "some member never selected: {counts:?}");
    }

    #[test]
    fn recovery_via_designated_bufferers() {
        let topo = paper_region(30);
        let mut net = HashNetwork::new(topo, HashConfig::default(), 3);
        // Half the group misses the message.
        let plan = DeliveryPlan::only(net.topology(), (0..15).map(NodeId));
        let id = net.multicast_with_plan(&b"x"[..], &plan);
        net.run_until(SimTime::from_secs(2));
        assert_eq!(net.delivered_count(id), 30);
        // Only designated members buffer it.
        let buffered = (0..30).filter(|&i| net.node(NodeId(i)).store().contains(id)).count();
        assert!(buffered <= 6, "non-designated members must not buffer: {buffered}");
    }

    #[test]
    fn unlucky_bufferer_outage_still_recovers_if_any_designated_received() {
        let topo = paper_region(30);
        let mut net = HashNetwork::new(topo, HashConfig { k: 3, ..Default::default() }, 4);
        // Suppose only node 0 (the sender) holds it initially; whichever
        // designated members exist will fetch it transitively? No: in this
        // baseline only designated members ever serve requests, and they
        // miss it too — they recover from each other/the sender only if a
        // designated member holds it. Make sender designated by brute
        // force: find a message whose designated set contains node 0.
        let members: Vec<NodeId> = (0..30).map(NodeId).collect();
        let mut seq = 1u64;
        while !designated_bufferers(&members, mid(seq), 3).contains(&NodeId(0)) {
            seq += 1;
        }
        // Send seq-1 filler messages delivered everywhere so sequence
        // numbers line up.
        for _ in 1..seq {
            let all = DeliveryPlan::all(net.topology());
            net.multicast_with_plan(&b"fill"[..], &all);
        }
        let plan = DeliveryPlan::only(net.topology(), [NodeId(0)]);
        let id = net.multicast_with_plan(&b"x"[..], &plan);
        assert_eq!(id, mid(seq));
        net.run_until(SimTime::from_secs(5));
        assert_eq!(net.delivered_count(id), 30, "recovery through designated sender");
    }

    #[test]
    fn report_counts_residuals() {
        let topo = paper_region(10);
        let mut net = HashNetwork::new(topo, HashConfig::default(), 5);
        let plan = DeliveryPlan::all(net.topology());
        let id = net.multicast_with_plan(&b"x"[..], &plan);
        net.run_until(SimTime::from_millis(100));
        let report = net.report(&[id]);
        assert_eq!(report.fully_delivered_members, 10);
        assert_eq!(report.residual_losses, 0);
        assert!(report.byte_time_total > 0);
    }
}
