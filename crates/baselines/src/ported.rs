//! Baseline schemes as policies over the **shared** protocol engine.
//!
//! The legacy modules of this crate ([`crate::hash_buffering`],
//! [`crate::sender_based`]) are complete parallel protocol stacks — their
//! own packet enums, nodes, and networks — that cannot run on the sharded
//! engine, the churn scenarios, or the policy-sensitive benches. The
//! ported path replaces all of that with a [`PolicyKind`] selection on
//! the one [`RrmpNetwork`] engine; this module holds the glue the
//! comparisons need:
//!
//! * [`policy_config`] — a [`ProtocolConfig`] mirroring the legacy
//!   baselines' parameters (no periodic session ticks, the 60 ms direct
//!   request timeout, `k = 6` designated bufferers);
//! * [`multicast_with_session`] — the legacy injection pattern: one
//!   multicast plus a one-shot session advertisement to every member the
//!   plan skips, so missers detect the loss immediately;
//! * [`rrmp_report`] — the [`RunReport`] builder over an [`RrmpNetwork`],
//!   shared with the A1 ablation table.
//!
//! The `policy_differential` integration test asserts that runs through
//! this module reproduce the legacy stacks' `RunReport`s bit for bit on
//! identical seeds (single-region topologies, where uniform latency makes
//! the metrics independent of which equally-viable peer a random draw
//! picks).

use bytes::Bytes;
use rrmp_core::harness::RrmpNetwork;
use rrmp_core::ids::MessageId;
use rrmp_core::packet::Packet;
use rrmp_core::policy::PolicyKind;
use rrmp_core::prelude::ProtocolConfig;
use rrmp_netsim::loss::DeliveryPlan;
use rrmp_netsim::time::SimTime;

use crate::common::{mean_latency_ms, RunReport};

/// A [`ProtocolConfig`] running `kind` with the legacy baselines'
/// comparison parameters: no periodic session ticks (the legacy stacks
/// advertise once per multicast instead) and the legacy 60 ms direct
/// request timeout with 6 designated bufferers.
#[must_use]
pub fn policy_config(kind: PolicyKind) -> ProtocolConfig {
    ProtocolConfig::builder()
        .policy(kind)
        .periodic_sessions(false)
        .build()
        .expect("baseline policy config is valid")
}

/// Multicasts `payload` with an explicit initial-delivery plan and
/// advertises it via a one-shot session message to every member the plan
/// skips (the sender excluded) — exactly the legacy baselines' injection
/// pattern, so loss detection starts at the same instant in both stacks.
pub fn multicast_with_session(
    net: &mut RrmpNetwork,
    payload: impl Into<Bytes>,
    plan: &DeliveryPlan,
) -> MessageId {
    let now = net.now();
    let sender = net.sender_node();
    let id = net.multicast_with_plan(payload, plan);
    let session = Packet::Session { source: sender, high: id.seq };
    let skipped: Vec<_> =
        net.topology().nodes().filter(|&n| !plan.receives(n) && n != sender).collect();
    for n in skipped {
        net.inject_packet(n, sender, session.clone(), now);
    }
    id
}

/// Builds a [`RunReport`] from an RRMP network (mirrors the legacy
/// baselines' report builders, so rows are directly comparable).
#[must_use]
pub fn rrmp_report(
    scheme: &'static str,
    net: &RrmpNetwork,
    ids: &[MessageId],
    sent_at: &[SimTime],
) -> RunReport {
    let now = net.now();
    let members = net.topology().node_count();
    let fully = net.nodes().filter(|(_, n)| ids.iter().all(|&m| n.has_delivered(m))).count();
    let byte_time_total: u128 =
        net.nodes().map(|(_, n)| n.receiver().store().byte_time_integral(now)).sum();
    let peaks: Vec<usize> = net.nodes().map(|(_, n)| n.receiver().store().peak_entries()).collect();
    let mut latencies = Vec::new();
    let mut residual = 0usize;
    let mut residual_gave_up = 0usize;
    let mut residual_pending = 0usize;
    for (i, &id) in ids.iter().enumerate() {
        let sent = sent_at.get(i).copied().unwrap_or(SimTime::ZERO);
        for (_, n) in net.nodes() {
            match n.delivered().iter().find(|&&(_, d)| d == id) {
                // Normalize to a per-message recovery duration.
                Some(&(at, _)) if at > sent => latencies.push(SimTime::ZERO + (at - sent)),
                Some(_) => {}
                None => {
                    residual += 1;
                    // Split residual losses into clean give-ups and
                    // recovery still live at run end.
                    if n.receiver().recovery_pending(id) {
                        residual_pending += 1;
                    } else {
                        residual_gave_up += 1;
                    }
                }
            }
        }
    }
    let net_counters = net.net_counters();
    RunReport {
        scheme,
        fully_delivered_members: fully,
        members,
        byte_time_total,
        peak_entries_max: peaks.iter().copied().max().unwrap_or(0),
        peak_entries_mean: peaks.iter().sum::<usize>() as f64 / peaks.len().max(1) as f64,
        packets_sent: net_counters.unicasts_sent,
        mean_recovery_latency_ms: mean_latency_ms(&latencies, SimTime::ZERO),
        residual_losses: residual,
        residual_gave_up,
        residual_pending,
        recovery_gave_up: net
            .nodes()
            .map(|(_, n)| n.receiver().metrics().counters.recovery_gave_up)
            .sum(),
        faults_dropped: net_counters.faults_dropped,
        faults_duplicated: net_counters.faults_duplicated,
        watchdog_rearms: net
            .nodes()
            .map(|(_, n)| n.receiver().metrics().counters.watchdog_rearms)
            .sum(),
    }
}
