//! Differential tests: the hash-based and sender-based schemes, ported as
//! policies over the shared RRMP engine, must reproduce the **legacy
//! standalone stacks'** `RunReport` metrics on identical seeds.
//!
//! The scenarios run on single-region topologies (uniform intra-region
//! latency) with every designated bufferer receiving the initial
//! multicast, so the reported metrics — delivery counts, buffer
//! byte×time, peak occupancy, packet counts, recovery latency, residual
//! losses — are fully determined by the scheme, not by which
//! equally-viable peer a random draw picks. Under those conditions the
//! two implementations must agree *exactly*; any drift means the port
//! changed the algorithm.

use rrmp_baselines::ported::{multicast_with_session, policy_config, rrmp_report};
use rrmp_baselines::{
    designated_bufferers, HashConfig, HashNetwork, SenderBasedConfig, SenderBasedNetwork,
};
use rrmp_core::harness::RrmpNetwork;
use rrmp_core::ids::{MessageId, SeqNo};
use rrmp_core::policy::PolicyKind;
use rrmp_netsim::loss::DeliveryPlan;
use rrmp_netsim::time::{SimDuration, SimTime};
use rrmp_netsim::topology::{presets, NodeId, Topology};

const N: usize = 30;

fn mid(seq: u64) -> MessageId {
    MessageId::new(NodeId(0), SeqNo(seq))
}

fn topo() -> Topology {
    presets::paper_region(N)
}

/// Per-message plans where every designated bufferer (k = 6) receives the
/// initial multicast and a fixed set of other members misses it.
fn hash_plans(messages: u64) -> Vec<DeliveryPlan> {
    let members: Vec<NodeId> = (0..N as u32).map(NodeId).collect();
    (1..=messages)
        .map(|seq| {
            let mut holders = designated_bufferers(&members, mid(seq), 6);
            holders.extend((0..8).map(NodeId)); // sender + a few more holders
            DeliveryPlan::only(&topo(), holders)
        })
        .collect()
}

#[test]
fn hash_policy_matches_legacy_reports() {
    for seed in [3u64, 21] {
        let plans = hash_plans(3);

        // Legacy oracle: the standalone HashNetwork stack.
        let mut legacy = HashNetwork::new(topo(), HashConfig::default(), seed);
        let mut legacy_ids = Vec::new();
        for plan in &plans {
            legacy_ids.push(legacy.multicast_with_plan(&b"diff"[..], plan));
            let next = legacy.now() + SimDuration::from_millis(100);
            legacy.run_until(next);
        }
        legacy.run_until(SimTime::from_secs(2));
        let legacy_report = legacy.report(&legacy_ids);

        // Ported: the same scheme as a policy on the shared engine.
        let mut net = RrmpNetwork::new(topo(), policy_config(PolicyKind::HashBufferers), seed);
        let mut ids = Vec::new();
        let mut sent = Vec::new();
        for plan in &plans {
            sent.push(net.now());
            ids.push(multicast_with_session(&mut net, &b"diff"[..], plan));
            let next = net.now() + SimDuration::from_millis(100);
            net.run_until(next);
        }
        net.run_until(SimTime::from_secs(2));
        let ported_report = rrmp_report("hash-determ", &net, &ids, &sent);

        assert_eq!(ids, legacy_ids, "both stacks assign the same message ids");
        assert_eq!(
            ported_report, legacy_report,
            "ported hash policy diverged from the legacy stack (seed {seed})"
        );
        assert_eq!(ported_report.fully_delivered_members, N, "everyone recovers");
        assert!(ported_report.packets_sent > 0, "recovery traffic flowed");
    }
}

#[test]
fn sender_based_policy_matches_legacy_reports() {
    for seed in [5u64, 17] {
        // Everyone except the sender and a few holders misses each
        // message: all recovery funnels through node 0.
        let plans: Vec<DeliveryPlan> =
            (0..3).map(|_| DeliveryPlan::only(&topo(), (0..5).map(NodeId))).collect();

        let mut legacy = SenderBasedNetwork::new(topo(), SenderBasedConfig::default(), seed);
        let mut legacy_ids = Vec::new();
        for plan in &plans {
            legacy_ids.push(legacy.multicast_with_plan(&b"diff"[..], plan));
            let next = legacy.now() + SimDuration::from_millis(100);
            legacy.run_until(next);
        }
        legacy.run_until(SimTime::from_secs(2));
        let legacy_report = legacy.report(&legacy_ids);

        let mut net = RrmpNetwork::new(topo(), policy_config(PolicyKind::SenderBased), seed);
        let mut ids = Vec::new();
        let mut sent = Vec::new();
        for plan in &plans {
            sent.push(net.now());
            ids.push(multicast_with_session(&mut net, &b"diff"[..], plan));
            let next = net.now() + SimDuration::from_millis(100);
            net.run_until(next);
        }
        net.run_until(SimTime::from_secs(2));
        let ported_report = rrmp_report("sender-based", &net, &ids, &sent);

        assert_eq!(ids, legacy_ids);
        assert_eq!(
            ported_report, legacy_report,
            "ported sender-based policy diverged from the legacy stack (seed {seed})"
        );
        assert_eq!(ported_report.fully_delivered_members, N);
        // The implosion signature survives the port: only the sender buffers.
        assert_eq!(ported_report.peak_entries_max, 3, "sender holds the session");
        assert!(ported_report.peak_entries_mean < 0.2);
    }
}

#[test]
fn ported_policies_run_under_churn_and_on_the_sharded_engine() {
    // What the legacy stacks never could: hash buffering under scripted
    // churn, on the conservatively parallel engine, with identical traces
    // at every shard count.
    fn run(shards: usize) -> (usize, usize, u64) {
        let topo = presets::figure1_chain([8, 8, 8], SimDuration::from_millis(25));
        let cfg = policy_config(PolicyKind::HashBufferers);
        let mut net = RrmpNetwork::with_shards(topo, cfg, 11, shards);
        let plan = DeliveryPlan::all_but(net.topology(), (8..14).map(NodeId));
        let id = multicast_with_session(&mut net, &b"churn"[..], &plan);
        net.run_until(SimTime::from_millis(300));
        // A designated bufferer leaves: the duty hands off to the
        // best-ranked survivor instead of vanishing.
        let members: Vec<NodeId> = net.topology().nodes().collect();
        let bufferers = designated_bufferers(&members, id, 6);
        net.schedule_leave(bufferers[0], SimTime::from_millis(350));
        net.run_until(SimTime::from_secs(2));
        (net.delivered_count(id), net.buffered_count(id), net.total_counter(|c| c.handoffs_sent))
    }
    let sequential = run(1);
    assert_eq!(sequential.0, 24, "everyone delivered");
    assert!(sequential.2 >= 1, "leaver handed off its designated copy");
    // The handoff routes to the next-ranked designated member, which may
    // already hold a copy (duty merges) — so k-1 survivors is the floor.
    assert!(sequential.1 >= 5, "designated copies survive the leave: {sequential:?}");
    assert_eq!(sequential, run(2), "sharded run must match the sequential oracle");
    assert_eq!(sequential, run(4), "sharded run must match the sequential oracle");
}
