//! Differential tests: the hash-based and sender-based schemes, ported as
//! policies over the shared RRMP engine, must reproduce the **legacy
//! standalone stacks'** `RunReport` metrics on identical seeds.
//!
//! The scenarios run on single-region topologies (uniform intra-region
//! latency) with every designated bufferer receiving the initial
//! multicast, so the reported metrics — delivery counts, buffer
//! byte×time, peak occupancy, packet counts, recovery latency, residual
//! losses — are fully determined by the scheme, not by which
//! equally-viable peer a random draw picks. Under those conditions the
//! two implementations must agree *exactly*; any drift means the port
//! changed the algorithm.

use rrmp_baselines::ported::{multicast_with_session, policy_config, rrmp_report};
use rrmp_baselines::{
    designated_bufferers, HashConfig, HashNetwork, SenderBasedConfig, SenderBasedNetwork,
    StabilityConfig, StabilityNetwork, TreeConfig, TreeNetwork,
};
use rrmp_core::harness::RrmpNetwork;
use rrmp_core::ids::{MessageId, SeqNo};
use rrmp_core::policy::PolicyKind;
use rrmp_netsim::loss::DeliveryPlan;
use rrmp_netsim::time::{SimDuration, SimTime};
use rrmp_netsim::topology::{presets, NodeId, Topology};

const N: usize = 30;

fn mid(seq: u64) -> MessageId {
    MessageId::new(NodeId(0), SeqNo(seq))
}

fn topo() -> Topology {
    presets::paper_region(N)
}

/// Per-message plans where every designated bufferer (k = 6) receives the
/// initial multicast and a fixed set of other members misses it.
fn hash_plans(messages: u64) -> Vec<DeliveryPlan> {
    let members: Vec<NodeId> = (0..N as u32).map(NodeId).collect();
    (1..=messages)
        .map(|seq| {
            let mut holders = designated_bufferers(&members, mid(seq), 6);
            holders.extend((0..8).map(NodeId)); // sender + a few more holders
            DeliveryPlan::only(&topo(), holders)
        })
        .collect()
}

#[test]
fn hash_policy_matches_legacy_reports() {
    for seed in [3u64, 21] {
        let plans = hash_plans(3);

        // Legacy oracle: the standalone HashNetwork stack.
        let mut legacy = HashNetwork::new(topo(), HashConfig::default(), seed);
        let mut legacy_ids = Vec::new();
        for plan in &plans {
            legacy_ids.push(legacy.multicast_with_plan(&b"diff"[..], plan));
            let next = legacy.now() + SimDuration::from_millis(100);
            legacy.run_until(next);
        }
        legacy.run_until(SimTime::from_secs(2));
        let legacy_report = legacy.report(&legacy_ids);

        // Ported: the same scheme as a policy on the shared engine.
        let mut net = RrmpNetwork::new(topo(), policy_config(PolicyKind::HashBufferers), seed);
        let mut ids = Vec::new();
        let mut sent = Vec::new();
        for plan in &plans {
            sent.push(net.now());
            ids.push(multicast_with_session(&mut net, &b"diff"[..], plan));
            let next = net.now() + SimDuration::from_millis(100);
            net.run_until(next);
        }
        net.run_until(SimTime::from_secs(2));
        let ported_report = rrmp_report("hash-determ", &net, &ids, &sent);

        assert_eq!(ids, legacy_ids, "both stacks assign the same message ids");
        assert_eq!(
            ported_report, legacy_report,
            "ported hash policy diverged from the legacy stack (seed {seed})"
        );
        assert_eq!(ported_report.fully_delivered_members, N, "everyone recovers");
        assert!(ported_report.packets_sent > 0, "recovery traffic flowed");
    }
}

#[test]
fn sender_based_policy_matches_legacy_reports() {
    for seed in [5u64, 17] {
        // Everyone except the sender and a few holders misses each
        // message: all recovery funnels through node 0.
        let plans: Vec<DeliveryPlan> =
            (0..3).map(|_| DeliveryPlan::only(&topo(), (0..5).map(NodeId))).collect();

        let mut legacy = SenderBasedNetwork::new(topo(), SenderBasedConfig::default(), seed);
        let mut legacy_ids = Vec::new();
        for plan in &plans {
            legacy_ids.push(legacy.multicast_with_plan(&b"diff"[..], plan));
            let next = legacy.now() + SimDuration::from_millis(100);
            legacy.run_until(next);
        }
        legacy.run_until(SimTime::from_secs(2));
        let legacy_report = legacy.report(&legacy_ids);

        let mut net = RrmpNetwork::new(topo(), policy_config(PolicyKind::SenderBased), seed);
        let mut ids = Vec::new();
        let mut sent = Vec::new();
        for plan in &plans {
            sent.push(net.now());
            ids.push(multicast_with_session(&mut net, &b"diff"[..], plan));
            let next = net.now() + SimDuration::from_millis(100);
            net.run_until(next);
        }
        net.run_until(SimTime::from_secs(2));
        let ported_report = rrmp_report("sender-based", &net, &ids, &sent);

        assert_eq!(ids, legacy_ids);
        assert_eq!(
            ported_report, legacy_report,
            "ported sender-based policy diverged from the legacy stack (seed {seed})"
        );
        assert_eq!(ported_report.fully_delivered_members, N);
        // The implosion signature survives the port: only the sender buffers.
        assert_eq!(ported_report.peak_entries_max, 3, "sender holds the session");
        assert!(ported_report.peak_entries_mean < 0.2);
    }
}

#[test]
fn stability_policy_matches_legacy_reports() {
    // Single-misser plans: every pull target a misser draws holds the
    // message (everyone buffers everything until stability), so the
    // reported metrics are fully determined by the scheme — request and
    // repair counts, delivery times, history traffic, and the
    // stability-driven discard times all line up exactly even though the
    // two stacks draw from unrelated RNG streams.
    for seed in [3u64, 29] {
        let plans: Vec<DeliveryPlan> =
            (1..=3u32).map(|i| DeliveryPlan::all_but(&topo(), [NodeId(10 + i)])).collect();

        // Legacy oracle: the standalone StabilityNetwork stack.
        let mut legacy = StabilityNetwork::new(topo(), StabilityConfig::default(), seed);
        let mut legacy_ids = Vec::new();
        for plan in &plans {
            legacy_ids.push(legacy.multicast_with_plan(&b"diff"[..], plan));
            let next = legacy.now() + SimDuration::from_millis(100);
            legacy.run_until(next);
        }
        legacy.run_until(SimTime::from_secs(2));
        let legacy_report = legacy.report(&legacy_ids);

        // Ported: the same scheme as a policy on the shared engine.
        let mut net = RrmpNetwork::new(topo(), policy_config(PolicyKind::Stability), seed);
        let mut ids = Vec::new();
        let mut sent = Vec::new();
        for plan in &plans {
            sent.push(net.now());
            ids.push(multicast_with_session(&mut net, &b"diff"[..], plan));
            let next = net.now() + SimDuration::from_millis(100);
            net.run_until(next);
        }
        net.run_until(SimTime::from_secs(2));
        let ported_report = rrmp_report("stability", &net, &ids, &sent);

        assert_eq!(ids, legacy_ids, "both stacks assign the same message ids");
        assert_eq!(
            ported_report, legacy_report,
            "ported stability policy diverged from the legacy stack (seed {seed})"
        );
        assert_eq!(ported_report.fully_delivered_members, N, "everyone recovers");
        // The scheme's signature costs survive the port: stable buffers
        // drained everywhere, and history traffic kept flowing even after
        // all losses were repaired.
        for &id in &ids {
            assert_eq!(net.buffered_count(id), 0, "stable {id:?} must drain");
        }
        assert_eq!(
            net.total_counter(|c| c.history_digests_sent),
            legacy.history_packets(),
            "identical standing history overhead"
        );
        assert!(net.total_counter(|c| c.stable_discards) >= (N * 3) as u64);
    }
}

#[test]
fn tree_rmtp_policy_matches_legacy_reports() {
    // The tree scheme draws no randomness at all — NACK targets are the
    // fixed view-derived repair servers — so whole-region losses are
    // exactly reproducible, including the parent-server escalation.
    for seed in [7u64, 23] {
        let topo_of = || presets::figure1_chain([4, 4, 4], SimDuration::from_millis(25));
        let plans = [
            DeliveryPlan::all_but(&topo_of(), (8..12).map(NodeId)), // region 2 entirely
            DeliveryPlan::all_but(&topo_of(), [NodeId(5), NodeId(9)]), // scattered
            DeliveryPlan::all(&topo_of()),
        ];

        let mut legacy = TreeNetwork::new(topo_of(), TreeConfig::default(), seed);
        let mut legacy_ids = Vec::new();
        for plan in &plans {
            legacy_ids.push(legacy.multicast_with_plan(&b"diff"[..], plan));
            let next = legacy.now() + SimDuration::from_millis(100);
            legacy.run_until(next);
        }
        legacy.run_until(SimTime::from_secs(2));
        let legacy_report = legacy.report(&legacy_ids);

        let mut net = RrmpNetwork::new(topo_of(), policy_config(PolicyKind::TreeRmtp), seed);
        let mut ids = Vec::new();
        let mut sent = Vec::new();
        for plan in &plans {
            sent.push(net.now());
            ids.push(multicast_with_session(&mut net, &b"diff"[..], plan));
            let next = net.now() + SimDuration::from_millis(100);
            net.run_until(next);
        }
        net.run_until(SimTime::from_secs(2));
        let ported_report = rrmp_report("tree-rmtp", &net, &ids, &sent);

        assert_eq!(ids, legacy_ids);
        assert_eq!(
            ported_report, legacy_report,
            "ported tree-rmtp policy diverged from the legacy stack (seed {seed})"
        );
        assert_eq!(ported_report.fully_delivered_members, 12);
        // The load-concentration signature survives the port: only the
        // three repair servers ever buffer, everyone else holds nothing.
        assert_eq!(ported_report.peak_entries_max, 3, "a server holds the session");
        assert!(ported_report.peak_entries_mean < 1.0);
        for server in [0u32, 4, 8] {
            assert_eq!(net.node(NodeId(server)).receiver().store().len(), 3);
        }
        for other in (0..12u32).filter(|n| ![0, 4, 8].contains(n)) {
            assert_eq!(net.node(NodeId(other)).receiver().store().len(), 0);
        }
    }
}

#[test]
fn ported_policies_run_under_churn_and_on_the_sharded_engine() {
    // What the legacy stacks never could: hash buffering under scripted
    // churn, on the conservatively parallel engine, with identical traces
    // at every shard count.
    fn run(shards: usize) -> (usize, usize, u64) {
        let topo = presets::figure1_chain([8, 8, 8], SimDuration::from_millis(25));
        let cfg = policy_config(PolicyKind::HashBufferers);
        let mut net = RrmpNetwork::with_shards(topo, cfg, 11, shards);
        let plan = DeliveryPlan::all_but(net.topology(), (8..14).map(NodeId));
        let id = multicast_with_session(&mut net, &b"churn"[..], &plan);
        net.run_until(SimTime::from_millis(300));
        // A designated bufferer leaves: the duty hands off to the
        // best-ranked survivor instead of vanishing.
        let members: Vec<NodeId> = net.topology().nodes().collect();
        let bufferers = designated_bufferers(&members, id, 6);
        net.schedule_leave(bufferers[0], SimTime::from_millis(350));
        net.run_until(SimTime::from_secs(2));
        (net.delivered_count(id), net.buffered_count(id), net.total_counter(|c| c.handoffs_sent))
    }
    let sequential = run(1);
    assert_eq!(sequential.0, 24, "everyone delivered");
    assert!(sequential.2 >= 1, "leaver handed off its designated copy");
    // The handoff routes to the next-ranked designated member, which may
    // already hold a copy (duty merges) — so k-1 survivors is the floor.
    assert!(sequential.1 >= 5, "designated copies survive the leave: {sequential:?}");
    assert_eq!(sequential, run(2), "sharded run must match the sequential oracle");
    assert_eq!(sequential, run(4), "sharded run must match the sequential oracle");
}

#[test]
fn stability_policy_runs_under_churn_and_on_the_sharded_engine() {
    // What the legacy stability stack never could: multi-region groups on
    // the conservatively parallel engine, and churn that *shrinks the
    // stability quorum* instead of freezing every buffer on a departed
    // member's silence.
    fn run(shards: usize) -> (usize, usize, u64, u64) {
        let topo = presets::figure1_chain([6, 6, 6], SimDuration::from_millis(25));
        let cfg = policy_config(PolicyKind::Stability);
        let mut net = RrmpNetwork::with_shards(topo, cfg, 31, shards);
        let plan = DeliveryPlan::all_but(net.topology(), [NodeId(9)]);
        let id = multicast_with_session(&mut net, &b"churn"[..], &plan);
        net.run_until(SimTime::from_millis(200));
        // A member leaves mid-session. Its silence must not pin the
        // group's buffers: the quorum re-derives from the views.
        net.schedule_leave(NodeId(14), SimTime::from_millis(250));
        let id2 = {
            net.run_until(SimTime::from_millis(400));
            let plan = DeliveryPlan::all_but(net.topology(), [NodeId(3), NodeId(14)]);
            multicast_with_session(&mut net, &b"churn2"[..], &plan)
        };
        net.run_until(SimTime::from_secs(3));
        (
            net.delivered_count(id),
            // Survivors drained both messages once stable — the leaver
            // no longer gates the frontier.
            net.buffered_count(id) + net.buffered_count(id2),
            net.total_counter(|c| c.stable_discards),
            net.total_counter(|c| c.history_digests_sent),
        )
    }
    let sequential = run(1);
    assert_eq!(sequential.0, 18, "everyone delivered the pre-churn message");
    assert_eq!(sequential.1, 0, "stability must drain despite the leave: {sequential:?}");
    assert!(sequential.2 >= 17 * 2, "discards happened on survivors");
    assert!(sequential.3 > 100, "history kept flowing");
    assert_eq!(sequential, run(2), "sharded run must match the sequential oracle");
    assert_eq!(sequential, run(4), "sharded run must match the sequential oracle");
}

#[test]
fn tree_rmtp_policy_runs_under_churn_and_on_the_sharded_engine() {
    // A repair server leaves: the session hands off to the next-lowest
    // member, which inherits the role once the views drop the leaver —
    // and later losses recover through the new server, on every shard
    // layout identically.
    fn run(shards: usize) -> (usize, usize, u64, usize) {
        let topo = presets::figure1_chain([6, 6, 6], SimDuration::from_millis(25));
        let cfg = policy_config(PolicyKind::TreeRmtp);
        let mut net = RrmpNetwork::with_shards(topo, cfg, 17, shards);
        // Region 1 (nodes 6..12) misses entirely; its server (node 6)
        // fetches from region 0's server and serves its receivers.
        let plan = DeliveryPlan::all_but(net.topology(), (6..12).map(NodeId));
        let id = multicast_with_session(&mut net, &b"churn"[..], &plan);
        net.run_until(SimTime::from_millis(400));
        // The region-1 server leaves; node 7 inherits role and buffers.
        net.schedule_leave(NodeId(6), SimTime::from_millis(450));
        net.run_until(SimTime::from_millis(600));
        // A fresh loss in region 1 must now recover through node 7.
        let plan = DeliveryPlan::all_but(net.topology(), [NodeId(8)]);
        let id2 = multicast_with_session(&mut net, &b"churn2"[..], &plan);
        net.run_until(SimTime::from_secs(3));
        (
            net.delivered_count(id),
            net.delivered_count(id2),
            net.total_counter(|c| c.handoffs_sent),
            net.node(NodeId(7)).receiver().store().len(),
        )
    }
    let sequential = run(1);
    assert_eq!(sequential.0, 18, "everyone delivered the pre-churn message");
    assert_eq!(sequential.1, 17, "all survivors delivered the post-churn message");
    assert!(sequential.2 >= 1, "the leaving server handed its session off");
    assert_eq!(sequential.3, 2, "node 7 inherited the server duty and buffers");
    assert_eq!(sequential, run(2), "sharded run must match the sequential oracle");
    assert_eq!(sequential, run(4), "sharded run must match the sequential oracle");
}
