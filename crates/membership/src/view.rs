//! Membership views.
//!
//! RRMP's system model (paper §2.1) requires each receiver to know "other
//! receivers in its region as well as receivers in its parent region". A
//! [`RegionView`] is one member's (possibly stale) picture of one region; a
//! [`HierarchyView`] bundles the own-region and parent-region views a
//! receiver needs for error recovery.
//!
//! Views are interval-compressed ([`IdRangeSet`]): topologies hand out
//! contiguous ids region by region, so an unchurned region of any size
//! costs one `(lo, hi)` pair instead of one tree node per member — the
//! difference between a 1M-member simulation fitting in memory or not,
//! since every receiver holds a view of its own and parent regions.

use rand::Rng;
use rrmp_netsim::topology::{NodeId, RegionId, Topology};

use crate::index::IdRangeSet;

/// One member's view of the membership of one region.
///
/// Views are versioned: every mutation bumps [`RegionView::version`], which
/// lets consumers (e.g. cached probability parameters that depend on region
/// size) cheaply detect staleness.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RegionView {
    region: RegionId,
    members: IdRangeSet,
    version: u64,
}

impl RegionView {
    /// Creates a view of `region` containing `members`.
    #[must_use]
    pub fn new<I: IntoIterator<Item = NodeId>>(region: RegionId, members: I) -> Self {
        RegionView { region, members: members.into_iter().map(|n| n.0).collect(), version: 0 }
    }

    /// Creates a view of `region` covering the contiguous id range
    /// `lo..=hi` in O(1) — the fast path for topology-derived views,
    /// where each region's members are one dense id run.
    #[must_use]
    pub fn from_contiguous(region: RegionId, lo: NodeId, hi: NodeId) -> Self {
        RegionView { region, members: IdRangeSet::from_range(lo.0, hi.0), version: 0 }
    }

    /// The region this view describes.
    #[must_use]
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Number of members in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `node` is in the view.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(node.0)
    }

    /// Monotone version counter; bumped by every mutation.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Members in ascending id order.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().map(NodeId)
    }

    /// The lowest-id member of the view, if any — the deterministic
    /// role-assignment rule tree-based repair hierarchies use (every
    /// member with a consistent view derives the same repair server, and
    /// churn re-derives the role from the shrunken view).
    #[must_use]
    pub fn min_member(&self) -> Option<NodeId> {
        self.members.min().map(NodeId)
    }

    /// Adds `node`; returns `true` if it was not already present.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let added = self.members.insert(node.0);
        if added {
            self.version += 1;
        }
        added
    }

    /// Removes `node`; returns `true` if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let removed = self.members.remove(node.0);
        if removed {
            self.version += 1;
        }
        removed
    }

    /// Picks a member uniformly at random.
    pub fn random_member<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        if self.members.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..self.members.len());
        self.members.nth(idx).map(NodeId)
    }

    /// Picks a member uniformly at random, excluding `exclude` — the
    /// selection primitive behind "send a request to a receiver chosen
    /// uniformly at random from all receivers in its region".
    pub fn random_other<R: Rng + ?Sized>(&self, rng: &mut R, exclude: NodeId) -> Option<NodeId> {
        let n = self.members.len();
        if n == 0 || (n == 1 && self.members.contains(exclude.0)) {
            return None;
        }
        if !self.members.contains(exclude.0) {
            return self.random_member(rng);
        }
        // Rejection-free: draw an index over the n-1 non-excluded members,
        // then skip past the excluded one by rank so the pick is the
        // idx-th non-excluded member in ascending order (identical to the
        // previous filter-and-nth scan, without materializing members).
        let idx = rng.gen_range(0..n - 1);
        let rank = self.members.rank(exclude.0);
        let k = if idx >= rank { idx + 1 } else { idx };
        self.members.nth(k).map(NodeId)
    }
}

/// The pair of views a receiver needs: its own region and its parent region.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HierarchyView {
    own: RegionView,
    parent: Option<RegionView>,
}

impl HierarchyView {
    /// Creates a view from explicit region views.
    #[must_use]
    pub fn new(own: RegionView, parent: Option<RegionView>) -> Self {
        HierarchyView { own, parent }
    }

    /// Builds the full (accurate) view for `node` from a [`Topology`] — the
    /// usual starting point before churn perturbs it.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of `topo`.
    #[must_use]
    pub fn from_topology(topo: &Topology, node: NodeId) -> Self {
        let region = topo.region_of(node);
        let own = region_view_of(topo, region);
        let parent = topo.parent_of(region).map(|p| region_view_of(topo, p));
        HierarchyView { own, parent }
    }

    /// The member's own region view.
    #[must_use]
    pub fn own(&self) -> &RegionView {
        &self.own
    }

    /// Mutable access to the own-region view.
    pub fn own_mut(&mut self) -> &mut RegionView {
        &mut self.own
    }

    /// The parent-region view, or `None` if this member's region is the
    /// root of the hierarchy (like the sender's region).
    #[must_use]
    pub fn parent(&self) -> Option<&RegionView> {
        self.parent.as_ref()
    }

    /// Mutable access to the parent-region view.
    pub fn parent_mut(&mut self) -> Option<&mut RegionView> {
        self.parent.as_mut()
    }

    /// The id of the member's own region.
    #[must_use]
    pub fn region(&self) -> RegionId {
        self.own.region()
    }
}

/// Builds the view of one region, taking the O(1) contiguous fast path
/// when the topology's member list is a dense id run (always true for
/// `TopologyBuilder` output, which numbers nodes region by region).
fn region_view_of(topo: &Topology, region: RegionId) -> RegionView {
    let members = topo.members_of(region);
    match (members.first(), members.last()) {
        (Some(&lo), Some(&hi)) if (hi.0 - lo.0) as usize + 1 == members.len() => {
            RegionView::from_contiguous(region, lo, hi)
        }
        _ => RegionView::new(region, members.iter().copied()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrmp_netsim::rng::SeedSequence;
    use rrmp_netsim::time::SimDuration;
    use rrmp_netsim::topology::TopologyBuilder;

    fn view(ids: &[u32]) -> RegionView {
        RegionView::new(RegionId(0), ids.iter().map(|&i| NodeId(i)))
    }

    #[test]
    fn insert_remove_version() {
        let mut v = view(&[1, 2]);
        assert_eq!(v.version(), 0);
        assert!(v.insert(NodeId(3)));
        assert!(!v.insert(NodeId(3)));
        assert_eq!(v.version(), 1);
        assert!(v.remove(NodeId(1)));
        assert!(!v.remove(NodeId(1)));
        assert_eq!(v.version(), 2);
        assert_eq!(v.len(), 2);
        assert!(v.contains(NodeId(2)));
        assert!(!v.contains(NodeId(1)));
    }

    #[test]
    fn min_member_follows_churn() {
        let mut v = view(&[3, 1, 7]);
        assert_eq!(v.min_member(), Some(NodeId(1)));
        v.remove(NodeId(1));
        assert_eq!(v.min_member(), Some(NodeId(3)));
        assert_eq!(view(&[]).min_member(), None);
    }

    #[test]
    fn contiguous_view_matches_explicit() {
        let fast = RegionView::from_contiguous(RegionId(2), NodeId(10), NodeId(14));
        let slow = RegionView::new(RegionId(2), (10..=14).map(NodeId));
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 5);
        assert_eq!(fast.min_member(), Some(NodeId(10)));
        let members: Vec<NodeId> = fast.members().collect();
        assert_eq!(members, (10..=14).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn random_other_excludes_self() {
        let v = view(&[0, 1, 2, 3, 4]);
        let mut rng = SeedSequence::new(1).rng_for(0);
        for _ in 0..200 {
            let pick = v.random_other(&mut rng, NodeId(2)).unwrap();
            assert_ne!(pick, NodeId(2));
            assert!(v.contains(pick));
        }
    }

    #[test]
    fn random_other_is_roughly_uniform() {
        let v = view(&[0, 1, 2, 3]);
        let mut rng = SeedSequence::new(2).rng_for(0);
        let mut counts = [0u32; 4];
        for _ in 0..3000 {
            let pick = v.random_other(&mut rng, NodeId(0)).unwrap();
            counts[pick.0 as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        for &c in &counts[1..] {
            assert!((800..1200).contains(&c), "counts {counts:?} not uniform");
        }
    }

    #[test]
    fn random_other_edge_cases() {
        let mut rng = SeedSequence::new(3).rng_for(0);
        let empty = view(&[]);
        assert_eq!(empty.random_other(&mut rng, NodeId(0)), None);
        assert_eq!(empty.random_member(&mut rng), None);
        let only_me = view(&[7]);
        assert_eq!(only_me.random_other(&mut rng, NodeId(7)), None);
        let not_me = view(&[5]);
        assert_eq!(not_me.random_other(&mut rng, NodeId(9)), Some(NodeId(5)));
    }

    #[test]
    fn hierarchy_from_topology() {
        let topo = TopologyBuilder::new()
            .inter_region_one_way(SimDuration::from_millis(20))
            .region(3, None)
            .region(2, Some(0))
            .build()
            .unwrap();
        // Node 4 is in region 1; its parent region is 0.
        let h = HierarchyView::from_topology(&topo, NodeId(4));
        assert_eq!(h.region(), RegionId(1));
        assert_eq!(h.own().len(), 2);
        assert_eq!(h.parent().unwrap().len(), 3);
        assert!(h.parent().unwrap().contains(NodeId(0)));
        // Node 0 is in the root region; no parent.
        let root = HierarchyView::from_topology(&topo, NodeId(0));
        assert!(root.parent().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rrmp_netsim::rng::SeedSequence;
    use std::collections::BTreeSet;

    proptest! {
        /// random_other never returns the excluded node and always returns a
        /// member, for any view contents.
        #[test]
        fn random_other_sound(
            ids in proptest::collection::btree_set(0u32..64, 0..20),
            exclude in 0u32..64,
            seed in 0u64..1000,
        ) {
            let v = RegionView::new(RegionId(0), ids.iter().map(|&i| NodeId(i)));
            let mut rng = SeedSequence::new(seed).rng_for(0);
            match v.random_other(&mut rng, NodeId(exclude)) {
                Some(pick) => {
                    prop_assert_ne!(pick, NodeId(exclude));
                    prop_assert!(v.contains(pick));
                }
                None => {
                    // Only legitimate when the view is empty or holds just
                    // the excluded node.
                    prop_assert!(v.is_empty() || (v.len() == 1 && v.contains(NodeId(exclude))));
                }
            }
        }

        /// The interval-compressed view draws the same random members as
        /// the original BTreeSet-backed implementation: the k-th ascending
        /// member for random_member, the k-th ascending non-excluded
        /// member for random_other. Trace stability across the refactor
        /// depends on this.
        #[test]
        fn random_picks_match_btreeset_model(
            ids in proptest::collection::btree_set(0u32..64, 1..20),
            exclude in 0u32..64,
            seed in 0u64..1000,
        ) {
            let v = RegionView::new(RegionId(0), ids.iter().map(|&i| NodeId(i)));
            let model: BTreeSet<u32> = ids.clone();

            let mut rng = SeedSequence::new(seed).rng_for(0);
            let mut model_rng = SeedSequence::new(seed).rng_for(0);

            let pick = v.random_member(&mut rng);
            let idx = model_rng.gen_range(0..model.len());
            prop_assert_eq!(pick, model.iter().nth(idx).map(|&i| NodeId(i)));

            let pick = v.random_other(&mut rng, NodeId(exclude));
            let expected = {
                let n = model.len();
                if n == 0 || (n == 1 && model.contains(&exclude)) {
                    None
                } else if !model.contains(&exclude) {
                    let idx = model_rng.gen_range(0..n);
                    model.iter().nth(idx).map(|&i| NodeId(i))
                } else {
                    let idx = model_rng.gen_range(0..n - 1);
                    model.iter().filter(|&&m| m != exclude).nth(idx).map(|&i| NodeId(i))
                }
            };
            prop_assert_eq!(pick, expected);
        }
    }
}
