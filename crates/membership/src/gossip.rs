//! Gossip-style heartbeat dissemination and failure detection.
//!
//! RRMP builds on "our previous work of … the Gossip-style Failure
//! Detection protocol" (van Renesse, Minsky, Hayden — Middleware '98).
//! Each member maintains a heartbeat counter per region member; it
//! periodically increments its own counter and gossips its table to a few
//! random neighbors; tables merge by taking per-member maxima. A member
//! whose counter has not increased for `fail_after` is declared failed;
//! failed entries are garbage-collected after `cleanup_after`.
//!
//! The implementation is sans-io in the same style as the protocol core:
//! [`GossipState`] consumes ticks and digests and returns the packets to
//! send plus the [`ViewEvent`]s it detected.

use std::collections::BTreeMap;

use rand::Rng;
use rrmp_netsim::time::{SimDuration, SimTime};
use rrmp_netsim::topology::NodeId;

/// Configuration for the gossip failure detector.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GossipConfig {
    /// How often each member gossips (and bumps its own heartbeat).
    pub interval: SimDuration,
    /// How many random targets receive each gossip round.
    pub fanout: usize,
    /// Declare a member failed if its heartbeat is stale this long.
    pub fail_after: SimDuration,
    /// Forget failed members entirely after this much additional time.
    pub cleanup_after: SimDuration,
}

impl Default for GossipConfig {
    /// Defaults scaled for a 10 ms-RTT region: gossip every 100 ms,
    /// fanout 1, fail after 1 s of staleness, clean up after 2 s more.
    fn default() -> Self {
        GossipConfig {
            interval: SimDuration::from_millis(100),
            fanout: 1,
            fail_after: SimDuration::from_secs(1),
            cleanup_after: SimDuration::from_secs(2),
        }
    }
}

/// Liveness verdict for a member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Heartbeats are fresh.
    Alive,
    /// Heartbeats went stale; the member is considered crashed.
    Failed,
}

#[derive(Debug, Clone)]
struct HeartbeatEntry {
    counter: u64,
    /// Local time when `counter` last increased.
    last_bump: SimTime,
    liveness: Liveness,
}

/// A gossip digest: the sender's heartbeat table.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Digest {
    /// `(member, heartbeat counter)` pairs.
    pub heartbeats: Vec<(NodeId, u64)>,
}

/// A membership change detected by the failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewEvent {
    /// A previously unknown (or cleaned-up) member appeared.
    Joined(NodeId),
    /// A member's heartbeats went stale.
    Failed(NodeId),
    /// A member previously declared failed produced fresh heartbeats.
    Recovered(NodeId),
    /// A failed member was garbage-collected from the table.
    Removed(NodeId),
}

/// Sans-io gossip failure-detector state for one member.
#[derive(Debug, Clone)]
pub struct GossipState {
    self_id: NodeId,
    cfg: GossipConfig,
    entries: BTreeMap<NodeId, HeartbeatEntry>,
}

impl GossipState {
    /// Creates the state for `self_id`, pre-populated with `members`
    /// (typically the initial region membership), all assumed alive at
    /// `now`.
    #[must_use]
    pub fn new<I: IntoIterator<Item = NodeId>>(
        self_id: NodeId,
        members: I,
        cfg: GossipConfig,
        now: SimTime,
    ) -> Self {
        let mut entries = BTreeMap::new();
        for m in members {
            entries.insert(
                m,
                HeartbeatEntry { counter: 0, last_bump: now, liveness: Liveness::Alive },
            );
        }
        entries.entry(self_id).or_insert(HeartbeatEntry {
            counter: 0,
            last_bump: now,
            liveness: Liveness::Alive,
        });
        GossipState { self_id, cfg, entries }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &GossipConfig {
        &self.cfg
    }

    /// One gossip round: bumps the own heartbeat and returns up to
    /// `fanout` random alive targets along with the digest to send them.
    pub fn on_tick<R: Rng + ?Sized>(&mut self, now: SimTime, rng: &mut R) -> (Vec<NodeId>, Digest) {
        let me = self.entries.get_mut(&self.self_id).expect("own entry always present");
        me.counter += 1;
        me.last_bump = now;

        let candidates: Vec<NodeId> = self
            .entries
            .iter()
            .filter(|(&id, e)| id != self.self_id && e.liveness == Liveness::Alive)
            .map(|(&id, _)| id)
            .collect();
        let mut targets = Vec::new();
        if !candidates.is_empty() {
            for _ in 0..self.cfg.fanout.min(candidates.len()) {
                // Sampling with replacement is faithful to the original
                // gossip protocol; duplicates just waste one packet.
                let pick = candidates[rng.gen_range(0..candidates.len())];
                targets.push(pick);
            }
        }
        (targets, self.digest())
    }

    /// The current digest (own table snapshot).
    #[must_use]
    pub fn digest(&self) -> Digest {
        Digest { heartbeats: self.entries.iter().map(|(&id, e)| (id, e.counter)).collect() }
    }

    /// Merges a received digest; returns any membership events this
    /// exposes (new members, recoveries).
    pub fn on_digest(&mut self, digest: &Digest, now: SimTime) -> Vec<ViewEvent> {
        let mut events = Vec::new();
        for &(id, counter) in &digest.heartbeats {
            match self.entries.get_mut(&id) {
                Some(entry) => {
                    if counter > entry.counter {
                        entry.counter = counter;
                        entry.last_bump = now;
                        if entry.liveness == Liveness::Failed {
                            entry.liveness = Liveness::Alive;
                            events.push(ViewEvent::Recovered(id));
                        }
                    }
                }
                None => {
                    self.entries.insert(
                        id,
                        HeartbeatEntry { counter, last_bump: now, liveness: Liveness::Alive },
                    );
                    events.push(ViewEvent::Joined(id));
                }
            }
        }
        events
    }

    /// Sweeps for stale members; returns failure/removal events.
    pub fn check_failures(&mut self, now: SimTime) -> Vec<ViewEvent> {
        let mut events = Vec::new();
        let mut to_remove = Vec::new();
        for (&id, entry) in &mut self.entries {
            if id == self.self_id {
                continue;
            }
            let stale = now.saturating_since(entry.last_bump);
            match entry.liveness {
                Liveness::Alive => {
                    if stale >= self.cfg.fail_after {
                        entry.liveness = Liveness::Failed;
                        events.push(ViewEvent::Failed(id));
                    }
                }
                Liveness::Failed => {
                    if stale >= self.cfg.fail_after + self.cfg.cleanup_after {
                        to_remove.push(id);
                    }
                }
            }
        }
        for id in to_remove {
            self.entries.remove(&id);
            events.push(ViewEvent::Removed(id));
        }
        events
    }

    /// Members currently considered alive (including self).
    pub fn alive_members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().filter(|(_, e)| e.liveness == Liveness::Alive).map(|(&id, _)| id)
    }

    /// The liveness verdict for `node`, if known.
    #[must_use]
    pub fn liveness_of(&self, node: NodeId) -> Option<Liveness> {
        self.entries.get(&node).map(|e| e.liveness)
    }

    /// The heartbeat counter for `node`, if known.
    #[must_use]
    pub fn heartbeat_of(&self, node: NodeId) -> Option<u64> {
        self.entries.get(&node).map(|e| e.counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrmp_netsim::rng::SeedSequence;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn mk(n: u32) -> GossipState {
        GossipState::new(NodeId(0), (0..n).map(NodeId), GossipConfig::default(), SimTime::ZERO)
    }

    #[test]
    fn tick_bumps_own_counter_and_targets_alive() {
        let mut g = mk(4);
        let mut rng = SeedSequence::new(1).rng_for(0);
        let (targets, digest) = g.on_tick(t(100), &mut rng);
        assert_eq!(targets.len(), 1);
        assert_ne!(targets[0], NodeId(0));
        assert_eq!(g.heartbeat_of(NodeId(0)), Some(1));
        assert_eq!(digest.heartbeats.len(), 4);
    }

    #[test]
    fn digest_merge_takes_maxima_and_refreshes() {
        let mut g = mk(3);
        let fresh = Digest { heartbeats: vec![(NodeId(1), 5), (NodeId(2), 0)] };
        let events = g.on_digest(&fresh, t(50));
        assert!(events.is_empty());
        assert_eq!(g.heartbeat_of(NodeId(1)), Some(5));
        // Counter 0 is not news (not greater), so node 2 stays at bump time 0.
        let stale = Digest { heartbeats: vec![(NodeId(1), 3)] };
        g.on_digest(&stale, t(60));
        assert_eq!(g.heartbeat_of(NodeId(1)), Some(5));
    }

    #[test]
    fn unknown_member_joins() {
        let mut g = mk(2);
        let events = g.on_digest(&Digest { heartbeats: vec![(NodeId(9), 1)] }, t(10));
        assert_eq!(events, vec![ViewEvent::Joined(NodeId(9))]);
        assert_eq!(g.liveness_of(NodeId(9)), Some(Liveness::Alive));
    }

    #[test]
    fn stale_member_fails_then_gets_cleaned_up() {
        let mut g = mk(2);
        // Node 1 never produces heartbeats. Default fail_after = 1s.
        let events = g.check_failures(t(999));
        assert!(events.is_empty());
        let events = g.check_failures(t(1000));
        assert_eq!(events, vec![ViewEvent::Failed(NodeId(1))]);
        assert_eq!(g.liveness_of(NodeId(1)), Some(Liveness::Failed));
        // cleanup_after = 2s beyond fail_after.
        let events = g.check_failures(t(3000));
        assert_eq!(events, vec![ViewEvent::Removed(NodeId(1))]);
        assert_eq!(g.liveness_of(NodeId(1)), None);
    }

    #[test]
    fn failed_member_recovers_on_fresh_heartbeat() {
        let mut g = mk(2);
        g.check_failures(t(1500));
        assert_eq!(g.liveness_of(NodeId(1)), Some(Liveness::Failed));
        let events = g.on_digest(&Digest { heartbeats: vec![(NodeId(1), 7)] }, t(1600));
        assert_eq!(events, vec![ViewEvent::Recovered(NodeId(1))]);
        assert_eq!(g.liveness_of(NodeId(1)), Some(Liveness::Alive));
    }

    #[test]
    fn self_never_fails() {
        let mut g = mk(1);
        let events = g.check_failures(t(1_000_000));
        assert!(events.is_empty());
        assert_eq!(g.liveness_of(NodeId(0)), Some(Liveness::Alive));
    }

    #[test]
    fn alive_members_reflects_failures() {
        let mut g = mk(3);
        g.check_failures(t(5000));
        // All others failed; only self alive.
        assert_eq!(g.alive_members().collect::<Vec<_>>(), vec![NodeId(0)]);
    }

    #[test]
    fn end_to_end_gossip_keeps_cluster_alive() {
        // Run 5 members exchanging digests directly (no network): nobody
        // should ever be declared failed while all are ticking.
        let cfg = GossipConfig::default();
        let mut states: Vec<GossipState> = (0..5)
            .map(|i| GossipState::new(NodeId(i), (0..5).map(NodeId), cfg.clone(), SimTime::ZERO))
            .collect();
        let seq = SeedSequence::new(7);
        let mut rngs: Vec<_> = (0..5).map(|i| seq.rng_for(i as u64)).collect();
        let mut failures = 0;
        for step in 1..100u64 {
            let now = t(step * 100);
            for i in 0..5 {
                let (targets, digest) = states[i].on_tick(now, &mut rngs[i]);
                for target in targets {
                    let events = states[target.0 as usize].on_digest(&digest, now);
                    assert!(events.iter().all(|e| !matches!(e, ViewEvent::Failed(_))));
                }
            }
            for s in &mut states {
                failures += s
                    .check_failures(now)
                    .iter()
                    .filter(|e| matches!(e, ViewEvent::Failed(_)))
                    .count();
            }
        }
        assert_eq!(failures, 0, "healthy cluster should see no failures");
    }

    #[test]
    fn crashed_member_is_detected_by_everyone() {
        // Member 4 stops ticking at t=1s; all others should fail it within
        // fail_after + a few gossip rounds.
        let cfg = GossipConfig::default();
        let mut states: Vec<GossipState> = (0..5)
            .map(|i| GossipState::new(NodeId(i), (0..5).map(NodeId), cfg.clone(), SimTime::ZERO))
            .collect();
        let seq = SeedSequence::new(8);
        let mut rngs: Vec<_> = (0..5).map(|i| seq.rng_for(i as u64)).collect();
        let mut failed_at: Vec<Option<SimTime>> = vec![None; 5];
        for step in 1..60u64 {
            let now = t(step * 100);
            for i in 0..4 {
                // member 4 crashed after 1s
                if now > t(1000) || i != 4 {
                    let (targets, digest) = states[i].on_tick(now, &mut rngs[i]);
                    for target in targets {
                        states[target.0 as usize].on_digest(&digest, now);
                    }
                }
            }
            for (i, s) in states.iter_mut().enumerate().take(4) {
                for e in s.check_failures(now) {
                    if let ViewEvent::Failed(n) = e {
                        assert_eq!(n, NodeId(4));
                        failed_at[i].get_or_insert(now);
                    }
                }
            }
        }
        for (i, f) in failed_at.iter().enumerate().take(4) {
            assert!(f.is_some(), "member {i} never detected the crash");
        }
    }
}
