//! A [`SimNode`] adapter running the gossip failure detector on the
//! discrete-event simulator — used by churn experiments and integration
//! tests to exercise the detector over a real (simulated) network.

use rrmp_netsim::sim::{Ctx, SimNode};
use rrmp_netsim::time::SimTime;
use rrmp_netsim::topology::NodeId;

use crate::gossip::{Digest, GossipConfig, GossipState, ViewEvent};

/// Timer token used for the periodic gossip tick.
const TICK_TOKEN: u64 = 1;

/// A simulated node running only the gossip failure detector.
#[derive(Debug, Clone)]
pub struct GossipNode {
    state: GossipState,
    /// Every membership event observed, with the time it was observed.
    pub observed: Vec<(SimTime, ViewEvent)>,
    /// When `true` the node stops gossiping (simulates a crash).
    pub crashed: bool,
}

impl GossipNode {
    /// Creates a gossip node for `self_id` knowing `members`.
    #[must_use]
    pub fn new<I: IntoIterator<Item = NodeId>>(
        self_id: NodeId,
        members: I,
        cfg: GossipConfig,
    ) -> Self {
        GossipNode {
            state: GossipState::new(self_id, members, cfg, SimTime::ZERO),
            observed: Vec::new(),
            crashed: false,
        }
    }

    /// The underlying detector state.
    #[must_use]
    pub fn state(&self) -> &GossipState {
        &self.state
    }

    /// Whether this node has observed a failure verdict for `node`.
    #[must_use]
    pub fn saw_failure_of(&self, node: NodeId) -> bool {
        self.observed.iter().any(|(_, e)| matches!(e, ViewEvent::Failed(n) if *n == node))
    }
}

impl SimNode for GossipNode {
    type Msg = Digest;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Digest>) {
        let interval = self.state.config().interval;
        ctx.set_timer(interval, TICK_TOKEN);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Digest>, _from: NodeId, digest: Digest) {
        if self.crashed {
            return;
        }
        let now = ctx.now();
        for e in self.state.on_digest(&digest, now) {
            self.observed.push((now, e));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Digest>, token: u64) {
        debug_assert_eq!(token, TICK_TOKEN);
        if self.crashed {
            return; // crashed: no more ticks, no more gossip
        }
        let now = ctx.now();
        let (targets, digest) = self.state.on_tick(now, ctx.rng());
        for t in targets {
            ctx.send(t, digest.clone());
        }
        for e in self.state.check_failures(now) {
            self.observed.push((now, e));
        }
        let interval = self.state.config().interval;
        ctx.set_timer(interval, TICK_TOKEN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrmp_netsim::sim::Sim;
    use rrmp_netsim::time::{SimDuration, SimTime};
    use rrmp_netsim::topology::presets::paper_region;

    fn cluster(n: u32, cfg: &GossipConfig) -> Vec<GossipNode> {
        (0..n).map(|i| GossipNode::new(NodeId(i), (0..n).map(NodeId), cfg.clone())).collect()
    }

    #[test]
    fn healthy_cluster_no_failures_over_network() {
        let cfg = GossipConfig::default();
        let topo = paper_region(6);
        let mut sim = Sim::new(topo, cluster(6, &cfg), 11);
        sim.run_until(SimTime::from_secs(10));
        for (_, node) in sim.nodes() {
            assert!(
                node.observed.iter().all(|(_, e)| !matches!(e, ViewEvent::Failed(_))),
                "healthy cluster declared a failure: {:?}",
                node.observed
            );
        }
    }

    #[test]
    fn crash_detected_within_bound_over_network() {
        let cfg = GossipConfig {
            interval: SimDuration::from_millis(100),
            fanout: 2,
            fail_after: SimDuration::from_millis(800),
            cleanup_after: SimDuration::from_secs(1),
        };
        let topo = paper_region(6);
        let mut sim = Sim::new(topo, cluster(6, &cfg), 12);
        sim.run_until(SimTime::from_secs(2));
        sim.node_mut(NodeId(5)).crashed = true;
        sim.run_until(SimTime::from_secs(8));
        let detectors = (0..5).filter(|&i| sim.node(NodeId(i)).saw_failure_of(NodeId(5))).count();
        assert_eq!(detectors, 5, "every survivor should detect the crash");
    }
}
