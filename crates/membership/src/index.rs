//! Dense member indexing and interval-compressed id sets.
//!
//! Scaling to millions of simulated members requires per-member state to
//! stop being HashMap-of-HashMap shaped. Two primitives live here:
//!
//! - [`MemberIndex`]: an interner mapping sparse [`NodeId`]s to dense
//!   `u32` indices, so per-peer state can live in flat `Vec`s (SoA
//!   layouts) instead of nested maps.
//! - [`IdRangeSet`]: a sorted-disjoint-interval set over `u32` ids.
//!   Topologies assign contiguous ids region by region, so a whole
//!   region of any size compresses to a single `(lo, hi)` pair — the
//!   run-length compression behind [`crate::view::RegionView`].

use std::collections::HashMap;

use rrmp_netsim::topology::NodeId;

/// Interns sparse [`NodeId`]s into dense, stable `u32` indices.
///
/// Indices are assigned in first-seen order and never recycled, so a
/// `Vec` indexed by them stays valid across membership churn: a peer
/// that leaves and returns keeps its slot.
///
/// ```
/// use rrmp_membership::index::MemberIndex;
/// use rrmp_netsim::topology::NodeId;
///
/// let mut idx = MemberIndex::new();
/// assert_eq!(idx.intern(NodeId(40)), 0);
/// assert_eq!(idx.intern(NodeId(7)), 1);
/// assert_eq!(idx.intern(NodeId(40)), 0); // stable
/// assert_eq!(idx.get(NodeId(7)), Some(1));
/// assert_eq!(idx.node_at(1), Some(NodeId(7)));
/// assert_eq!(idx.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemberIndex {
    ids: Vec<NodeId>,
    lookup: HashMap<NodeId, u32>,
}

impl MemberIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        MemberIndex::default()
    }

    /// Creates an index pre-populated with `members`, indexed in
    /// iteration order (duplicates keep their first index).
    #[must_use]
    pub fn from_members<I: IntoIterator<Item = NodeId>>(members: I) -> Self {
        let mut idx = MemberIndex::new();
        for m in members {
            idx.intern(m);
        }
        idx
    }

    /// Returns the dense index for `node`, assigning the next free one
    /// if it has not been seen before.
    pub fn intern(&mut self, node: NodeId) -> u32 {
        if let Some(&i) = self.lookup.get(&node) {
            return i;
        }
        let i = u32::try_from(self.ids.len()).expect("more than u32::MAX interned members");
        self.ids.push(node);
        self.lookup.insert(node, i);
        i
    }

    /// The dense index for `node`, if it has been interned.
    #[must_use]
    pub fn get(&self, node: NodeId) -> Option<u32> {
        self.lookup.get(&node).copied()
    }

    /// The node occupying dense index `i`, if any.
    #[must_use]
    pub fn node_at(&self, i: u32) -> Option<NodeId> {
        self.ids.get(i as usize).copied()
    }

    /// Number of interned members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Interned nodes in dense-index order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ids.iter().copied()
    }
}

/// A set of `u32` ids stored as sorted, disjoint, non-adjacent inclusive
/// ranges.
///
/// Equality compares the *set contents* (the normalized range list), so
/// two sets built in different insertion orders compare equal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IdRangeSet {
    ranges: Vec<(u32, u32)>,
    len: usize,
}

impl IdRangeSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        IdRangeSet::default()
    }

    /// Creates a set covering exactly `lo..=hi` — O(1) regardless of
    /// size, the fast path for contiguous regions.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lo > hi`.
    #[must_use]
    pub fn from_range(lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi, "from_range({lo}, {hi})");
        IdRangeSet { ranges: vec![(lo, hi)], len: (hi - lo) as usize + 1 }
    }

    /// Locates the range containing `v`: `Ok(i)` if `ranges[i]` covers
    /// it, `Err(i)` with the insertion point otherwise.
    fn locate(&self, v: u32) -> Result<usize, usize> {
        self.ranges.binary_search_by(|&(lo, hi)| {
            if hi < v {
                std::cmp::Ordering::Less
            } else if lo > v {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        })
    }

    /// Whether `v` is in the set.
    #[must_use]
    pub fn contains(&self, v: u32) -> bool {
        self.locate(v).is_ok()
    }

    /// Inserts `v`; returns `true` if it was not already present.
    pub fn insert(&mut self, v: u32) -> bool {
        let i = match self.locate(v) {
            Ok(_) => return false,
            Err(i) => i,
        };
        let extends_prev = i > 0 && self.ranges[i - 1].1 + 1 == v;
        let extends_next = i < self.ranges.len() && v + 1 == self.ranges[i].0;
        match (extends_prev, extends_next) {
            (true, true) => {
                self.ranges[i - 1].1 = self.ranges[i].1;
                self.ranges.remove(i);
            }
            (true, false) => self.ranges[i - 1].1 = v,
            (false, true) => self.ranges[i].0 = v,
            (false, false) => self.ranges.insert(i, (v, v)),
        }
        self.len += 1;
        true
    }

    /// Removes `v`; returns `true` if it was present.
    pub fn remove(&mut self, v: u32) -> bool {
        let i = match self.locate(v) {
            Ok(i) => i,
            Err(_) => return false,
        };
        let (lo, hi) = self.ranges[i];
        if lo == hi {
            self.ranges.remove(i);
        } else if v == lo {
            self.ranges[i].0 = v + 1;
        } else if v == hi {
            self.ranges[i].1 = v - 1;
        } else {
            self.ranges[i].1 = v - 1;
            self.ranges.insert(i + 1, (v + 1, hi));
        }
        self.len -= 1;
        true
    }

    /// Number of ids in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored ranges (a measure of fragmentation; a contiguous
    /// region costs exactly one).
    #[must_use]
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// The smallest id in the set, if any.
    #[must_use]
    pub fn min(&self) -> Option<u32> {
        self.ranges.first().map(|&(lo, _)| lo)
    }

    /// The `k`-th smallest id (0-based), if `k < len` — O(#ranges).
    #[must_use]
    pub fn nth(&self, mut k: usize) -> Option<u32> {
        for &(lo, hi) in &self.ranges {
            let span = (hi - lo) as usize + 1;
            if k < span {
                return Some(lo + k as u32);
            }
            k -= span;
        }
        None
    }

    /// Number of stored ids strictly below `v` — O(#ranges).
    #[must_use]
    pub fn rank(&self, v: u32) -> usize {
        let mut r = 0;
        for &(lo, hi) in &self.ranges {
            if hi < v {
                r += (hi - lo) as usize + 1;
            } else {
                if v > lo {
                    r += (v - lo) as usize;
                }
                break;
            }
        }
        r
    }

    /// Ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.ranges.iter().flat_map(|&(lo, hi)| lo..=hi)
    }

    /// The stored `(lo, hi)` inclusive ranges in ascending order.
    pub fn ranges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.ranges.iter().copied()
    }
}

impl FromIterator<u32> for IdRangeSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut s = IdRangeSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_stable_and_dense() {
        let mut idx = MemberIndex::from_members([NodeId(9), NodeId(2)]);
        assert_eq!(idx.get(NodeId(9)), Some(0));
        assert_eq!(idx.get(NodeId(2)), Some(1));
        assert_eq!(idx.get(NodeId(5)), None);
        assert_eq!(idx.intern(NodeId(5)), 2);
        assert_eq!(idx.intern(NodeId(9)), 0);
        assert_eq!(idx.node_at(2), Some(NodeId(5)));
        assert_eq!(idx.node_at(3), None);
        let order: Vec<NodeId> = idx.iter().collect();
        assert_eq!(order, vec![NodeId(9), NodeId(2), NodeId(5)]);
    }

    #[test]
    fn range_set_insert_remove_contains() {
        let mut s = IdRangeSet::new();
        assert!(s.insert(3));
        assert!(s.insert(5));
        assert!(s.insert(4)); // bridges [3,3] and [5,5]
        assert!(!s.insert(4));
        assert_eq!(s.range_count(), 1);
        assert_eq!(s.len(), 3);
        assert!(s.contains(4));
        assert!(!s.contains(6));
        assert!(s.remove(4)); // splits [3,5]
        assert!(!s.remove(4));
        assert_eq!(s.range_count(), 2);
        assert_eq!(s.len(), 2);
        let all: Vec<u32> = s.iter().collect();
        assert_eq!(all, vec![3, 5]);
    }

    #[test]
    fn range_set_nth_and_rank() {
        let s: IdRangeSet = [1u32, 2, 3, 7, 9, 10].into_iter().collect();
        assert_eq!(s.nth(0), Some(1));
        assert_eq!(s.nth(3), Some(7));
        assert_eq!(s.nth(5), Some(10));
        assert_eq!(s.nth(6), None);
        assert_eq!(s.rank(0), 0);
        assert_eq!(s.rank(1), 0);
        assert_eq!(s.rank(4), 3);
        assert_eq!(s.rank(7), 3);
        assert_eq!(s.rank(8), 4);
        assert_eq!(s.rank(11), 6);
    }

    #[test]
    fn from_range_is_one_interval() {
        let s = IdRangeSet::from_range(10, 1_000_000);
        assert_eq!(s.range_count(), 1);
        assert_eq!(s.len(), 999_991);
        assert!(s.contains(10) && s.contains(1_000_000));
        assert!(!s.contains(9));
        assert_eq!(s.min(), Some(10));
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a: IdRangeSet = [3u32, 1, 2].into_iter().collect();
        let b = IdRangeSet::from_range(1, 3);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        /// IdRangeSet behaves exactly like a BTreeSet<u32> under any mixed
        /// insert/remove script, including order statistics.
        #[test]
        fn matches_btreeset(ops in proptest::collection::vec((any::<bool>(), 0u32..128), 0..300)) {
            let mut s = IdRangeSet::new();
            let mut bt = BTreeSet::new();
            for &(ins, v) in &ops {
                if ins {
                    prop_assert_eq!(s.insert(v), bt.insert(v));
                } else {
                    prop_assert_eq!(s.remove(v), bt.remove(&v));
                }
            }
            prop_assert_eq!(s.len(), bt.len());
            prop_assert_eq!(s.min(), bt.iter().next().copied());
            for v in 0u32..128 {
                prop_assert_eq!(s.contains(v), bt.contains(&v));
                prop_assert_eq!(s.rank(v), bt.iter().filter(|&&m| m < v).count());
            }
            for k in 0..bt.len() + 1 {
                prop_assert_eq!(s.nth(k), bt.iter().nth(k).copied());
            }
            let iterated: Vec<u32> = s.iter().collect();
            let expected: Vec<u32> = bt.iter().copied().collect();
            prop_assert_eq!(iterated, expected);
            // Ranges stay sorted, disjoint, non-adjacent.
            let ranges: Vec<(u32, u32)> = s.ranges().collect();
            for w in ranges.windows(2) {
                prop_assert!(w[0].1 + 1 < w[1].0, "ranges {:?} not normalized", ranges);
            }
        }
    }
}
