//! # rrmp-membership
//!
//! Group membership substrate for the RRMP reliable-multicast
//! reproduction: region views, the error-recovery hierarchy, and the
//! gossip-style heartbeat failure detector the paper assumes
//! (van Renesse et al., Middleware '98).
//!
//! RRMP's system model gives each receiver membership knowledge of its own
//! region and its parent region ([`view::HierarchyView`]); this crate
//! provides those views (static, from a topology; or maintained live by the
//! [`gossip`] detector under churn).
//!
//! ```
//! use rrmp_membership::view::HierarchyView;
//! use rrmp_netsim::topology::{presets, NodeId};
//! use rrmp_netsim::time::SimDuration;
//!
//! let topo = presets::figure1_chain([3, 3, 3], SimDuration::from_millis(25));
//! let view = HierarchyView::from_topology(&topo, NodeId(5));
//! assert_eq!(view.own().len(), 3);
//! assert!(view.parent().is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gossip;
pub mod index;
pub mod node;
pub mod view;

pub use gossip::{Digest, GossipConfig, GossipState, Liveness, ViewEvent};
pub use index::{IdRangeSet, MemberIndex};
pub use view::{HierarchyView, RegionView};
