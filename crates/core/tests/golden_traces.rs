//! Golden-trace pinning for the default buffer policy.
//!
//! The fingerprints below were recorded from the receiver as it existed
//! **before** the pluggable buffer-policy refactor (the hard-wired
//! two-phase implementation). The default policy must keep reproducing
//! them bit for bit: every delivery time, every counter, every RNG draw.
//! A fingerprint change means the refactor altered observable protocol
//! behaviour — which the policy extraction explicitly must not.

use rrmp_core::harness::RrmpNetwork;
use rrmp_core::prelude::ProtocolConfig;
use rrmp_netsim::loss::{DeliveryPlan, LossModel};
use rrmp_netsim::time::{SimDuration, SimTime};
use rrmp_netsim::topology::{presets, NodeId};

/// FNV-1a over the full observable outcome of a run: per-node delivery
/// traces in delivery order plus network counters and protocol totals.
fn fingerprint(net: &RrmpNetwork) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for (id, node) in net.nodes() {
        mix(u64::from(id.0));
        for &(t, m) in node.delivered() {
            mix(t.as_micros());
            mix(u64::from(m.source.0));
            mix(m.seq.0);
        }
    }
    let c = net.net_counters();
    for v in [c.unicasts_sent, c.unicasts_dropped, c.timers_set, c.timers_fired, c.events_processed]
    {
        mix(v);
    }
    for v in [
        net.total_counter(|c| c.local_requests_sent),
        net.total_counter(|c| c.remote_requests_sent),
        net.total_counter(|c| c.repairs_sent_local + c.repairs_sent_remote),
        net.total_counter(|c| c.regional_multicasts_sent),
        net.total_counter(|c| c.handoffs_sent),
        net.total_counter(|c| c.idle_transitions),
        net.total_counter(|c| c.long_term_kept),
        net.total_counter(|c| c.discarded_at_idle),
        net.total_counter(|c| c.searches_started),
    ] {
        mix(v);
    }
    h
}

fn single_region_recovery(seed: u64) -> u64 {
    let mut net =
        RrmpNetwork::new(presets::paper_region(40), ProtocolConfig::paper_defaults(), seed);
    let plan = DeliveryPlan::only(net.topology(), (0..10).map(NodeId));
    net.multicast_with_plan(&b"golden-a"[..], &plan);
    net.run_until(SimTime::from_millis(400));
    let plan = DeliveryPlan::all_but(net.topology(), (20..30).map(NodeId));
    net.multicast_with_plan(&b"golden-b"[..], &plan);
    net.run_until(SimTime::from_secs(1));
    fingerprint(&net)
}

fn hierarchical_with_search(seed: u64) -> u64 {
    let topo = presets::figure1_chain([8, 8, 8], SimDuration::from_millis(25));
    let mut net = RrmpNetwork::new(topo, ProtocolConfig::paper_defaults(), seed);
    net.set_multicast_loss(LossModel::RegionCorrelated { p_region: 0.3, p_member: 0.1 });
    for _ in 0..4 {
        net.multicast(&b"golden-chain"[..]);
        let next = net.now() + SimDuration::from_millis(40);
        net.run_until(next);
    }
    net.run_until(SimTime::from_secs(3));
    fingerprint(&net)
}

fn churn_with_handoffs(seed: u64) -> u64 {
    let cfg = ProtocolConfig::builder().c(1000.0).build().expect("valid config");
    let mut net = RrmpNetwork::new(presets::paper_region(20), cfg, seed);
    let plan = DeliveryPlan::all(net.topology());
    net.multicast_with_plan(&b"golden-churn"[..], &plan);
    net.run_until(SimTime::from_millis(200));
    net.schedule_leave(NodeId(3), SimTime::from_millis(250));
    net.schedule_crash(NodeId(9), SimTime::from_millis(300));
    net.run_until(SimTime::from_millis(600));
    fingerprint(&net)
}

fn sharded_lossy_stream(seed: u64, shards: usize) -> u64 {
    let topo = presets::region_tree(6, 2, 2, SimDuration::from_millis(25));
    let mut net = RrmpNetwork::with_shards(topo, ProtocolConfig::paper_defaults(), seed, shards);
    net.set_multicast_loss(LossModel::RegionCorrelated { p_region: 0.3, p_member: 0.1 });
    net.set_unicast_loss(LossModel::Bernoulli { p: 0.1 });
    for _ in 0..4 {
        net.multicast(&b"golden-sharded"[..]);
        let next = net.now() + SimDuration::from_millis(40);
        net.run_until(next);
    }
    net.run_until(SimTime::from_secs(3));
    fingerprint(&net)
}

#[test]
fn default_policy_reproduces_pre_refactor_traces() {
    assert_eq!(single_region_recovery(1), 0x28c8_f709_a078_be13);
    assert_eq!(single_region_recovery(99), 0x4f9f_1045_efdd_2ed8);
    assert_eq!(hierarchical_with_search(3), 0xe8e7_9632_2fad_9824);
    assert_eq!(churn_with_handoffs(8), 0x4350_6263_84d1_4965);
}

#[test]
fn default_policy_reproduces_pre_refactor_traces_sharded() {
    // The same fingerprint at every shard count: the sharded engine's
    // sequential oracle and its parallel layouts both match the recorded
    // pre-refactor behaviour.
    assert_eq!(sharded_lossy_stream(7, 1), 0xfb99_1cb2_03c0_874a);
    assert_eq!(sharded_lossy_stream(7, 4), 0xfb99_1cb2_03c0_874a);
}
