//! Adversarial property tests for the receiver state machine: arbitrary
//! event storms — including malformed, duplicated, stale and hostile
//! inputs — must never panic, never produce self-addressed packets, never
//! violate store accounting, and never deliver a message twice.

use bytes::Bytes;
use proptest::prelude::*;
use rrmp_core::buffer::Phase;
use rrmp_core::events::{Action, Event, TimerKind};
use rrmp_core::ids::{MessageId, SeqNo};
use rrmp_core::packet::{DataPacket, Packet, RepairKind};
use rrmp_core::prelude::ProtocolConfig;
use rrmp_core::receiver::Receiver;
use rrmp_membership::view::{HierarchyView, RegionView};
use rrmp_netsim::time::SimTime;
use rrmp_netsim::topology::{NodeId, RegionId};

const SELF: NodeId = NodeId(1);
const REGION_SIZE: u32 = 8;

fn receiver(seed: u64) -> Receiver {
    let own = RegionView::new(RegionId(1), (0..REGION_SIZE).map(NodeId));
    let parent = RegionView::new(RegionId(0), (100..104).map(NodeId));
    Receiver::new(
        SELF,
        HierarchyView::new(own, Some(parent)),
        ProtocolConfig::paper_defaults(),
        seed,
    )
}

/// A compact generator language for protocol inputs.
#[derive(Debug, Clone)]
enum Input {
    Data { seq: u64, payload_len: usize },
    Session { high: u64 },
    LocalRequest { seq: u64, from: u32 },
    RemoteRequest { seq: u64, from: u32 },
    RepairLocal { seq: u64 },
    RepairRemote { seq: u64 },
    RegionalRepair { seq: u64 },
    SearchRequest { seq: u64, origins: Vec<u32> },
    SearchFound { seq: u64, holder: u32 },
    Handoff { seq: u64 },
    TimerLocal { seq: u64 },
    TimerRemote { seq: u64 },
    TimerIdle { seq: u64 },
    TimerSearch { seq: u64 },
    TimerBackoff { seq: u64 },
    TimerSweep,
    Leave,
}

fn arb_input() -> impl Strategy<Value = Input> {
    let seq = 0u64..12;
    let node = 0u32..110;
    prop_oneof![
        (seq.clone(), 0usize..32).prop_map(|(seq, payload_len)| Input::Data { seq, payload_len }),
        seq.clone().prop_map(|high| Input::Session { high }),
        (seq.clone(), node.clone()).prop_map(|(seq, from)| Input::LocalRequest { seq, from }),
        (seq.clone(), node.clone()).prop_map(|(seq, from)| Input::RemoteRequest { seq, from }),
        seq.clone().prop_map(|seq| Input::RepairLocal { seq }),
        seq.clone().prop_map(|seq| Input::RepairRemote { seq }),
        seq.clone().prop_map(|seq| Input::RegionalRepair { seq }),
        (seq.clone(), proptest::collection::vec(node.clone(), 0..4))
            .prop_map(|(seq, origins)| Input::SearchRequest { seq, origins }),
        (seq.clone(), node).prop_map(|(seq, holder)| Input::SearchFound { seq, holder }),
        seq.clone().prop_map(|seq| Input::Handoff { seq }),
        seq.clone().prop_map(|seq| Input::TimerLocal { seq }),
        seq.clone().prop_map(|seq| Input::TimerRemote { seq }),
        seq.clone().prop_map(|seq| Input::TimerIdle { seq }),
        seq.clone().prop_map(|seq| Input::TimerSearch { seq }),
        seq.prop_map(|seq| Input::TimerBackoff { seq }),
        Just(Input::TimerSweep),
        Just(Input::Leave),
    ]
}

fn mid(seq: u64) -> MessageId {
    MessageId::new(NodeId(0), SeqNo(seq))
}

fn data(seq: u64, len: usize) -> DataPacket {
    DataPacket::new(mid(seq), Bytes::from(vec![0xAB; len]))
}

fn to_event(input: &Input) -> Event {
    let pkt = |from: u32, packet: Packet| Event::Packet { from: NodeId(from), packet };
    match input.clone() {
        Input::Data { seq, payload_len } => pkt(0, Packet::Data(data(seq, payload_len))),
        Input::Session { high } => pkt(0, Packet::Session { source: NodeId(0), high: SeqNo(high) }),
        Input::LocalRequest { seq, from } => pkt(from, Packet::LocalRequest { msg: mid(seq) }),
        Input::RemoteRequest { seq, from } => pkt(from, Packet::RemoteRequest { msg: mid(seq) }),
        Input::RepairLocal { seq } => {
            pkt(2, Packet::Repair { data: data(seq, 4), kind: RepairKind::Local })
        }
        Input::RepairRemote { seq } => {
            pkt(100, Packet::Repair { data: data(seq, 4), kind: RepairKind::Remote })
        }
        Input::RegionalRepair { seq } => pkt(3, Packet::RegionalRepair { data: data(seq, 4) }),
        Input::SearchRequest { seq, origins } => pkt(
            4,
            Packet::SearchRequest {
                msg: mid(seq),
                origins: origins.into_iter().map(NodeId).collect(),
            },
        ),
        Input::SearchFound { seq, holder } => {
            pkt(5, Packet::SearchFound { msg: mid(seq), holder: NodeId(holder) })
        }
        Input::Handoff { seq } => pkt(6, Packet::Handoff { data: data(seq, 4) }),
        Input::TimerLocal { seq } => Event::Timer(TimerKind::LocalRetry(mid(seq))),
        Input::TimerRemote { seq } => Event::Timer(TimerKind::RemoteRetry(mid(seq))),
        Input::TimerIdle { seq } => Event::Timer(TimerKind::IdleCheck(mid(seq))),
        Input::TimerSearch { seq } => Event::Timer(TimerKind::SearchRetry(mid(seq))),
        Input::TimerBackoff { seq } => Event::Timer(TimerKind::Backoff(mid(seq))),
        Input::TimerSweep => Event::Timer(TimerKind::LongTermSweep),
        Input::Leave => Event::Leave,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any event storm: no panics, no self-sends, no packets to unknown
    /// members, consistent store accounting, exactly-once delivery.
    #[test]
    fn event_storm_invariants(
        seed in 0u64..10_000,
        inputs in proptest::collection::vec(arb_input(), 1..120),
    ) {
        let mut r = receiver(seed);
        let mut delivered = std::collections::HashSet::new();
        for (step, input) in inputs.iter().enumerate() {
            let now = SimTime::from_micros(step as u64 * 997);
            let actions = r.handle(to_event(input), now);
            for action in &actions {
                match action {
                    Action::Send { to, .. } => {
                        prop_assert_ne!(*to, SELF, "self-addressed packet from {:?}", input);
                    }
                    Action::Deliver { id, .. } => {
                        prop_assert!(delivered.insert(*id), "duplicate delivery of {id}");
                    }
                    Action::MulticastRegion { .. } | Action::SetTimer { .. } => {}
                }
            }
            // Store accounting must match reality after every event.
            let store = r.store();
            let shorts = store.iter().filter(|(_, e)| e.phase == Phase::Short).count();
            let longs = store.iter().filter(|(_, e)| e.phase == Phase::Long).count();
            let bytes: usize = store.iter().map(|(_, e)| e.data.len()).sum();
            prop_assert_eq!(store.short_count(), shorts);
            prop_assert_eq!(store.long_count(), longs);
            prop_assert_eq!(store.bytes(), bytes);
            // A member that left must be inert.
            if r.has_left() {
                let more = r.handle(
                    to_event(&Input::Data { seq: 99, payload_len: 1 }),
                    now + rrmp_netsim::time::SimDuration::from_micros(1),
                );
                prop_assert!(more.is_empty(), "left member reacted: {more:?}");
                break;
            }
        }
    }

    /// Every buffered payload must be retrievable and byte-identical to
    /// what was received, regardless of input interleaving.
    #[test]
    fn buffered_payloads_are_intact(
        seed in 0u64..1000,
        seqs in proptest::collection::vec(1u64..20, 1..40),
    ) {
        let mut r = receiver(seed);
        for (step, &seq) in seqs.iter().enumerate() {
            let now = SimTime::from_micros(step as u64 * 1009);
            let payload = Bytes::from(vec![seq as u8; 8]);
            let packet = Packet::Data(DataPacket::new(mid(seq), payload));
            r.handle(Event::Packet { from: NodeId(0), packet }, now);
        }
        for &seq in &seqs {
            if let Some(got) = r.store().get(mid(seq)) {
                prop_assert_eq!(&got[..], &vec![seq as u8; 8][..], "payload corrupted");
            }
            prop_assert!(r.detector().received_before(mid(seq)));
        }
    }

    /// Timer storms for messages the receiver has never heard of are
    /// harmless no-ops.
    #[test]
    fn stale_timers_are_noops(seed in 0u64..1000, seqs in proptest::collection::vec(0u64..50, 1..60)) {
        let mut r = receiver(seed);
        for (step, &seq) in seqs.iter().enumerate() {
            let now = SimTime::from_micros(step as u64);
            for kind in [
                TimerKind::LocalRetry(mid(seq)),
                TimerKind::RemoteRetry(mid(seq)),
                TimerKind::IdleCheck(mid(seq)),
                TimerKind::SearchRetry(mid(seq)),
                TimerKind::Backoff(mid(seq)),
            ] {
                let actions = r.handle(Event::Timer(kind), now);
                prop_assert!(
                    actions.is_empty(),
                    "stale timer {kind:?} produced {actions:?}"
                );
            }
        }
        prop_assert_eq!(r.metrics().counters.delivered, 0);
    }
}

#[test]
fn hostile_origins_do_not_grow_state_unboundedly() {
    // An attacker floods search requests with fabricated origins for a
    // message we never received; waiters are registered (that is the
    // protocol's relay contract) but bounded by distinct origins, and
    // nothing is sent to ourselves.
    let mut r = receiver(7);
    for i in 0..1000u32 {
        let actions = r.handle(
            Event::Packet {
                from: NodeId(2),
                packet: Packet::SearchRequest {
                    msg: mid(1),
                    origins: vec![NodeId(200 + (i % 10))],
                },
            },
            SimTime::from_micros(u64::from(i)),
        );
        for a in actions {
            if let Action::Send { to, .. } = a {
                assert_ne!(to, SELF);
            }
        }
    }
    // Recovery state for one message only, despite 1000 probes.
    assert!(r.detector().is_missing(mid(1)));
}
