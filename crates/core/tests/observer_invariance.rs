//! Observer invariance: arming the trace subsystem must not perturb the
//! protocol, and what it exports must not depend on engine layout.
//!
//! Three contracts, matching the three observer pillars:
//!
//! * **Unarmed zero cost** — a run with the hooks compiled in but
//!   unarmed reproduces the pinned golden-trace fingerprint bit for bit
//!   (the same constants `golden_traces.rs` guards), and arming the
//!   sinks *without* samplers still reproduces it: recording is
//!   side-effect-free on the protocol.
//! * **Shard invariance** — an armed export (trace JSONL + histogram
//!   JSON) is byte-identical at 1, 2, and 4 shards. Always via
//!   [`RrmpNetwork::with_shards`]: the one-shard run is the sequential
//!   oracle of the sharded engine. (The unsharded `RrmpNetwork::new`
//!   engine legitimately interleaves same-timestamp timer-vs-packet
//!   races differently and is *not* part of this contract.)
//! * **Merge associativity** — histogram merge is elementwise bucket
//!   addition, so any grouping of per-shard partials yields the same
//!   result as recording everything into one histogram; quantiles match
//!   a naive sorted-vec model at bucket resolution.

use proptest::prelude::*;
use rrmp_core::harness::RrmpNetwork;
use rrmp_core::prelude::{ProtocolConfig, TraceConfig};
use rrmp_netsim::loss::{DeliveryPlan, LossModel};
use rrmp_netsim::time::{SimDuration, SimTime};
use rrmp_netsim::topology::{presets, NodeId};
use rrmp_trace::LogHistogram;

/// FNV-1a over the full observable outcome of a run — the same
/// fingerprint `golden_traces.rs` pins, so the constants below must stay
/// in lockstep with that suite.
fn fingerprint(net: &RrmpNetwork) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for (id, node) in net.nodes() {
        mix(u64::from(id.0));
        for &(t, m) in node.delivered() {
            mix(t.as_micros());
            mix(u64::from(m.source.0));
            mix(m.seq.0);
        }
    }
    let c = net.net_counters();
    for v in [c.unicasts_sent, c.unicasts_dropped, c.timers_set, c.timers_fired, c.events_processed]
    {
        mix(v);
    }
    for v in [
        net.total_counter(|c| c.local_requests_sent),
        net.total_counter(|c| c.remote_requests_sent),
        net.total_counter(|c| c.repairs_sent_local + c.repairs_sent_remote),
        net.total_counter(|c| c.regional_multicasts_sent),
        net.total_counter(|c| c.handoffs_sent),
        net.total_counter(|c| c.idle_transitions),
        net.total_counter(|c| c.long_term_kept),
        net.total_counter(|c| c.discarded_at_idle),
        net.total_counter(|c| c.searches_started),
    ] {
        mix(v);
    }
    h
}

/// Delivery-only fingerprint: per-node delivery traces without the timer
/// and event counters (which samplers legitimately move).
fn delivery_fingerprint(net: &RrmpNetwork) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for (id, node) in net.nodes() {
        mix(u64::from(id.0));
        for &(t, m) in node.delivered() {
            mix(t.as_micros());
            mix(u64::from(m.source.0));
            mix(m.seq.0);
        }
    }
    h
}

/// The `single_region_recovery` golden scenario, optionally armed.
fn single_region_recovery(seed: u64, trace: Option<TraceConfig>) -> RrmpNetwork {
    let mut net =
        RrmpNetwork::new(presets::paper_region(40), ProtocolConfig::paper_defaults(), seed);
    if let Some(cfg) = trace {
        net.arm_observer(cfg);
    }
    let plan = DeliveryPlan::only(net.topology(), (0..10).map(NodeId));
    net.multicast_with_plan(&b"golden-a"[..], &plan);
    net.run_until(SimTime::from_millis(400));
    let plan = DeliveryPlan::all_but(net.topology(), (20..30).map(NodeId));
    net.multicast_with_plan(&b"golden-b"[..], &plan);
    net.run_until(SimTime::from_secs(1));
    net
}

/// Pinned in `golden_traces.rs`: `single_region_recovery(1)`.
const GOLDEN_SINGLE_REGION_SEED1: u64 = 0x28c8_f709_a078_be13;

#[test]
fn unarmed_run_keeps_golden_fingerprint() {
    let net = single_region_recovery(1, None);
    assert_eq!(fingerprint(&net), GOLDEN_SINGLE_REGION_SEED1);
    assert!(!net.observer_armed());
}

#[test]
fn armed_sinks_do_not_perturb_the_protocol() {
    // Sinks armed, samplers off: no extra timers, so even the full
    // counter fingerprint must match the pinned golden value while the
    // trace itself is non-empty.
    let net =
        single_region_recovery(1, Some(TraceConfig { ring_capacity: 1 << 16, sample_every: None }));
    assert_eq!(fingerprint(&net), GOLDEN_SINGLE_REGION_SEED1);
    assert!(net.observer_armed());
    assert!(!net.trace_events().is_empty(), "armed run must record events");
    assert_eq!(net.trace_events_dropped(), 0);
}

#[test]
fn samplers_move_timers_but_not_deliveries() {
    // With samplers armed, timer counters legitimately move — but every
    // delivery (time, source, seq) stays bit-identical.
    let unarmed = single_region_recovery(1, None);
    let sampled = single_region_recovery(
        1,
        Some(TraceConfig {
            ring_capacity: 1 << 16,
            sample_every: Some(SimDuration::from_millis(50)),
        }),
    );
    assert_eq!(delivery_fingerprint(&unarmed), delivery_fingerprint(&sampled));
}

/// The golden sharded scenario (`sharded_lossy_stream`), armed, on the
/// sharded engine at the given shard count.
fn sharded_armed_export(shards: usize) -> (String, String) {
    let topo = presets::region_tree(6, 2, 2, SimDuration::from_millis(25));
    let mut net = RrmpNetwork::with_shards(topo, ProtocolConfig::paper_defaults(), 7, shards);
    net.set_multicast_loss(LossModel::RegionCorrelated { p_region: 0.3, p_member: 0.1 });
    net.set_unicast_loss(LossModel::Bernoulli { p: 0.1 });
    net.arm_observer(TraceConfig {
        ring_capacity: 1 << 16,
        sample_every: Some(SimDuration::from_millis(100)),
    });
    for _ in 0..4 {
        net.multicast(&b"golden-sharded"[..]);
        let next = net.now() + SimDuration::from_millis(40);
        net.run_until(next);
    }
    net.run_until(SimTime::from_secs(3));
    assert_eq!(net.trace_events_dropped(), 0, "ring evicted events at {shards} shards");
    (net.trace_jsonl(), net.histograms_json())
}

#[test]
fn armed_export_is_byte_identical_across_shard_counts() {
    let (trace1, hist1) = sharded_armed_export(1);
    assert!(!trace1.is_empty());
    for shards in [2usize, 4] {
        let (trace, hist) = sharded_armed_export(shards);
        assert_eq!(trace, trace1, "trace JSONL diverged at {shards} shards");
        assert_eq!(hist, hist1, "histogram export diverged at {shards} shards");
    }
}

// ---------------------------------------------------------------------------
// Histogram merge associativity vs a naive sorted-vec model.
// ---------------------------------------------------------------------------

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_associative_and_order_free(
        a in proptest::collection::vec(any::<u64>(), 0..200),
        b in proptest::collection::vec(any::<u64>(), 0..200),
        c in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), exactly.
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha;
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // Any grouping equals recording the concatenation directly.
        let mut all: Vec<u64> = a;
        all.extend(b);
        all.extend(c);
        let combined = hist_of(&all);
        prop_assert_eq!(&left, &combined);

        // Naive sorted-vec model: count/sum/max are exact; each quantile
        // is the lower bound of the bucket holding the rank-target
        // observation (bucket indexing is monotone in the value, so the
        // bucket cumulative walk and the sorted vec agree on which
        // observation that is).
        all.sort_unstable();
        prop_assert_eq!(left.count(), all.len() as u64);
        prop_assert_eq!(left.sum(), all.iter().map(|&v| u128::from(v)).sum::<u128>());
        prop_assert_eq!(left.max(), all.last().copied().unwrap_or(0));
        if !all.is_empty() {
            let n = all.len() as u64;
            for q in [0.50f64, 0.90, 0.99] {
                #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
                let model = all[(rank - 1) as usize];
                let expect =
                    LogHistogram::bucket_lower_bound(LogHistogram::bucket_index(model));
                prop_assert_eq!(left.quantile(q), expect, "q={}", q);
            }
        }
    }
}
