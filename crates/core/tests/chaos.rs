//! Chaos harness: randomized — but fully deterministic — fault plans run
//! under every buffer-management policy, asserting run-level invariants
//! instead of exact traces:
//!
//! * **no panics** — the protocol survives partitions, blackouts, loss
//!   bursts, duplication, and crash/stall churn on any engine;
//! * **bounded buffer growth** — no member ever holds more entries than
//!   messages sent (duplication and replays must not inflate state);
//! * **post-heal convergence** — once every fault window has healed and
//!   the run has drained, every *surviving* member has either delivered
//!   each message or given up on it cleanly (`recovery_gave_up`
//!   accounting), never left it silently in limbo.
//!
//! Plans are generated from fixed seeds via `StdRng`, so a failure
//! reproduces exactly; the engine honours `RRMP_SIM_SHARDS`, so the CI
//! chaos matrix re-runs the same plans on the sharded engine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrmp_core::harness::RrmpNetwork;
use rrmp_core::ids::MessageId;
use rrmp_core::policy::PolicyKind;
use rrmp_core::prelude::{DampingConfig, ProtocolConfig, WatchdogConfig};
use rrmp_netsim::fault::FaultPlan;
use rrmp_netsim::loss::LossModel;
use rrmp_netsim::time::{SimDuration, SimTime};
use rrmp_netsim::topology::{presets, NodeId, RegionId, Topology};

const ALL_POLICIES: [PolicyKind; 7] = [
    PolicyKind::TwoPhase,
    PolicyKind::FixedTime { hold: SimDuration::from_millis(500) },
    PolicyKind::KeepAll,
    PolicyKind::HashBufferers,
    PolicyKind::SenderBased,
    PolicyKind::Stability,
    PolicyKind::TreeRmtp,
];

/// Three regions (root + two children) of four members — big enough for
/// region partitions, remote recovery, and repair hierarchies, small
/// enough that 21 policy × seed runs stay fast.
fn chaos_topology() -> Topology {
    presets::region_tree(4, 2, 1, SimDuration::from_millis(15))
}

fn chaos_config(policy: PolicyKind) -> ProtocolConfig {
    ProtocolConfig {
        policy,
        // Low enough that members cut off by a fault window exhaust their
        // retries *during* the window — the post-heal re-arm path is then
        // the only way back — while still generous under transient loss.
        max_local_attempts: 12,
        max_remote_attempts: 12,
        max_search_attempts: 12,
        ..ProtocolConfig::default()
    }
}

/// A randomized fault plan over `topo`, derived entirely from `seed`.
/// Node 0 (the sender) is never crashed or stalled — a dead source makes
/// convergence vacuous — and every window heals before `FLUSH_AT`.
fn random_plan(seed: u64, topo: &Topology) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5EED);
    let regions = topo.region_count() as u16;
    let nodes = topo.node_count() as u32;
    let window = |rng: &mut StdRng| {
        let from = rng.gen_range(100u64..600);
        let until = from + rng.gen_range(50u64..400);
        (SimTime::from_millis(from), SimTime::from_millis(until))
    };
    let mut plan = FaultPlan::new(seed);
    for _ in 0..rng.gen_range(1..=2usize) {
        let a = rng.gen_range(0..regions);
        let b = (a + rng.gen_range(1..regions)) % regions;
        let (f, u) = window(&mut rng);
        plan = plan.partition(RegionId(a), RegionId(b), f, u);
    }
    if rng.gen_bool(0.7) {
        let a = rng.gen_range(0..nodes);
        let b = (a + rng.gen_range(1..nodes)) % nodes;
        let (f, u) = window(&mut rng);
        plan = plan.blackout(NodeId(a), NodeId(b), f, u);
    }
    if rng.gen_bool(0.7) {
        let n = rng.gen_range(1..nodes);
        let (f, u) = window(&mut rng);
        plan = plan.stall(NodeId(n), f, u);
    }
    if rng.gen_bool(0.5) {
        let n = rng.gen_range(1..nodes);
        let at = SimTime::from_millis(rng.gen_range(150u64..800));
        plan = plan.crash(NodeId(n), at);
    }
    {
        let p = rng.gen_range(0.3..0.9);
        let region = rng.gen_bool(0.5).then(|| RegionId(rng.gen_range(0..regions)));
        let (f, u) = window(&mut rng);
        plan = plan.loss_burst(p, region, f, u);
    }
    if rng.gen_bool(0.7) {
        let p = rng.gen_range(0.1..0.4);
        let extra = SimDuration::from_millis(rng.gen_range(1u64..5));
        let (f, u) = window(&mut rng);
        plan = plan.duplicate(p, extra, f, u);
    }
    plan
}

/// Every fault window in [`random_plan`] ends by 1 s; flush multicasts
/// after this point guarantee post-heal traffic that exposes any gap.
const FLUSH_AT: SimTime = SimTime::from_millis(1_050);
const RUN_END: SimTime = SimTime::from_secs(6);

/// Runs one chaos scenario and returns the network plus the multicast ids.
fn run_chaos(policy: PolicyKind, seed: u64) -> (RrmpNetwork, Vec<MessageId>) {
    let topo = chaos_topology();
    let plan = random_plan(seed, &topo);
    // `new_sharded` honours RRMP_SIM_SHARDS (default 1), so the CI chaos
    // matrix re-runs these exact plans on the parallel engine.
    let mut net = RrmpNetwork::new_sharded(topo, chaos_config(policy), seed);
    net.set_multicast_loss(LossModel::Bernoulli { p: 0.3 });
    net.arm_fault_plan(plan);

    let mut ids = Vec::new();
    // Ten multicasts spread across the fault horizon: some land mid-burst,
    // some mid-partition, some while a member is stalled or crashed.
    for k in 0..10u64 {
        net.run_until(SimTime::from_millis(k * 90));
        ids.push(net.multicast(format!("chaos-{k}").into_bytes()));
    }
    // Two flush multicasts after every window healed: their data and
    // session traffic reaches every surviving member, so any message
    // still missing is *detectably* missing.
    for k in 0..2u64 {
        net.run_until(FLUSH_AT + SimDuration::from_millis(k * 50));
        ids.push(net.multicast(format!("flush-{k}").into_bytes()));
    }
    // Drain: far beyond the retry caps (12 × ≤50 ms) plus heal re-arms,
    // so every recovery effort has either succeeded or given up.
    net.run_until(RUN_END);
    (net, ids)
}

/// Asserts the run-level invariants on a finished chaos run.
fn assert_invariants(net: &RrmpNetwork, ids: &[MessageId], label: &str) {
    for (id, node) in net.nodes() {
        let r = node.receiver();
        // Crashed (or departed) members hold no obligations.
        if r.has_left() {
            continue;
        }
        // Bounded buffer growth: duplication and fault replays must not
        // inflate a member's store past one entry per distinct message.
        assert!(
            r.store().len() <= ids.len(),
            "{label}: node {id} holds {} entries for {} messages",
            r.store().len(),
            ids.len()
        );
        for &msg in ids {
            if node.has_delivered(msg) {
                continue;
            }
            // Not delivered: recovery must have terminated cleanly, not
            // be silently wedged with live state and no timer driving it.
            assert!(
                !r.recovery_pending(msg),
                "{label}: node {id} still has pending recovery for {msg:?} at run end"
            );
            // And if the member *knows* the message is missing, the
            // give-up must be accounted for.
            if r.detector().is_missing(msg) {
                assert!(
                    r.metrics().counters.recovery_gave_up > 0,
                    "{label}: node {id} missing {msg:?} with no recorded give-up"
                );
            }
        }
    }
}

#[test]
fn chaos_invariants_hold_under_every_policy() {
    for policy in ALL_POLICIES {
        for seed in [11u64, 22, 33] {
            let (net, ids) = run_chaos(policy, seed);
            assert_invariants(&net, &ids, &format!("policy={} seed={seed}", policy.name()));
        }
    }
}

/// The same (policy, seed) chaos run is bit-for-bit repeatable: identical
/// per-node delivery logs and protocol counters on a rerun.
#[test]
fn chaos_runs_are_deterministic_across_reruns() {
    let observe = |net: &RrmpNetwork| {
        net.nodes()
            .map(|(_, n)| (n.delivered().to_vec(), n.receiver().metrics().counters))
            .collect::<Vec<_>>()
    };
    let (a, ids_a) = run_chaos(PolicyKind::TwoPhase, 77);
    let (b, ids_b) = run_chaos(PolicyKind::TwoPhase, 77);
    assert_eq!(ids_a, ids_b);
    assert_eq!(observe(&a), observe(&b));
}

/// Chaos outcomes do not depend on the engine layout: the same plan at
/// shard counts 1, 2, and 4 produces identical delivery logs.
#[test]
fn chaos_runs_are_layout_invariant() {
    let run_at = |shards: usize| {
        let topo = chaos_topology();
        let plan = random_plan(55, &topo);
        let mut net =
            RrmpNetwork::with_shards(topo, chaos_config(PolicyKind::TwoPhase), 55, shards);
        net.set_multicast_loss(LossModel::Bernoulli { p: 0.3 });
        net.arm_fault_plan(plan);
        let mut ids = Vec::new();
        for k in 0..6u64 {
            net.run_until(SimTime::from_millis(k * 120));
            ids.push(net.multicast(format!("layout-{k}").into_bytes()));
        }
        net.run_until(SimTime::from_secs(3));
        (
            ids,
            net.nodes()
                .map(|(_, n)| (n.delivered().to_vec(), n.receiver().metrics().counters))
                .collect::<Vec<_>>(),
        )
    };
    let one = run_at(1);
    assert_eq!(one, run_at(2), "shards=2 diverged from the sequential oracle");
    assert_eq!(one, run_at(4), "shards=4 diverged from the sequential oracle");
}

/// The CI chaos matrix sets `RRMP_FAULTS` to a fixed plan spec; this
/// test replays that exact plan under every policy and asserts the same
/// run-level invariants. When the variable is unset (a plain local
/// `cargo test`), a representative fallback plan keeps the test biting.
#[test]
fn env_fault_plan_chaos_smoke() {
    const FALLBACK: &str =
        "seed=5;partition=0-1@100..500;stall=6@200..450;burst=0.5:2@150..400;dup=0.2+3@0..600";
    for policy in ALL_POLICIES {
        let mut net = RrmpNetwork::new_sharded(chaos_topology(), chaos_config(policy), 13);
        net.set_multicast_loss(LossModel::Bernoulli { p: 0.3 });
        if !net.arm_env_fault_plan() {
            net.arm_fault_plan(FaultPlan::parse(FALLBACK).expect("fallback plan parses"));
        }
        // Pace the run off the armed plan, not a fixed horizon: CI specs
        // with longer windows still get mid-fault traffic, a post-heal
        // flush, and a drain past the retry caps.
        let horizon = net.fault_plan().expect("a plan is armed").horizon();
        let step = SimDuration::from_micros((horizon - SimTime::ZERO).as_micros() / 8);
        let mut ids = Vec::new();
        for _ in 0..8 {
            ids.push(net.multicast(&b"env-chaos"[..]));
            let next = net.now() + step;
            net.run_until(next);
        }
        net.run_until(horizon + SimDuration::from_millis(50));
        ids.push(net.multicast(&b"env-chaos-flush"[..]));
        net.run_until(horizon + SimDuration::from_secs(5));
        assert_invariants(&net, &ids, &format!("env plan, policy={}", policy.name()));
    }
}

// ---------------------------------------------------------------------------
// Overload episodes: the graceful-degradation machinery (memory budget,
// repair-storm damping, recovery-liveness watchdog) armed together under
// a heavy loss burst that heals.
// ---------------------------------------------------------------------------

/// Per-receiver memory budget of the overload runs: small enough that
/// ten ~200-byte chaos payloads blow through the pressure (50%) and
/// critical (85%) tiers on buffer-happy policies.
const OVERLOAD_BUDGET: usize = 2 * 1024;

fn overload_config(policy: PolicyKind) -> ProtocolConfig {
    ProtocolConfig {
        memory_budget: Some(OVERLOAD_BUDGET),
        // A tight bucket: two repair actions back-to-back, then one every
        // 40 ms — under an 80% loss burst every member wants far more,
        // so rounds *will* be shed and re-queued.
        damping: Some(DampingConfig {
            burst: 2,
            refill: SimDuration::from_millis(40),
            suppress_window: SimDuration::from_millis(15),
        }),
        watchdog: Some(WatchdogConfig {
            interval: SimDuration::from_millis(200),
            horizon: SimDuration::from_millis(400),
        }),
        ..chaos_config(policy)
    }
}

/// A repair storm in the making: 80% of unicasts (all regions) vanish
/// for half a second, then the network heals completely.
fn overload_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).loss_burst(0.8, None, SimTime::from_millis(100), SimTime::from_millis(600))
}

/// Runs one overload episode: large payloads against a small budget, a
/// loss burst that starves recovery, then a heal and a long drain.
fn run_overload(policy: PolicyKind, seed: u64) -> (RrmpNetwork, Vec<MessageId>) {
    let topo = chaos_topology();
    let mut net = RrmpNetwork::new_sharded(topo, overload_config(policy), seed);
    net.set_multicast_loss(LossModel::Bernoulli { p: 0.4 });
    net.arm_fault_plan(overload_plan(seed));
    let mut ids = Vec::new();
    for k in 0..10u64 {
        net.run_until(SimTime::from_millis(k * 60));
        let mut payload = vec![0x5A_u8; 200];
        payload[0] = k as u8;
        ids.push(net.multicast(payload));
        // The budget invariant holds mid-storm, not just at the end.
        assert_budget_respected(&net, &format!("policy={} k={k}", policy.name()));
    }
    for k in 0..2u64 {
        net.run_until(SimTime::from_millis(700 + k * 50));
        ids.push(net.multicast(format!("overload-flush-{k}").into_bytes()));
    }
    net.run_until(RUN_END);
    (net, ids)
}

/// No member's store may ever hold more bytes than the armed budget.
fn assert_budget_respected(net: &RrmpNetwork, label: &str) {
    for (id, node) in net.nodes() {
        let bytes = node.receiver().store().bytes();
        assert!(
            bytes <= OVERLOAD_BUDGET,
            "{label}: node {id} buffers {bytes} bytes over the {OVERLOAD_BUDGET}-byte budget"
        );
    }
}

/// Overload invariants: the chaos convergence rules, minus the
/// no-pending-recovery-at-run-end clause (the watchdog deliberately
/// keeps re-arming a wedged loss), plus the budget and shed-accounting
/// rules.
fn assert_overload_invariants(net: &RrmpNetwork, ids: &[MessageId], label: &str) {
    assert_budget_respected(net, label);
    for (id, node) in net.nodes() {
        let r = node.receiver();
        if r.has_left() {
            continue;
        }
        assert!(
            r.store().len() <= ids.len(),
            "{label}: node {id} holds {} entries for {} messages",
            r.store().len(),
            ids.len()
        );
        let c = r.metrics().counters;
        // Shed rounds are re-queued, never silently lost: a member that
        // shed requests either retried one later, gave up cleanly at a
        // cap, or was rescued by a repair in flight (delivered all).
        let delivered_all = ids.iter().all(|&m| node.has_delivered(m));
        if c.requests_shed > 0 {
            assert!(
                c.shed_retried > 0 || c.recovery_gave_up > 0 || delivered_all,
                "{label}: node {id} shed {} requests with no retry, give-up, \
                 or full delivery, counters {c:?}",
                c.requests_shed
            );
        }
        // An undelivered message the member knows about must have live
        // recovery (watchdog keeps it alive) or an accounted give-up —
        // never a silent limbo.
        for &msg in ids {
            if !node.has_delivered(msg) && r.detector().is_missing(msg) {
                assert!(
                    r.recovery_pending(msg) || c.recovery_gave_up > 0,
                    "{label}: node {id} missing {msg:?} with neither live \
                     recovery nor a recorded give-up"
                );
            }
        }
    }
}

#[test]
fn overload_invariants_hold_under_every_policy() {
    let mut any_shed = 0u64;
    let mut any_pressure = 0u64;
    for policy in ALL_POLICIES {
        for seed in [5u64, 17] {
            let (net, ids) = run_overload(policy, seed);
            assert_overload_invariants(
                &net,
                &ids,
                &format!("overload policy={} seed={seed}", policy.name()),
            );
            for (_, node) in net.nodes() {
                let c = node.receiver().metrics().counters;
                any_shed += c.requests_shed + c.remulticasts_shed;
                any_pressure += c.pressure_discards + c.admission_declined;
            }
        }
    }
    // The episodes must actually exercise the machinery: across all
    // policies the damper shed work and the budget forced discards or
    // admission declines (a vacuous overload run would prove nothing).
    assert!(any_shed > 0, "no repair action was ever shed — storm damping never engaged");
    assert!(any_pressure > 0, "no pressure discard/decline — the budget never degraded anything");
}

/// Armed overload machinery preserves layout invariance: the same
/// episode at shard counts 1, 2, and 4 produces identical deliveries,
/// counters, and buffer bytes.
#[test]
fn overload_runs_are_layout_invariant() {
    let run_at = |shards: usize| {
        let topo = chaos_topology();
        let mut net =
            RrmpNetwork::with_shards(topo, overload_config(PolicyKind::TwoPhase), 41, shards);
        net.set_multicast_loss(LossModel::Bernoulli { p: 0.4 });
        net.arm_fault_plan(overload_plan(41));
        let mut ids = Vec::new();
        for k in 0..8u64 {
            net.run_until(SimTime::from_millis(k * 80));
            ids.push(net.multicast(vec![k as u8; 180]));
        }
        net.run_until(SimTime::from_secs(4));
        (
            ids,
            net.nodes()
                .map(|(_, n)| {
                    (
                        n.delivered().to_vec(),
                        n.receiver().metrics().counters,
                        n.receiver().store().bytes(),
                    )
                })
                .collect::<Vec<_>>(),
        )
    };
    let one = run_at(1);
    assert_eq!(one, run_at(2), "armed overload at shards=2 diverged from the sequential oracle");
    assert_eq!(one, run_at(4), "armed overload at shards=4 diverged from the sequential oracle");
}

/// The heal → re-arm path does real work: a member partitioned long
/// enough to exhaust its retry caps converges after the heal, and its
/// `heal_rearms` counter records the restart.
#[test]
fn partition_heal_rearms_exhausted_recovery() {
    use rrmp_netsim::loss::DeliveryPlan;

    let topo = chaos_topology();
    let region1: Vec<NodeId> = (4..8).map(NodeId).collect();
    // Region 1 (nodes 4..8) is cut off from both other regions for most
    // of a second — far past the retry caps below — then heals.
    let heal = SimTime::from_millis(700);
    let plan = FaultPlan::new(9)
        .partition(RegionId(0), RegionId(1), SimTime::from_millis(100), heal)
        .partition(RegionId(1), RegionId(2), SimTime::from_millis(100), heal);
    // KeepAll so the other regions are guaranteed to still hold the
    // message when the partition heals; tight retry caps so the cut-off
    // members exhaust them *during* the window.
    let cfg = ProtocolConfig {
        max_local_attempts: 6,
        max_remote_attempts: 6,
        max_search_attempts: 6,
        ..chaos_config(PolicyKind::KeepAll)
    };
    let mut net = RrmpNetwork::with_fault_plan(topo, cfg, 9, plan);

    // Message `a` misses all of region 1; message `b` (delivered
    // everywhere, mid-partition — explicit delivery plans model the raw
    // multicast and bypass the fault edge) reveals the gap, so the
    // cut-off members start recovery they cannot complete: their region
    // peers never had `a`, and requests to other regions drop. Both
    // multicasts happen *inside* the window — earlier, and a repair
    // triggered by a pre-partition session ad could sneak out before the
    // cut (drops are evaluated at send time).
    let plan_a = DeliveryPlan::all_but(net.topology(), region1.iter().copied());
    net.run_until(SimTime::from_millis(120));
    let a = net.multicast_with_plan("during-partition-a", &plan_a);
    let plan_b = DeliveryPlan::all(net.topology());
    net.run_until(SimTime::from_millis(150));
    let b = net.multicast_with_plan("during-partition-b", &plan_b);

    // By just before the heal, the cut-off members must have given up.
    net.run_until(SimTime::from_millis(690));
    for &n in &region1 {
        let c = net.node(n).receiver().metrics().counters;
        assert!(!net.node(n).has_delivered(a), "node {n} got `a` through the partition");
        assert!(
            c.recovery_gave_up > 0,
            "node {n}: expected exhausted recovery before the heal, counters {c:?}"
        );
    }

    // After the heal every region-1 member converges on both messages,
    // and the restart is visible in the heal_rearms counter.
    net.run_until(SimTime::from_secs(4));
    for &n in &region1 {
        let node = net.node(n);
        assert!(
            node.has_delivered(a) && node.has_delivered(b),
            "node {n} failed to converge after the heal"
        );
        assert!(
            node.receiver().metrics().counters.heal_rearms > 0,
            "node {n} converged without a recorded heal re-arm"
        );
    }
}
