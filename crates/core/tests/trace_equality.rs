//! Differential tests: the zero-allocation event loop (scratch op buffer,
//! slab timers, fan-out ops, shared `Bytes` payloads) must produce
//! **byte-identical delivery traces** to the straightforward reference
//! implementation (fresh `Vec` per callback, one op and one clone per
//! destination) for the same seed.
//!
//! These tests drive the full RRMP protocol — loss detection, local and
//! remote recovery, regional repair multicasts with randomized back-off,
//! bufferer search, leave-time handoff — so every fast path the refactor
//! introduced is exercised end to end.

use rrmp_core::harness::RrmpNetwork;
use rrmp_core::ids::MessageId;
use rrmp_core::policy::PolicyKind;
use rrmp_core::prelude::ProtocolConfig;
use rrmp_netsim::fault::FaultPlan;
use rrmp_netsim::loss::{DeliveryPlan, LossModel};
use rrmp_netsim::time::{SimDuration, SimTime};
use rrmp_netsim::topology::{presets, NodeId, RegionId, Topology};

/// The full observable outcome of a run: per-node delivery traces (time,
/// message) in delivery order, plus network counters and protocol totals.
#[derive(Debug, PartialEq)]
struct RunTrace {
    deliveries: Vec<Vec<(SimTime, MessageId)>>,
    unicasts_sent: u64,
    unicasts_dropped: u64,
    timers_set: u64,
    timers_fired: u64,
    events_processed: u64,
    local_requests: u64,
    remote_requests: u64,
    repairs: u64,
    regional_multicasts: u64,
    handoffs: u64,
}

fn trace_of(net: &RrmpNetwork) -> RunTrace {
    let c = net.net_counters();
    RunTrace {
        deliveries: net.nodes().map(|(_, n)| n.delivered().to_vec()).collect(),
        unicasts_sent: c.unicasts_sent,
        unicasts_dropped: c.unicasts_dropped,
        timers_set: c.timers_set,
        timers_fired: c.timers_fired,
        events_processed: c.events_processed,
        local_requests: net.total_counter(|c| c.local_requests_sent),
        remote_requests: net.total_counter(|c| c.remote_requests_sent),
        repairs: net.total_counter(|c| c.repairs_sent_local + c.repairs_sent_remote),
        regional_multicasts: net.total_counter(|c| c.regional_multicasts_sent),
        handoffs: net.total_counter(|c| c.handoffs_sent),
    }
}

/// Runs `scenario` on both event loops and asserts identical traces.
fn assert_trace_equal<F>(
    topo_of: impl Fn() -> Topology,
    cfg: ProtocolConfig,
    seed: u64,
    scenario: F,
) where
    F: Fn(&mut RrmpNetwork),
{
    let mut optimized = RrmpNetwork::with_sender(topo_of(), cfg.clone(), seed, NodeId(0));
    scenario(&mut optimized);
    let mut reference = RrmpNetwork::new_reference(topo_of(), cfg, seed);
    scenario(&mut reference);
    assert_eq!(
        trace_of(&optimized),
        trace_of(&reference),
        "optimized and reference event loops diverged (seed {seed})"
    );
}

#[test]
fn single_region_recovery_traces_match() {
    for seed in [1u64, 7, 99, 1234] {
        assert_trace_equal(
            || presets::paper_region(40),
            ProtocolConfig::paper_defaults(),
            seed,
            |net| {
                let plan = DeliveryPlan::only(net.topology(), (0..10).map(NodeId));
                net.multicast_with_plan(&b"trace-a"[..], &plan);
                net.run_until(SimTime::from_millis(400));
                let plan = DeliveryPlan::all_but(net.topology(), (20..30).map(NodeId));
                net.multicast_with_plan(&b"trace-b"[..], &plan);
                net.run_until(SimTime::from_secs(1));
            },
        );
    }
}

#[test]
fn hierarchical_recovery_with_regional_multicast_traces_match() {
    for seed in [3u64, 42] {
        assert_trace_equal(
            || presets::figure1_chain([8, 8, 8], SimDuration::from_millis(25)),
            ProtocolConfig::paper_defaults(),
            seed,
            |net| {
                // Region 1 misses entirely: remote recovery + regional
                // repair multicast (the send_many fast path) kick in.
                let plan = DeliveryPlan::all_but(net.topology(), (8..16).map(NodeId));
                net.multicast_with_plan(&b"regional"[..], &plan);
                net.run_until(SimTime::from_secs(2));
            },
        );
    }
}

#[test]
fn lossy_multicast_stream_traces_match() {
    for seed in [5u64, 17] {
        assert_trace_equal(
            || presets::paper_region(25),
            ProtocolConfig::paper_defaults(),
            seed,
            |net| {
                net.set_multicast_loss(LossModel::Bernoulli { p: 0.3 });
                for _ in 0..6 {
                    net.multicast(&b"stream"[..]);
                    let next = net.now() + SimDuration::from_millis(25);
                    net.run_until(next);
                }
                net.run_until(SimTime::from_secs(1));
            },
        );
    }
}

#[test]
fn churn_with_handoffs_traces_match() {
    for seed in [2u64, 8] {
        assert_trace_equal(
            || presets::paper_region(20),
            ProtocolConfig::builder().c(1000.0).build().expect("valid config"),
            seed,
            |net| {
                let plan = DeliveryPlan::all(net.topology());
                net.multicast_with_plan(&b"churn"[..], &plan);
                net.run_until(SimTime::from_millis(200));
                net.schedule_leave(NodeId(3), SimTime::from_millis(250));
                net.schedule_crash(NodeId(9), SimTime::from_millis(300));
                net.run_until(SimTime::from_millis(600));
            },
        );
    }
}

#[test]
fn lossy_unicast_fanout_traces_match() {
    // Unicast (request/repair) loss forces the batched fan-out scheduler
    // to consume the loss RNG per destination — in exactly the reference
    // path's draw order — while retries exercise deep recovery paths.
    for seed in [11u64, 23] {
        assert_trace_equal(
            || presets::figure1_chain([10, 10, 10], SimDuration::from_millis(25)),
            ProtocolConfig::paper_defaults(),
            seed,
            |net| {
                net.sim_mut().set_unicast_loss(LossModel::Bernoulli { p: 0.15 });
                let plan = DeliveryPlan::all_but(net.topology(), (10..20).map(NodeId));
                net.multicast_with_plan(&b"lossy-fanout"[..], &plan);
                net.run_until(SimTime::from_secs(3));
            },
        );
    }
}

#[test]
fn region_correlated_stream_traces_match() {
    // A multi-region stream under region-correlated initial loss: the
    // injected multicasts group holders into per-latency batches (one
    // batch per region distance) and regional repair multicasts expand
    // lazily at delivery time.
    for seed in [31u64, 59] {
        assert_trace_equal(
            || presets::figure1_chain([8, 8, 8], SimDuration::from_millis(25)),
            ProtocolConfig::paper_defaults(),
            seed,
            |net| {
                net.set_multicast_loss(LossModel::RegionCorrelated {
                    p_region: 0.3,
                    p_member: 0.1,
                });
                for _ in 0..4 {
                    net.multicast(&b"regional-stream"[..]);
                    let next = net.now() + SimDuration::from_millis(40);
                    net.run_until(next);
                }
                net.run_until(SimTime::from_secs(3));
            },
        );
    }
}

/// Runs `scenario` on the **sharded** engine at shard counts 1, 2, and 4
/// and asserts byte-identical traces: `shards = 1` is the sequential
/// oracle of the conservative-window engine, and every parallel layout
/// must reproduce it exactly (same per-node deliveries, same counters,
/// same RNG draws).
fn assert_sharded_trace_equal<F>(
    topo_of: impl Fn() -> Topology,
    cfg: ProtocolConfig,
    seed: u64,
    scenario: F,
) where
    F: Fn(&mut RrmpNetwork),
{
    let mut sequential = RrmpNetwork::with_shards(topo_of(), cfg.clone(), seed, 1);
    assert_eq!(sequential.shards(), 1);
    scenario(&mut sequential);
    let oracle = trace_of(&sequential);
    for shards in [2usize, 4] {
        let mut net = RrmpNetwork::with_shards(topo_of(), cfg.clone(), seed, shards);
        scenario(&mut net);
        assert_eq!(
            oracle,
            trace_of(&net),
            "sharded run diverged from the sequential oracle (shards {}, seed {seed})",
            net.shards()
        );
    }
}

#[test]
fn sharded_hierarchical_recovery_traces_match() {
    // Region 1 misses the multicast entirely: remote recovery crosses
    // region (and shard) boundaries, and the regional repair multicast
    // exercises the intra-shard batch path.
    for seed in [3u64, 42] {
        assert_sharded_trace_equal(
            || presets::figure1_chain([8, 8, 8], SimDuration::from_millis(25)),
            ProtocolConfig::paper_defaults(),
            seed,
            |net| {
                let plan = DeliveryPlan::all_but(net.topology(), (8..16).map(NodeId));
                net.multicast_with_plan(&b"regional"[..], &plan);
                net.run_until(SimTime::from_secs(2));
            },
        );
    }
}

#[test]
fn sharded_lossy_stream_traces_match() {
    // A multi-region stream under region-correlated initial loss plus
    // unicast loss: every cross-shard mailbox merge and per-sender loss
    // stream is exercised over repeated windows.
    for seed in [7u64, 31] {
        assert_sharded_trace_equal(
            || presets::region_tree(6, 2, 2, SimDuration::from_millis(25)),
            ProtocolConfig::paper_defaults(),
            seed,
            |net| {
                net.set_multicast_loss(LossModel::RegionCorrelated {
                    p_region: 0.3,
                    p_member: 0.1,
                });
                net.set_unicast_loss(LossModel::Bernoulli { p: 0.1 });
                for _ in 0..4 {
                    net.multicast(&b"sharded-stream"[..]);
                    let next = net.now() + SimDuration::from_millis(40);
                    net.run_until(next);
                }
                net.run_until(SimTime::from_secs(3));
            },
        );
    }
}

#[test]
fn env_selected_shard_count_matches_sequential_oracle() {
    // `RRMP_SIM_SHARDS` (the CI matrix knob) picks the layout for
    // `new_sharded`; whatever its value, the trace must match the
    // explicit shards=1 oracle byte for byte.
    let topo_of = || presets::figure1_chain([8, 8, 8], SimDuration::from_millis(25));
    let scenario = |net: &mut RrmpNetwork| {
        net.set_unicast_loss(LossModel::Bernoulli { p: 0.1 });
        let plan = DeliveryPlan::all_but(net.topology(), (8..16).map(NodeId));
        net.multicast_with_plan(&b"env-shards"[..], &plan);
        net.run_until(SimTime::from_secs(2));
    };
    let mut oracle = RrmpNetwork::with_shards(topo_of(), ProtocolConfig::paper_defaults(), 5, 1);
    scenario(&mut oracle);
    let mut env_net = RrmpNetwork::new_sharded(topo_of(), ProtocolConfig::paper_defaults(), 5);
    scenario(&mut env_net);
    assert_eq!(
        trace_of(&oracle),
        trace_of(&env_net),
        "RRMP_SIM_SHARDS={} diverged from the sequential oracle",
        env_net.shards()
    );
}

#[test]
fn sharded_churn_with_handoffs_traces_match() {
    // Leaves and crashes drive external timers and handoff unicasts
    // through the sharded engine.
    assert_sharded_trace_equal(
        || presets::figure1_chain([7, 7, 7], SimDuration::from_millis(25)),
        ProtocolConfig::builder().c(1000.0).build().expect("valid config"),
        8,
        |net| {
            let plan = DeliveryPlan::all(net.topology());
            net.multicast_with_plan(&b"churn"[..], &plan);
            net.run_until(SimTime::from_millis(200));
            net.schedule_leave(NodeId(3), SimTime::from_millis(250));
            net.schedule_crash(NodeId(9), SimTime::from_millis(300));
            net.run_until(SimTime::from_millis(600));
        },
    );
}

#[test]
fn ported_policy_traces_match_across_event_loops() {
    // The baselines ported as policies run on the same engines as the
    // default algorithm — and must stay byte-identical between the
    // optimized and reference event loops, like every other policy.
    for kind in [
        PolicyKind::HashBufferers,
        PolicyKind::SenderBased,
        PolicyKind::KeepAll,
        PolicyKind::Stability,
        PolicyKind::TreeRmtp,
    ] {
        let cfg = ProtocolConfig::builder().policy(kind).build().expect("valid policy config");
        assert_trace_equal(
            || presets::figure1_chain([8, 8, 8], SimDuration::from_millis(25)),
            cfg,
            19,
            |net| {
                net.set_multicast_loss(LossModel::Bernoulli { p: 0.2 });
                for _ in 0..4 {
                    net.multicast(&b"policy-stream"[..]);
                    let next = net.now() + SimDuration::from_millis(40);
                    net.run_until(next);
                }
                net.run_until(SimTime::from_secs(2));
            },
        );
    }
}

#[test]
fn sharded_ported_policy_traces_match() {
    // Hash placement is topology-blind: its pulls routinely cross region
    // (and therefore shard) boundaries, exercising the mailbox merge
    // under a policy the sharded engine never hosted before.
    let cfg = ProtocolConfig::builder()
        .policy(PolicyKind::HashBufferers)
        .build()
        .expect("valid policy config");
    assert_sharded_trace_equal(
        || presets::figure1_chain([8, 8, 8], SimDuration::from_millis(25)),
        cfg,
        23,
        |net| {
            let plan = DeliveryPlan::all_but(net.topology(), (8..16).map(NodeId));
            net.multicast_with_plan(&b"sharded-hash"[..], &plan);
            net.run_until(SimTime::from_secs(2));
        },
    );
}

#[test]
fn sharded_history_exchange_policy_traces_match() {
    // Stability detection floods every shard pair with history unicasts
    // on each tick — the densest cross-shard mailbox traffic any policy
    // generates — while the HistoryTick timer chain re-arms per member.
    let cfg = ProtocolConfig::builder()
        .policy(PolicyKind::Stability)
        .build()
        .expect("valid policy config");
    assert_sharded_trace_equal(
        || presets::figure1_chain([6, 6, 6], SimDuration::from_millis(25)),
        cfg,
        29,
        |net| {
            let plan = DeliveryPlan::all_but(net.topology(), (6..12).map(NodeId));
            net.multicast_with_plan(&b"sharded-stability"[..], &plan);
            net.run_until(SimTime::from_secs(2));
        },
    );
}

#[test]
fn sharded_tree_rmtp_policy_traces_match() {
    // Repair-server NACK escalation crosses region (and shard)
    // boundaries twice: receivers → server, server → parent server.
    let cfg = ProtocolConfig::builder()
        .policy(PolicyKind::TreeRmtp)
        .build()
        .expect("valid policy config");
    assert_sharded_trace_equal(
        || presets::figure1_chain([6, 6, 6], SimDuration::from_millis(25)),
        cfg,
        37,
        |net| {
            let plan = DeliveryPlan::all_but(net.topology(), (6..12).map(NodeId));
            net.multicast_with_plan(&b"sharded-tree"[..], &plan);
            net.schedule_leave(NodeId(6), SimTime::from_millis(400));
            net.run_until(SimTime::from_secs(2));
        },
    );
}

#[test]
fn env_selected_policy_matches_reference_loop() {
    // `RRMP_POLICY` (the CI matrix knob) swaps the buffer policy for
    // every opted-in construction; whatever its value, the optimized and
    // reference event loops must agree and the group must fully recover.
    let mut cfg = ProtocolConfig::paper_defaults();
    if let Some(kind) = PolicyKind::from_env() {
        cfg.policy = kind;
    }
    let topo_of = || presets::paper_region(30);
    let scenario = |net: &mut RrmpNetwork| {
        let plan = DeliveryPlan::only(net.topology(), (0..20).map(NodeId));
        let id = net.multicast_with_plan(&b"env-policy"[..], &plan);
        net.run_until(SimTime::from_secs(2));
        assert!(net.all_delivered(id), "policy must recover: {}", net.delivered_count(id));
    };
    let mut optimized = RrmpNetwork::new_env_policy(topo_of(), ProtocolConfig::paper_defaults(), 9);
    scenario(&mut optimized);
    let mut reference = RrmpNetwork::new_reference(topo_of(), cfg, 9);
    scenario(&mut reference);
    assert_eq!(
        trace_of(&optimized),
        trace_of(&reference),
        "env-selected policy diverged between event loops"
    );
}

/// One fault plan exercising every episode kind: a region partition that
/// heals mid-run (driving [`Receiver::on_heal`] re-arming through the
/// `HEAL_TOKEN` external timers), a node stall, a region-scoped loss
/// burst overriding the base model, and bounded duplication.
fn mixed_fault_plan() -> FaultPlan {
    FaultPlan::new(42)
        .partition(RegionId(0), RegionId(1), SimTime::from_millis(200), SimTime::from_millis(600))
        .stall(NodeId(20), SimTime::from_millis(300), SimTime::from_millis(500))
        .loss_burst(0.4, Some(RegionId(2)), SimTime::from_millis(100), SimTime::from_millis(400))
        .duplicate(0.2, SimDuration::from_millis(5), SimTime::ZERO, SimTime::from_millis(800))
}

#[test]
fn fault_plan_traces_match_across_event_loops() {
    // The fault edge sits in front of the loss model in both event loops;
    // drops, burst overrides, and duplicate copies must consume RNG and
    // emit events in exactly the same order, and the heal notifications
    // at 400/500/600 ms must re-arm recovery identically.
    for seed in [13u64, 47] {
        assert_trace_equal(
            || presets::figure1_chain([8, 8, 8], SimDuration::from_millis(25)),
            ProtocolConfig::paper_defaults(),
            seed,
            |net| {
                net.arm_fault_plan(mixed_fault_plan());
                net.set_multicast_loss(LossModel::Bernoulli { p: 0.2 });
                for _ in 0..4 {
                    net.multicast(&b"faulted-stream"[..]);
                    let next = net.now() + SimDuration::from_millis(40);
                    net.run_until(next);
                }
                net.run_until(SimTime::from_secs(3));
            },
        );
    }
}

#[test]
fn sharded_fault_plan_traces_match() {
    // Fault verdicts are pure functions of (plan, send time, from, to) —
    // no engine RNG involved — so the same plan must yield byte-identical
    // traces at every shard count, including a permanent crash whose
    // protocol half (view removal, buffer drop) rides external timers.
    for seed in [19u64, 61] {
        assert_sharded_trace_equal(
            || presets::figure1_chain([8, 8, 8], SimDuration::from_millis(25)),
            ProtocolConfig::paper_defaults(),
            seed,
            |net| {
                net.arm_fault_plan(mixed_fault_plan().crash(NodeId(9), SimTime::from_millis(350)));
                let plan = DeliveryPlan::all_but(net.topology(), (8..16).map(NodeId));
                net.multicast_with_plan(&b"sharded-faults"[..], &plan);
                net.run_until(SimTime::from_secs(3));
            },
        );
    }
}

#[test]
fn env_fault_plan_matches_explicit_plan() {
    // `RRMP_FAULTS` (the CI chaos knob) arms the same plan
    // `FaultPlan::parse` builds explicitly; the env-armed run must match
    // the explicitly-armed oracle byte for byte. Set the variable inside
    // the test: no other test in this binary reads it.
    const SPEC: &str = "seed=3;partition=0-1@150..450;burst=0.3:2@100..300;dup=0.25+4@0..600";
    std::env::set_var("RRMP_FAULTS", SPEC);
    let topo_of = || presets::figure1_chain([8, 8, 8], SimDuration::from_millis(25));
    let scenario = |net: &mut RrmpNetwork| {
        net.set_multicast_loss(LossModel::Bernoulli { p: 0.25 });
        for _ in 0..3 {
            net.multicast(&b"env-faults"[..]);
            let next = net.now() + SimDuration::from_millis(40);
            net.run_until(next);
        }
        net.run_until(SimTime::from_secs(2));
    };
    let mut oracle = RrmpNetwork::with_fault_plan(
        topo_of(),
        ProtocolConfig::paper_defaults(),
        21,
        FaultPlan::parse(SPEC).expect("spec parses"),
    );
    scenario(&mut oracle);
    let mut env_net = RrmpNetwork::new(topo_of(), ProtocolConfig::paper_defaults(), 21);
    assert!(env_net.arm_env_fault_plan(), "RRMP_FAULTS was set; a plan must arm");
    assert!(env_net.fault_plan().is_some_and(|p| !p.is_empty()));
    scenario(&mut env_net);
    assert_eq!(
        trace_of(&oracle),
        trace_of(&env_net),
        "RRMP_FAULTS-armed run diverged from the explicitly-armed plan"
    );
    std::env::remove_var("RRMP_FAULTS");
    let mut unarmed = RrmpNetwork::new(topo_of(), ProtocolConfig::paper_defaults(), 21);
    assert!(!unarmed.arm_env_fault_plan(), "no RRMP_FAULTS means no plan");
}

#[test]
fn session_driven_tail_loss_traces_match() {
    assert_trace_equal(
        || presets::paper_region(30),
        ProtocolConfig::paper_defaults(),
        77,
        |net| {
            // The last message of the burst is lost everywhere except the
            // sender; only session advertisements can expose it.
            let plan = DeliveryPlan::all(net.topology());
            net.multicast_with_plan(&b"one"[..], &plan);
            let plan = DeliveryPlan::only(net.topology(), [NodeId(0)]);
            net.multicast_with_plan(&b"two"[..], &plan);
            net.run_until(SimTime::from_secs(1));
        },
    );
}
