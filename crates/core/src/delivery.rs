//! Ordered-delivery adapter.
//!
//! RRMP delivers messages in *receipt* order — repairs arrive out of
//! order by construction. Many applications want per-source FIFO order
//! instead. [`FifoReorder`] sits between [`Action::Deliver`] and the
//! application: push every delivery in, take releases out in contiguous
//! per-source sequence order.
//!
//! [`Action::Deliver`]: crate::events::Action::Deliver
//!
//! ```
//! use bytes::Bytes;
//! use rrmp_core::delivery::FifoReorder;
//! use rrmp_core::ids::{MessageId, SeqNo};
//! use rrmp_netsim::topology::NodeId;
//!
//! let src = NodeId(0);
//! let mid = |s| MessageId::new(src, SeqNo(s));
//! let mut fifo = FifoReorder::new();
//! assert!(fifo.push(mid(2), Bytes::from_static(b"b")).is_empty()); // held
//! let out = fifo.push(mid(1), Bytes::from_static(b"a"));
//! let seqs: Vec<u64> = out.iter().map(|(id, _)| id.seq.0).collect();
//! assert_eq!(seqs, vec![1, 2]); // released together, in order
//! ```

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;
use rrmp_netsim::topology::NodeId;

use crate::ids::{MessageId, SeqNo};

#[derive(Debug, Default)]
struct SourceQueue {
    /// The next sequence number to release (starts at 1, or after the
    /// configured floor).
    next: u64,
    pending: BTreeMap<u64, Bytes>,
}

/// Per-source FIFO reordering buffer.
#[derive(Debug, Default)]
pub struct FifoReorder {
    sources: HashMap<NodeId, SourceQueue>,
}

impl FifoReorder {
    /// Creates an empty reorder buffer.
    #[must_use]
    pub fn new() -> Self {
        FifoReorder::default()
    }

    /// Starts delivery for `source` *after* `floor` — pair with
    /// [`Receiver::set_recovery_floor`] for late joiners.
    ///
    /// [`Receiver::set_recovery_floor`]: crate::receiver::Receiver::set_recovery_floor
    pub fn set_floor(&mut self, source: NodeId, floor: SeqNo) {
        let q = self.sources.entry(source).or_default();
        q.next = q.next.max(floor.0 + 1);
        // Anything at or below the floor will never be released.
        q.pending = q.pending.split_off(&(floor.0 + 1));
    }

    /// Accepts one delivery; returns every message that is now releasable
    /// in order (possibly empty, possibly several).
    pub fn push(&mut self, id: MessageId, payload: Bytes) -> Vec<(MessageId, Bytes)> {
        let q = self.sources.entry(id.source).or_default();
        if q.next == 0 {
            q.next = 1;
        }
        if id.seq.0 < q.next {
            return Vec::new(); // duplicate or below the floor
        }
        q.pending.insert(id.seq.0, payload);
        let mut out = Vec::new();
        while let Some(payload) = q.pending.remove(&q.next) {
            out.push((MessageId::new(id.source, SeqNo(q.next)), payload));
            q.next += 1;
        }
        out
    }

    /// Messages held back waiting for a gap to fill, for `source`.
    #[must_use]
    pub fn pending_count(&self, source: NodeId) -> usize {
        self.sources.get(&source).map_or(0, |q| q.pending.len())
    }

    /// The next sequence number that would be released for `source`.
    #[must_use]
    pub fn next_expected(&self, source: NodeId) -> SeqNo {
        SeqNo(self.sources.get(&source).map_or(1, |q| q.next.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: NodeId = NodeId(0);

    fn mid(seq: u64) -> MessageId {
        MessageId::new(SRC, SeqNo(seq))
    }

    fn payload(seq: u64) -> Bytes {
        Bytes::from(vec![seq as u8])
    }

    #[test]
    fn in_order_passthrough() {
        let mut f = FifoReorder::new();
        for seq in 1..=5 {
            let out = f.push(mid(seq), payload(seq));
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].0, mid(seq));
        }
        assert_eq!(f.pending_count(SRC), 0);
        assert_eq!(f.next_expected(SRC), SeqNo(6));
    }

    #[test]
    fn gap_holds_then_flushes() {
        let mut f = FifoReorder::new();
        assert!(f.push(mid(2), payload(2)).is_empty());
        assert!(f.push(mid(3), payload(3)).is_empty());
        assert_eq!(f.pending_count(SRC), 2);
        let out = f.push(mid(1), payload(1));
        let seqs: Vec<u64> = out.iter().map(|(id, _)| id.seq.0).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(f.pending_count(SRC), 0);
    }

    #[test]
    fn duplicates_below_watermark_dropped() {
        let mut f = FifoReorder::new();
        f.push(mid(1), payload(1));
        assert!(f.push(mid(1), payload(1)).is_empty());
        assert_eq!(f.next_expected(SRC), SeqNo(2));
    }

    #[test]
    fn floor_skips_history() {
        let mut f = FifoReorder::new();
        f.set_floor(SRC, SeqNo(10));
        assert!(f.push(mid(5), payload(5)).is_empty());
        assert_eq!(f.pending_count(SRC), 0, "below-floor messages never queue");
        let out = f.push(mid(11), payload(11));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, mid(11));
    }

    #[test]
    fn sources_are_independent() {
        let a = NodeId(1);
        let b = NodeId(2);
        let mut f = FifoReorder::new();
        assert!(f.push(MessageId::new(a, SeqNo(2)), payload(2)).is_empty());
        let out = f.push(MessageId::new(b, SeqNo(1)), payload(1));
        assert_eq!(out.len(), 1, "source b is not blocked by source a's gap");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any arrival permutation of 1..=n (with duplicates) releases
        /// exactly 1..=n in order.
        #[test]
        fn releases_sorted_exactly_once(
            mut order in proptest::collection::vec(1u64..30, 1..100),
        ) {
            let n = *order.iter().max().unwrap();
            // Ensure every value 1..=n appears at least once.
            order.extend(1..=n);
            let mut f = FifoReorder::new();
            let mut released = Vec::new();
            for &seq in &order {
                for (id, _) in f.push(
                    MessageId::new(NodeId(0), SeqNo(seq)),
                    Bytes::from(vec![seq as u8]),
                ) {
                    released.push(id.seq.0);
                }
            }
            let expect: Vec<u64> = (1..=n).collect();
            prop_assert_eq!(released, expect);
        }
    }
}
