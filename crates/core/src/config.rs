//! Protocol configuration.
//!
//! [`ProtocolConfig`] collects every tunable the paper discusses:
//!
//! * `lambda` (λ) — expected number of remote requests sent by a region
//!   that missed a message entirely (§2.2).
//! * `c` (C) — expected number of long-term bufferers per region (§3.2);
//!   the probability nobody buffers decays as `e^{-C}` (Figure 4).
//! * `idle_threshold` (T) — a message becomes *idle* after this long
//!   without any retransmission request (§3.1); the paper's §4 uses
//!   40 ms = 4× the maximum intra-region RTT.
//! * retry timers for the local/remote/search phases ("set a timer
//!   according to its estimated round trip time").
//! * the back-off window for duplicate regional-repair suppression.
//! * the buffering policy, which can be swapped for baselines
//!   (fixed-time, keep-everything) in ablation experiments.

use rrmp_netsim::time::SimDuration;

pub use crate::policy::PolicyKind;

/// Errors from [`ProtocolConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// λ must be positive (otherwise regional losses are never repaired).
    NonPositiveLambda(f64),
    /// C must be positive (otherwise no long-term bufferers exist).
    NonPositiveC(f64),
    /// A timer duration that must be non-zero was zero.
    ZeroDuration(&'static str),
    /// Retry caps must be at least 1.
    ZeroAttempts(&'static str),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonPositiveLambda(l) => write!(f, "lambda must be positive, got {l}"),
            ConfigError::NonPositiveC(c) => write!(f, "c must be positive, got {c}"),
            ConfigError::ZeroDuration(name) => write!(f, "{name} must be non-zero"),
            ConfigError::ZeroAttempts(name) => write!(f, "{name} must be at least 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Repair-storm damping knobs: a deterministic token bucket paces the
/// repair actions each receiver originates (pull retries, remote
/// requests, regional re-multicasts), and a suppression window skips a
/// pull round when a peer was just heard requesting the same message.
/// Shed rounds are re-queued on the existing retry timers, never lost.
/// `None` in [`ProtocolConfig::damping`] disables all of it (the paper's
/// model) and keeps every trace byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DampingConfig {
    /// Token-bucket capacity: repair actions a receiver may fire
    /// back-to-back before the refill interval paces it.
    pub burst: u32,
    /// One token is returned every `refill` of simulated time.
    pub refill: SimDuration,
    /// A pull round is shed when a peer's request for the same message
    /// was overheard within this window (the requester's answer will
    /// serve everyone — the §2.2 suppression idea applied to pulls).
    pub suppress_window: SimDuration,
}

/// Recovery-liveness watchdog knobs: a periodic self-check that detects
/// wedged recovery — a detected loss with no recovery state left and no
/// timer driving it — persisting for at least `horizon`, and re-arms it
/// through the heal machinery. `None` disables the watchdog (default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WatchdogConfig {
    /// How often the self-check timer fires.
    pub interval: SimDuration,
    /// A stalled loss must persist across this horizon before the
    /// watchdog re-arms it (give-up bookkeeping is not instantly undone).
    pub horizon: SimDuration,
}

/// All protocol tunables. Construct with [`ProtocolConfig::builder`] or use
/// [`ProtocolConfig::paper_defaults`] for the §4 simulation parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProtocolConfig {
    /// Expected number of remote requests per region-wide loss (λ, §2.2).
    pub lambda: f64,
    /// Expected number of long-term bufferers per region (C, §3.2).
    pub c: f64,
    /// Idle threshold T (§3.1): discard-decision point after this long
    /// without requests.
    pub idle_threshold: SimDuration,
    /// Retry timer for local recovery — the estimated intra-region RTT.
    pub local_timeout: SimDuration,
    /// Retry timer for remote recovery — the estimated RTT to the parent
    /// region.
    pub remote_timeout: SimDuration,
    /// Retry timer for the bufferer search — the estimated intra-region RTT.
    pub search_timeout: SimDuration,
    /// How long a member remembers that a search for a message completed
    /// (the "I have the message" announcement). Probes still in flight
    /// when the announcement passes would otherwise re-ignite the search;
    /// within this window they are answered from the remembered holder
    /// instead. Should exceed `2 × search_timeout`.
    pub search_memory: SimDuration,
    /// Window for the randomized back-off that suppresses duplicate
    /// regional repair multicasts; `None` disables back-off (repairs are
    /// multicast immediately).
    pub backoff_window: Option<SimDuration>,
    /// Discard long-term-buffered messages unused for this long.
    pub long_term_timeout: SimDuration,
    /// How often the long-term buffer is swept for expiry.
    pub long_term_sweep_interval: SimDuration,
    /// Sender session-message interval.
    ///
    /// Loss detection for the *last* message of a burst waits for the next
    /// session advertisement (§2.1), so the feedback rule of §3.1 only
    /// works if `session_interval + rtt < idle_threshold` — otherwise
    /// every holder can go idle (and mostly discard) before the first
    /// retransmission request arrives. The default keeps a 2×RTT margin
    /// under the paper's T = 40 ms.
    pub session_interval: SimDuration,
    /// Safety cap on local-recovery retries per message.
    pub max_local_attempts: u32,
    /// Safety cap on remote-recovery retries per message.
    pub max_remote_attempts: u32,
    /// Safety cap on search forwards per member per message.
    pub max_search_attempts: u32,
    /// The buffering policy (the paper's two-phase scheme by default).
    /// [`PolicyKind::build`] turns the selector into the
    /// [`BufferPolicy`](crate::policy::BufferPolicy) implementation each
    /// receiver runs.
    pub policy: PolicyKind,
    /// Designated bufferers per message under
    /// [`PolicyKind::HashBufferers`].
    pub hash_bufferers: usize,
    /// Retry timer of the direct pull phases ported from the baselines
    /// (hash-based and sender-based requests, which may cross regions and
    /// therefore need a worst-case-RTT budget rather than the local one;
    /// also the parent-NACK retry of the tree policy's repair servers).
    pub direct_request_timeout: SimDuration,
    /// How often a history-exchanging policy
    /// ([`PolicyKind::Stability`]) advertises its delivery digest to the
    /// group — the standing overhead RRMP's feedback rule avoids.
    pub history_interval: SimDuration,
    /// Whether the sender role multicasts periodic session messages.
    /// Disabled by differential harnesses that mirror the legacy
    /// baselines' one-shot session advertisement per multicast.
    pub periodic_sessions: bool,
    /// Optional hard cap on buffered payload bytes per member. When set,
    /// inserts evict least-recently-used long-term entries first (§1's
    /// bounded-space scenario). `None` (default) means unbounded, the
    /// paper's model.
    pub buffer_capacity: Option<usize>,
    /// Whether remote requests refresh the short-term idle clock, like
    /// local requests do. The paper's idle rule counts every request; the
    /// ablation harness can restrict feedback to local requests only.
    pub remote_requests_refresh_idle: bool,
    /// Whether receivers keep a per-message event log (needed by the
    /// experiment harness; small per-message overhead).
    pub record_events: bool,
    /// Optional per-member memory budget (bytes) for the overload
    /// subsystem. Unlike [`ProtocolConfig::buffer_capacity`] (a hard cap
    /// enforced by eviction alone), the budget drives graceful
    /// degradation *tiers*: above the pressure threshold policies get an
    /// `on_pressure` hook to early-discard, and above the critical
    /// threshold receivers decline to buffer for others while still
    /// delivering locally. `None` (default) disarms the subsystem.
    pub memory_budget: Option<usize>,
    /// Repair-storm damping; `None` (default) disables it.
    pub damping: Option<DampingConfig>,
    /// Recovery-liveness watchdog; `None` (default) disables it.
    pub watchdog: Option<WatchdogConfig>,
}

impl ProtocolConfig {
    /// The parameters of the paper's §4 simulations: 10 ms intra-region
    /// RTT, idle threshold T = 40 ms (4× the maximum RTT), λ = 1, C = 6.
    #[must_use]
    pub fn paper_defaults() -> Self {
        ProtocolConfig {
            lambda: 1.0,
            c: 6.0,
            idle_threshold: SimDuration::from_millis(40),
            local_timeout: SimDuration::from_millis(10),
            remote_timeout: SimDuration::from_millis(50),
            search_timeout: SimDuration::from_millis(10),
            search_memory: SimDuration::from_millis(30),
            backoff_window: Some(SimDuration::from_millis(10)),
            long_term_timeout: SimDuration::from_secs(30),
            long_term_sweep_interval: SimDuration::from_secs(5),
            session_interval: SimDuration::from_millis(20),
            max_local_attempts: 200,
            max_remote_attempts: 200,
            max_search_attempts: 200,
            policy: PolicyKind::TwoPhase,
            hash_bufferers: 6,
            direct_request_timeout: SimDuration::from_millis(60),
            history_interval: SimDuration::from_millis(100),
            periodic_sessions: true,
            buffer_capacity: None,
            remote_requests_refresh_idle: true,
            record_events: true,
            memory_budget: None,
            damping: None,
            watchdog: None,
        }
    }

    /// Starts a builder from the paper defaults.
    #[must_use]
    pub fn builder() -> ProtocolConfigBuilder {
        ProtocolConfigBuilder { cfg: Self::paper_defaults() }
    }

    /// Checks invariants the protocol depends on.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.lambda.is_finite() || self.lambda <= 0.0 {
            return Err(ConfigError::NonPositiveLambda(self.lambda));
        }
        if !self.c.is_finite() || self.c <= 0.0 {
            return Err(ConfigError::NonPositiveC(self.c));
        }
        for (d, name) in [
            (self.idle_threshold, "idle_threshold"),
            (self.local_timeout, "local_timeout"),
            (self.remote_timeout, "remote_timeout"),
            (self.search_timeout, "search_timeout"),
            (self.long_term_timeout, "long_term_timeout"),
            (self.long_term_sweep_interval, "long_term_sweep_interval"),
            (self.session_interval, "session_interval"),
            (self.direct_request_timeout, "direct_request_timeout"),
            (self.history_interval, "history_interval"),
        ] {
            if d.is_zero() {
                return Err(ConfigError::ZeroDuration(name));
            }
        }
        for (a, name) in [
            (self.max_local_attempts, "max_local_attempts"),
            (self.max_remote_attempts, "max_remote_attempts"),
            (self.max_search_attempts, "max_search_attempts"),
            (self.hash_bufferers as u32, "hash_bufferers"),
        ] {
            if a == 0 {
                return Err(ConfigError::ZeroAttempts(name));
            }
        }
        if self.memory_budget == Some(0) {
            return Err(ConfigError::ZeroAttempts("memory_budget"));
        }
        if let Some(d) = self.damping {
            if d.burst == 0 {
                return Err(ConfigError::ZeroAttempts("damping.burst"));
            }
            if d.refill.is_zero() {
                return Err(ConfigError::ZeroDuration("damping.refill"));
            }
            if d.suppress_window.is_zero() {
                return Err(ConfigError::ZeroDuration("damping.suppress_window"));
            }
        }
        if let Some(w) = self.watchdog {
            if w.interval.is_zero() {
                return Err(ConfigError::ZeroDuration("watchdog.interval"));
            }
            if w.horizon.is_zero() {
                return Err(ConfigError::ZeroDuration("watchdog.horizon"));
            }
        }
        Ok(())
    }

    /// The probability with which one member of an `n`-member region sends
    /// a remote request per recovery round, so that the expected number of
    /// requests from the whole region is λ (§2.2).
    #[must_use]
    pub fn remote_request_probability(&self, region_size: usize) -> f64 {
        if region_size == 0 {
            return 0.0;
        }
        (self.lambda / region_size as f64).min(1.0)
    }

    /// The probability with which a member keeps an idle message in its
    /// long-term buffer, so that the expected number of long-term bufferers
    /// in an `n`-member region is C (§3.2).
    #[must_use]
    pub fn long_term_probability(&self, region_size: usize) -> f64 {
        if region_size == 0 {
            return 0.0;
        }
        (self.c / region_size as f64).min(1.0)
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Builder for [`ProtocolConfig`] (non-consuming terminal per C-BUILDER).
#[derive(Debug, Clone)]
pub struct ProtocolConfigBuilder {
    cfg: ProtocolConfig,
}

impl ProtocolConfigBuilder {
    /// Sets λ, the expected remote requests per region-wide loss.
    pub fn lambda(&mut self, lambda: f64) -> &mut Self {
        self.cfg.lambda = lambda;
        self
    }

    /// Sets C, the expected long-term bufferers per region.
    pub fn c(&mut self, c: f64) -> &mut Self {
        self.cfg.c = c;
        self
    }

    /// Sets the idle threshold T.
    pub fn idle_threshold(&mut self, t: SimDuration) -> &mut Self {
        self.cfg.idle_threshold = t;
        self
    }

    /// Sets the local-recovery retry timer (intra-region RTT estimate).
    pub fn local_timeout(&mut self, t: SimDuration) -> &mut Self {
        self.cfg.local_timeout = t;
        self
    }

    /// Sets the remote-recovery retry timer (parent-region RTT estimate).
    pub fn remote_timeout(&mut self, t: SimDuration) -> &mut Self {
        self.cfg.remote_timeout = t;
        self
    }

    /// Sets the search retry timer.
    pub fn search_timeout(&mut self, t: SimDuration) -> &mut Self {
        self.cfg.search_timeout = t;
        self
    }

    /// Sets the completed-search memory window.
    pub fn search_memory(&mut self, t: SimDuration) -> &mut Self {
        self.cfg.search_memory = t;
        self
    }

    /// Sets (or disables, with `None`) the regional-repair back-off window.
    pub fn backoff_window(&mut self, w: Option<SimDuration>) -> &mut Self {
        self.cfg.backoff_window = w;
        self
    }

    /// Sets how long unused long-term entries are kept.
    pub fn long_term_timeout(&mut self, t: SimDuration) -> &mut Self {
        self.cfg.long_term_timeout = t;
        self
    }

    /// Sets the long-term sweep interval.
    pub fn long_term_sweep_interval(&mut self, t: SimDuration) -> &mut Self {
        self.cfg.long_term_sweep_interval = t;
        self
    }

    /// Sets the sender session-message interval.
    pub fn session_interval(&mut self, t: SimDuration) -> &mut Self {
        self.cfg.session_interval = t;
        self
    }

    /// Sets the retry caps (local, remote, search).
    pub fn max_attempts(&mut self, local: u32, remote: u32, search: u32) -> &mut Self {
        self.cfg.max_local_attempts = local;
        self.cfg.max_remote_attempts = remote;
        self.cfg.max_search_attempts = search;
        self
    }

    /// Sets the buffering policy.
    pub fn policy(&mut self, p: PolicyKind) -> &mut Self {
        self.cfg.policy = p;
        self
    }

    /// Sets the designated-bufferer count of the hash policy.
    pub fn hash_bufferers(&mut self, k: usize) -> &mut Self {
        self.cfg.hash_bufferers = k;
        self
    }

    /// Sets the direct pull retry timer (hash / sender-based policies).
    pub fn direct_request_timeout(&mut self, t: SimDuration) -> &mut Self {
        self.cfg.direct_request_timeout = t;
        self
    }

    /// Sets the history-advertisement interval of stability detection.
    pub fn history_interval(&mut self, t: SimDuration) -> &mut Self {
        self.cfg.history_interval = t;
        self
    }

    /// Enables or disables the sender's periodic session messages.
    pub fn periodic_sessions(&mut self, yes: bool) -> &mut Self {
        self.cfg.periodic_sessions = yes;
        self
    }

    /// Sets (or clears) the per-member buffer byte capacity.
    pub fn buffer_capacity(&mut self, cap: Option<usize>) -> &mut Self {
        self.cfg.buffer_capacity = cap;
        self
    }

    /// Sets whether remote requests refresh the idle clock.
    pub fn remote_requests_refresh_idle(&mut self, yes: bool) -> &mut Self {
        self.cfg.remote_requests_refresh_idle = yes;
        self
    }

    /// Sets whether receivers keep per-message event logs.
    pub fn record_events(&mut self, yes: bool) -> &mut Self {
        self.cfg.record_events = yes;
        self
    }

    /// Sets (or clears) the per-member overload memory budget in bytes.
    pub fn memory_budget(&mut self, bytes: Option<usize>) -> &mut Self {
        self.cfg.memory_budget = bytes;
        self
    }

    /// Sets (or clears) the repair-storm damping knobs.
    pub fn damping(&mut self, d: Option<DampingConfig>) -> &mut Self {
        self.cfg.damping = d;
        self
    }

    /// Sets (or clears) the recovery-liveness watchdog knobs.
    pub fn watchdog(&mut self, w: Option<WatchdogConfig>) -> &mut Self {
        self.cfg.watchdog = w;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any invariant is violated.
    pub fn build(&self) -> Result<ProtocolConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid_and_match_section4() {
        let cfg = ProtocolConfig::paper_defaults();
        cfg.validate().unwrap();
        assert_eq!(cfg.idle_threshold, SimDuration::from_millis(40));
        assert_eq!(cfg.local_timeout, SimDuration::from_millis(10));
        assert!((cfg.lambda - 1.0).abs() < f64::EPSILON);
        assert!((cfg.c - 6.0).abs() < f64::EPSILON);
        assert_eq!(cfg.policy, PolicyKind::TwoPhase);
        assert_eq!(cfg.hash_bufferers, 6);
        assert_eq!(cfg.direct_request_timeout, SimDuration::from_millis(60));
        assert!(cfg.periodic_sessions);
    }

    #[test]
    fn builder_overrides() {
        let cfg = ProtocolConfig::builder()
            .lambda(2.0)
            .c(3.0)
            .idle_threshold(SimDuration::from_millis(80))
            .policy(PolicyKind::FixedTime { hold: SimDuration::from_millis(100) })
            .build()
            .unwrap();
        assert!((cfg.lambda - 2.0).abs() < f64::EPSILON);
        assert!((cfg.c - 3.0).abs() < f64::EPSILON);
        assert_eq!(cfg.idle_threshold, SimDuration::from_millis(80));
        assert!(matches!(cfg.policy, PolicyKind::FixedTime { .. }));
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(matches!(
            ProtocolConfig::builder().lambda(0.0).build(),
            Err(ConfigError::NonPositiveLambda(_))
        ));
        assert!(matches!(
            ProtocolConfig::builder().c(-1.0).build(),
            Err(ConfigError::NonPositiveC(_))
        ));
        assert!(matches!(
            ProtocolConfig::builder().idle_threshold(SimDuration::ZERO).build(),
            Err(ConfigError::ZeroDuration("idle_threshold"))
        ));
        assert!(matches!(
            ProtocolConfig::builder().max_attempts(0, 1, 1).build(),
            Err(ConfigError::ZeroAttempts("max_local_attempts"))
        ));
    }

    #[test]
    fn overload_knobs_default_off_and_validate() {
        let cfg = ProtocolConfig::paper_defaults();
        assert_eq!(cfg.memory_budget, None);
        assert_eq!(cfg.damping, None);
        assert_eq!(cfg.watchdog, None);

        assert!(matches!(
            ProtocolConfig::builder().memory_budget(Some(0)).build(),
            Err(ConfigError::ZeroAttempts("memory_budget"))
        ));
        assert!(matches!(
            ProtocolConfig::builder()
                .damping(Some(DampingConfig {
                    burst: 0,
                    refill: SimDuration::from_millis(5),
                    suppress_window: SimDuration::from_millis(5),
                }))
                .build(),
            Err(ConfigError::ZeroAttempts("damping.burst"))
        ));
        assert!(matches!(
            ProtocolConfig::builder()
                .damping(Some(DampingConfig {
                    burst: 4,
                    refill: SimDuration::ZERO,
                    suppress_window: SimDuration::from_millis(5),
                }))
                .build(),
            Err(ConfigError::ZeroDuration("damping.refill"))
        ));
        assert!(matches!(
            ProtocolConfig::builder()
                .watchdog(Some(WatchdogConfig {
                    interval: SimDuration::from_millis(50),
                    horizon: SimDuration::ZERO,
                }))
                .build(),
            Err(ConfigError::ZeroDuration("watchdog.horizon"))
        ));

        let armed = ProtocolConfig::builder()
            .memory_budget(Some(64 * 1024))
            .damping(Some(DampingConfig {
                burst: 8,
                refill: SimDuration::from_millis(5),
                suppress_window: SimDuration::from_millis(8),
            }))
            .watchdog(Some(WatchdogConfig {
                interval: SimDuration::from_millis(100),
                horizon: SimDuration::from_millis(250),
            }))
            .build()
            .unwrap();
        assert_eq!(armed.memory_budget, Some(64 * 1024));
    }

    #[test]
    fn probabilities_scale_with_region_size() {
        let cfg = ProtocolConfig::paper_defaults();
        assert!((cfg.remote_request_probability(100) - 0.01).abs() < 1e-12);
        assert!((cfg.long_term_probability(100) - 0.06).abs() < 1e-12);
        // Tiny regions clamp at 1.
        assert!((cfg.long_term_probability(3) - 1.0).abs() < 1e-12);
        assert_eq!(cfg.long_term_probability(0), 0.0);
        assert_eq!(cfg.remote_request_probability(0), 0.0);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ConfigError::NonPositiveLambda(0.0),
            ConfigError::NonPositiveC(0.0),
            ConfigError::ZeroDuration("x"),
            ConfigError::ZeroAttempts("y"),
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
