//! Hosting the sans-io protocol on the discrete-event simulator.
//!
//! [`RrmpNode`] adapts a [`Receiver`] (plus, on the sender node, a
//! [`Sender`]) to the [`SimNode`] interface; [`RrmpNetwork`] wraps a whole
//! simulated group with the conveniences every experiment needs: injecting
//! multicasts with controlled loss ([`DeliveryPlan`]), preloading buffer
//! states (Figures 8/9), scripting leaves, and extracting the
//! measurements the paper's figures plot.

use bytes::Bytes;
use std::sync::Arc;

use rrmp_membership::view::HierarchyView;
use rrmp_netsim::fault::FaultPlan;
use rrmp_netsim::loss::{DeliveryPlan, LossModel};
use rrmp_netsim::shard::{ShardPlacement, ShardedSim};
use rrmp_netsim::sim::{Ctx, NetCounters, Sim, SimNode};
use rrmp_netsim::time::SimTime;
use rrmp_netsim::topology::{NodeId, Topology};

use crate::config::ProtocolConfig;
use crate::events::{Action, Event, TimerKind};
use crate::ids::MessageId;
use crate::interval_set::MessageIdSet;
use crate::observe::TraceConfig;
use crate::packet::{DataPacket, Packet};
use crate::policy::PolicyKind;
use crate::receiver::{PreloadState, Receiver};
use crate::sender::{Sender, SenderAction};

/// External timer token that triggers [`Event::Leave`] on a node.
const LEAVE_TOKEN: u64 = u64::MAX;
/// External timer token that crashes a node (no handoff).
const CRASH_TOKEN: u64 = u64::MAX - 1;
/// External timer token notifying a node that a fault window healed
/// (partition, blackout, or stall ended): exhausted recovery re-arms.
const HEAL_TOKEN: u64 = u64::MAX - 2;
/// Base for external "remove node X from views" tokens.
const VIEW_REMOVE_BASE: u64 = 1 << 48;

/// One simulated group member: the sans-io [`Receiver`] (and the
/// [`Sender`] on the sender node) bridged onto the simulator.
#[derive(Debug)]
pub struct RrmpNode {
    receiver: Receiver,
    sender: Option<Sender>,
    delivered: Vec<(SimTime, MessageId)>,
    /// Per-source interval index over `delivered`, so membership checks
    /// ([`RrmpNode::has_delivered`]) are O(log #gaps) instead of a scan.
    delivered_index: MessageIdSet,
    /// Outstanding timer registrations, sorted by token. Tokens are
    /// allocated from the monotone `next_token`, so every insert is a
    /// push — the flat vector replaces a hash table per node.
    pending_timers: Vec<(u64, TimerKind)>,
    next_token: u64,
    recovery_packets_received: u64,
    /// Reused action buffer: `Receiver::handle_into` fills it, `execute`
    /// drains it — no allocation per event in steady state.
    action_scratch: Vec<Action>,
    /// True on nodes of a [`RrmpNetwork::new_reference`] network: restore
    /// the pre-refactor host behavior (fresh action `Vec` per event,
    /// members `Vec` per regional multicast, linear delivered scan) so the
    /// benchmark baseline reflects what this refactor replaced.
    reference_mode: bool,
}

impl RrmpNode {
    /// Creates a node around a receiver (and optional sender role).
    #[must_use]
    pub fn new(receiver: Receiver, sender: Option<Sender>) -> Self {
        RrmpNode {
            receiver,
            sender,
            delivered: Vec::new(),
            delivered_index: MessageIdSet::new(),
            pending_timers: Vec::new(),
            next_token: 0,
            recovery_packets_received: 0,
            // Capacity 2 up front: most events produce at most a deliver
            // plus a timer, and seeding the capacity keeps `Vec::push`'s
            // first growth from jumping straight to four 80-byte actions
            // on every one of a million nodes.
            action_scratch: Vec::with_capacity(2),
            reference_mode: false,
        }
    }

    /// Packets received excluding session advertisements — the per-node
    /// recovery load used by the implosion comparison.
    #[must_use]
    pub fn recovery_packets_received(&self) -> u64 {
        self.recovery_packets_received
    }

    /// The protocol receiver (instrumentation access).
    #[must_use]
    pub fn receiver(&self) -> &Receiver {
        &self.receiver
    }

    /// Mutable receiver access (experiment setup).
    pub fn receiver_mut(&mut self) -> &mut Receiver {
        &mut self.receiver
    }

    /// The sender role, if this node is the group's source.
    #[must_use]
    pub fn sender(&self) -> Option<&Sender> {
        self.sender.as_ref()
    }

    /// Messages delivered to the application on this node, in order.
    #[must_use]
    pub fn delivered(&self) -> &[(SimTime, MessageId)] {
        &self.delivered
    }

    /// Whether `id` was delivered here. O(log #gaps) via the per-source
    /// interval index, not a scan of the delivery log. (Reference-mode
    /// nodes keep the historical linear scan as the benchmark baseline.)
    #[must_use]
    pub fn has_delivered(&self, id: MessageId) -> bool {
        if self.reference_mode {
            return self.delivered.iter().any(|&(_, d)| d == id);
        }
        self.delivered_index.contains(id)
    }

    /// Registers a timer kind and returns the host token for it — used
    /// when scheduling protocol timers from outside a simulation callback.
    pub fn register_timer_token(&mut self, kind: TimerKind) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        crate::vecmap::reserve_doubling(&mut self.pending_timers);
        self.pending_timers.push((token, kind));
        token
    }

    /// Drains `actions` into simulator ops. The buffer is left empty so
    /// callers can reuse it.
    fn execute(&mut self, ctx: &mut Ctx<'_, Packet>, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            self.execute_one(ctx, action);
        }
    }

    fn execute_one(&mut self, ctx: &mut Ctx<'_, Packet>, action: Action) {
        match action {
            Action::Send { to, packet } => {
                if to != ctx.self_id() {
                    ctx.send(to, packet);
                }
            }
            Action::MulticastRegion { packet } => {
                if self.reference_mode {
                    // Pre-refactor shape: collect the members, then one op
                    // and one clone per destination.
                    let members: Vec<NodeId> = self.receiver.view().own().members().collect();
                    ctx.send_all(members, packet);
                } else {
                    // One fan-out op sharing the packet (and its Bytes
                    // payload) across every destination — no members Vec,
                    // no deep copies.
                    let members = self.receiver.view().own().members();
                    ctx.send_many(members, packet);
                }
            }
            Action::Deliver { id, .. } => {
                crate::vecmap::reserve_doubling(&mut self.delivered);
                self.delivered.push((ctx.now(), id));
                if !self.reference_mode {
                    // Reference nodes answer has_delivered by scanning the
                    // log, so maintaining the index would charge the
                    // benchmark baseline a cost the historical code
                    // never paid.
                    self.delivered_index.insert(id);
                }
            }
            Action::SetTimer { delay, kind } => {
                let token = self.next_token;
                self.next_token += 1;
                crate::vecmap::reserve_doubling(&mut self.pending_timers);
                self.pending_timers.push((token, kind));
                ctx.set_timer(delay, token);
            }
        }
    }

    fn execute_sender(&mut self, ctx: &mut Ctx<'_, Packet>, actions: Vec<SenderAction>) {
        for action in actions {
            match action {
                SenderAction::MulticastGroup { packet } => {
                    if self.reference_mode {
                        let everyone: Vec<NodeId> = ctx.topology().nodes().collect();
                        ctx.send_all(everyone, packet);
                    } else {
                        // Group-wide fan-out is a single op; the simulator
                        // expands it over the topology.
                        ctx.send_group(packet);
                    }
                }
                SenderAction::Protocol(a) => self.execute_one(ctx, a),
            }
        }
    }

    /// Feeds `event` through the receiver and executes the resulting
    /// actions, reusing the node's scratch action buffer.
    fn handle_event(&mut self, ctx: &mut Ctx<'_, Packet>, event: Event) {
        if self.reference_mode {
            // Pre-refactor shape: a fresh action vector per event.
            let mut actions = self.receiver.handle(event, ctx.now());
            self.execute(ctx, &mut actions);
            return;
        }
        let mut actions = std::mem::take(&mut self.action_scratch);
        debug_assert!(actions.is_empty());
        self.receiver.handle_into(event, ctx.now(), &mut actions);
        self.execute(ctx, &mut actions);
        self.action_scratch = actions;
    }
}

impl SimNode for RrmpNode {
    type Msg = Packet;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Packet>) {
        let mut actions = self.receiver.on_start();
        self.execute(ctx, &mut actions);
        // The session tick is gated so differential harnesses can mirror
        // the legacy baselines' one-shot session advertisements.
        if self.receiver.config().periodic_sessions {
            if let Some(sender) = &self.sender {
                let actions = sender.on_start();
                self.execute_sender(ctx, actions);
            }
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Packet>, from: NodeId, packet: Packet) {
        if !matches!(packet, Packet::Session { .. }) {
            self.recovery_packets_received += 1;
        }
        self.handle_event(ctx, Event::Packet { from, packet });
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Packet>, token: u64) {
        if token == LEAVE_TOKEN {
            self.handle_event(ctx, Event::Leave);
            return;
        }
        if token == CRASH_TOKEN {
            self.receiver.crash(ctx.now());
            return;
        }
        // Must precede the VIEW_REMOVE range check: u64::MAX - 2 falls
        // inside `VIEW_REMOVE_BASE..LEAVE_TOKEN`.
        if token == HEAL_TOKEN {
            let mut actions = std::mem::take(&mut self.action_scratch);
            debug_assert!(actions.is_empty());
            self.receiver.on_heal(ctx.now(), &mut actions);
            self.execute(ctx, &mut actions);
            self.action_scratch = actions;
            return;
        }
        if (VIEW_REMOVE_BASE..LEAVE_TOKEN).contains(&token) {
            let node = NodeId((token - VIEW_REMOVE_BASE) as u32);
            // Through the receiver (not view_mut directly) so the buffer
            // policy prunes per-member state — a stability quorum must
            // stop waiting on a departed member.
            self.receiver.on_membership_removed(node);
            return;
        }
        let kind = self
            .pending_timers
            .binary_search_by_key(&token, |&(t, _)| t)
            .ok()
            .map(|i| self.pending_timers.remove(i).1);
        if let Some(kind) = kind {
            if matches!(kind, TimerKind::SessionTick) {
                if let Some(sender) = &self.sender {
                    let actions = sender.on_session_tick();
                    self.execute_sender(ctx, actions);
                }
                return;
            }
            self.handle_event(ctx, Event::Timer(kind));
        }
    }
}

/// The simulation engine hosting an [`RrmpNetwork`]: the single-queue
/// [`Sim`] (optimized or reference mode), or the conservatively parallel
/// region-sharded [`ShardedSim`]. Every harness operation delegates; the
/// two engines share the node type, the `Ctx` API, and the topology.
// One engine lives per network (never in collections), so the size gap
// between the variants costs nothing; boxing would put a pointer chase on
// every harness call instead.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum SimEngine {
    Single(Sim<RrmpNode>),
    Sharded(ShardedSim<RrmpNode>),
}

impl SimEngine {
    fn topology(&self) -> &Topology {
        match self {
            SimEngine::Single(s) => s.topology(),
            SimEngine::Sharded(s) => s.topology(),
        }
    }

    fn now(&self) -> SimTime {
        match self {
            SimEngine::Single(s) => s.now(),
            SimEngine::Sharded(s) => s.now(),
        }
    }

    fn counters(&self) -> NetCounters {
        match self {
            SimEngine::Single(s) => s.counters(),
            SimEngine::Sharded(s) => s.counters(),
        }
    }

    fn node(&self, id: NodeId) -> &RrmpNode {
        match self {
            SimEngine::Single(s) => s.node(id),
            SimEngine::Sharded(s) => s.node(id),
        }
    }

    fn node_mut(&mut self, id: NodeId) -> &mut RrmpNode {
        match self {
            SimEngine::Single(s) => s.node_mut(id),
            SimEngine::Sharded(s) => s.node_mut(id),
        }
    }

    fn nodes(&self) -> impl Iterator<Item = (NodeId, &RrmpNode)> {
        self.topology().nodes().map(move |id| (id, self.node(id)))
    }

    fn inject(&mut self, to: NodeId, from: NodeId, msg: Packet, at: SimTime) {
        match self {
            SimEngine::Single(s) => s.inject(to, from, msg, at),
            SimEngine::Sharded(s) => s.inject(to, from, msg, at),
        }
    }

    fn inject_multicast_plan(
        &mut self,
        from: NodeId,
        msg: &Packet,
        plan: &DeliveryPlan,
        at: SimTime,
    ) {
        match self {
            SimEngine::Single(s) => s.inject_multicast_plan(from, msg, plan, at),
            SimEngine::Sharded(s) => s.inject_multicast_plan(from, msg, plan, at),
        }
    }

    fn schedule_external_timer(&mut self, node: NodeId, token: u64, at: SimTime) {
        match self {
            SimEngine::Single(s) => s.schedule_external_timer(node, token, at),
            SimEngine::Sharded(s) => s.schedule_external_timer(node, token, at),
        }
    }

    fn run_until(&mut self, t: SimTime) {
        match self {
            SimEngine::Single(s) => s.run_until(t),
            SimEngine::Sharded(s) => s.run_until(t),
        }
    }

    fn run_until_quiescent(&mut self, limit: SimTime) -> SimTime {
        match self {
            SimEngine::Single(s) => s.run_until_quiescent(limit),
            SimEngine::Sharded(s) => s.run_until_quiescent(limit),
        }
    }

    fn set_unicast_loss(&mut self, model: LossModel) {
        match self {
            SimEngine::Single(s) => s.set_unicast_loss(model),
            SimEngine::Sharded(s) => s.set_unicast_loss(model),
        }
    }

    fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        match self {
            SimEngine::Single(s) => s.set_fault_plan(plan),
            SimEngine::Sharded(s) => s.set_fault_plan(plan),
        }
    }

    fn reset(&mut self, nodes: Vec<RrmpNode>, seed: u64) {
        match self {
            SimEngine::Single(s) => s.reset(nodes, seed),
            SimEngine::Sharded(s) => s.reset(nodes, seed),
        }
    }

    fn is_optimized(&self) -> bool {
        match self {
            SimEngine::Single(s) => s.is_optimized(),
            SimEngine::Sharded(_) => true,
        }
    }
}

/// Shard count taken from the `RRMP_SIM_SHARDS` environment variable
/// (default 1 — the sequential windowed engine). Traces are identical at
/// every value; the variable only chooses the degree of parallelism, so
/// CI runs the whole suite under `RRMP_SIM_SHARDS=4` as a determinism
/// check.
/// # Panics
///
/// Panics on a set-but-invalid value (unparsable or zero): a determinism
/// job that silently fell back to one shard would go green while testing
/// nothing.
fn shards_from_env() -> usize {
    match std::env::var("RRMP_SIM_SHARDS") {
        Err(_) => 1,
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("RRMP_SIM_SHARDS must be a positive integer, got {v:?}"),
        },
    }
}

/// Per-receiver memory budget (bytes) taken from the `RRMP_MEM_BUDGET`
/// environment variable, or `None` when unset. Mirrors `RRMP_SIM_SHARDS`
/// / `RRMP_POLICY`: only call sites that opt in
/// ([`RrmpNetwork::new_env_policy`]) are affected, so a CI axis can run
/// the whole suite under a tight budget without touching tests that
/// assert unbudgeted behaviour.
///
/// # Panics
///
/// Panics on a set-but-invalid value (unparsable or zero): an overload
/// CI job that silently ran unbudgeted would go green while testing
/// nothing.
fn mem_budget_from_env() -> Option<usize> {
    match std::env::var("RRMP_MEM_BUDGET") {
        Err(_) => None,
        // Blank means unset — the CI matrix passes '' on rows without the
        // overload axis, mirroring how RRMP_FAULTS treats blanks.
        Ok(v) if v.trim().is_empty() => None,
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => panic!("RRMP_MEM_BUDGET must be a positive byte count, got {v:?}"),
        },
    }
}

/// Returned by [`RrmpNetwork::try_sim_mut`] when the network is hosted on
/// the sharded engine and therefore has no single-queue [`Sim`] to lend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineMismatch {
    /// The shard count of the engine actually hosting the network.
    pub shards: usize,
}

impl std::fmt::Display for EngineMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "network runs on the sharded engine ({} shards)", self.shards)
    }
}

impl std::error::Error for EngineMismatch {}

/// A complete simulated RRMP group: topology, one sender, one receiver per
/// node, and experiment conveniences.
#[derive(Debug)]
pub struct RrmpNetwork {
    sim: SimEngine,
    sender_node: NodeId,
    multicast_loss: LossModel,
    /// Retained so [`RrmpNetwork::reset`] can rebuild the protocol state.
    cfg: ProtocolConfig,
    senders: Vec<NodeId>,
    /// Armed fault plan, if any — retained so [`RrmpNetwork::reset`] can
    /// re-schedule the protocol-side crash and heal timers (the engines
    /// keep the network-edge half through their own reset).
    fault_plan: Option<Arc<FaultPlan>>,
    /// Armed observer configuration, if any — retained so
    /// [`RrmpNetwork::reset`] can re-arm the rebuilt receivers.
    trace_cfg: Option<TraceConfig>,
}

/// Trace-export path from the `RRMP_TRACE` environment variable, or
/// `None` when unset or blank (mirroring how `RRMP_MEM_BUDGET` treats
/// blanks, so CI matrix rows can pass `''` on non-trace axes). Binaries
/// that honour the knob arm [`RrmpNetwork::with_observer`] and write
/// [`RrmpNetwork::trace_jsonl`] to the named file.
#[must_use]
pub fn trace_path_from_env() -> Option<std::path::PathBuf> {
    match std::env::var("RRMP_TRACE") {
        Err(_) => None,
        Ok(v) if v.trim().is_empty() => None,
        Ok(v) => Some(std::path::PathBuf::from(v)),
    }
}

impl RrmpNetwork {
    /// Builds a group over `topo` with node 0 as the sender, every member
    /// running `cfg`, and all randomness derived from `seed`.
    #[must_use]
    pub fn new(topo: Topology, cfg: ProtocolConfig, seed: u64) -> Self {
        Self::with_sender(topo, cfg, seed, NodeId(0))
    }

    /// Like [`RrmpNetwork::new`] with an explicit sender node.
    ///
    /// # Panics
    ///
    /// Panics if `sender_node` is not in `topo` or `cfg` is invalid.
    #[must_use]
    pub fn with_sender(
        topo: Topology,
        cfg: ProtocolConfig,
        seed: u64,
        sender_node: NodeId,
    ) -> Self {
        Self::with_senders(topo, cfg, seed, &[sender_node])
    }

    /// Builds a group with **several** sender roles — an extension beyond
    /// the paper's single-sender model (§2 designs RRMP "for multicast
    /// applications with only one sender", but nothing in loss detection
    /// or buffering is sender-specific: streams are tracked per source).
    /// `senders[0]` is the default target of [`RrmpNetwork::multicast`].
    ///
    /// # Panics
    ///
    /// Panics if `senders` is empty, any sender is not in `topo`, or
    /// `cfg` is invalid.
    #[must_use]
    pub fn with_senders(
        topo: Topology,
        cfg: ProtocolConfig,
        seed: u64,
        senders: &[NodeId],
    ) -> Self {
        Self::with_senders_mode(topo, cfg, seed, senders, true)
    }

    /// Like [`RrmpNetwork::new`], but hosted on the **reference** event
    /// loop ([`Sim::new_reference`]): per-callback allocation and
    /// per-destination clones instead of the zero-allocation fast paths.
    /// Behavior is identical by construction — the trace-equality tests
    /// assert it — and the perf delta is what `BENCH_sim_core.json`
    /// reports.
    #[must_use]
    pub fn new_reference(topo: Topology, cfg: ProtocolConfig, seed: u64) -> Self {
        Self::with_senders_mode(topo, cfg, seed, &[NodeId(0)], false)
    }

    /// Builds a group hosted on the **conservatively parallel** sharded
    /// engine ([`ShardedSim`]), with the shard count taken from the
    /// `RRMP_SIM_SHARDS` environment variable (default 1). Traces are
    /// byte-identical at every shard count — the variable only picks the
    /// degree of parallelism.
    ///
    /// Note the sharded engine's windowed semantics differ from
    /// [`RrmpNetwork::new`]'s single event queue (per-sender unicast-loss
    /// RNG streams, canonical cross-region merge order), so a sharded run
    /// is compared against sharded runs, not against the single-queue
    /// engines.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    #[must_use]
    pub fn new_sharded(topo: Topology, cfg: ProtocolConfig, seed: u64) -> Self {
        Self::with_shards(topo, cfg, seed, shards_from_env())
    }

    /// Like [`RrmpNetwork::new_sharded`] with an explicit shard count
    /// (clamped to the region count; a region never splits).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid or `shards` is zero.
    #[must_use]
    pub fn with_shards(topo: Topology, cfg: ProtocolConfig, seed: u64, shards: usize) -> Self {
        Self::with_shards_placement(topo, cfg, seed, shards, ShardPlacement::default())
    }

    /// Like [`RrmpNetwork::with_shards`] with an explicit region→shard
    /// [`ShardPlacement`] strategy. Traces are byte-identical across
    /// placements (the canonical cross-region merge order does not depend
    /// on which shard hosts a region); the choice only affects load
    /// balance across shard workers.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid or `shards` is zero.
    #[must_use]
    pub fn with_shards_placement(
        topo: Topology,
        cfg: ProtocolConfig,
        seed: u64,
        shards: usize,
        placement: ShardPlacement,
    ) -> Self {
        cfg.validate().expect("invalid protocol config");
        assert!(shards >= 1, "need at least one shard");
        let senders = [NodeId(0)];
        // Stream nodes straight into their shards — never materialize the
        // full node set twice (a `Vec` plus the per-shard vectors), which
        // at a million members would briefly double peak memory.
        let sim = ShardedSim::with_placement_from(
            &topo,
            Self::build_nodes_iter(&topo, &cfg, seed, &senders, true),
            seed,
            shards,
            placement,
        );
        RrmpNetwork {
            sim: SimEngine::Sharded(sim),
            sender_node: senders[0],
            multicast_loss: LossModel::None,
            cfg,
            senders: senders.to_vec(),
            fault_plan: None,
            trace_cfg: None,
        }
    }

    /// Like [`RrmpNetwork::new`], but letting the `RRMP_POLICY`
    /// environment variable override the configured buffer policy
    /// (mirroring how `RRMP_SIM_SHARDS` selects the engine for
    /// [`RrmpNetwork::new_sharded`]). Only call sites that opt in are
    /// affected, so the CI policy matrix exercises the non-default
    /// policies without touching tests that assert two-phase behaviour.
    ///
    /// The `RRMP_MEM_BUDGET` environment variable (bytes per receiver)
    /// likewise overrides [`ProtocolConfig::memory_budget`], so one CI
    /// axis runs the suite under a tight budget.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid, `RRMP_POLICY` holds an unknown value,
    /// or `RRMP_MEM_BUDGET` is set but not a positive integer.
    #[must_use]
    pub fn new_env_policy(topo: Topology, mut cfg: ProtocolConfig, seed: u64) -> Self {
        if let Some(kind) = PolicyKind::from_env() {
            cfg.policy = kind;
        }
        if let Some(budget) = mem_budget_from_env() {
            cfg.memory_budget = Some(budget);
        }
        Self::new(topo, cfg, seed)
    }

    /// Like [`RrmpNetwork::new`] with a deterministic [`FaultPlan`] armed
    /// before the run starts: partitions, blackouts, bursts, and
    /// duplication apply at the network edge; plan crashes become
    /// scheduled member crashes; every heal instant notifies every node
    /// so exhausted recovery re-arms ([`Receiver::on_heal`]).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    #[must_use]
    pub fn with_fault_plan(
        topo: Topology,
        cfg: ProtocolConfig,
        seed: u64,
        plan: FaultPlan,
    ) -> Self {
        let mut net = Self::new(topo, cfg, seed);
        net.arm_fault_plan(plan);
        net
    }

    /// Arms `plan` on whichever engine hosts the group and schedules its
    /// protocol-side consequences (crashes, heal notifications). The plan
    /// survives [`RrmpNetwork::reset`].
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already started — fault timelines are
    /// part of the experiment setup, not something to splice into a
    /// half-run trace.
    pub fn arm_fault_plan(&mut self, plan: FaultPlan) {
        assert_eq!(self.sim.now(), SimTime::ZERO, "arm fault plans before the simulation starts");
        let plan = Arc::new(plan);
        self.sim.set_fault_plan(Some(plan.clone()));
        self.fault_plan = Some(plan);
        self.schedule_fault_protocol_timers();
    }

    /// Arms the fault plan from the `RRMP_FAULTS` environment variable
    /// (mirroring `RRMP_SIM_SHARDS` / `RRMP_POLICY`), if set. Returns
    /// whether a plan was armed, so harnesses can log or skip
    /// fault-sensitive assertions.
    ///
    /// # Panics
    ///
    /// Panics if `RRMP_FAULTS` is set but malformed (a chaos job that
    /// silently ran fault-free would go green while testing nothing), or
    /// if the simulation has already started.
    pub fn arm_env_fault_plan(&mut self) -> bool {
        // The panic lives here at the harness boundary; the fault
        // library itself reports malformed specs as a plain `Err`.
        match FaultPlan::from_env() {
            Ok(Some(plan)) => {
                self.arm_fault_plan(plan);
                true
            }
            Ok(None) => false,
            Err(e) => panic!("{e}"),
        }
    }

    /// The armed fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_deref()
    }

    /// Attaches the observer subsystem ([`crate::observe`]) to the whole
    /// group, builder-style: engine-side sinks record deliveries and wire
    /// verdicts, every receiver records protocol events and latency
    /// histograms, and — when [`TraceConfig::sample_every`] is set — a
    /// per-node sampling timer records the time-series pillar. The
    /// observer survives [`RrmpNetwork::reset`].
    ///
    /// Armed traces are byte-identical across engines and shard counts
    /// (the `observer_invariance` suite pins it); an unarmed network pays
    /// one `Option` branch per hook site.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already started — observers attach to
    /// whole runs, not to a half-run trace.
    #[must_use]
    pub fn with_observer(mut self, tc: TraceConfig) -> Self {
        self.arm_observer(tc);
        self
    }

    /// Non-consuming form of [`RrmpNetwork::with_observer`].
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already started.
    pub fn arm_observer(&mut self, tc: TraceConfig) {
        assert_eq!(self.sim.now(), SimTime::ZERO, "arm the observer before the simulation starts");
        self.trace_cfg = Some(tc);
        self.rearm_observer();
    }

    /// Whether the observer is armed.
    #[must_use]
    pub fn observer_armed(&self) -> bool {
        self.trace_cfg.is_some()
    }

    /// Arms the engine sinks and every receiver from the retained config
    /// (construction and after [`RrmpNetwork::reset`] rebuilds nodes).
    fn rearm_observer(&mut self) {
        let Some(tc) = self.trace_cfg else { return };
        match &mut self.sim {
            SimEngine::Single(s) => {
                s.set_trace(Some(Box::new(rrmp_trace::TraceSink::new(tc.ring_capacity))));
            }
            SimEngine::Sharded(s) => s.set_trace(Some(tc.ring_capacity)),
        }
        let nodes: Vec<NodeId> = self.sim.topology().nodes().collect();
        for n in nodes {
            self.sim.node_mut(n).receiver_mut().arm_trace(&tc);
        }
    }

    /// Every recorded trace event — engine streams plus all receiver
    /// streams — in the canonical `(at, node, stream, emit)` order.
    /// Empty when the observer is unarmed.
    #[must_use]
    pub fn trace_events(&self) -> Vec<rrmp_trace::TraceEvent> {
        let mut out = Vec::new();
        match &self.sim {
            SimEngine::Single(s) => s.collect_trace(&mut out),
            SimEngine::Sharded(s) => s.collect_trace(&mut out),
        }
        for (_, n) in self.sim.nodes() {
            if let Some(t) = n.receiver().trace() {
                t.collect_into(&mut out);
            }
        }
        rrmp_trace::sort_canonical(&mut out);
        out
    }

    /// The full trace serialized as JSONL (one event per line, canonical
    /// order) — the `RRMP_TRACE` export format. Byte-identical across
    /// shard counts for the same run.
    #[must_use]
    pub fn trace_jsonl(&self) -> String {
        rrmp_trace::to_jsonl(&self.trace_events())
    }

    /// Trace events evicted by ring bounds across all sinks (0 means the
    /// export above is complete).
    #[must_use]
    pub fn trace_events_dropped(&self) -> u64 {
        let engine = match &self.sim {
            SimEngine::Single(s) => s.trace().map_or(0, rrmp_trace::TraceSink::dropped),
            SimEngine::Sharded(s) => s.trace_dropped(),
        };
        engine
            + self
                .sim
                .nodes()
                .map(|(_, n)| {
                    n.receiver().trace().map_or(0, crate::observe::ReceiverTrace::events_dropped)
                })
                .sum::<u64>()
    }

    /// Group-wide latency histograms as one JSON object:
    /// `recovery_latency_micros` (loss detection → delivery),
    /// `repair_rtt_micros` (request → repair), `inter_arrival_micros`
    /// (global delivery gaps), and `inter_arrival_by_region` keyed
    /// `region_<id>`. Histogram merging is associative, so the merged
    /// quantiles are identical at every shard count.
    #[must_use]
    pub fn histograms_json(&self) -> String {
        use rrmp_trace::{JsonObj, LogHistogram};
        let mut recovery = LogHistogram::new();
        let mut rtt = LogHistogram::new();
        let mut inter = LogHistogram::new();
        let mut by_region: Vec<LogHistogram> = Vec::new();
        by_region.resize_with(self.sim.topology().region_count(), LogHistogram::new);
        for (id, n) in self.sim.nodes() {
            if let Some(t) = n.receiver().trace() {
                recovery.merge(t.recovery_latency());
                rtt.merge(t.repair_rtt());
                inter.merge(t.inter_arrival());
                let region = self.sim.topology().region_of(id);
                by_region[region.index()].merge(t.inter_arrival());
            }
        }
        let mut regions = JsonObj::new();
        for (i, h) in by_region.iter().enumerate() {
            regions.raw(&format!("region_{i}"), &h.to_json());
        }
        let mut o = JsonObj::new();
        o.raw("recovery_latency_micros", &recovery.to_json());
        o.raw("repair_rtt_micros", &rtt.to_json());
        o.raw("inter_arrival_micros", &inter.to_json());
        o.raw("inter_arrival_by_region", &regions.finish());
        o.finish()
    }

    /// Schedules the protocol-side half of the armed fault plan: crashes
    /// (member disappears, views drop it) and heal notifications on every
    /// node at each partition/blackout/stall end.
    fn schedule_fault_protocol_timers(&mut self) {
        let Some(plan) = self.fault_plan.clone() else { return };
        for (node, at) in plan.crashes() {
            self.schedule_crash(node, at);
        }
        let heal_times = plan.heal_times();
        let nodes: Vec<NodeId> = self.sim.topology().nodes().collect();
        for at in heal_times {
            for &n in &nodes {
                self.sim.schedule_external_timer(n, HEAL_TOKEN, at);
            }
        }
    }

    /// Number of shards the engine runs on (1 for the single-queue
    /// engines).
    #[must_use]
    pub fn shards(&self) -> usize {
        match &self.sim {
            SimEngine::Single(_) => 1,
            SimEngine::Sharded(s) => s.shards(),
        }
    }

    fn with_senders_mode(
        topo: Topology,
        cfg: ProtocolConfig,
        seed: u64,
        senders: &[NodeId],
        optimized: bool,
    ) -> Self {
        cfg.validate().expect("invalid protocol config");
        assert!(!senders.is_empty(), "need at least one sender");
        for s in senders {
            assert!(s.index() < topo.node_count(), "sender {s} not in topology");
        }
        let nodes = Self::build_nodes(&topo, &cfg, seed, senders, optimized);
        let sim = if optimized {
            SimEngine::Single(Sim::new(topo, nodes, seed))
        } else {
            SimEngine::Single(Sim::new_reference(topo, nodes, seed))
        };
        RrmpNetwork {
            sim,
            sender_node: senders[0],
            multicast_loss: LossModel::None,
            cfg,
            senders: senders.to_vec(),
            fault_plan: None,
            trace_cfg: None,
        }
    }

    /// Builds the per-node protocol state for one run.
    fn build_nodes(
        topo: &Topology,
        cfg: &ProtocolConfig,
        seed: u64,
        senders: &[NodeId],
        optimized: bool,
    ) -> Vec<RrmpNode> {
        let mut nodes = Vec::with_capacity(topo.node_count());
        nodes.extend(Self::build_nodes_iter(topo, cfg, seed, senders, optimized));
        nodes
    }

    /// Per-node protocol state as an iterator in `NodeId` order — hosts
    /// that can consume nodes one at a time (the sharded engine streams
    /// them into per-shard vectors) avoid ever holding the full set in a
    /// second buffer.
    fn build_nodes_iter<'t>(
        topo: &'t Topology,
        cfg: &ProtocolConfig,
        seed: u64,
        senders: &[NodeId],
        optimized: bool,
    ) -> impl Iterator<Item = RrmpNode> + 't {
        // Decorrelate receiver RNG streams from the simulator's own streams
        // (which are derived from the unmixed seed).
        let seq = rrmp_netsim::rng::SeedSequence::new(seed ^ 0x5EED_0F88_1122_AA55);
        let members: Vec<NodeId> = topo.nodes().collect();
        // One config allocation for the whole group: every receiver holds
        // a clone of this `Arc`, not its own inline copy.
        let shared_cfg = Arc::new(cfg.clone());
        let senders = senders.to_vec();
        topo.nodes().map(move |id| {
            let view = HierarchyView::from_topology(topo, id);
            // Build the policy over the *full* group membership (the
            // harness knows it), so topology-blind policies like hash
            // placement rank every member, not just own ∪ parent.
            let policy = shared_cfg.policy.build(id, &members, &shared_cfg);
            let receiver = Receiver::with_shared_policy(
                id,
                view,
                Arc::clone(&shared_cfg),
                seq.subseed(id.0 as u64),
                policy,
            );
            let sender =
                senders.contains(&id).then(|| Sender::new(id, shared_cfg.session_interval));
            let mut node = RrmpNode::new(receiver, sender);
            node.reference_mode = !optimized;
            node
        })
    }

    /// Resets the network for a fresh experiment run over the same
    /// topology and configuration: protocol state is rebuilt from `seed`
    /// while the simulator keeps its event-queue and timer-slab
    /// allocations warm ([`Sim::reset`]) — the fast path for multi-run
    /// experiments and repeated benchmark iterations. The multicast loss
    /// model and any armed fault plan are retained (the engines keep the
    /// network-edge half; the crash and heal timers are re-scheduled
    /// here).
    pub fn reset(&mut self, seed: u64) {
        let optimized = self.sim.is_optimized();
        let nodes =
            Self::build_nodes(self.sim.topology(), &self.cfg, seed, &self.senders, optimized);
        self.sim.reset(nodes, seed);
        self.schedule_fault_protocol_timers();
        self.rearm_observer();
    }

    /// Sets the loss model applied to unicast sends (requests, repairs),
    /// on whichever engine hosts the group. The sharded engine draws from
    /// per-sender-node streams, the single-queue engines from one global
    /// stream — deterministic either way, but not comparable across
    /// engine kinds.
    pub fn set_unicast_loss(&mut self, model: LossModel) {
        self.sim.set_unicast_loss(model);
    }

    /// The simulated topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.sim.topology()
    }

    /// The underlying single-queue simulator (full control for advanced
    /// experiments), or [`EngineMismatch`] for a network hosted on the
    /// sharded engine — probe with this instead of `catch_unwind` when a
    /// test must work against either engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineMismatch`] for a network built with
    /// [`RrmpNetwork::new_sharded`] / [`RrmpNetwork::with_shards`] — use
    /// the engine-agnostic harness methods (e.g.
    /// [`RrmpNetwork::set_unicast_loss`]) there.
    pub fn try_sim_mut(&mut self) -> Result<&mut Sim<RrmpNode>, EngineMismatch> {
        match &mut self.sim {
            SimEngine::Single(s) => Ok(s),
            SimEngine::Sharded(s) => Err(EngineMismatch { shards: s.shards() }),
        }
    }

    /// The underlying single-queue simulator (full control for advanced
    /// experiments).
    ///
    /// # Panics
    ///
    /// Panics for a network built with [`RrmpNetwork::new_sharded`] /
    /// [`RrmpNetwork::with_shards`] — use [`RrmpNetwork::try_sim_mut`]
    /// to probe without unwinding.
    pub fn sim_mut(&mut self) -> &mut Sim<RrmpNode> {
        self.try_sim_mut().unwrap_or_else(|e| {
            panic!("sim_mut(): sharded networks have no single-queue Sim ({e})")
        })
    }

    /// The sender's node id.
    #[must_use]
    pub fn sender_node(&self) -> NodeId {
        self.sender_node
    }

    /// Sets the loss model applied to group multicasts from the sender.
    pub fn set_multicast_loss(&mut self, model: LossModel) {
        self.multicast_loss = model;
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Multicasts `payload` from the sender; the initial delivery outcome
    /// is drawn from the configured multicast loss model. Returns the
    /// assigned message id.
    pub fn multicast(&mut self, payload: impl Into<Bytes>) -> MessageId {
        let plan = {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(
                self.sim.counters().events_processed ^ self.sim.now().as_micros(),
            );
            DeliveryPlan::from_model(
                self.sim.topology(),
                self.sender_node,
                &self.multicast_loss.clone(),
                &mut rng,
            )
        };
        self.multicast_with_plan(payload, &plan)
    }

    /// Multicasts `payload` from the sender with an explicit delivery
    /// plan for the initial transmission (nodes excluded by the plan miss
    /// it and must recover through the protocol).
    pub fn multicast_with_plan(
        &mut self,
        payload: impl Into<Bytes>,
        plan: &DeliveryPlan,
    ) -> MessageId {
        self.multicast_from_with_plan(self.sender_node, payload, plan)
    }

    /// Multicasts `payload` from a specific sender node (multi-sender
    /// groups built with [`RrmpNetwork::with_senders`]).
    ///
    /// # Panics
    ///
    /// Panics if `from` does not hold a sender role.
    pub fn multicast_from_with_plan(
        &mut self,
        from: NodeId,
        payload: impl Into<Bytes>,
        plan: &DeliveryPlan,
    ) -> MessageId {
        let payload = payload.into();
        let now = self.sim.now();
        let node = self.sim.node_mut(from);
        let sender = node.sender.as_mut().expect("node holds a Sender role");
        let (id, _actions) = sender.multicast(payload.clone());
        let packet = Packet::Data(DataPacket::new(id, payload));
        // The sender always holds its own message.
        self.sim.inject(from, from, packet.clone(), now);
        let mut plan = plan.clone();
        plan.set_receives(from, false); // avoid double delivery to sender
        self.sim.inject_multicast_plan(from, &packet, &plan, now);
        id
    }

    /// Sets up the paper's Figure 6/7 initial condition: `holders` hold
    /// the message at the current instant and **every** member
    /// simultaneously learns of its existence via an injected session
    /// advertisement, so all missing members start recovery at once.
    pub fn seed_message_with_holders(
        &mut self,
        payload: impl Into<Bytes>,
        holders: &[NodeId],
    ) -> MessageId {
        let payload = payload.into();
        let now = self.sim.now();
        let sender_node = self.sender_node;
        let (id, high) = {
            let node = self.sim.node_mut(sender_node);
            let sender = node.sender.as_mut().expect("sender node has Sender role");
            let (id, _) = sender.multicast(payload.clone());
            (id, sender.high())
        };
        let data = Packet::Data(DataPacket::new(id, payload));
        for &h in holders {
            self.sim.inject(h, sender_node, data.clone(), now);
        }
        let session = Packet::Session { source: sender_node, high };
        let holder_set: std::collections::HashSet<NodeId> = holders.iter().copied().collect();
        let all: Vec<NodeId> = self.sim.topology().nodes().collect();
        for n in all {
            if !holder_set.contains(&n) {
                self.sim.inject(n, sender_node, session.clone(), now);
            }
        }
        id
    }

    /// Preloads protocol state on `node` (see [`PreloadState`]); used by
    /// the search experiments to construct regions where `j` members
    /// buffer a message long-term and the rest have discarded it.
    pub fn preload(
        &mut self,
        node: NodeId,
        id: MessageId,
        payload: impl Into<Bytes>,
        state: PreloadState,
    ) {
        let now = self.sim.now();
        let actions = {
            let n = self.sim.node_mut(node);
            n.receiver_mut().preload(id, payload.into(), state, now)
        };
        for action in actions {
            match action {
                Action::SetTimer { delay, kind } => {
                    let token = self.sim.node_mut(node).register_timer_token(kind);
                    self.sim.schedule_external_timer(node, token, now + delay);
                }
                other => panic!("preload produced unexpected action {other:?}"),
            }
        }
    }

    /// Injects a packet arriving at `to` at absolute time `at`.
    pub fn inject_packet(&mut self, to: NodeId, from: NodeId, packet: Packet, at: SimTime) {
        self.sim.inject(to, from, packet, at);
    }

    /// Schedules a voluntary leave of `node` at `at`: long-term buffers
    /// are handed off (§3.2) and every other member's view drops the
    /// leaver shortly after (as the membership layer would propagate it).
    pub fn schedule_leave(&mut self, node: NodeId, at: SimTime) {
        self.sim.schedule_external_timer(node, LEAVE_TOKEN, at);
        let token = VIEW_REMOVE_BASE + u64::from(node.0);
        let others: Vec<NodeId> = self.sim.topology().nodes().filter(|&n| n != node).collect();
        for n in others {
            self.sim.schedule_external_timer(n, token, at);
        }
    }

    /// Schedules a crash of `node` at `at`: the member disappears without
    /// handing off its long-term buffers. Views drop the member as with a
    /// leave (the failure detector would propagate this).
    pub fn schedule_crash(&mut self, node: NodeId, at: SimTime) {
        self.sim.schedule_external_timer(node, CRASH_TOKEN, at);
        let token = VIEW_REMOVE_BASE + u64::from(node.0);
        let others: Vec<NodeId> = self.sim.topology().nodes().filter(|&n| n != node).collect();
        for n in others {
            self.sim.schedule_external_timer(n, token, at);
        }
    }

    /// Runs the simulation until `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Runs until quiescent or `limit`; returns the last event time.
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> SimTime {
        self.sim.run_until_quiescent(limit)
    }

    /// Access to one node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &RrmpNode {
        self.sim.node(id)
    }

    /// Mutable access to one node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut RrmpNode {
        self.sim.node_mut(id)
    }

    /// Iterates over `(id, node)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &RrmpNode)> {
        self.sim.nodes()
    }

    /// Network-level counters from the simulator.
    #[must_use]
    pub fn net_counters(&self) -> rrmp_netsim::sim::NetCounters {
        self.sim.counters()
    }

    /// Whether every member that has not left delivered `id`.
    #[must_use]
    pub fn all_delivered(&self, id: MessageId) -> bool {
        self.sim.nodes().all(|(_, n)| n.receiver().has_left() || n.has_delivered(id))
    }

    /// Number of members that delivered `id`.
    #[must_use]
    pub fn delivered_count(&self, id: MessageId) -> usize {
        self.sim.nodes().filter(|(_, n)| n.has_delivered(id)).count()
    }

    /// Number of members currently holding `id` in their buffer (either
    /// phase) — the "#buffered" series of Figure 7.
    #[must_use]
    pub fn buffered_count(&self, id: MessageId) -> usize {
        self.sim.nodes().filter(|(_, n)| n.receiver().store().contains(id)).count()
    }

    /// Number of members currently holding `id` in the short-term phase.
    #[must_use]
    pub fn short_buffered_count(&self, id: MessageId) -> usize {
        self.sim
            .nodes()
            .filter(|(_, n)| n.receiver().store().phase(id) == Some(crate::buffer::Phase::Short))
            .count()
    }

    /// Number of members that have ever received `id` — the "#received"
    /// series of Figure 7.
    #[must_use]
    pub fn received_count(&self, id: MessageId) -> usize {
        self.sim.nodes().filter(|(_, n)| n.receiver().detector().received_before(id)).count()
    }

    /// Number of members holding `id` long-term.
    #[must_use]
    pub fn long_term_count(&self, id: MessageId) -> usize {
        self.sim
            .nodes()
            .filter(|(_, n)| n.receiver().store().phase(id) == Some(crate::buffer::Phase::Long))
            .count()
    }

    /// The earliest time any member in `region_members` sent a remote
    /// repair or answered a search for `msg` — the paper's *search time*
    /// measurement for Figures 8/9 (0 when the initial request lands on a
    /// bufferer).
    #[must_use]
    pub fn first_remote_repair_at(&self, msg: MessageId) -> Option<SimTime> {
        use crate::metrics::ProtocolEvent;
        self.sim
            .nodes()
            .filter_map(|(_, n)| {
                n.receiver()
                    .metrics()
                    .events()
                    .iter()
                    .find(|(_, m, e)| {
                        *m == msg
                            && matches!(
                                e,
                                ProtocolEvent::RemoteRepairSent { .. }
                                    | ProtocolEvent::SearchAnswered { .. }
                            )
                    })
                    .map(|&(t, _, _)| t)
            })
            .min()
    }

    /// Sums a per-receiver counter over all nodes.
    #[must_use]
    pub fn total_counter<F>(&self, f: F) -> u64
    where
        F: Fn(&crate::metrics::Counters) -> u64,
    {
        self.sim.nodes().map(|(_, n)| f(&n.receiver().metrics().counters)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrmp_netsim::time::SimDuration;
    use rrmp_netsim::topology::presets;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::paper_defaults()
    }

    #[test]
    fn lossless_multicast_delivers_everywhere() {
        let topo = presets::paper_region(10);
        let mut net = RrmpNetwork::new(topo, cfg(), 1);
        let plan = DeliveryPlan::all(net.topology());
        let id = net.multicast_with_plan(&b"hello"[..], &plan);
        net.run_until(SimTime::from_millis(50));
        assert_eq!(net.delivered_count(id), 10);
        assert!(net.all_delivered(id));
        // Nobody needed recovery.
        assert_eq!(net.total_counter(|c| c.local_requests_sent), 0);
    }

    #[test]
    fn local_loss_recovers_within_region() {
        let topo = presets::paper_region(10);
        let mut net = RrmpNetwork::new(topo, cfg(), 2);
        // Nodes 5..10 miss the initial multicast.
        let plan = DeliveryPlan::only(net.topology(), (0..5).map(NodeId));
        let id = net.multicast_with_plan(&b"data"[..], &plan);
        net.run_until(SimTime::from_secs(1));
        assert!(net.all_delivered(id), "delivered {}", net.delivered_count(id));
        assert!(net.total_counter(|c| c.local_requests_sent) > 0);
        assert!(net.total_counter(|c| c.repairs_sent_local) > 0);
    }

    #[test]
    fn regional_loss_recovers_through_parent() {
        let topo = presets::figure1_chain([5, 5, 5], SimDuration::from_millis(25));
        let mut net = RrmpNetwork::new(topo, cfg(), 3);
        // Region 1 (nodes 5..10) misses entirely.
        let plan = DeliveryPlan::all_but(net.topology(), (5..10).map(NodeId));
        let id = net.multicast_with_plan(&b"xyz"[..], &plan);
        net.run_until(SimTime::from_secs(2));
        assert!(net.all_delivered(id), "delivered {}", net.delivered_count(id));
        assert!(net.total_counter(|c| c.remote_requests_sent) > 0);
        assert!(net.total_counter(|c| c.repairs_sent_remote) > 0);
        // The repair got re-multicast within region 1.
        assert!(net.total_counter(|c| c.regional_multicasts_sent) > 0);
    }

    #[test]
    fn seed_message_with_holders_triggers_simultaneous_detection() {
        let topo = presets::paper_region(20);
        let mut net = RrmpNetwork::new(topo, cfg(), 4);
        let holders: Vec<NodeId> = (0..4).map(NodeId).collect();
        let id = net.seed_message_with_holders(&b"m"[..], &holders);
        net.run_until(SimTime::from_millis(1));
        // All 16 missing members detected the loss immediately.
        assert!(net.total_counter(|c| c.local_requests_sent) >= 16);
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.received_count(id), 20);
    }

    #[test]
    fn long_term_tail_approximates_c() {
        // With n=100 and C=6 the expected number of long-term bufferers is
        // 6; over a full epidemic this is statistical, so just assert the
        // tail is small but usually nonzero across this seed.
        let topo = presets::paper_region(100);
        let mut net = RrmpNetwork::new(topo, cfg(), 5);
        let id = net.seed_message_with_holders(&b"m"[..], &[NodeId(0)]);
        net.run_until(SimTime::from_secs(2));
        assert_eq!(net.received_count(id), 100);
        let long = net.long_term_count(id);
        assert!(long <= 20, "long-term tail {long} implausibly large");
        // Short-term buffers have all idled out by 2s.
        assert_eq!(net.short_buffered_count(id), 0);
    }

    #[test]
    fn preload_and_search_measurement() {
        // Region 0: 10 members; region 1: one downstream origin.
        let topo = rrmp_netsim::topology::TopologyBuilder::new()
            .region(10, None)
            .region(1, Some(0))
            .build()
            .unwrap();
        let mut net = RrmpNetwork::new(topo, cfg(), 6);
        let id = MessageId::new(NodeId(0), crate::ids::SeqNo(1));
        // Members 0..2 buffer long-term; 3..10 received-then-discarded.
        for i in 0..10u32 {
            let state =
                if i < 2 { PreloadState::LongTerm } else { PreloadState::ReceivedDiscarded };
            net.preload(NodeId(i), id, &b"m"[..], state);
        }
        // The downstream origin (node 10) sends a remote request to a
        // non-bufferer.
        net.inject_packet(NodeId(5), NodeId(10), Packet::RemoteRequest { msg: id }, SimTime::ZERO);
        net.run_until_quiescent(SimTime::from_secs(1));
        let at = net.first_remote_repair_at(id).expect("search must succeed");
        assert!(at > SimTime::ZERO, "non-bufferer entry point implies nonzero search time");
        // The origin eventually received the payload.
        assert!(net.node(NodeId(10)).has_delivered(id));
    }

    #[test]
    fn leave_preserves_recoverability() {
        let topo = presets::paper_region(10);
        let c_huge = ProtocolConfig::builder().c(1000.0).build().unwrap(); // all keep long-term
        let mut net = RrmpNetwork::new(topo, c_huge, 7);
        let plan = DeliveryPlan::all(net.topology());
        let _id = net.multicast_with_plan(&b"v"[..], &plan);
        net.run_until(SimTime::from_millis(200)); // all idle -> long-term
                                                  // Node 3 leaves; its buffers hand off.
        net.schedule_leave(NodeId(3), SimTime::from_millis(250));
        net.run_until(SimTime::from_millis(400));
        assert!(net.node(NodeId(3)).receiver().has_left());
        assert!(net.total_counter(|c| c.handoffs_sent) >= 1);
        // Views no longer contain node 3.
        assert!(!net.node(NodeId(0)).receiver().view().own().contains(NodeId(3)));
    }

    #[test]
    fn reset_replays_identically_with_warm_queue() {
        let topo = presets::paper_region(30);
        let mut net = RrmpNetwork::new(topo, cfg(), 21);
        let plan = DeliveryPlan::only(net.topology(), (0..10).map(NodeId));
        let id = net.multicast_with_plan(&b"reuse"[..], &plan);
        net.run_until(SimTime::from_secs(1));
        let first = (net.delivered_count(id), net.net_counters());
        net.reset(21);
        assert_eq!(net.now(), SimTime::ZERO);
        assert_eq!(net.net_counters(), Default::default());
        let id2 = net.multicast_with_plan(&b"reuse"[..], &plan);
        net.run_until(SimTime::from_secs(1));
        assert_eq!(
            first,
            (net.delivered_count(id2), net.net_counters()),
            "a reset network must replay the same seed identically"
        );
    }

    #[test]
    fn sharded_engine_recovers_identically_at_every_shard_count() {
        fn run(shards: usize) -> (usize, NetCounters, u64) {
            let topo = presets::figure1_chain([6, 6, 6], SimDuration::from_millis(25));
            let mut net = RrmpNetwork::with_shards(topo, cfg(), 9, shards);
            // Region 1 misses entirely: recovery crosses shard boundaries.
            let plan = DeliveryPlan::all_but(net.topology(), (6..12).map(NodeId));
            let id = net.multicast_with_plan(&b"shard"[..], &plan);
            net.run_until(SimTime::from_secs(2));
            assert!(net.all_delivered(id), "delivered {}", net.delivered_count(id));
            (
                net.delivered_count(id),
                net.net_counters(),
                net.total_counter(|c| c.repairs_sent_remote),
            )
        }
        let sequential = run(1);
        assert_eq!(sequential, run(2));
        assert_eq!(sequential, run(3));
        // More shards than regions clamps to the region count.
        assert_eq!(sequential, run(16));
    }

    #[test]
    fn sharded_reset_replays_identically() {
        let topo = presets::figure1_chain([5, 5, 5], SimDuration::from_millis(25));
        let mut net = RrmpNetwork::with_shards(topo, cfg(), 13, 3);
        let plan = DeliveryPlan::only(net.topology(), (0..5).map(NodeId));
        let id = net.multicast_with_plan(&b"reuse"[..], &plan);
        net.run_until(SimTime::from_secs(2));
        let first = (net.delivered_count(id), net.net_counters());
        net.reset(13);
        assert_eq!(net.now(), SimTime::ZERO);
        assert_eq!(net.net_counters(), Default::default());
        let id2 = net.multicast_with_plan(&b"reuse"[..], &plan);
        net.run_until(SimTime::from_secs(2));
        assert_eq!(first, (net.delivered_count(id2), net.net_counters()));
    }

    #[test]
    fn deterministic_runs() {
        fn run(seed: u64) -> (usize, u64, u64) {
            let topo = presets::paper_region(30);
            let mut net = RrmpNetwork::new(topo, cfg(), seed);
            let id = net.seed_message_with_holders(&b"d"[..], &[NodeId(2), NodeId(7)]);
            net.run_until(SimTime::from_secs(1));
            (
                net.received_count(id),
                net.total_counter(|c| c.local_requests_sent),
                net.net_counters().unicasts_sent,
            )
        }
        assert_eq!(run(99), run(99));
        // Different seeds explore different schedules.
        let a = run(1);
        let b = run(2);
        assert_eq!(a.0, b.0, "recovery completes under both seeds");
    }
}
