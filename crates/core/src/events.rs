//! The sans-io event/action surface of the protocol core.
//!
//! A [`Receiver`](crate::receiver::Receiver) (and
//! [`Sender`](crate::sender::Sender)) is a pure state machine: the host —
//! the discrete-event simulator or the UDP runtime — feeds it [`Event`]s
//! and executes the [`Action`]s it returns. Timers are plain data: the core
//! asks for a [`TimerKind`] to be delivered after a delay and the host
//! hands it back; stale timers are simply ignored by the core, so no
//! cancellation plumbing is needed.

use bytes::Bytes;
use rrmp_netsim::time::SimDuration;
use rrmp_netsim::topology::NodeId;

use crate::ids::MessageId;
use crate::packet::Packet;

/// A timer the core asked its host to schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Retry timer for the local recovery phase of a missing message.
    LocalRetry(MessageId),
    /// Retry timer for the remote recovery phase of a missing message.
    RemoteRetry(MessageId),
    /// Idle-threshold check for a buffered message (§3.1) — also used as
    /// the fixed-hold expiry under [`PolicyKind::FixedTime`].
    ///
    /// [`PolicyKind::FixedTime`]: crate::policy::PolicyKind::FixedTime
    IdleCheck(MessageId),
    /// Retry timer for the bufferer search (§3.3).
    SearchRetry(MessageId),
    /// Randomized back-off before multicasting a remote repair regionally.
    Backoff(MessageId),
    /// Periodic sweep discarding stale long-term entries.
    LongTermSweep,
    /// Periodic history-advertisement tick (only armed when the buffer
    /// policy opts into history exchange via
    /// [`BufferPolicy::history_interval`]).
    ///
    /// [`BufferPolicy::history_interval`]: crate::policy::BufferPolicy::history_interval
    HistoryTick,
    /// Sender session-message tick.
    SessionTick,
    /// Recovery-liveness self-check (only armed when
    /// [`ProtocolConfig::watchdog`] is set): detects losses whose
    /// recovery wedged — no state left, no timer driving it — and
    /// re-arms them through the heal machinery.
    ///
    /// [`ProtocolConfig::watchdog`]: crate::config::ProtocolConfig::watchdog
    Watchdog,
    /// Periodic observer sampling tick (only armed when a trace observer
    /// is attached via [`Receiver::arm_trace`] with a sample interval):
    /// records a time-series [`Sample`] of buffer occupancy, store bytes
    /// vs budget, token-bucket level, and recovery backlog. Handling it
    /// makes **no RNG draws** and mutates no protocol state, so an armed
    /// sampler is trace-invariant across engines and shard counts.
    ///
    /// [`Receiver::arm_trace`]: crate::receiver::Receiver::arm_trace
    /// [`Sample`]: rrmp_trace::EventKind::Sample
    TraceSample,
}

/// An input to the protocol core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A packet arrived from `from`.
    Packet {
        /// Transport-level source of the packet.
        from: NodeId,
        /// The decoded packet.
        packet: Packet,
    },
    /// A previously requested timer fired.
    Timer(TimerKind),
    /// The application asked this member to leave the group voluntarily
    /// (§3.2: long-term buffers are handed off before departure).
    Leave,
}

/// An output of the protocol core for the host to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send `packet` to `to` over unicast.
    Send {
        /// Destination member.
        to: NodeId,
        /// Packet to transmit.
        packet: Packet,
    },
    /// Multicast `packet` to every other member of this node's own region.
    MulticastRegion {
        /// Packet to transmit.
        packet: Packet,
    },
    /// Deliver a newly received message to the application, in receipt
    /// order (RRMP offers no total ordering guarantee).
    Deliver {
        /// The message id.
        id: MessageId,
        /// The payload.
        payload: Bytes,
    },
    /// Ask the host to fire [`Event::Timer`]`(kind)` after `delay`.
    SetTimer {
        /// How long to wait.
        delay: SimDuration,
        /// The timer identity handed back on expiry.
        kind: TimerKind,
    },
}

impl Action {
    /// The packet being transmitted, if this action transmits one.
    #[must_use]
    pub fn packet(&self) -> Option<&Packet> {
        match self {
            Action::Send { packet, .. } | Action::MulticastRegion { packet } => Some(packet),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SeqNo;

    #[test]
    fn action_packet_accessor() {
        let msg = MessageId::new(NodeId(0), SeqNo(1));
        let send = Action::Send { to: NodeId(1), packet: Packet::LocalRequest { msg } };
        assert!(send.packet().is_some());
        let deliver = Action::Deliver { id: msg, payload: Bytes::new() };
        assert!(deliver.packet().is_none());
        let timer = Action::SetTimer {
            delay: SimDuration::from_millis(1),
            kind: TimerKind::LocalRetry(msg),
        };
        assert!(timer.packet().is_none());
    }

    #[test]
    fn timer_kinds_are_hashable_and_distinct() {
        use std::collections::HashSet;
        let msg = MessageId::new(NodeId(0), SeqNo(1));
        let kinds: HashSet<TimerKind> = [
            TimerKind::LocalRetry(msg),
            TimerKind::RemoteRetry(msg),
            TimerKind::IdleCheck(msg),
            TimerKind::SearchRetry(msg),
            TimerKind::Backoff(msg),
            TimerKind::LongTermSweep,
            TimerKind::HistoryTick,
            TimerKind::SessionTick,
            TimerKind::Watchdog,
            TimerKind::TraceSample,
        ]
        .into_iter()
        .collect();
        assert_eq!(kinds.len(), 10);
    }
}
