//! Receiver-side observer: structured trace events and latency
//! histograms, attached via optional hooks.
//!
//! The observer is **off the hot path**: an unarmed [`Receiver`] carries
//! a single `Option<Box<ReceiverTrace>>` field, so every hook compiles to
//! one branch on a `None` discriminant and the protocol's golden trace
//! fingerprints stay bit-identical. An armed observer makes **zero RNG
//! draws** and mutates no protocol state, so armed runs are themselves
//! byte-identical across engines and shard counts — the property the
//! `observer_invariance` suite pins.
//!
//! Three pillars live here:
//!
//! 1. **Structured events** — every loss detection, recovery round,
//!    repair, give-up, pressure-tier transition, and heal lands in a
//!    bounded per-node [`TraceSink`] ring on the
//!    [`streams::RECEIVER`](rrmp_trace::streams::RECEIVER) stream.
//! 2. **Time-series samples** — a [`TimerKind::TraceSample`] tick records
//!    buffer occupancy, store bytes vs budget, token-bucket level, and
//!    recovery backlog (only armed when [`TraceConfig::sample_every`] is
//!    set).
//! 3. **Latency histograms** — log-linear [`LogHistogram`]s for
//!    loss-detection → delivery recovery latency, request → repair RTT,
//!    and delivery inter-arrival gaps.
//!
//! [`Receiver`]: crate::receiver::Receiver
//! [`TimerKind::TraceSample`]: crate::events::TimerKind::TraceSample

use std::collections::BTreeMap;

use rrmp_netsim::time::{SimDuration, SimTime};
use rrmp_netsim::topology::NodeId;
use rrmp_trace::{streams, EventKind, LogHistogram, TraceEvent, TraceSink};

use crate::buffer::PressureTier;
use crate::ids::MessageId;

/// Configuration for arming the observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Events kept per `(node, stream)` ring before the oldest are
    /// evicted (evictions are counted, never silent).
    pub ring_capacity: usize,
    /// Interval of the [`TimerKind::TraceSample`] time-series tick.
    /// `None` (the default) records no samples and schedules no timer, so
    /// armed and unarmed runs process the *same number of events* — the
    /// property the `trace_path` benchmark asserts while measuring pure
    /// hook overhead.
    ///
    /// [`TimerKind::TraceSample`]: crate::events::TimerKind::TraceSample
    pub sample_every: Option<SimDuration>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { ring_capacity: 4096, sample_every: None }
    }
}

/// Per-receiver observer state: one [`TraceSink`] on the receiver
/// stream, the three latency histograms, and the side tables that turn
/// point events into durations.
#[derive(Debug, Clone)]
pub struct ReceiverTrace {
    node: u32,
    sink: TraceSink,
    sample_every: Option<SimDuration>,
    recovery_latency: LogHistogram,
    repair_rtt: LogHistogram,
    inter_arrival: LogHistogram,
    /// When each still-missing message was first detected lost.
    detected_at: BTreeMap<MessageId, SimTime>,
    /// When the most recent recovery request for each message was sent.
    requested_at: BTreeMap<MessageId, SimTime>,
    last_delivery: Option<SimTime>,
    last_tier: PressureTier,
}

impl ReceiverTrace {
    pub(crate) fn new(node: NodeId, cfg: &TraceConfig) -> Self {
        ReceiverTrace {
            node: node.0,
            sink: TraceSink::new(cfg.ring_capacity),
            sample_every: cfg.sample_every,
            recovery_latency: LogHistogram::new(),
            repair_rtt: LogHistogram::new(),
            inter_arrival: LogHistogram::new(),
            detected_at: BTreeMap::new(),
            requested_at: BTreeMap::new(),
            last_delivery: None,
            last_tier: PressureTier::Normal,
        }
    }

    fn record(&mut self, now: SimTime, kind: EventKind) {
        self.sink.record(now.as_micros(), self.node, streams::RECEIVER, kind);
    }

    /// The configured sampling interval, if time-series sampling is on.
    #[must_use]
    pub fn sample_every(&self) -> Option<SimDuration> {
        self.sample_every
    }

    pub(crate) fn on_delivered(&mut self, id: MessageId, now: SimTime) {
        if let Some(prev) = self.last_delivery {
            self.inter_arrival.record(now.saturating_since(prev).as_micros());
        }
        self.last_delivery = Some(now);
        if let Some(detected) = self.detected_at.remove(&id) {
            let latency = now.saturating_since(detected).as_micros();
            self.recovery_latency.record(latency);
            self.record(
                now,
                EventKind::Recovered {
                    src: id.source.0,
                    mseq: id.seq.value(),
                    latency_micros: latency,
                },
            );
        }
        if let Some(requested) = self.requested_at.remove(&id) {
            self.repair_rtt.record(now.saturating_since(requested).as_micros());
        }
    }

    pub(crate) fn on_loss_detected(&mut self, id: MessageId, now: SimTime) {
        // Heal and watchdog re-arms route through the same entry point;
        // only the *first* detection opens the latency measurement (and
        // emits the event), so re-arms don't reset the clock.
        if let std::collections::btree_map::Entry::Vacant(e) = self.detected_at.entry(id) {
            e.insert(now);
            self.record(now, EventKind::LossDetected { src: id.source.0, mseq: id.seq.value() });
        }
    }

    pub(crate) fn on_recovery_round(
        &mut self,
        id: MessageId,
        remote: bool,
        attempt: u32,
        now: SimTime,
    ) {
        self.requested_at.insert(id, now);
        self.record(
            now,
            EventKind::RecoveryRound { src: id.source.0, mseq: id.seq.value(), remote, attempt },
        );
    }

    pub(crate) fn on_repair_sent(&mut self, id: MessageId, to: NodeId, now: SimTime) {
        self.record(
            now,
            EventKind::RepairSent { src: id.source.0, mseq: id.seq.value(), to: to.0 },
        );
    }

    pub(crate) fn on_gave_up(&mut self, id: MessageId, now: SimTime) {
        self.record(now, EventKind::GaveUp { src: id.source.0, mseq: id.seq.value() });
    }

    pub(crate) fn on_tier(&mut self, tier: PressureTier, now: SimTime) {
        if tier != self.last_tier {
            self.last_tier = tier;
            let tier = match tier {
                PressureTier::Normal => 0,
                PressureTier::Pressure => 1,
                PressureTier::Critical => 2,
            };
            self.record(now, EventKind::PressureTier { tier });
        }
    }

    pub(crate) fn on_heal(&mut self, now: SimTime) {
        self.record(now, EventKind::Healed);
    }

    pub(crate) fn on_sample(&mut self, kind: EventKind, now: SimTime) {
        self.record(now, kind);
    }

    /// Appends this receiver's held events to `out` (combine across
    /// nodes, then [`rrmp_trace::sort_canonical`]).
    pub fn collect_into(&self, out: &mut Vec<TraceEvent>) {
        self.sink.collect_into(out);
    }

    /// Events evicted by the ring bound since arming.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.sink.dropped()
    }

    /// Loss-detection → delivery latency histogram (microseconds).
    #[must_use]
    pub fn recovery_latency(&self) -> &LogHistogram {
        &self.recovery_latency
    }

    /// Recovery-request → repair-arrival RTT histogram (microseconds).
    #[must_use]
    pub fn repair_rtt(&self) -> &LogHistogram {
        &self.repair_rtt
    }

    /// Delivery inter-arrival gap histogram (microseconds).
    #[must_use]
    pub fn inter_arrival(&self) -> &LogHistogram {
        &self.inter_arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SeqNo;

    fn mid(seq: u64) -> MessageId {
        MessageId::new(NodeId(0), SeqNo(seq))
    }

    #[test]
    fn recovery_latency_measured_from_first_detection() {
        let mut t = ReceiverTrace::new(NodeId(1), &TraceConfig::default());
        t.on_loss_detected(mid(1), SimTime::from_millis(10));
        // A heal re-arm must not reset the clock.
        t.on_loss_detected(mid(1), SimTime::from_millis(500));
        t.on_delivered(mid(1), SimTime::from_millis(710));
        assert_eq!(t.recovery_latency().count(), 1);
        assert_eq!(t.recovery_latency().max(), 700_000);
        // Exactly one loss_detected + one recovered event.
        let mut out = Vec::new();
        t.collect_into(&mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn tier_events_only_on_transition() {
        let mut t = ReceiverTrace::new(NodeId(1), &TraceConfig::default());
        let now = SimTime::from_millis(1);
        t.on_tier(PressureTier::Normal, now);
        t.on_tier(PressureTier::Pressure, now);
        t.on_tier(PressureTier::Pressure, now);
        t.on_tier(PressureTier::Normal, now);
        let mut out = Vec::new();
        t.collect_into(&mut out);
        assert_eq!(out.len(), 2); // Normal→Pressure, Pressure→Normal
    }

    #[test]
    fn repair_rtt_uses_latest_request() {
        let mut t = ReceiverTrace::new(NodeId(1), &TraceConfig::default());
        t.on_loss_detected(mid(2), SimTime::from_millis(0));
        t.on_recovery_round(mid(2), false, 1, SimTime::from_millis(5));
        t.on_recovery_round(mid(2), false, 2, SimTime::from_millis(40));
        t.on_delivered(mid(2), SimTime::from_millis(55));
        assert_eq!(t.repair_rtt().max(), 15_000);
        assert_eq!(t.recovery_latency().max(), 55_000);
    }
}
