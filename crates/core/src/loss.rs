//! Loss detection.
//!
//! "A receiver detects a message loss by observing a gap in the sequence
//! number space. In addition, session messages are used to help a receiver
//! detect the loss of the last message in a burst" (paper §2.1).
//!
//! [`LossDetector`] tracks, per source, the set of sequence numbers ever
//! received (in an [`IntervalSet`], so "received but discarded" remains
//! distinguishable from "never received" — §3.3 depends on it) and the
//! highest sequence number known to exist. Because senders number messages
//! contiguously from 1, evidence that `seq` exists (a data packet, a session
//! advertisement, or a request from another member) implies every sequence
//! number below it exists too.
//!
//! Per-source state lives in a pair of sorted parallel vectors (SoA)
//! rather than a HashMap: a receiver tracking nothing holds no heap at
//! all, lookups are a binary search over a flat id array, and iteration
//! is naturally in ascending source order — at a million receivers the
//! per-instance fixed cost is what dominates, and a `Vec` pair is three
//! pointers where a HashMap is a populated table.

use rrmp_netsim::topology::NodeId;

use crate::ids::{MessageId, SeqNo};
use crate::interval_set::IntervalSet;

/// Outcome of feeding a data packet to the detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataOutcome {
    /// Whether this is the first time the message was received.
    pub newly_received: bool,
    /// Messages newly discovered to be missing (gaps opened by this packet).
    pub newly_missing: Vec<MessageId>,
}

#[derive(Debug, Clone, Default)]
struct SourceState {
    received: IntervalSet,
    /// Highest sequence number known to exist (0 = none yet).
    high: u64,
    /// Sequences at or below this are not recovered (late-join floor).
    floor: u64,
}

/// Per-source tracking of received and missing sequence numbers.
#[derive(Debug, Clone, Default)]
pub struct LossDetector {
    /// Ascending source ids, parallel to `states`. Slots are allocated
    /// lazily on first evidence: an idle source costs zero bytes.
    source_ids: Vec<NodeId>,
    states: Vec<SourceState>,
}

impl LossDetector {
    /// Creates an empty detector.
    #[must_use]
    pub fn new() -> Self {
        LossDetector::default()
    }

    fn state(&self, source: NodeId) -> Option<&SourceState> {
        self.source_ids.binary_search(&source).ok().map(|i| &self.states[i])
    }

    fn state_mut(&mut self, source: NodeId) -> &mut SourceState {
        match self.source_ids.binary_search(&source) {
            Ok(i) => &mut self.states[i],
            Err(i) => {
                self.source_ids.insert(i, source);
                self.states.insert(i, SourceState::default());
                &mut self.states[i]
            }
        }
    }

    /// Sets a late-join floor: sequences of `source` at or below `floor`
    /// are treated as not wanted (never reported missing).
    pub fn set_floor(&mut self, source: NodeId, floor: SeqNo) {
        let st = self.state_mut(source);
        st.floor = st.floor.max(floor.0);
        if st.high < st.floor {
            st.high = st.floor;
        }
    }

    /// Feeds a received data packet (any path: initial multicast, repair,
    /// regional repair, handoff). Returns whether it is new and which
    /// messages are newly known to be missing.
    pub fn on_data(&mut self, id: MessageId) -> DataOutcome {
        let st = self.state_mut(id.source);
        let newly_received = st.received.insert(id.seq.0);
        let mut newly_missing = Vec::new();
        if id.seq.0 > st.high {
            // Everything between the old high and this packet exists; the
            // not-yet-received ones (above the floor) are newly missing.
            let lo = (st.high + 1).max(st.floor + 1);
            for seq in st.received.missing_in(lo, id.seq.0) {
                newly_missing.push(MessageId::new(id.source, SeqNo(seq)));
            }
            st.high = id.seq.0;
        }
        DataOutcome { newly_received, newly_missing }
    }

    /// Feeds a session advertisement (`high` = highest sequence the sender
    /// has multicast). Returns newly missing messages.
    pub fn on_session(&mut self, source: NodeId, high: SeqNo) -> Vec<MessageId> {
        let st = self.state_mut(source);
        let mut newly_missing = Vec::new();
        if high.0 > st.high {
            let lo = (st.high + 1).max(st.floor + 1);
            for seq in st.received.missing_in(lo, high.0) {
                newly_missing.push(MessageId::new(source, SeqNo(seq)));
            }
            st.high = high.0;
        }
        newly_missing
    }

    /// Feeds indirect evidence that `msg` exists (e.g. a request for it
    /// from another member). Equivalent to a session advertisement at the
    /// message's sequence number.
    pub fn on_hint(&mut self, msg: MessageId) -> Vec<MessageId> {
        self.on_session(msg.source, msg.seq)
    }

    /// Whether `msg` has ever been received (even if later discarded).
    #[must_use]
    pub fn received_before(&self, msg: MessageId) -> bool {
        self.state(msg.source).is_some_and(|st| st.received.contains(msg.seq.0))
    }

    /// Whether `msg` is currently known missing (exists, above the floor,
    /// never received).
    #[must_use]
    pub fn is_missing(&self, msg: MessageId) -> bool {
        self.state(msg.source).is_some_and(|st| {
            msg.seq.0 > st.floor && msg.seq.0 <= st.high && !st.received.contains(msg.seq.0)
        })
    }

    /// All currently missing messages, in `(source, seq)` order (the
    /// source arrays are already sorted; no collect-and-sort needed).
    #[must_use]
    pub fn missing(&self) -> Vec<MessageId> {
        let mut out: Vec<MessageId> = Vec::new();
        for (&source, st) in self.source_ids.iter().zip(&self.states) {
            let lo = st.floor + 1;
            if st.high >= lo {
                out.extend(
                    st.received
                        .missing_in(lo, st.high)
                        .map(|seq| MessageId::new(source, SeqNo(seq))),
                );
            }
        }
        out
    }

    /// Number of distinct messages ever received from `source`.
    #[must_use]
    pub fn received_count(&self, source: NodeId) -> u64 {
        self.state(source).map_or(0, |st| st.received.len())
    }

    /// Highest sequence number known to exist for `source`.
    #[must_use]
    pub fn high(&self, source: NodeId) -> SeqNo {
        SeqNo(self.state(source).map_or(0, |st| st.high))
    }

    /// The contiguous-receipt watermark for `source`: the largest `s` such
    /// that every sequence `1..=s` has been received (0 if message 1 is
    /// still missing). This is the ACK value stability-detection protocols
    /// exchange.
    #[must_use]
    pub fn contiguous_received(&self, source: NodeId) -> SeqNo {
        let Some(st) = self.state(source) else { return SeqNo::NONE };
        match st.received.intervals().next() {
            Some((lo, hi)) if lo <= 1 => SeqNo(hi),
            _ => SeqNo::NONE,
        }
    }

    /// Every source the detector has state for, in ascending id order
    /// (callers that used to sort the collected ids still can — the sort
    /// is now a no-op).
    pub fn tracked_sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.source_ids.iter().copied()
    }

    /// The inclusive `(lo, hi)` received-sequence intervals recorded for
    /// `source`, in ascending order — the raw material of a history
    /// digest (receipt is permanent, so discarded payloads still appear).
    pub fn received_intervals(&self, source: NodeId) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.state(source).into_iter().flat_map(|st| st.received.intervals())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: NodeId = NodeId(0);

    fn mid(seq: u64) -> MessageId {
        MessageId::new(SRC, SeqNo(seq))
    }

    #[test]
    fn in_order_delivery_reports_nothing_missing() {
        let mut d = LossDetector::new();
        for seq in 1..=5 {
            let out = d.on_data(mid(seq));
            assert!(out.newly_received);
            assert!(out.newly_missing.is_empty());
        }
        assert!(d.missing().is_empty());
        assert_eq!(d.received_count(SRC), 5);
        assert_eq!(d.high(SRC), SeqNo(5));
    }

    #[test]
    fn gap_detected() {
        let mut d = LossDetector::new();
        d.on_data(mid(1));
        let out = d.on_data(mid(4));
        assert_eq!(out.newly_missing, vec![mid(2), mid(3)]);
        assert!(d.is_missing(mid(2)));
        assert!(d.is_missing(mid(3)));
        assert!(!d.is_missing(mid(1)));
        assert!(!d.is_missing(mid(4)));
        // Recover one.
        let out = d.on_data(mid(2));
        assert!(out.newly_received);
        assert!(out.newly_missing.is_empty());
        assert_eq!(d.missing(), vec![mid(3)]);
    }

    #[test]
    fn duplicate_is_not_new() {
        let mut d = LossDetector::new();
        assert!(d.on_data(mid(1)).newly_received);
        assert!(!d.on_data(mid(1)).newly_received);
    }

    #[test]
    fn session_advertisement_exposes_tail_loss() {
        let mut d = LossDetector::new();
        d.on_data(mid(1));
        // Messages 2 and 3 were lost entirely; a session message reveals them.
        let missing = d.on_session(SRC, SeqNo(3));
        assert_eq!(missing, vec![mid(2), mid(3)]);
        // Repeat advertisement: nothing new.
        assert!(d.on_session(SRC, SeqNo(3)).is_empty());
        // Stale advertisement: nothing new.
        assert!(d.on_session(SRC, SeqNo(1)).is_empty());
    }

    #[test]
    fn hint_acts_like_session() {
        let mut d = LossDetector::new();
        let missing = d.on_hint(mid(2));
        assert_eq!(missing, vec![mid(1), mid(2)]);
        assert!(d.is_missing(mid(1)));
    }

    #[test]
    fn received_before_survives_conceptual_discard() {
        // The detector has no notion of buffers; receipt is permanent.
        let mut d = LossDetector::new();
        d.on_data(mid(7));
        assert!(d.received_before(mid(7)));
        assert!(!d.received_before(mid(6)));
    }

    #[test]
    fn floor_suppresses_old_history() {
        let mut d = LossDetector::new();
        d.set_floor(SRC, SeqNo(10));
        // A late joiner sees message 12 first: only 11..12 matter.
        let out = d.on_data(mid(12));
        assert_eq!(out.newly_missing, vec![mid(11)]);
        assert!(!d.is_missing(mid(5)));
        assert!(d.is_missing(mid(11)));
        // Session below the floor is ignored.
        assert!(d.on_session(SRC, SeqNo(9)).is_empty());
    }

    #[test]
    fn contiguous_received_watermark() {
        let mut d = LossDetector::new();
        assert_eq!(d.contiguous_received(SRC), SeqNo::NONE);
        d.on_data(mid(1));
        d.on_data(mid(2));
        d.on_data(mid(5));
        assert_eq!(d.contiguous_received(SRC), SeqNo(2));
        d.on_data(mid(3));
        d.on_data(mid(4));
        assert_eq!(d.contiguous_received(SRC), SeqNo(5));
        // Missing message 1 pins the watermark at 0.
        let mut d2 = LossDetector::new();
        d2.on_data(mid(2));
        assert_eq!(d2.contiguous_received(SRC), SeqNo::NONE);
    }

    #[test]
    fn multiple_sources_tracked_independently() {
        let mut d = LossDetector::new();
        let a = NodeId(1);
        let b = NodeId(2);
        d.on_data(MessageId::new(a, SeqNo(2)));
        d.on_data(MessageId::new(b, SeqNo(1)));
        let missing = d.missing();
        assert_eq!(missing, vec![MessageId::new(a, SeqNo(1))]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        /// For any arrival permutation and session interleaving:
        /// missing = {1..=high} \ received, and receipt is permanent.
        #[test]
        fn missing_is_complement(
            arrivals in proptest::collection::vec(1u64..40, 1..60),
            session_high in 0u64..40,
        ) {
            let mut d = LossDetector::new();
            let mut seen = BTreeSet::new();
            let mut high = 0u64;
            for &seq in &arrivals {
                let out = d.on_data(mid(seq));
                prop_assert_eq!(out.newly_received, seen.insert(seq));
                high = high.max(seq);
            }
            d.on_session(SRC, SeqNo(session_high));
            high = high.max(session_high);
            let expect: Vec<MessageId> =
                (1..=high).filter(|s| !seen.contains(s)).map(mid).collect();
            prop_assert_eq!(d.missing(), expect);
            for &s in &seen {
                prop_assert!(d.received_before(mid(s)));
                prop_assert!(!d.is_missing(mid(s)));
            }
        }
    }

    const SRC: NodeId = NodeId(0);
    fn mid(seq: u64) -> MessageId {
        MessageId::new(SRC, SeqNo(seq))
    }

    /// One step of a random per-source script.
    #[derive(Debug, Clone)]
    enum Op {
        Data { src: u32, seq: u64 },
        Session { src: u32, high: u64 },
        Floor { src: u32, floor: u64 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        let data = (0u32..4, 1u64..30).prop_map(|(src, seq)| Op::Data { src, seq });
        prop_oneof![
            // Unweighted oneof: repeat the data arm to bias toward receipt.
            data.clone(),
            data,
            (0u32..4, 0u64..30).prop_map(|(src, high)| Op::Session { src, high }),
            (0u32..4, 0u64..20).prop_map(|(src, floor)| Op::Floor { src, floor }),
        ]
    }

    /// The old HashMap-shaped per-source model, state kept explicitly.
    #[derive(Debug, Clone, Default)]
    struct ModelState {
        received: BTreeSet<u64>,
        high: u64,
        floor: u64,
    }

    proptest! {
        /// The sorted-parallel-vec (SoA) detector is observably identical
        /// to a HashMap-of-BTreeSet model on arbitrary multi-source
        /// data/session/floor scripts — outcomes included.
        #[test]
        fn soa_detector_matches_hashmap_model(
            ops in proptest::collection::vec(op_strategy(), 0..80),
        ) {
            use std::collections::HashMap;
            let mut d = LossDetector::new();
            let mut model: HashMap<NodeId, ModelState> = HashMap::new();
            for op in &ops {
                match *op {
                    Op::Data { src, seq } => {
                        let out = d.on_data(MessageId::new(NodeId(src), SeqNo(seq)));
                        let st = model.entry(NodeId(src)).or_default();
                        let newly = st.received.insert(seq);
                        let mut newly_missing = Vec::new();
                        if seq > st.high {
                            let lo = (st.high + 1).max(st.floor + 1);
                            for s in lo..=seq {
                                if !st.received.contains(&s) {
                                    newly_missing.push(MessageId::new(NodeId(src), SeqNo(s)));
                                }
                            }
                            st.high = seq;
                        }
                        prop_assert_eq!(out.newly_received, newly);
                        prop_assert_eq!(out.newly_missing, newly_missing);
                    }
                    Op::Session { src, high } => {
                        let out = d.on_session(NodeId(src), SeqNo(high));
                        let st = model.entry(NodeId(src)).or_default();
                        let mut newly_missing = Vec::new();
                        if high > st.high {
                            let lo = (st.high + 1).max(st.floor + 1);
                            for s in lo..=high {
                                if !st.received.contains(&s) {
                                    newly_missing.push(MessageId::new(NodeId(src), SeqNo(s)));
                                }
                            }
                            st.high = high;
                        }
                        prop_assert_eq!(out, newly_missing);
                    }
                    Op::Floor { src, floor } => {
                        d.set_floor(NodeId(src), SeqNo(floor));
                        let st = model.entry(NodeId(src)).or_default();
                        st.floor = st.floor.max(floor);
                        st.high = st.high.max(st.floor);
                    }
                }
                // Full observable state after every step.
                let mut expect_missing: Vec<MessageId> = Vec::new();
                let mut expect_sources: Vec<NodeId> = model.keys().copied().collect();
                expect_sources.sort_unstable();
                for &src in &expect_sources {
                    let st = &model[&src];
                    for s in st.floor + 1..=st.high {
                        if !st.received.contains(&s) {
                            expect_missing.push(MessageId::new(src, SeqNo(s)));
                        }
                    }
                }
                prop_assert_eq!(d.missing(), expect_missing);
                let tracked: Vec<NodeId> = d.tracked_sources().collect();
                prop_assert_eq!(&tracked, &expect_sources, "ascending source order");
                for src in (0u32..4).map(NodeId) {
                    let st = model.get(&src);
                    prop_assert_eq!(
                        d.high(src),
                        SeqNo(st.map_or(0, |st| st.high))
                    );
                    prop_assert_eq!(
                        d.received_count(src),
                        st.map_or(0, |st| st.received.len() as u64)
                    );
                    let contiguous = st.map_or(0, |st| {
                        let mut c = 0;
                        while st.received.contains(&(c + 1)) {
                            c += 1;
                        }
                        c
                    });
                    prop_assert_eq!(d.contiguous_received(src), SeqNo(contiguous));
                    for s in 1u64..=30 {
                        let msg = MessageId::new(src, SeqNo(s));
                        prop_assert_eq!(
                            d.received_before(msg),
                            st.is_some_and(|st| st.received.contains(&s))
                        );
                        prop_assert_eq!(
                            d.is_missing(msg),
                            st.is_some_and(|st| s > st.floor
                                && s <= st.high
                                && !st.received.contains(&s))
                        );
                    }
                }
            }
        }
    }
}
