//! Protocol identifiers.
//!
//! RRMP identifies a multicast message by `[source address, sequence
//! number]` (paper §1, footnote 2). [`MessageId`] is that pair; [`SeqNo`]
//! is the per-sender sequence number.

use std::fmt;

use rrmp_netsim::topology::NodeId;

/// A per-sender message sequence number. The first message a sender
/// multicasts carries sequence number `1`; `0` is reserved as "nothing
/// sent yet" in session messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SeqNo(pub u64);

impl SeqNo {
    /// The "nothing sent yet" sentinel used in session messages.
    pub const NONE: SeqNo = SeqNo(0);
    /// The first real sequence number.
    pub const FIRST: SeqNo = SeqNo(1);

    /// The next sequence number.
    #[must_use]
    pub fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }

    /// The raw value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Globally unique message identifier: `[source address, sequence number]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MessageId {
    /// The original sender of the message.
    pub source: NodeId,
    /// The sender-local sequence number.
    pub seq: SeqNo,
}

impl MessageId {
    /// Creates a message id.
    #[must_use]
    pub fn new(source: NodeId, seq: SeqNo) -> Self {
        MessageId { source, seq }
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.source, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqno_next_and_sentinels() {
        assert_eq!(SeqNo::NONE.value(), 0);
        assert_eq!(SeqNo::FIRST.value(), 1);
        assert_eq!(SeqNo::NONE.next(), SeqNo::FIRST);
        assert_eq!(SeqNo(41).next(), SeqNo(42));
    }

    #[test]
    fn message_id_ordering_groups_by_source() {
        let a = MessageId::new(NodeId(1), SeqNo(9));
        let b = MessageId::new(NodeId(2), SeqNo(1));
        assert!(a < b, "ordering is (source, seq)");
        assert!(MessageId::new(NodeId(1), SeqNo(1)) < a);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", SeqNo(5)), "#5");
        assert_eq!(format!("{}", MessageId::new(NodeId(3), SeqNo(7))), "n3#7");
    }
}
