//! # rrmp-core
//!
//! The RRMP protocol core: randomized error recovery and the paper's
//! **two-phase buffer-management algorithm** (feedback-based short-term
//! buffering + randomized long-term buffering), implemented as sans-io
//! state machines.
//!
//! This crate reproduces *"Optimizing Buffer Management for Reliable
//! Multicast"* (Xiao, Birman, van Renesse — DSN 2002). See `DESIGN.md` at
//! the repository root for the full system inventory and experiment index.
//!
//! ## Architecture
//!
//! * [`receiver::Receiver`] — one group member: loss detection, local and
//!   remote recovery, buffering, bufferer search, leave handoff. The
//!   receiver is the shared protocol *engine*; every algorithm-specific
//!   decision lives in a [`policy::BufferPolicy`].
//! * [`policy`] — the pluggable buffer-management layer: the paper's
//!   randomized two-phase algorithm (default, byte-identical to the
//!   pre-refactor receiver), fixed-time and keep-all ablations, and the
//!   hash-based / sender-based comparison schemes ported from
//!   `rrmp-baselines`.
//! * [`sender::Sender`] — the single multicast source: data and session
//!   messages.
//! * [`packet::Packet`] — the wire protocol with a binary codec.
//! * [`harness`] — adapters hosting the protocol on the
//!   [`rrmp_netsim`] discrete-event simulator; the basis of every
//!   experiment in the paper's evaluation.
//!
//! The core is *sans-io*: [`receiver::Receiver::handle`] maps an
//! [`events::Event`] to [`events::Action`]s and never touches sockets,
//! clocks, or threads. The same state machine runs on the simulator (for
//! the paper's figures) and on real UDP sockets (`rrmp-udp`).
//!
//! ## Example
//!
//! ```
//! use rrmp_core::prelude::*;
//! use rrmp_netsim::prelude::*;
//!
//! // One region of 8 members; the sender is node 0. Nodes 4..8 miss the
//! // initial multicast and recover it from their neighbors.
//! let topo = presets::paper_region(8);
//! let mut net = RrmpNetwork::new(topo, ProtocolConfig::paper_defaults(), 42);
//! let plan = DeliveryPlan::only(net.topology(), (0..4).map(NodeId));
//! let id = net.multicast_with_plan(b"tick".as_ref(), &plan);
//! net.run_until_quiescent(SimTime::from_secs(1));
//! assert!(net.all_delivered(id));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffer;
pub mod config;
pub mod delivery;
pub mod events;
pub mod harness;
pub mod history;
pub mod ids;
pub mod interval_set;
pub mod loss;
pub mod metrics;
pub mod observe;
pub mod packet;
pub mod policy;
pub mod receiver;
pub mod sender;
pub mod vecmap;

/// Convenient glob-import of the protocol types.
pub mod prelude {
    pub use crate::buffer::{MemoryBudget, MessageStore, Phase, PressureTier};
    pub use crate::config::{DampingConfig, ProtocolConfig, WatchdogConfig};
    pub use crate::delivery::FifoReorder;
    pub use crate::events::{Action, Event, TimerKind};
    pub use crate::harness::{RrmpNetwork, RrmpNode};
    pub use crate::history::{HistoryDigest, RepairRoles, StabilityTracker};
    pub use crate::ids::{MessageId, SeqNo};
    pub use crate::metrics::{BufferRecord, Counters, Metrics, ProtocolEvent};
    pub use crate::observe::{ReceiverTrace, TraceConfig};
    pub use crate::packet::{DataPacket, Packet, RepairKind};
    pub use crate::policy::{BufferPolicy, DataPath, PolicyCtx, PolicyKind};
    pub use crate::receiver::{PreloadState, Receiver};
    pub use crate::sender::{Sender, SenderAction};
}
