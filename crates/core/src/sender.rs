//! The RRMP sender.
//!
//! RRMP is designed for single-sender multicast applications (paper §2).
//! The sender assigns contiguous sequence numbers, multicasts data to the
//! whole group, and periodically multicasts *session messages* advertising
//! the highest sequence number sent so receivers can detect the loss of
//! the last message in a burst (§2.1).
//!
//! The sender is also a receiver in the group: hosts pair a [`Sender`]
//! with a [`Receiver`](crate::receiver::Receiver) on the same node and
//! feed the sender's own data packets back into the receiver so they are
//! buffered under the same two-phase policy as everyone else's.

use bytes::Bytes;
use rrmp_netsim::time::SimDuration;
use rrmp_netsim::topology::NodeId;

use crate::events::{Action, TimerKind};
use crate::ids::{MessageId, SeqNo};
use crate::packet::{DataPacket, Packet};

/// Multicast actions a sender asks its host to perform. Group-wide
/// multicast is separated from [`Action`] because only the sender uses it
/// and hosts typically implement it with different loss semantics (the
/// lossy initial IP multicast vs. reliable control traffic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SenderAction {
    /// Multicast `packet` to the whole group (lossy IP multicast).
    MulticastGroup {
        /// The packet to multicast.
        packet: Packet,
    },
    /// Ordinary protocol action (timers).
    Protocol(Action),
}

/// The single multicast source of an RRMP group.
#[derive(Debug, Clone)]
pub struct Sender {
    id: NodeId,
    next_seq: SeqNo,
    session_interval: SimDuration,
}

impl Sender {
    /// Creates a sender with the given session-message interval.
    #[must_use]
    pub fn new(id: NodeId, session_interval: SimDuration) -> Self {
        Sender { id, next_seq: SeqNo::FIRST, session_interval }
    }

    /// The sender's member id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Highest sequence number multicast so far ([`SeqNo::NONE`] if none).
    #[must_use]
    pub fn high(&self) -> SeqNo {
        SeqNo(self.next_seq.0 - 1)
    }

    /// Number of messages multicast so far.
    #[must_use]
    pub fn sent_count(&self) -> u64 {
        self.next_seq.0 - 1
    }

    /// Actions to run at start-up (arms the session tick).
    #[must_use]
    pub fn on_start(&self) -> Vec<SenderAction> {
        vec![SenderAction::Protocol(Action::SetTimer {
            delay: self.session_interval,
            kind: TimerKind::SessionTick,
        })]
    }

    /// Multicasts `payload` as the next message; returns the id it was
    /// assigned and the actions to execute.
    pub fn multicast(&mut self, payload: Bytes) -> (MessageId, Vec<SenderAction>) {
        let id = MessageId::new(self.id, self.next_seq);
        self.next_seq = self.next_seq.next();
        let actions = vec![SenderAction::MulticastGroup {
            packet: Packet::Data(DataPacket::new(id, payload)),
        }];
        (id, actions)
    }

    /// Handles the session tick: advertises the current high watermark and
    /// re-arms the timer. Nothing is advertised before the first message
    /// has been multicast.
    #[must_use]
    pub fn on_session_tick(&self) -> Vec<SenderAction> {
        let mut actions = Vec::with_capacity(2);
        if self.high() != SeqNo::NONE {
            actions.push(SenderAction::MulticastGroup {
                packet: Packet::Session { source: self.id, high: self.high() },
            });
        }
        actions.push(SenderAction::Protocol(Action::SetTimer {
            delay: self.session_interval,
            kind: TimerKind::SessionTick,
        }));
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender() -> Sender {
        Sender::new(NodeId(0), SimDuration::from_millis(100))
    }

    #[test]
    fn sequence_numbers_are_contiguous_from_one() {
        let mut s = sender();
        assert_eq!(s.high(), SeqNo::NONE);
        let (id1, _) = s.multicast(Bytes::from_static(b"a"));
        let (id2, _) = s.multicast(Bytes::from_static(b"b"));
        assert_eq!(id1.seq, SeqNo(1));
        assert_eq!(id2.seq, SeqNo(2));
        assert_eq!(s.high(), SeqNo(2));
        assert_eq!(s.sent_count(), 2);
    }

    #[test]
    fn multicast_emits_data_packet() {
        let mut s = sender();
        let (id, actions) = s.multicast(Bytes::from_static(b"x"));
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            SenderAction::MulticastGroup { packet: Packet::Data(d) } => {
                assert_eq!(d.id, id);
                assert_eq!(&d.payload[..], b"x");
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn session_tick_is_silent_before_first_message() {
        let s = sender();
        let actions = s.on_session_tick();
        assert_eq!(actions.len(), 1, "only the timer re-arm: {actions:?}");
        assert!(matches!(
            actions[0],
            SenderAction::Protocol(Action::SetTimer { kind: TimerKind::SessionTick, .. })
        ));
    }

    #[test]
    fn session_tick_advertises_high_and_rearms() {
        let mut s = sender();
        s.multicast(Bytes::from_static(b"a"));
        let actions = s.on_session_tick();
        assert!(actions.iter().any(|a| matches!(
            a,
            SenderAction::MulticastGroup { packet: Packet::Session { source, high } }
                if *source == NodeId(0) && *high == SeqNo(1)
        )));
        assert!(actions.iter().any(|a| matches!(
            a,
            SenderAction::Protocol(Action::SetTimer { kind: TimerKind::SessionTick, .. })
        )));
    }

    #[test]
    fn on_start_arms_session_timer() {
        let s = sender();
        let actions = s.on_start();
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            actions[0],
            SenderAction::Protocol(Action::SetTimer { kind: TimerKind::SessionTick, .. })
        ));
    }
}
